//! The block-compressed `.bt` v2 format.
//!
//! v1 streams one varint-delta record at a time, which makes decode the
//! replay bottleneck once prediction itself is batched, and means a single
//! flipped bit desynchronizes the delta chain and poisons everything after
//! it. v2 groups records into framed, independently decodable blocks:
//!
//! ```text
//! magic    "BPTR"                       4 bytes
//! version  u16 LE                       2
//! name     varint length + UTF-8        benchmark name
//! blocks   until EOF:
//!   marker      "BTBK"                  4 bytes
//!   payload_len varint                  byte length of payload
//!   checksum    u64 LE                  FNV-1a-64 of payload
//!   payload:
//!     records    varint                 record count n (1..=65536)
//!     dict_len   varint                 distinct (pc, target, kind) statics d
//!     dict       d entries:
//!       pc_delta   signed varint        vs previous dict entry's pc (first: 0)
//!       meta       u8                   bits 0-1 kind code, bit 2 target present
//!       tgt_delta  signed varint        vs fall-through (pc+4), if meta bit 2
//!       base_uops  varint               the static's most common uops in the block
//!     index      ceil(n*w/8) bytes      fixed-width dict ids, w = bits(d-1),
//!                                       record i = bits [i*w, (i+1)*w) LSB-first
//!     taken      tagged section:
//!       tag        u8                   0 = raw bitmask, 1 = run-length
//!       raw:       ceil(n/8) bytes      record i taken = byte i/8 bit i%8
//!       rle:       u8 first outcome + varint run lengths summing to n
//!     residuals  uops exceptions (uops != the static's base), tagged:
//!       tag        u8                   0 = none, 1 = bitmap, 2 = sparse
//!       bitmap:    ceil(n/8) presence bytes, then a signed varint delta
//!                  (uops - base) per set bit
//!       sparse:    varint count, then per exception a varint index gap
//!                  (vs previous exception; first vs 0) + signed varint delta
//! ```
//!
//! Every delta chain restarts per block, so blocks decode independently:
//! the checksum detects corruption at block granularity and [`salvage`] can
//! resynchronize on the next marker instead of losing the rest of the
//! stream. Dynamic branch streams revisit a small static working set, so
//! the dictionary amortizes pc/target bytes across all repeats of a static
//! within a block; a hot conditional costs ⌈log₂ d⌉ index bits plus one
//! taken bit. The index width is derived from `dict_len` on both sides, so
//! it costs no header byte, and extraction is a branchless shift/mask —
//! the decode hot loop. `base_uops` is the *mode* of a static's uops
//! within the block (ties toward the smaller value), so residual
//! exceptions stay rare even when a static's first occurrence is atypical
//! (loop entry vs steady state), and most blocks take the one-byte `none`
//! or short `sparse` residual encodings.
//!
//! [`BtBlockReader`] decodes whole blocks into the reusable column buffers
//! of a [`DecodedBlock`] — the replay engine consumes the columns directly
//! without materializing per-record [`BranchRecord`]s, while
//! [`BtReader`](crate::BtReader) remains the scalar reference reader over
//! both versions.

use std::collections::HashMap;
use std::io::{Read, Write};

use crate::binary::{BT_MAGIC, BT_VERSION};
use crate::error::{Result, TraceError};
use crate::record::{BranchKind, BranchRecord};
use crate::wire::{read_header, write_header, WireReader, WireWriter};

/// Marker framing every v2 block.
pub const BT_BLOCK_MAGIC: [u8; 4] = *b"BTBK";

/// Default records per block: large enough to amortize the dictionary over
/// a benchmark's static working set, small enough that a corrupt block
/// loses little and decoded columns stay cache-resident.
pub const BLOCK_RECORDS: usize = 4096;

/// Hard cap on records per block (sanity bound while decoding).
const MAX_BLOCK_RECORDS: usize = 65536;

/// Hard cap on a block payload (sanity bound while decoding).
const MAX_BLOCK_PAYLOAD: u64 = 1 << 24;

/// FNV-1a-64 of `bytes` — the per-block payload checksum.
///
/// Deliberately a local implementation: `bptrace` sits below the corpus
/// layer and depends on nothing.
#[must_use]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Streaming writer of block-compressed `.bt` v2 traces.
///
/// Records buffer until a block fills (or [`finish`](Self::finish) flushes
/// the remainder), then the block is dictionary/delta/run-length encoded,
/// checksummed and framed.
///
/// # Examples
///
/// ```
/// use bptrace::{BranchRecord, BtBlockWriter, BtReader};
///
/// let mut buf = Vec::new();
/// let mut w = BtBlockWriter::new(&mut buf, "demo")?;
/// w.write(&BranchRecord::conditional(0x1000, 0x1040, true, 7))?;
/// w.finish()?;
///
/// // The version-negotiating scalar reader decodes v2 transparently.
/// let mut r = BtReader::new(buf.as_slice())?;
/// assert_eq!(r.name(), "demo");
/// assert_eq!(r.next_record()?.unwrap().pc, 0x1000);
/// # Ok::<(), bptrace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct BtBlockWriter<W: Write> {
    wire: WireWriter<W>,
    pending: Vec<BranchRecord>,
    block_records: usize,
    records: u64,
    payload: Vec<u8>,
}

impl<W: Write> BtBlockWriter<W> {
    /// Creates a writer with the default block size and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(out: W, name: &str) -> Result<Self> {
        Self::with_block_capacity(out, name, BLOCK_RECORDS)
    }

    /// Creates a writer flushing a block every `block_records` records.
    ///
    /// Small capacities are for tests that want many blocks from few
    /// records; production recording uses [`BLOCK_RECORDS`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    ///
    /// # Panics
    ///
    /// Panics if `block_records` is zero or above the format's 65536 cap.
    pub fn with_block_capacity(out: W, name: &str, block_records: usize) -> Result<Self> {
        assert!(
            (1..=MAX_BLOCK_RECORDS).contains(&block_records),
            "block capacity {block_records} out of range"
        );
        let mut wire = WireWriter::new(out);
        write_header(&mut wire, BT_MAGIC, BT_VERSION)?;
        wire.write_str(name)?;
        Ok(Self {
            wire,
            pending: Vec::with_capacity(block_records),
            block_records,
            records: 0,
            payload: Vec::new(),
        })
    }

    /// Appends one record, flushing a full block if this one completes it.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, rec: &BranchRecord) -> Result<()> {
        self.pending.push(*rec);
        self.records += 1;
        if self.pending.len() >= self.block_records {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Records accepted so far (including any still buffered).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Encodes and frames the pending records as one block.
    fn flush_block(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.payload.clear();
        encode_payload(&self.pending, &mut self.payload)?;
        self.wire.write_bytes(&BT_BLOCK_MAGIC)?;
        self.wire.write_varint(self.payload.len() as u64)?;
        self.wire.write_u64(fnv1a(&self.payload))?;
        self.wire.write_bytes(&self.payload)?;
        self.pending.clear();
        Ok(())
    }

    /// Flushes the final (possibly partial) block and returns the writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush.
    pub fn finish(mut self) -> Result<W> {
        self.flush_block()?;
        self.wire.flush()?;
        Ok(self.wire.into_inner())
    }
}

/// Bits needed to represent every value in `0..=max` (zero when `max` is).
fn bit_width(max: usize) -> u32 {
    usize::BITS - max.leading_zeros()
}

/// Encoded length of `v` as a LEB128 varint.
fn varint_len(mut v: u64) -> usize {
    let mut len = 1;
    while v >= 0x80 {
        v >>= 7;
        len += 1;
    }
    len
}

/// Encodes one block's records into `payload` (dictionary, index stream,
/// taken section, uops residuals).
fn encode_payload(records: &[BranchRecord], payload: &mut Vec<u8>) -> Result<()> {
    let n = records.len();
    let mut w = WireWriter::new(&mut *payload);
    w.write_varint(n as u64)?;

    // ---- Dictionary of (pc, target, kind) statics, first-appearance order.
    let mut ids: HashMap<(u64, u64, u8), u32> = HashMap::with_capacity(64);
    let mut dict: Vec<&BranchRecord> = Vec::new();
    let mut index: Vec<u32> = Vec::with_capacity(n);
    for rec in records {
        let key = (rec.pc, rec.target, rec.kind.code());
        let id = *ids.entry(key).or_insert_with(|| {
            dict.push(rec);
            (dict.len() - 1) as u32
        });
        index.push(id);
    }

    // ---- Per-static base uops: the mode within this block (ties toward
    // the smaller value, so encoding is deterministic). A static's first
    // occurrence is often atypical — loop entry vs steady state — and
    // basing residuals on the mode keeps exceptions rare.
    let mut uops_seen: Vec<Vec<u32>> = vec![Vec::new(); dict.len()];
    for (i, rec) in records.iter().enumerate() {
        uops_seen[index[i] as usize].push(rec.uops_since_prev);
    }
    let base: Vec<u32> = uops_seen
        .into_iter()
        .map(|mut seen| {
            seen.sort_unstable();
            let (mut best, mut best_count, mut run) = (seen[0], 0usize, 0usize);
            for j in 0..seen.len() {
                run = if j > 0 && seen[j] == seen[j - 1] {
                    run + 1
                } else {
                    1
                };
                if run > best_count {
                    best_count = run;
                    best = seen[j];
                }
            }
            best
        })
        .collect();

    w.write_varint(dict.len() as u64)?;
    let mut prev_pc = 0u64;
    for (e, &base_uops) in dict.iter().zip(&base) {
        let fall_through = e.pc.wrapping_add(4);
        let has_target = e.target != fall_through;
        w.write_signed(e.pc.wrapping_sub(prev_pc) as i64)?;
        w.write_u8(e.kind.code() | (u8::from(has_target) << 2))?;
        if has_target {
            w.write_signed(e.target.wrapping_sub(fall_through) as i64)?;
        }
        w.write_varint(u64::from(base_uops))?;
        prev_pc = e.pc;
    }

    // ---- Index stream: fixed-width bit-packed dict ids, LSB-first.
    let width = bit_width(dict.len() - 1);
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &id in &index {
        acc |= u64::from(id) << nbits;
        nbits += width;
        while nbits >= 8 {
            w.write_u8(acc as u8)?;
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        w.write_u8(acc as u8)?;
    }

    // ---- Taken section: raw bitmask or run-length, whichever is smaller.
    let mut rle = Vec::new();
    {
        let mut rw = WireWriter::new(&mut rle);
        rw.write_u8(u8::from(records[0].taken))?;
        let mut run = 0u64;
        let mut bit = records[0].taken;
        for rec in records {
            if rec.taken == bit {
                run += 1;
            } else {
                rw.write_varint(run)?;
                bit = rec.taken;
                run = 1;
            }
        }
        rw.write_varint(run)?;
    }
    let raw_len = n.div_ceil(8);
    if rle.len() < raw_len {
        w.write_u8(1)?;
        w.write_bytes(&rle)?;
    } else {
        w.write_u8(0)?;
        let mut bytes = vec![0u8; raw_len];
        for (i, rec) in records.iter().enumerate() {
            bytes[i / 8] |= u8::from(rec.taken) << (i % 8);
        }
        w.write_bytes(&bytes)?;
    }

    // ---- Uops residuals: records whose uops differ from their static's
    // base, as whichever tagged encoding is smallest.
    let exceptions: Vec<(usize, i64)> = records
        .iter()
        .enumerate()
        .filter_map(|(i, rec)| {
            let b = base[index[i] as usize];
            (rec.uops_since_prev != b).then(|| (i, i64::from(rec.uops_since_prev) - i64::from(b)))
        })
        .collect();
    if exceptions.is_empty() {
        w.write_u8(0)?;
    } else {
        let delta_bytes: usize = exceptions
            .iter()
            .map(|&(_, d)| varint_len(crate::wire::zigzag(d)))
            .sum();
        let bitmap_cost = n.div_ceil(8) + delta_bytes;
        let mut sparse_cost = varint_len(exceptions.len() as u64) + delta_bytes;
        let mut prev = 0usize;
        for &(i, _) in &exceptions {
            sparse_cost += varint_len((i - prev) as u64);
            prev = i;
        }
        if sparse_cost < bitmap_cost {
            w.write_u8(2)?;
            w.write_varint(exceptions.len() as u64)?;
            let mut prev = 0usize;
            for &(i, d) in &exceptions {
                w.write_varint((i - prev) as u64)?;
                w.write_signed(d)?;
                prev = i;
            }
        } else {
            w.write_u8(1)?;
            let mut presence = vec![0u8; n.div_ceil(8)];
            for &(i, _) in &exceptions {
                presence[i / 8] |= 1 << (i % 8);
            }
            w.write_bytes(&presence)?;
            for &(_, d) in &exceptions {
                w.write_signed(d)?;
            }
        }
    }
    Ok(())
}

/// A positioned cursor over a checksummed block payload.
///
/// All reads are bounds-checked against the slice; running out of bytes
/// mid-payload is corruption (the frame length and checksum already
/// vouched for the payload's extent), reported as `None` and mapped to
/// [`TraceError::Corrupt`] at the call site. Parsing straight off the
/// slice — instead of through the generic `io::Read` wire layer — is what
/// keeps block decode off the replay critical path.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    #[inline(always)]
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// LEB128 varint with an inlined single-byte fast path (the
    /// overwhelmingly common case for dict deltas, runs and residuals).
    #[inline(always)]
    fn varint(&mut self) -> Option<u64> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        if b < 0x80 {
            return Some(u64::from(b));
        }
        let mut v = u64::from(b & 0x7f);
        let mut shift = 7u32;
        loop {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            if shift >= 63 && b > 1 {
                return None; // overflows 64 bits
            }
            v |= u64::from(b & 0x7f) << shift;
            if b < 0x80 {
                return Some(v);
            }
            shift += 7;
            if shift > 63 {
                return None;
            }
        }
    }

    #[inline(always)]
    fn signed(&mut self) -> Option<i64> {
        self.varint().map(crate::wire::unzigzag)
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let s = self.bytes.get(self.pos..self.pos.checked_add(len)?)?;
        self.pos += len;
        Some(s)
    }
}

/// One decoded block as reusable column buffers.
///
/// The replay engine iterates these columns directly — no intermediate
/// [`BranchRecord`] is built on the hot path. [`record`](Self::record)
/// materializes single records for the scalar reference reader, migration
/// and tests.
#[derive(Debug, Default)]
pub struct DecodedBlock {
    len: usize,
    pcs: Vec<u64>,
    targets: Vec<u64>,
    kinds: Vec<BranchKind>,
    /// Taken outcomes, bit i of word i/64.
    taken: Vec<u64>,
    uops: Vec<u32>,
    /// Frame scratch: raw payload bytes of the block being decoded.
    payload: Vec<u8>,
}

impl DecodedBlock {
    /// Creates an empty block buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records in the block.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Branch addresses, one per record.
    #[must_use]
    pub fn pcs(&self) -> &[u64] {
        &self.pcs[..self.len]
    }

    /// Branch targets, one per record.
    #[must_use]
    pub fn targets(&self) -> &[u64] {
        &self.targets[..self.len]
    }

    /// Branch kinds, one per record.
    #[must_use]
    pub fn kinds(&self) -> &[BranchKind] {
        &self.kinds[..self.len]
    }

    /// Uop counts since the previous branch, one per record.
    #[must_use]
    pub fn uops(&self) -> &[u32] {
        &self.uops[..self.len]
    }

    /// Taken outcomes as a packed bitmask: record `i` is bit `i % 64` of
    /// word `i / 64`.
    #[must_use]
    pub fn taken_words(&self) -> &[u64] {
        &self.taken
    }

    /// Whether record `i` was taken.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn taken(&self, i: usize) -> bool {
        assert!(i < self.len);
        (self.taken[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Materializes record `i` — the scalar-reference and migration path.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn record(&self, i: usize) -> BranchRecord {
        assert!(i < self.len);
        BranchRecord {
            pc: self.pcs[i],
            target: self.targets[i],
            kind: self.kinds[i],
            taken: self.taken(i),
            uops_since_prev: self.uops[i],
        }
    }

    fn clear(&mut self) {
        self.len = 0;
        self.pcs.clear();
        self.targets.clear();
        self.kinds.clear();
        self.taken.clear();
        self.uops.clear();
    }

    /// Parses one payload into the column buffers.
    fn parse_payload(&mut self, bytes: &[u8], offset: u64) -> Result<()> {
        self.clear();
        let corrupt = |what: &'static str| TraceError::Corrupt { offset, what };
        let mut c = Cursor { bytes, pos: 0 };
        let n = c.varint().ok_or_else(|| corrupt("block record count"))? as usize;
        if n == 0 || n > MAX_BLOCK_RECORDS {
            return Err(corrupt("block record count"));
        }
        let dict_len = c.varint().ok_or_else(|| corrupt("block dictionary size"))? as usize;
        if dict_len == 0 || dict_len > n {
            return Err(corrupt("block dictionary size"));
        }

        // ---- Dictionary.
        let mut dict_pc = Vec::with_capacity(dict_len);
        let mut dict_target = Vec::with_capacity(dict_len);
        let mut dict_kind = Vec::with_capacity(dict_len);
        let mut dict_uops = Vec::with_capacity(dict_len);
        let mut prev_pc = 0u64;
        for _ in 0..dict_len {
            let delta = c.signed().ok_or_else(|| corrupt("dictionary pc delta"))?;
            let pc = prev_pc.wrapping_add(delta as u64);
            let meta = c.u8().ok_or_else(|| corrupt("dictionary meta"))?;
            if meta & !0b111 != 0 {
                return Err(corrupt("block dictionary meta"));
            }
            let kind = BranchKind::from_code(meta & 0b11).ok_or_else(|| corrupt("block kind"))?;
            let target = if meta & 0b100 != 0 {
                let delta = c
                    .signed()
                    .ok_or_else(|| corrupt("dictionary target delta"))?;
                pc.wrapping_add(4).wrapping_add(delta as u64)
            } else {
                pc.wrapping_add(4)
            };
            let uops = c
                .varint()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| corrupt("block dictionary uops"))?;
            dict_pc.push(pc);
            dict_target.push(target);
            dict_kind.push(kind);
            dict_uops.push(uops);
            prev_pc = pc;
        }

        // ---- Index stream expands the dictionary into columns: a
        // branchless shift/mask per record off a 64-bit accumulator.
        let width = bit_width(dict_len - 1);
        let idx_bytes = c
            .take((n * width as usize).div_ceil(8))
            .ok_or_else(|| corrupt("block index"))?;
        self.pcs.resize(n, 0);
        self.targets.resize(n, 0);
        self.kinds.resize(n, BranchKind::Conditional);
        self.uops.resize(n, 0);
        let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
        let mut acc = 0u64;
        let mut nbits = 0u32;
        let mut at = 0usize;
        for i in 0..n {
            while nbits < width {
                acc |= u64::from(idx_bytes[at]) << nbits;
                at += 1;
                nbits += 8;
            }
            let id = (acc & mask) as usize;
            acc >>= width;
            nbits -= width;
            if id >= dict_len {
                return Err(corrupt("block record index"));
            }
            self.pcs[i] = dict_pc[id];
            self.targets[i] = dict_target[id];
            self.kinds[i] = dict_kind[id];
            self.uops[i] = dict_uops[id];
        }

        // ---- Taken section.
        self.taken.resize(n.div_ceil(64), 0);
        match c.u8().ok_or_else(|| corrupt("taken tag"))? {
            0 => {
                let raw = c
                    .take(n.div_ceil(8))
                    .ok_or_else(|| corrupt("taken bitmask"))?;
                for (j, &b) in raw.iter().enumerate() {
                    self.taken[j / 8] |= u64::from(b) << ((j % 8) * 8);
                }
            }
            1 => {
                let first = c.u8().ok_or_else(|| corrupt("taken first outcome"))?;
                if first > 1 {
                    return Err(corrupt("block taken first outcome"));
                }
                let mut bit = first == 1;
                let mut pos = 0usize;
                while pos < n {
                    let run = c.varint().ok_or_else(|| corrupt("taken run"))? as usize;
                    if run == 0 || run > n - pos {
                        return Err(corrupt("block taken run"));
                    }
                    if bit {
                        for i in pos..pos + run {
                            self.taken[i / 64] |= 1 << (i % 64);
                        }
                    }
                    pos += run;
                    bit = !bit;
                }
            }
            _ => return Err(corrupt("block taken tag")),
        }

        // ---- Uops residuals.
        match c.u8().ok_or_else(|| corrupt("residual tag"))? {
            0 => {}
            1 => {
                let presence = c
                    .take(n.div_ceil(8))
                    .ok_or_else(|| corrupt("uops presence"))?;
                for i in 0..n {
                    if (presence[i / 8] >> (i % 8)) & 1 == 1 {
                        let delta = c.signed().ok_or_else(|| corrupt("uops residual"))?;
                        let v = i64::from(self.uops[i]) + delta;
                        self.uops[i] =
                            u32::try_from(v).map_err(|_| corrupt("block uops residual"))?;
                    }
                }
            }
            2 => {
                let count = c.varint().ok_or_else(|| corrupt("uops exception count"))? as usize;
                if count > n {
                    return Err(corrupt("block uops exception count"));
                }
                let mut idx = 0usize;
                for k in 0..count {
                    let gap = c
                        .varint()
                        .and_then(|v| usize::try_from(v).ok())
                        .ok_or_else(|| corrupt("uops exception gap"))?;
                    let from = if k == 0 { 0 } else { idx };
                    if (k > 0 && gap == 0) || gap > n - 1 - from {
                        return Err(corrupt("block uops exception gap"));
                    }
                    idx = from + gap;
                    let delta = c.signed().ok_or_else(|| corrupt("uops residual"))?;
                    let v = i64::from(self.uops[idx]) + delta;
                    self.uops[idx] =
                        u32::try_from(v).map_err(|_| corrupt("block uops residual"))?;
                }
            }
            _ => return Err(corrupt("block residual tag")),
        }

        if c.pos != bytes.len() {
            return Err(corrupt("block payload size"));
        }
        self.len = n;
        Ok(())
    }
}

/// Reads one framed block (after its marker) into `block`.
fn decode_block_body<R: Read>(wire: &mut WireReader<R>, block: &mut DecodedBlock) -> Result<()> {
    let offset = wire.position();
    let payload_len = wire.read_varint("block length")?;
    if payload_len > MAX_BLOCK_PAYLOAD {
        return Err(TraceError::Corrupt {
            offset,
            what: "block length",
        });
    }
    let checksum = wire.read_u64("block checksum")?;
    block.payload.resize(payload_len as usize, 0);
    let mut payload = std::mem::take(&mut block.payload);
    let res = (|| {
        wire.read_exact(&mut payload, "block payload")?;
        if fnv1a(&payload) != checksum {
            return Err(TraceError::Corrupt {
                offset,
                what: "block checksum mismatch",
            });
        }
        block.parse_payload(&payload, offset)
    })();
    block.payload = payload;
    res
}

/// Chunked reader of block-compressed `.bt` v2 traces.
///
/// Decodes whole blocks into a caller-provided [`DecodedBlock`], reusing
/// its buffers across blocks. This is the replay hot path; the scalar
/// reference path is [`BtReader`](crate::BtReader), which wraps this reader
/// for v2 files and yields identical records one at a time.
///
/// Errors are terminal: a corrupt block fails the stream, and corpus-level
/// tooling quarantines the trace. [`salvage`] exists for explicitly lossy
/// recovery of the undamaged blocks.
#[derive(Debug)]
pub struct BtBlockReader<R: Read> {
    wire: WireReader<R>,
    name: String,
    records: u64,
    blocks: u64,
}

impl<R: Read> BtBlockReader<R> {
    /// Opens a v2 trace, validating magic and version.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`] on a
    /// foreign or newer file; [`TraceError::Corrupt`] on a v1 file (use
    /// [`BtReader`](crate::BtReader), which negotiates both versions).
    pub fn new(input: R) -> Result<Self> {
        let mut wire = WireReader::new(input);
        let version = read_header(&mut wire, BT_MAGIC, BT_VERSION)?;
        if version != BT_VERSION {
            return Err(TraceError::Corrupt {
                offset: 4,
                what: "v1 record stream (block reader requires v2)",
            });
        }
        let name = wire.read_str("trace name")?;
        Ok(Self::from_wire(wire, name))
    }

    /// Wraps a wire reader positioned just past the name (header already
    /// consumed and negotiated by the caller).
    pub(crate) fn from_wire(wire: WireReader<R>, name: String) -> Self {
        Self {
            wire,
            name,
            records: 0,
            blocks: 0,
        }
    }

    /// The benchmark name stored in the header.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records decoded so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Blocks decoded so far.
    #[must_use]
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Decodes the next block into `block`; `false` at a clean end of
    /// stream (the EOF falls exactly on a block boundary).
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] on a bad marker, checksum mismatch or
    /// malformed payload; [`TraceError::UnexpectedEof`] on a truncated
    /// block.
    pub fn next_block(&mut self, block: &mut DecodedBlock) -> Result<bool> {
        let Some(first) = self.wire.read_u8_or_eof()? else {
            return Ok(false);
        };
        let offset = self.wire.position() - 1;
        let mut rest = [0u8; 3];
        self.wire.read_exact(&mut rest, "block marker")?;
        if [first, rest[0], rest[1], rest[2]] != BT_BLOCK_MAGIC {
            return Err(TraceError::Corrupt {
                offset,
                what: "block marker",
            });
        }
        decode_block_body(&mut self.wire, block)?;
        self.records += block.len() as u64;
        self.blocks += 1;
        Ok(true)
    }
}

/// What [`salvage`] recovered from a damaged v2 trace.
#[derive(Debug)]
pub struct SalvageReport {
    /// The benchmark name from the header.
    pub name: String,
    /// Every record from every block that decoded and checksummed clean.
    pub records: Vec<BranchRecord>,
    /// Blocks recovered intact.
    pub blocks_decoded: u64,
    /// Maximal corrupt regions skipped (each one or more damaged blocks).
    pub corrupt_spans: u64,
}

/// Best-effort lossy recovery: decodes every intact block of a v2 trace,
/// resynchronizing on the next [`BT_BLOCK_MAGIC`] marker after damage.
///
/// Because each attempt re-parses from a candidate marker position in the
/// slice (rather than trusting a possibly-corrupt length field to skip
/// forward in a stream), a single damaged block can never swallow its
/// intact neighbors: corruption costs exactly the blocks it touches.
///
/// # Errors
///
/// Fails only if the file header itself is unreadable or not v2; block
/// damage is reported, not raised.
pub fn salvage(bytes: &[u8]) -> Result<SalvageReport> {
    let mut wire = WireReader::new(bytes);
    let version = read_header(&mut wire, BT_MAGIC, BT_VERSION)?;
    if version != BT_VERSION {
        return Err(TraceError::Corrupt {
            offset: 4,
            what: "v1 record stream (salvage requires v2)",
        });
    }
    let name = wire.read_str("trace name")?;
    let mut off = wire.position() as usize;

    let mut report = SalvageReport {
        name,
        records: Vec::new(),
        blocks_decoded: 0,
        corrupt_spans: 0,
    };
    let mut block = DecodedBlock::new();
    let mut in_skip = false;
    while off < bytes.len() {
        let Some(rel) = find_marker(&bytes[off..]) else {
            // Trailing bytes with no marker: damage unless nothing is left.
            if !in_skip {
                report.corrupt_spans += 1;
            }
            break;
        };
        if rel > 0 && !in_skip {
            report.corrupt_spans += 1;
            in_skip = true;
        }
        let at = off + rel;
        let mut wire = WireReader::new(&bytes[at + BT_BLOCK_MAGIC.len()..]);
        match decode_block_body(&mut wire, &mut block) {
            Ok(()) => {
                in_skip = false;
                for i in 0..block.len() {
                    report.records.push(block.record(i));
                }
                report.blocks_decoded += 1;
                off = at + BT_BLOCK_MAGIC.len() + wire.position() as usize;
            }
            Err(_) => {
                if !in_skip {
                    report.corrupt_spans += 1;
                    in_skip = true;
                }
                off = at + 1;
            }
        }
    }
    Ok(report)
}

/// Position of the first block marker in `bytes`, if any.
fn find_marker(bytes: &[u8]) -> Option<usize> {
    bytes
        .windows(BT_BLOCK_MAGIC.len())
        .position(|w| w == BT_BLOCK_MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BtReader;

    fn sample_stream(n: usize) -> Vec<BranchRecord> {
        // A small loop nest: aliased conditionals, a call/return pair, and
        // occasional uops outliers — exercises dictionary reuse, both taken
        // encodings, and residuals.
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let rec = match i % 7 {
                0..=3 => BranchRecord::conditional(0x40_1000, 0x40_0f80, i % 5 != 4, 6),
                4 => BranchRecord::conditional(0x40_1040, 0x40_1100, i % 2 == 0, 3),
                5 => BranchRecord {
                    pc: 0x40_1080,
                    target: 0x40_8000,
                    kind: BranchKind::Call,
                    taken: true,
                    uops_since_prev: if i % 35 == 5 { 211 } else { 2 },
                },
                _ => BranchRecord {
                    pc: 0x40_8040,
                    target: 0x40_1084,
                    kind: BranchKind::Return,
                    taken: true,
                    uops_since_prev: 4,
                },
            };
            out.push(rec);
        }
        out
    }

    fn encode(records: &[BranchRecord], name: &str, cap: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = BtBlockWriter::with_block_capacity(&mut buf, name, cap).unwrap();
        for r in records {
            w.write(r).unwrap();
        }
        assert_eq!(w.records(), records.len() as u64);
        w.finish().unwrap();
        buf
    }

    #[test]
    fn block_reader_round_trips_across_block_boundaries() {
        let records = sample_stream(1000);
        let buf = encode(&records, "blocks", 64);
        let mut r = BtBlockReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.name(), "blocks");
        let mut block = DecodedBlock::new();
        let mut decoded = Vec::new();
        while r.next_block(&mut block).unwrap() {
            for i in 0..block.len() {
                decoded.push(block.record(i));
            }
        }
        assert_eq!(decoded, records);
        assert_eq!(r.records(), 1000);
        assert_eq!(r.blocks(), 1000u64.div_ceil(64));
    }

    #[test]
    fn scalar_reader_negotiates_v2() {
        let records = sample_stream(300);
        let buf = encode(&records, "nego", 128);
        let mut r = BtReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.name(), "nego");
        assert_eq!(r.read_all().unwrap(), records);
        assert_eq!(r.records(), 300);
    }

    #[test]
    fn v2_is_smaller_than_v1_on_loopy_streams() {
        let records = sample_stream(20_000);
        let v2 = encode(&records, "size", BLOCK_RECORDS);
        let mut v1 = Vec::new();
        let mut w = crate::BtWriter::new(&mut v1, "size").unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        assert!(
            v2.len() * 2 <= v1.len(),
            "v2 {} bytes not 2x smaller than v1 {} bytes",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn empty_trace_round_trips() {
        let buf = encode(&[], "empty", 16);
        let mut r = BtBlockReader::new(buf.as_slice()).unwrap();
        let mut block = DecodedBlock::new();
        assert!(!r.next_block(&mut block).unwrap());
        assert_eq!(r.records(), 0);
    }

    #[test]
    fn checksum_catches_payload_damage() {
        let records = sample_stream(200);
        let mut buf = encode(&records, "flip", 64);
        let last = buf.len() - 3; // inside the final block's payload
        buf[last] ^= 0x10;
        let mut r = BtBlockReader::new(buf.as_slice()).unwrap();
        let mut block = DecodedBlock::new();
        let mut err = None;
        loop {
            match r.next_block(&mut block) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(err, Some(TraceError::Corrupt { .. })),
            "damage not detected: {err:?}"
        );
    }

    #[test]
    fn block_reader_rejects_v1_streams() {
        let mut buf = Vec::new();
        crate::BtWriter::new(&mut buf, "v1")
            .unwrap()
            .finish()
            .unwrap();
        assert!(matches!(
            BtBlockReader::new(buf.as_slice()),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn salvage_loses_only_the_damaged_block() {
        let records = sample_stream(640);
        let buf = encode(&records, "salvage", 64);
        // Flip one bit somewhere in the middle of the file.
        let mut damaged = buf.clone();
        let at = buf.len() / 2;
        damaged[at] ^= 0x04;
        let report = salvage(&damaged).unwrap();
        assert_eq!(report.name, "salvage");
        assert_eq!(report.corrupt_spans, 1);
        assert_eq!(report.blocks_decoded, 9);
        // The recovered records are exactly the original stream minus one
        // aligned 64-record block.
        assert_eq!(report.records.len(), 640 - 64);
        let clean = salvage(&buf).unwrap();
        assert_eq!(clean.records, records);
        assert_eq!(clean.corrupt_spans, 0);
    }

    #[test]
    fn rle_beats_raw_on_biased_streams() {
        // All-taken: RLE is a tag + first bit + one run varint.
        let records: Vec<BranchRecord> = (0..512)
            .map(|_| BranchRecord::conditional(0x1000, 0x0f00, true, 5))
            .collect();
        let biased = encode(&records, "x", 512);
        let noisy: Vec<BranchRecord> = (0..512)
            .map(|i| {
                BranchRecord::conditional(0x1000, 0x0f00, (i * 2654435761u64).is_multiple_of(3), 5)
            })
            .collect();
        let noisy = encode(&noisy, "x", 512);
        assert!(biased.len() < noisy.len());
        // Both still round-trip through the scalar reference.
        let mut r = BtReader::new(biased.as_slice()).unwrap();
        assert_eq!(r.read_all().unwrap(), records);
    }
}
