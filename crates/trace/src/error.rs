//! Error types for trace encoding and decoding.

use std::fmt;
use std::io;

/// An error produced while reading or writing a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The magic the parser expected.
        expected: [u8; 4],
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// The version found in the header.
        found: u16,
        /// The newest version this parser understands.
        supported: u16,
    },
    /// The byte stream is structurally invalid.
    Corrupt {
        /// Byte offset at which the corruption was detected.
        offset: u64,
        /// What the parser was trying to decode.
        what: &'static str,
    },
    /// A varint ran past its maximum encodable length.
    VarintOverflow {
        /// Byte offset of the offending varint.
        offset: u64,
    },
    /// The stream ended in the middle of a record.
    UnexpectedEof {
        /// What the parser was trying to decode.
        what: &'static str,
    },
    /// A text-format line failed to parse.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            Self::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported format version {found} (this build reads <= {supported})"
                )
            }
            Self::Corrupt { offset, what } => {
                write!(f, "corrupt stream at byte {offset} while decoding {what}")
            }
            Self::VarintOverflow { offset } => {
                write!(f, "varint longer than 10 bytes at offset {offset}")
            }
            Self::UnexpectedEof { what } => write!(f, "unexpected end of stream decoding {what}"),
            Self::BadLine { line, reason } => write!(f, "line {line}: {reason}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Convenience alias for trace results.
pub type Result<T> = std::result::Result<T, TraceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceError::BadMagic {
            expected: *b"BPTR",
            found: *b"ELF\x7f",
        };
        assert!(e.to_string().contains("BPTR"));
        let e = TraceError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = TraceError::Corrupt {
            offset: 42,
            what: "record flags",
        };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn io_errors_convert() {
        let ioe = io::Error::other("boom");
        let e: TraceError = ioe.into();
        assert!(matches!(e, TraceError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
