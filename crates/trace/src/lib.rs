//! Branch-trace file formats for the prophet/critic reproduction.
//!
//! The paper's simulator executed Intel **LIT**s — proprietary processor
//! snapshots. This crate provides the open equivalents our simulator uses,
//! all *hand-parsed* binary and text formats (no serialization framework):
//!
//! * [`BtWriter`]/[`BtReader`] — the `.bt` binary branch-trace format:
//!   delta- and varint-compressed dynamic branch records, streamable.
//! * [`write_text`]/[`read_text`] — a line-oriented text format for
//!   debugging and interchange.
//! * [`WireReader`]/[`WireWriter`] — the underlying wire primitives
//!   (LEB128 varints, zigzag signed encoding, magic/version headers),
//!   shared with the program-snapshot format in the `workloads` crate.
//! * [`TraceStats`] — workload characterisation (taken rate, uops per
//!   conditional branch, static branch count).
//!
//! Note that a *correct-path* branch trace is, by design, insufficient to
//! evaluate a prophet/critic hybrid (paper §6): the critic's future bits
//! must be produced by actually fetching down wrong paths. Traces here feed
//! conventional-predictor experiments and serve as the interchange format;
//! the execution-driven simulator (the `sim` crate) runs from program
//! snapshots instead.
//!
//! # Example
//!
//! ```
//! use bptrace::{BranchRecord, BtReader, BtWriter, TraceStats};
//!
//! let mut buf = Vec::new();
//! let mut w = BtWriter::new(&mut buf, "loop")?;
//! for i in 0..10 {
//!     w.write(&BranchRecord::conditional(0x1000, 0x0ff0, i % 10 != 9, 13))?;
//! }
//! w.finish()?;
//!
//! let mut r = BtReader::new(buf.as_slice())?;
//! let records = r.read_all()?;
//! let stats = TraceStats::from_records(&records);
//! assert_eq!(stats.conditionals, 10);
//! # Ok::<(), bptrace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod error;
mod record;
mod stats;
mod text;
pub mod wire;

pub use binary::{BtReader, BtWriter, BT_MAGIC, BT_VERSION};
pub use error::{Result, TraceError};
pub use record::{BranchKind, BranchRecord};
pub use stats::TraceStats;
pub use text::{read_text, write_text};
pub use wire::{WireReader, WireWriter};
