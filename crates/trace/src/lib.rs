//! Branch-trace file formats for the prophet/critic reproduction.
//!
//! The paper's simulator executed Intel **LIT**s — proprietary processor
//! snapshots. This crate provides the open equivalents our simulator uses,
//! all *hand-parsed* binary and text formats (no serialization framework):
//!
//! * [`BtWriter`]/[`BtReader`] — the `.bt` binary branch-trace format:
//!   delta- and varint-compressed dynamic branch records, streamable.
//!   [`BtReader`] negotiates both container versions and is the scalar
//!   reference decoder.
//! * [`BtBlockWriter`]/[`BtBlockReader`] — the block-compressed v2 layout:
//!   framed, checksummed blocks of ~4K branches with a per-block static
//!   dictionary, decoded whole-block into [`DecodedBlock`] column buffers
//!   for the batched replay engine. [`salvage`] recovers the intact blocks
//!   of a damaged v2 trace.
//! * [`write_text`]/[`read_text`] — a line-oriented text format for
//!   debugging and interchange.
//! * [`WireReader`]/[`WireWriter`] — the underlying wire primitives
//!   (LEB128 varints, zigzag signed encoding, magic/version headers),
//!   shared with the program-snapshot format in the `workloads` crate.
//! * [`TraceStats`] — workload characterisation (taken rate, uops per
//!   conditional branch, static branch count).
//! * [`BranchProfile`]/[`StaticBranchStats`] — streaming per-static-branch
//!   taken-rate/bias summaries, used by the replay tooling to flag
//!   hard-to-predict (H2P) branches.
//!
//! # The trace corpus and the trace-vs-snapshot evaluation split
//!
//! The `replay` crate builds a durable on-disk **corpus** from these
//! formats: a directory holding one `<benchmark>.bt` branch trace and one
//! `<benchmark>.pcl` program snapshot per benchmark, indexed by a
//! hand-parsed `corpus.manifest` text file. Each manifest line records the
//! benchmark name, execution seed, uop budget, record count, per-file byte
//! length and FNV-1a checksum, and the [`TraceStats`] summary, so a corpus
//! is self-describing and verifiable without re-reading the traces.
//!
//! The corpus deliberately carries **both** artifacts because of the
//! paper's §6 methodology requirement: a *correct-path* branch trace is,
//! by design, insufficient to evaluate a prophet/critic hybrid — the
//! critic's future bits must be produced by actually fetching down wrong
//! paths, and generating them from a correct-path trace would hand the
//! critic oracle information. Evaluation therefore splits by predictor
//! class:
//!
//! * **conventional predictors** replay the `.bt` trace stream directly
//!   (the standard CBP-style trace-driven methodology);
//! * **prophet/critic hybrids** are re-executed from the `.pcl` snapshot
//!   by the execution-driven simulator (the `sim` crate), which walks
//!   real wrong paths.
//!
//! The two paths are cross-checked: the snapshot's correct-path walk must
//! reproduce the recorded trace record-for-record, which corpus
//! verification asserts.
//!
//! # Example
//!
//! ```
//! use bptrace::{BranchRecord, BtReader, BtWriter, TraceStats};
//!
//! let mut buf = Vec::new();
//! let mut w = BtWriter::new(&mut buf, "loop")?;
//! for i in 0..10 {
//!     w.write(&BranchRecord::conditional(0x1000, 0x0ff0, i % 10 != 9, 13))?;
//! }
//! w.finish()?;
//!
//! let mut r = BtReader::new(buf.as_slice())?;
//! let records = r.read_all()?;
//! let stats = TraceStats::from_records(&records);
//! assert_eq!(stats.conditionals, 10);
//! # Ok::<(), bptrace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod block;
mod error;
mod record;
mod stats;
mod text;
pub mod wire;

pub use binary::{sniff_version, BtReader, BtWriter, BT_MAGIC, BT_VERSION, BT_VERSION_V1};
pub use block::{
    salvage, BtBlockReader, BtBlockWriter, DecodedBlock, SalvageReport, BLOCK_RECORDS,
    BT_BLOCK_MAGIC,
};
pub use error::{Result, TraceError};
pub use record::{BranchKind, BranchRecord};
pub use stats::{BranchProfile, StaticBranchStats, TraceStats, H2P_MAX_BIAS, H2P_MIN_OCCURRENCES};
pub use text::{read_text, write_text};
pub use wire::{WireReader, WireWriter};
