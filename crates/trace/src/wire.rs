//! Low-level wire primitives: LEB128 varints, zigzag signed encoding, and
//! counted byte readers/writers.
//!
//! These are the building blocks of every binary format in the workspace —
//! the branch-trace format here and the program-snapshot (LIT-analog) format
//! in the `workloads` crate. All parsing is manual, byte by byte; no
//! serialization framework is involved (the reproduction hint calls for
//! hand-parsed trace formats).

use std::io::{Read, Write};

use crate::error::{Result, TraceError};

/// Maximum encoded length of a 64-bit LEB128 varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Maps a signed value onto an unsigned one with small absolute values
/// staying small (zigzag encoding).
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A byte-counting writer of wire primitives.
#[derive(Debug)]
pub struct WireWriter<W> {
    out: W,
    written: u64,
}

impl<W: Write> WireWriter<W> {
    /// Wraps a writer. A `&mut W` also works, since `Write` is implemented
    /// for mutable references.
    pub fn new(out: W) -> Self {
        Self { out, written: 0 }
    }

    /// Bytes written so far.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    /// Writes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> Result<()> {
        self.out.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, v: u8) -> Result<()> {
        self.write_bytes(&[v])
    }

    /// Writes a little-endian u16.
    pub fn write_u16(&mut self, v: u16) -> Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a little-endian u32.
    pub fn write_u32(&mut self, v: u32) -> Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, v: u64) -> Result<()> {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Writes an unsigned LEB128 varint.
    pub fn write_varint(&mut self, mut v: u64) -> Result<()> {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                return self.write_u8(byte);
            }
            self.write_u8(byte | 0x80)?;
        }
    }

    /// Writes a zigzag-encoded signed varint.
    pub fn write_signed(&mut self, v: i64) -> Result<()> {
        self.write_varint(zigzag(v))
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) -> Result<()> {
        self.write_varint(s.len() as u64)?;
        self.write_bytes(s.as_bytes())
    }

    /// Flushes the underlying writer.
    pub fn flush(&mut self) -> Result<()> {
        self.out.flush()?;
        Ok(())
    }
}

/// A byte-counting reader of wire primitives.
#[derive(Debug)]
pub struct WireReader<R> {
    input: R,
    consumed: u64,
}

impl<R: Read> WireReader<R> {
    /// Wraps a reader. A `&mut R` also works.
    pub fn new(input: R) -> Self {
        Self { input, consumed: 0 }
    }

    /// Bytes consumed so far — used in error offsets.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.consumed
    }

    /// Unwraps the inner reader.
    pub fn into_inner(self) -> R {
        self.input
    }

    /// Reads exactly `buf.len()` bytes.
    ///
    /// # Errors
    ///
    /// [`TraceError::UnexpectedEof`] if the stream ends first.
    pub fn read_exact(&mut self, buf: &mut [u8], what: &'static str) -> Result<()> {
        match self.input.read_exact(buf) {
            Ok(()) => {
                self.consumed += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                Err(TraceError::UnexpectedEof { what })
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Reads one byte, or `None` at a clean end of stream.
    ///
    /// “Clean” means the EOF falls on a record boundary; callers use this to
    /// detect stream ends without a length prefix.
    pub fn read_u8_or_eof(&mut self) -> Result<Option<u8>> {
        let mut buf = [0u8; 1];
        let mut read = 0;
        while read == 0 {
            match self.input.read(&mut buf) {
                Ok(0) => return Ok(None),
                Ok(n) => read = n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        self.consumed += 1;
        Ok(Some(buf[0]))
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, what: &'static str) -> Result<u8> {
        let mut buf = [0u8; 1];
        self.read_exact(&mut buf, what)?;
        Ok(buf[0])
    }

    /// Reads a little-endian u16.
    pub fn read_u16(&mut self, what: &'static str) -> Result<u16> {
        let mut buf = [0u8; 2];
        self.read_exact(&mut buf, what)?;
        Ok(u16::from_le_bytes(buf))
    }

    /// Reads a little-endian u32.
    pub fn read_u32(&mut self, what: &'static str) -> Result<u32> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf, what)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&mut self, what: &'static str) -> Result<u64> {
        let mut buf = [0u8; 8];
        self.read_exact(&mut buf, what)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads an unsigned LEB128 varint.
    ///
    /// # Errors
    ///
    /// [`TraceError::VarintOverflow`] if the encoding exceeds 10 bytes;
    /// [`TraceError::UnexpectedEof`] if the stream ends mid-varint.
    pub fn read_varint(&mut self, what: &'static str) -> Result<u64> {
        let start = self.consumed;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8(what)?;
            if shift == 63 && byte > 1 {
                return Err(TraceError::VarintOverflow { offset: start });
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift >= 64 {
                return Err(TraceError::VarintOverflow { offset: start });
            }
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn read_signed(&mut self, what: &'static str) -> Result<i64> {
        Ok(unzigzag(self.read_varint(what)?))
    }

    /// Reads a length-prefixed UTF-8 string (max 1 MiB).
    pub fn read_str(&mut self, what: &'static str) -> Result<String> {
        let start = self.consumed;
        let len = self.read_varint(what)?;
        if len > 1 << 20 {
            return Err(TraceError::Corrupt {
                offset: start,
                what,
            });
        }
        let mut buf = vec![0u8; len as usize];
        self.read_exact(&mut buf, what)?;
        String::from_utf8(buf).map_err(|_| TraceError::Corrupt {
            offset: start,
            what,
        })
    }
}

/// Checks a 4-byte magic and a version header.
///
/// # Errors
///
/// [`TraceError::BadMagic`] or [`TraceError::UnsupportedVersion`].
pub fn read_header<R: Read>(
    r: &mut WireReader<R>,
    magic: [u8; 4],
    supported_version: u16,
) -> Result<u16> {
    let mut found = [0u8; 4];
    r.read_exact(&mut found, "magic")?;
    if found != magic {
        return Err(TraceError::BadMagic {
            expected: magic,
            found,
        });
    }
    let version = r.read_u16("version")?;
    if version == 0 || version > supported_version {
        return Err(TraceError::UnsupportedVersion {
            found: version,
            supported: supported_version,
        });
    }
    Ok(version)
}

/// Writes a 4-byte magic and a version header.
pub fn write_header<W: Write>(w: &mut WireWriter<W>, magic: [u8; 4], version: u16) -> Result<()> {
    w.write_bytes(&magic)?;
    w.write_u16(version)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes stay small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_round_trips() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        let mut buf = Vec::new();
        {
            let mut w = WireWriter::new(&mut buf);
            for v in values {
                w.write_varint(v).unwrap();
            }
        }
        let mut r = WireReader::new(buf.as_slice());
        for v in values {
            assert_eq!(r.read_varint("test").unwrap(), v);
        }
        assert!(r.read_u8_or_eof().unwrap().is_none());
    }

    #[test]
    fn varint_single_byte_for_small_values() {
        let mut buf = Vec::new();
        WireWriter::new(&mut buf).write_varint(127).unwrap();
        assert_eq!(buf.len(), 1);
        buf.clear();
        WireWriter::new(&mut buf).write_varint(128).unwrap();
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn varint_overflow_detected() {
        let bad = [0xffu8; 11];
        let mut r = WireReader::new(bad.as_slice());
        assert!(matches!(
            r.read_varint("test"),
            Err(TraceError::VarintOverflow { .. })
        ));
    }

    #[test]
    fn eof_mid_varint_is_an_error() {
        let bad = [0x80u8];
        let mut r = WireReader::new(bad.as_slice());
        assert!(matches!(
            r.read_varint("test"),
            Err(TraceError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn signed_round_trips() {
        let mut buf = Vec::new();
        {
            let mut w = WireWriter::new(&mut buf);
            for v in [-5i64, 0, 5, i64::MIN, i64::MAX] {
                w.write_signed(v).unwrap();
            }
        }
        let mut r = WireReader::new(buf.as_slice());
        for v in [-5i64, 0, 5, i64::MIN, i64::MAX] {
            assert_eq!(r.read_signed("test").unwrap(), v);
        }
    }

    #[test]
    fn strings_round_trip() {
        let mut buf = Vec::new();
        WireWriter::new(&mut buf).write_str("hello, trace").unwrap();
        let mut r = WireReader::new(buf.as_slice());
        assert_eq!(r.read_str("name").unwrap(), "hello, trace");
    }

    #[test]
    fn header_round_trips_and_rejects() {
        let mut buf = Vec::new();
        write_header(&mut WireWriter::new(&mut buf), *b"BPTR", 1).unwrap();
        let mut r = WireReader::new(buf.as_slice());
        assert_eq!(read_header(&mut r, *b"BPTR", 1).unwrap(), 1);

        let mut r = WireReader::new(buf.as_slice());
        assert!(matches!(
            read_header(&mut r, *b"PCLS", 1),
            Err(TraceError::BadMagic { .. })
        ));

        let mut buf2 = Vec::new();
        write_header(&mut WireWriter::new(&mut buf2), *b"BPTR", 7).unwrap();
        let mut r = WireReader::new(buf2.as_slice());
        assert!(matches!(
            read_header(&mut r, *b"BPTR", 1),
            Err(TraceError::UnsupportedVersion { found: 7, .. })
        ));
    }

    #[test]
    fn fixed_width_integers_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = WireWriter::new(&mut buf);
            w.write_u8(0xab).unwrap();
            w.write_u16(0xbeef).unwrap();
            w.write_u32(0xdead_beef).unwrap();
            w.write_u64(0x0123_4567_89ab_cdef).unwrap();
            assert_eq!(w.position(), 15);
        }
        let mut r = WireReader::new(buf.as_slice());
        assert_eq!(r.read_u8("a").unwrap(), 0xab);
        assert_eq!(r.read_u16("b").unwrap(), 0xbeef);
        assert_eq!(r.read_u32("c").unwrap(), 0xdead_beef);
        assert_eq!(r.read_u64("d").unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.position(), 15);
    }
}
