//! Summary statistics over a branch trace.

use crate::record::{BranchKind, BranchRecord};

/// Aggregate characteristics of a trace, in the vocabulary the paper uses to
/// describe its workloads (e.g. “conditional branches occur every 13 uops”).
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct TraceStats {
    /// Total records.
    pub branches: u64,
    /// Conditional branch records.
    pub conditionals: u64,
    /// Taken conditional branches.
    pub taken_conditionals: u64,
    /// Total micro-ops covered by the trace.
    pub uops: u64,
    /// Distinct branch PCs (static branches).
    pub static_branches: usize,
}

impl TraceStats {
    /// Computes statistics over `records`.
    #[must_use]
    pub fn from_records(records: &[BranchRecord]) -> Self {
        let mut stats = TraceStats::default();
        let mut pcs = std::collections::HashSet::new();
        for r in records {
            stats.branches += 1;
            stats.uops += u64::from(r.uops_since_prev);
            if r.kind == BranchKind::Conditional {
                stats.conditionals += 1;
                stats.taken_conditionals += u64::from(r.taken);
            }
            pcs.insert(r.pc);
        }
        stats.static_branches = pcs.len();
        stats
    }

    /// Fraction of conditional branches that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.conditionals == 0 {
            return 0.0;
        }
        self.taken_conditionals as f64 / self.conditionals as f64
    }

    /// Average micro-ops between conditional branches (the paper's “every
    /// 13 uops” figure for IA32).
    #[must_use]
    pub fn uops_per_conditional(&self) -> f64 {
        if self.conditionals == 0 {
            return 0.0;
        }
        self.uops as f64 / self.conditionals as f64
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} branches ({} cond, {:.1}% taken), {} uops ({:.1} uops/cond), {} static",
            self.branches,
            self.conditionals,
            self.taken_rate() * 100.0,
            self.uops,
            self.uops_per_conditional(),
            self.static_branches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let records = vec![
            BranchRecord::conditional(0x10, 0x20, true, 10),
            BranchRecord::conditional(0x30, 0x40, false, 10),
            BranchRecord::conditional(0x10, 0x20, true, 6),
            BranchRecord {
                pc: 0x50,
                target: 0x60,
                kind: BranchKind::Jump,
                taken: true,
                uops_since_prev: 4,
            },
        ];
        let s = TraceStats::from_records(&records);
        assert_eq!(s.branches, 4);
        assert_eq!(s.conditionals, 3);
        assert_eq!(s.taken_conditionals, 2);
        assert_eq!(s.uops, 30);
        assert_eq!(s.static_branches, 3);
        assert!((s.taken_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.uops_per_conditional() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::from_records(&[]);
        assert_eq!(s.branches, 0);
        assert_eq!(s.taken_rate(), 0.0);
        assert_eq!(s.uops_per_conditional(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let records = vec![BranchRecord::conditional(0x10, 0x20, true, 13)];
        let text = TraceStats::from_records(&records).to_string();
        assert!(text.contains("1 branches"));
        assert!(text.contains("13.0 uops/cond"));
    }
}
