//! Summary statistics over a branch trace.
//!
//! Two granularities:
//!
//! * [`TraceStats`] — whole-trace aggregates (taken rate, uops per
//!   conditional, static branch count), in the paper's vocabulary.
//! * [`BranchProfile`] — a *streaming* per-static-branch accumulator:
//!   occurrence and taken counts per PC, from which the replay tooling
//!   derives each branch's bias and flags hard-to-predict (H2P)
//!   candidates — the frequently-executed, weakly-biased branches that
//!   dominate mispredict budgets (the population the Bullseye H2P study
//!   targets).

use std::collections::HashMap;

use crate::record::{BranchKind, BranchRecord};

/// Aggregate characteristics of a trace, in the vocabulary the paper uses to
/// describe its workloads (e.g. “conditional branches occur every 13 uops”).
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct TraceStats {
    /// Total records.
    pub branches: u64,
    /// Conditional branch records.
    pub conditionals: u64,
    /// Taken conditional branches.
    pub taken_conditionals: u64,
    /// Total micro-ops covered by the trace.
    pub uops: u64,
    /// Distinct branch PCs (static branches).
    pub static_branches: usize,
}

impl TraceStats {
    /// Computes statistics over `records`.
    #[must_use]
    pub fn from_records(records: &[BranchRecord]) -> Self {
        let mut profile = BranchProfile::new();
        for r in records {
            profile.observe(r);
        }
        profile.stats()
    }

    /// Fraction of conditional branches that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.conditionals == 0 {
            return 0.0;
        }
        self.taken_conditionals as f64 / self.conditionals as f64
    }

    /// Average micro-ops between conditional branches (the paper's “every
    /// 13 uops” figure for IA32).
    #[must_use]
    pub fn uops_per_conditional(&self) -> f64 {
        if self.conditionals == 0 {
            return 0.0;
        }
        self.uops as f64 / self.conditionals as f64
    }
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} branches ({} cond, {:.1}% taken), {} uops ({:.1} uops/cond), {} static",
            self.branches,
            self.conditionals,
            self.taken_rate() * 100.0,
            self.uops,
            self.uops_per_conditional(),
            self.static_branches
        )
    }
}

/// Default minimum measured occurrences for a branch to qualify as a
/// hard-to-predict (H2P) candidate. Shared by every H2P report in the
/// workspace (trace inspection, corpus replay, the tournament) so they
/// all flag the same branch population.
pub const H2P_MIN_OCCURRENCES: u64 = 32;

/// Default bias ceiling (majority-direction frequency) at or below which
/// a branch qualifies as an H2P candidate. See [`H2P_MIN_OCCURRENCES`].
pub const H2P_MAX_BIAS: f64 = 0.75;

/// Per-static-branch dynamic counts: how often one PC executed and how
/// often it went taken.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StaticBranchStats {
    /// The branch instruction's address.
    pub pc: u64,
    /// Dynamic occurrences of the branch in the trace.
    pub occurrences: u64,
    /// How many of those occurrences were taken.
    pub taken: u64,
    /// Whether the branch is conditional (only conditionals consume a
    /// direction prediction; unconditional kinds are always taken).
    pub conditional: bool,
}

impl StaticBranchStats {
    /// Fraction of occurrences that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.occurrences == 0 {
            return 0.0;
        }
        self.taken as f64 / self.occurrences as f64
    }

    /// Direction bias in `[0.5, 1.0]`: the frequency of the branch's
    /// *majority* direction. `1.0` is a perfectly biased (trivially
    /// predictable by a bimodal counter) branch; `0.5` flips like a coin.
    #[must_use]
    pub fn bias(&self) -> f64 {
        let r = self.taken_rate();
        r.max(1.0 - r)
    }

    /// Whether the branch qualifies as a hard-to-predict (H2P) candidate:
    /// a conditional executed at least `min_occurrences` times whose bias
    /// stays at or below `max_bias`. Bias is only a proxy — a perfectly
    /// periodic branch is low-bias yet easy for a history predictor — so
    /// replay reports pair this flag with measured mispredicts.
    #[must_use]
    pub fn is_h2p_candidate(&self, min_occurrences: u64, max_bias: f64) -> bool {
        self.conditional && self.occurrences >= min_occurrences && self.bias() <= max_bias
    }
}

/// A streaming per-static-branch profile of a branch trace.
///
/// Feed it records one at a time with [`observe`](Self::observe) — no
/// materialized trace needed — then read the whole-trace aggregate with
/// [`stats`](Self::stats) and the per-branch summary with
/// [`branches`](Self::branches) / [`h2p_candidates`](Self::h2p_candidates).
///
/// # Examples
///
/// ```
/// use bptrace::{BranchProfile, BranchRecord};
///
/// let mut profile = BranchProfile::new();
/// for i in 0..100 {
///     profile.observe(&BranchRecord::conditional(0x40, 0x80, i % 2 == 0, 3));
///     profile.observe(&BranchRecord::conditional(0x90, 0x20, true, 4));
/// }
/// let branches = profile.branches();
/// assert_eq!(branches.len(), 2);
/// assert!(branches[0].bias() < 0.51); // 0x40 alternates
/// assert_eq!(branches[1].bias(), 1.0); // 0x90 always taken
/// assert_eq!(profile.h2p_candidates(50, 0.7), vec![branches[0]]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BranchProfile {
    totals: TraceStats,
    per_pc: HashMap<u64, StaticBranchStats>,
}

impl BranchProfile {
    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one record.
    pub fn observe(&mut self, rec: &BranchRecord) {
        self.totals.branches += 1;
        self.totals.uops += u64::from(rec.uops_since_prev);
        if rec.kind == BranchKind::Conditional {
            self.totals.conditionals += 1;
            self.totals.taken_conditionals += u64::from(rec.taken);
        }
        let entry = self.per_pc.entry(rec.pc).or_insert(StaticBranchStats {
            pc: rec.pc,
            occurrences: 0,
            taken: 0,
            conditional: rec.kind == BranchKind::Conditional,
        });
        entry.occurrences += 1;
        entry.taken += u64::from(rec.taken);
    }

    /// The whole-trace aggregate, including the static branch count.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            static_branches: self.per_pc.len(),
            ..self.totals
        }
    }

    /// Records observed so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.totals.branches
    }

    /// Every static branch, sorted by PC (deterministic output order).
    #[must_use]
    pub fn branches(&self) -> Vec<StaticBranchStats> {
        let mut out: Vec<StaticBranchStats> = self.per_pc.values().copied().collect();
        out.sort_unstable_by_key(|b| b.pc);
        out
    }

    /// The hard-to-predict candidates (see
    /// [`StaticBranchStats::is_h2p_candidate`]), hardest first: ascending
    /// bias, then descending occurrence count, then PC — a deterministic
    /// ranking regardless of hash-map iteration order.
    #[must_use]
    pub fn h2p_candidates(&self, min_occurrences: u64, max_bias: f64) -> Vec<StaticBranchStats> {
        let mut out: Vec<StaticBranchStats> = self
            .per_pc
            .values()
            .filter(|b| b.is_h2p_candidate(min_occurrences, max_bias))
            .copied()
            .collect();
        out.sort_unstable_by(|a, b| {
            a.bias()
                .partial_cmp(&b.bias())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.occurrences.cmp(&a.occurrences))
                .then(a.pc.cmp(&b.pc))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_rates() {
        let records = vec![
            BranchRecord::conditional(0x10, 0x20, true, 10),
            BranchRecord::conditional(0x30, 0x40, false, 10),
            BranchRecord::conditional(0x10, 0x20, true, 6),
            BranchRecord {
                pc: 0x50,
                target: 0x60,
                kind: BranchKind::Jump,
                taken: true,
                uops_since_prev: 4,
            },
        ];
        let s = TraceStats::from_records(&records);
        assert_eq!(s.branches, 4);
        assert_eq!(s.conditionals, 3);
        assert_eq!(s.taken_conditionals, 2);
        assert_eq!(s.uops, 30);
        assert_eq!(s.static_branches, 3);
        assert!((s.taken_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.uops_per_conditional() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::from_records(&[]);
        assert_eq!(s.branches, 0);
        assert_eq!(s.taken_rate(), 0.0);
        assert_eq!(s.uops_per_conditional(), 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let records = vec![BranchRecord::conditional(0x10, 0x20, true, 13)];
        let text = TraceStats::from_records(&records).to_string();
        assert!(text.contains("1 branches"));
        assert!(text.contains("13.0 uops/cond"));
    }

    #[test]
    fn profile_matches_batch_stats() {
        let records = vec![
            BranchRecord::conditional(0x10, 0x20, true, 10),
            BranchRecord::conditional(0x30, 0x40, false, 10),
            BranchRecord::conditional(0x10, 0x20, false, 6),
            BranchRecord {
                pc: 0x50,
                target: 0x60,
                kind: BranchKind::Jump,
                taken: true,
                uops_since_prev: 4,
            },
        ];
        let mut profile = BranchProfile::new();
        for r in &records {
            profile.observe(r);
        }
        assert_eq!(profile.stats(), TraceStats::from_records(&records));
        assert_eq!(profile.records(), 4);

        let branches = profile.branches();
        assert_eq!(branches.len(), 3);
        // Sorted by PC.
        assert_eq!(branches[0].pc, 0x10);
        assert_eq!(branches[0].occurrences, 2);
        assert_eq!(branches[0].taken, 1);
        assert!(branches[0].conditional);
        assert!(!branches[2].conditional);
        assert!((branches[0].taken_rate() - 0.5).abs() < 1e-12);
        assert!((branches[0].bias() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn h2p_ranking_is_bias_then_frequency() {
        let mut profile = BranchProfile::new();
        // 0x100: 50/50 over 40 execs; 0x200: 60/40 over 400 execs;
        // 0x300: 95/5 (well biased); 0x400: 50/50 but only 4 execs.
        for i in 0..40 {
            profile.observe(&BranchRecord::conditional(0x100, 0x10, i % 2 == 0, 1));
        }
        for i in 0..400 {
            profile.observe(&BranchRecord::conditional(0x200, 0x10, i % 5 < 3, 1));
        }
        for i in 0..100 {
            profile.observe(&BranchRecord::conditional(0x300, 0x10, i != 0, 1));
        }
        for i in 0..4 {
            profile.observe(&BranchRecord::conditional(0x400, 0x10, i % 2 == 0, 1));
        }
        let h2p = profile.h2p_candidates(10, 0.75);
        let pcs: Vec<u64> = h2p.iter().map(|b| b.pc).collect();
        assert_eq!(pcs, vec![0x100, 0x200], "hardest (least biased) first");
        // The biased and the rare branches are not flagged.
        assert!(profile.branches().iter().any(|b| b.pc == 0x300));
        assert!(h2p.iter().all(|b| b.pc != 0x300 && b.pc != 0x400));
    }

    #[test]
    fn unconditional_branches_are_not_h2p() {
        let mut profile = BranchProfile::new();
        for _ in 0..100 {
            profile.observe(&BranchRecord {
                pc: 0x10,
                target: 0x60,
                kind: BranchKind::Return,
                taken: true,
                uops_since_prev: 1,
            });
        }
        assert!(profile.h2p_candidates(1, 1.0).is_empty());
    }
}
