//! The `.bt` binary branch-trace format: v1 record streams and version
//! negotiation over both versions.
//!
//! v1 layout:
//!
//! ```text
//! magic    "BPTR"                      4 bytes
//! version  u16 LE                      1
//! name     varint length + UTF-8       benchmark name
//! records  until EOF:
//!   flags      u8
//!     bit 0    taken
//!     bits 1-2 kind code (cond/jump/call/ret)
//!     bit 3    target delta present (else target == fall-through)
//!     bits 4-7 uops_since_prev if < 15, else 0xF and a varint follows
//!   pc_delta   signed varint, from previous record's pc (first: from 0)
//!   tgt_delta  signed varint from this pc, if flag bit 3
//!   uops       varint, if flags bits 4-7 == 0xF
//! ```
//!
//! Deltas keep hot loops at 2–3 bytes per record. The parser is fully
//! manual and reports typed, offset-carrying errors.
//!
//! v2 is the block-compressed layout in [`crate::block`]. [`BtReader`]
//! negotiates the version from the header and decodes either one through
//! the same `next_record` interface: it is the bit-identical scalar
//! reference over both versions. [`BtWriter`] always emits v1 (the
//! migration baseline); [`BtBlockWriter`](crate::BtBlockWriter) emits v2.

use std::io::{Read, Write};

use crate::block::{BtBlockReader, DecodedBlock};
use crate::error::{Result, TraceError};
use crate::record::{BranchKind, BranchRecord};
use crate::wire::{read_header, write_header, WireReader, WireWriter};

/// Magic bytes of the `.bt` format.
pub const BT_MAGIC: [u8; 4] = *b"BPTR";

/// Newest `.bt` version this build reads (block-compressed).
pub const BT_VERSION: u16 = 2;

/// The legacy record-stream version [`BtWriter`] emits.
pub const BT_VERSION_V1: u16 = 1;

const UOPS_INLINE_MAX: u32 = 14;

/// Peeks the `.bt` container version from a byte slice, without
/// constructing a reader: `None` if the slice is too short or carries a
/// foreign magic.
#[must_use]
pub fn sniff_version(bytes: &[u8]) -> Option<u16> {
    if bytes.len() < 6 || bytes[..4] != BT_MAGIC {
        return None;
    }
    Some(u16::from_le_bytes([bytes[4], bytes[5]]))
}

/// Streaming writer of legacy v1 (record-stream) `.bt` branch traces.
///
/// New recordings should use [`BtBlockWriter`](crate::BtBlockWriter) (v2);
/// this writer remains as the `traces migrate` baseline and for tests that
/// pin v1 compatibility.
///
/// # Examples
///
/// ```
/// use bptrace::{BranchRecord, BtReader, BtWriter};
///
/// let mut buf = Vec::new();
/// let mut w = BtWriter::new(&mut buf, "demo")?;
/// w.write(&BranchRecord::conditional(0x1000, 0x1040, true, 7))?;
/// w.finish()?;
///
/// let mut r = BtReader::new(buf.as_slice())?;
/// assert_eq!(r.name(), "demo");
/// let rec = r.next_record()?.unwrap();
/// assert_eq!(rec.pc, 0x1000);
/// assert!(rec.taken);
/// # Ok::<(), bptrace::TraceError>(())
/// ```
#[derive(Debug)]
pub struct BtWriter<W: Write> {
    wire: WireWriter<W>,
    prev_pc: u64,
    records: u64,
}

impl<W: Write> BtWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn new(out: W, name: &str) -> Result<Self> {
        let mut wire = WireWriter::new(out);
        write_header(&mut wire, BT_MAGIC, BT_VERSION_V1)?;
        wire.write_str(name)?;
        Ok(Self {
            wire,
            prev_pc: 0,
            records: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, rec: &BranchRecord) -> Result<()> {
        let has_target = rec.target != rec.fall_through();
        let uops_inline = rec.uops_since_prev.min(UOPS_INLINE_MAX + 1); // 15 = escape
        let flags = u8::from(rec.taken)
            | (rec.kind.code() << 1)
            | (u8::from(has_target) << 3)
            | ((uops_inline as u8) << 4);
        self.wire.write_u8(flags)?;
        self.wire
            .write_signed(rec.pc.wrapping_sub(self.prev_pc) as i64)?;
        if has_target {
            self.wire
                .write_signed(rec.target.wrapping_sub(rec.pc) as i64)?;
        }
        if uops_inline > UOPS_INLINE_MAX {
            self.wire.write_varint(u64::from(rec.uops_since_prev))?;
        }
        self.prev_pc = rec.pc;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the final flush.
    pub fn finish(mut self) -> Result<W> {
        self.wire.flush()?;
        Ok(self.wire.into_inner())
    }
}

/// Version-negotiating streaming reader of `.bt` branch traces.
///
/// Reads both the v1 record stream and the block-compressed v2 format
/// through the same record-at-a-time interface, which makes it the
/// bit-identical scalar reference over both versions: migration and the
/// chunked replay path are validated against what this reader yields.
///
/// See [`BtWriter`] for the v1 format and a round-trip example.
#[derive(Debug)]
pub struct BtReader<R: Read> {
    name: String,
    records: u64,
    version: u16,
    body: Body<R>,
}

/// The per-version decoding state behind [`BtReader`].
#[derive(Debug)]
enum Body<R: Read> {
    /// v1: a bare delta-encoded record stream.
    V1 { wire: WireReader<R>, prev_pc: u64 },
    /// v2: framed blocks, decoded one block at a time and cursored.
    V2 {
        blocks: BtBlockReader<R>,
        block: DecodedBlock,
        cursor: usize,
    },
}

impl<R: Read> BtReader<R> {
    /// Opens a trace, validating magic and negotiating the version.
    ///
    /// # Errors
    ///
    /// [`TraceError::BadMagic`] / [`TraceError::UnsupportedVersion`] on a
    /// foreign or newer file, I/O errors otherwise.
    pub fn new(input: R) -> Result<Self> {
        let mut wire = WireReader::new(input);
        let version = read_header(&mut wire, BT_MAGIC, BT_VERSION)?;
        let name = wire.read_str("trace name")?;
        let body = if version == BT_VERSION_V1 {
            Body::V1 { wire, prev_pc: 0 }
        } else {
            Body::V2 {
                blocks: BtBlockReader::from_wire(wire, name.clone()),
                block: DecodedBlock::new(),
                cursor: 0,
            }
        };
        Ok(Self {
            name,
            records: 0,
            version,
            body,
        })
    }

    /// The benchmark name stored in the header.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records decoded so far.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The container version found in the header (1 or 2).
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Decodes the next record, or `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`], [`TraceError::UnexpectedEof`] or
    /// [`TraceError::VarintOverflow`] on malformed input.
    pub fn next_record(&mut self) -> Result<Option<BranchRecord>> {
        let rec = match &mut self.body {
            Body::V1 { wire, prev_pc } => match next_v1_record(wire, prev_pc)? {
                Some(rec) => rec,
                None => return Ok(None),
            },
            Body::V2 {
                blocks,
                block,
                cursor,
            } => {
                while *cursor >= block.len() {
                    if !blocks.next_block(block)? {
                        return Ok(None);
                    }
                    *cursor = 0;
                }
                let rec = block.record(*cursor);
                *cursor += 1;
                rec
            }
        };
        self.records += 1;
        Ok(Some(rec))
    }

    /// Drains the remaining records into a vector.
    ///
    /// # Errors
    ///
    /// As [`next_record`](Self::next_record).
    pub fn read_all(&mut self) -> Result<Vec<BranchRecord>> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Decodes one v1 record from the stream, or `None` at a clean EOF.
fn next_v1_record<R: Read>(
    wire: &mut WireReader<R>,
    prev_pc: &mut u64,
) -> Result<Option<BranchRecord>> {
    let offset = wire.position();
    let Some(flags) = wire.read_u8_or_eof()? else {
        return Ok(None);
    };
    let taken = flags & 1 != 0;
    let kind = BranchKind::from_code((flags >> 1) & 0b11).ok_or(TraceError::Corrupt {
        offset,
        what: "record kind",
    })?;
    let has_target = flags & (1 << 3) != 0;
    let uops_field = u32::from(flags >> 4);

    let pc_delta = wire.read_signed("pc delta")?;
    let pc = prev_pc.wrapping_add(pc_delta as u64);
    let target = if has_target {
        let tgt_delta = wire.read_signed("target delta")?;
        pc.wrapping_add(tgt_delta as u64)
    } else {
        pc + 4
    };
    let uops_since_prev = if uops_field > UOPS_INLINE_MAX {
        let v = wire.read_varint("uop count")?;
        u32::try_from(v).map_err(|_| TraceError::Corrupt {
            offset,
            what: "uop count",
        })?
    } else {
        uops_field
    };

    *prev_pc = pc;
    Ok(Some(BranchRecord {
        pc,
        target,
        kind,
        taken,
        uops_since_prev,
    }))
}

/// Iterator adapter: yields `Result<BranchRecord>` until EOF or error.
impl<R: Read> Iterator for BtReader<R> {
    type Item = Result<BranchRecord>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<BranchRecord> {
        vec![
            BranchRecord::conditional(0x40_1000, 0x40_1080, true, 12),
            BranchRecord::conditional(0x40_1080, 0x40_1000, false, 3),
            BranchRecord {
                pc: 0x40_1084,
                target: 0x40_2000,
                kind: BranchKind::Call,
                taken: true,
                uops_since_prev: 1,
            },
            BranchRecord {
                pc: 0x40_2040,
                target: 0x40_1088,
                kind: BranchKind::Return,
                taken: true,
                uops_since_prev: 200,
            },
            BranchRecord {
                pc: 0x40_1100,
                target: 0x40_0800,
                kind: BranchKind::Jump,
                taken: true,
                uops_since_prev: 15,
            },
        ]
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let records = sample_records();
        let mut buf = Vec::new();
        let mut w = BtWriter::new(&mut buf, "roundtrip").unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        assert_eq!(w.records(), records.len() as u64);
        w.finish().unwrap();

        let mut r = BtReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.name(), "roundtrip");
        let decoded = r.read_all().unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn iterator_interface_works() {
        let records = sample_records();
        let mut buf = Vec::new();
        let mut w = BtWriter::new(&mut buf, "iter").unwrap();
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let decoded: Result<Vec<_>> = BtReader::new(buf.as_slice()).unwrap().collect();
        assert_eq!(decoded.unwrap(), records);
    }

    #[test]
    fn hot_loop_records_are_compact() {
        // A tight loop: same branch, small uop counts. Expect <= 3 bytes per
        // record after the first.
        let mut buf = Vec::new();
        let mut w = BtWriter::new(&mut buf, "x").unwrap();
        for i in 0..100 {
            w.write(&BranchRecord::conditional(0x1000, 0x0f00, i % 9 != 0, 6))
                .unwrap();
        }
        let total = w.finish().unwrap().len();
        assert!(total < 9 + 4 + 100 * 4, "encoding too fat: {total} bytes");
    }

    #[test]
    fn truncated_stream_reports_eof() {
        let mut buf = Vec::new();
        let mut w = BtWriter::new(&mut buf, "t").unwrap();
        w.write(&BranchRecord::conditional(0x1000, 0x2000, true, 5))
            .unwrap();
        w.finish().unwrap();
        // Chop the last byte: the record becomes unreadable.
        buf.pop();
        let mut r = BtReader::new(buf.as_slice()).unwrap();
        assert!(matches!(
            r.next_record(),
            Err(TraceError::UnexpectedEof { .. }) | Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn foreign_file_rejected() {
        let garbage = b"GIF89a notatrace";
        assert!(matches!(
            BtReader::new(garbage.as_slice()),
            Err(TraceError::BadMagic { .. })
        ));
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        BtWriter::new(&mut buf, "empty").unwrap().finish().unwrap();
        let mut r = BtReader::new(buf.as_slice()).unwrap();
        assert!(r.next_record().unwrap().is_none());
        assert_eq!(r.records(), 0);
    }

    #[test]
    fn fall_through_targets_omit_delta() {
        // Not-taken record whose target equals fall-through costs no target
        // bytes.
        let mut with = Vec::new();
        let mut w = BtWriter::new(&mut with, "a").unwrap();
        w.write(&BranchRecord::conditional(0x1000, 0x1004, false, 1))
            .unwrap();
        let with = w.finish().unwrap().len();

        let mut without = Vec::new();
        let mut w = BtWriter::new(&mut without, "a").unwrap();
        w.write(&BranchRecord::conditional(0x1000, 0x9000, false, 1))
            .unwrap();
        let without = w.finish().unwrap().len();
        assert!(with < without);
    }
}
