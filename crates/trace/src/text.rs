//! A human-readable text trace format, one branch per line.
//!
//! ```text
//! # comment lines and blank lines are ignored
//! 0x401000 cond T 0x401080 12
//! 0x401080 cond N 0x401000 3
//! 0x401084 call T 0x402000 1
//! ```
//!
//! Fields: `pc kind direction target uops_since_prev`, whitespace separated.
//! Direction is `T`/`N`. Addresses accept `0x` hex or decimal.

use std::io::{BufRead, Write};

use crate::error::{Result, TraceError};
use crate::record::{BranchKind, BranchRecord};

/// Writes records in the text format.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_text<W: Write>(mut out: W, records: &[BranchRecord]) -> Result<()> {
    writeln!(out, "# pc kind dir target uops")?;
    for r in records {
        writeln!(
            out,
            "0x{:x} {} {} 0x{:x} {}",
            r.pc,
            r.kind,
            if r.taken { 'T' } else { 'N' },
            r.target,
            r.uops_since_prev
        )?;
    }
    Ok(())
}

fn parse_addr(tok: &str, line: usize) -> Result<u64> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| TraceError::BadLine {
        line,
        reason: format!("bad address `{tok}`"),
    })
}

/// Parses a full text trace.
///
/// # Errors
///
/// [`TraceError::BadLine`] with a 1-based line number on any malformed line.
pub fn read_text<R: BufRead>(input: R) -> Result<Vec<BranchRecord>> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut tok = trimmed.split_whitespace();
        let mut next = |what: &str| {
            tok.next().ok_or_else(|| TraceError::BadLine {
                line: lineno,
                reason: format!("missing field `{what}`"),
            })
        };
        let pc = parse_addr(next("pc")?, lineno)?;
        let kind_tok = next("kind")?;
        let kind: BranchKind = kind_tok.parse().map_err(|()| TraceError::BadLine {
            line: lineno,
            reason: format!("bad kind `{kind_tok}`"),
        })?;
        let dir_tok = next("dir")?;
        let taken = match dir_tok {
            "T" | "t" | "1" => true,
            "N" | "n" | "0" => false,
            other => {
                return Err(TraceError::BadLine {
                    line: lineno,
                    reason: format!("bad direction `{other}` (want T or N)"),
                })
            }
        };
        let target = parse_addr(next("target")?, lineno)?;
        let uops_tok = next("uops")?;
        let uops_since_prev: u32 = uops_tok.parse().map_err(|_| TraceError::BadLine {
            line: lineno,
            reason: format!("bad uop count `{uops_tok}`"),
        })?;
        if tok.next().is_some() {
            return Err(TraceError::BadLine {
                line: lineno,
                reason: "trailing fields".to_string(),
            });
        }
        out.push(BranchRecord {
            pc,
            target,
            kind,
            taken,
            uops_since_prev,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<BranchRecord> {
        vec![
            BranchRecord::conditional(0x40_1000, 0x40_1080, true, 12),
            BranchRecord::conditional(0x40_1080, 0x40_1000, false, 3),
            BranchRecord {
                pc: 0x40_1084,
                target: 0x40_2000,
                kind: BranchKind::Call,
                taken: true,
                uops_since_prev: 1,
            },
        ]
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_text(&mut buf, &samples()).unwrap();
        let parsed = read_text(buf.as_slice()).unwrap();
        assert_eq!(parsed, samples());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# header\n\n0x10 cond T 0x20 5\n   \n# tail\n";
        let parsed = read_text(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].pc, 0x10);
    }

    #[test]
    fn decimal_addresses_accepted() {
        let parsed = read_text("16 cond N 32 0\n".as_bytes()).unwrap();
        assert_eq!(parsed[0].pc, 16);
        assert_eq!(parsed[0].target, 32);
        assert!(!parsed[0].taken);
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let text = "0x10 cond T 0x20 5\n0x30 bogus T 0x40 1\n";
        match read_text(text.as_bytes()) {
            Err(TraceError::BadLine { line, reason }) => {
                assert_eq!(line, 2);
                assert!(reason.contains("bogus"));
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn missing_fields_detected() {
        assert!(matches!(
            read_text("0x10 cond T\n".as_bytes()),
            Err(TraceError::BadLine { line: 1, .. })
        ));
    }

    #[test]
    fn trailing_fields_detected() {
        assert!(matches!(
            read_text("0x10 cond T 0x20 5 extra\n".as_bytes()),
            Err(TraceError::BadLine { line: 1, .. })
        ));
    }

    #[test]
    fn bad_direction_detected() {
        assert!(matches!(
            read_text("0x10 cond X 0x20 5\n".as_bytes()),
            Err(TraceError::BadLine { line: 1, .. })
        ));
    }
}
