//! The dynamic branch record model.

/// The static class of a branch instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// A conditional direct branch — the only kind the predictor predicts.
    Conditional,
    /// An unconditional direct jump.
    Jump,
    /// A direct call.
    Call,
    /// A return.
    Return,
}

impl BranchKind {
    /// All kinds, in wire-format order.
    pub const ALL: [BranchKind; 4] = [
        BranchKind::Conditional,
        BranchKind::Jump,
        BranchKind::Call,
        BranchKind::Return,
    ];

    /// The 2-bit wire encoding.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::Jump => 1,
            BranchKind::Call => 2,
            BranchKind::Return => 3,
        }
    }

    /// Decodes the 2-bit wire encoding.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        BranchKind::ALL.get(code as usize).copied()
    }

    /// Whether this kind consumes a direction prediction.
    #[must_use]
    pub fn is_conditional(self) -> bool {
        self == BranchKind::Conditional
    }
}

impl std::fmt::Display for BranchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BranchKind::Conditional => "cond",
            BranchKind::Jump => "jump",
            BranchKind::Call => "call",
            BranchKind::Return => "ret",
        })
    }
}

impl std::str::FromStr for BranchKind {
    type Err = ();

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "cond" => Ok(BranchKind::Conditional),
            "jump" => Ok(BranchKind::Jump),
            "call" => Ok(BranchKind::Call),
            "ret" => Ok(BranchKind::Return),
            _ => Err(()),
        }
    }
}

/// One dynamic branch in a trace.
///
/// `uops_since_prev` counts the micro-ops between the previous branch
/// (exclusive) and this one (inclusive), which is how the paper's
/// misp/Kuops metric is rebuilt from a trace.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct BranchRecord {
    /// The branch instruction's address.
    pub pc: u64,
    /// The branch's (taken-path) target address.
    pub target: u64,
    /// The static class of the branch.
    pub kind: BranchKind,
    /// The resolved direction (always `true` for unconditional kinds).
    pub taken: bool,
    /// Micro-ops executed since the previous record, including this branch.
    pub uops_since_prev: u32,
}

impl BranchRecord {
    /// A conditional branch record.
    #[must_use]
    pub fn conditional(pc: u64, target: u64, taken: bool, uops_since_prev: u32) -> Self {
        Self {
            pc,
            target,
            kind: BranchKind::Conditional,
            taken,
            uops_since_prev,
        }
    }

    /// The fall-through address (the next sequential uop line).
    ///
    /// The synthetic ISA uses fixed 4-byte slots, matching the indexing
    /// granularity of the predictors.
    #[must_use]
    pub fn fall_through(&self) -> u64 {
        self.pc + 4
    }

    /// The address control flow actually proceeded to.
    #[must_use]
    pub fn next_pc(&self) -> u64 {
        if self.taken {
            self.target
        } else {
            self.fall_through()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for k in BranchKind::ALL {
            assert_eq!(BranchKind::from_code(k.code()), Some(k));
        }
        assert_eq!(BranchKind::from_code(7), None);
    }

    #[test]
    fn kind_strings_round_trip() {
        for k in BranchKind::ALL {
            assert_eq!(k.to_string().parse::<BranchKind>(), Ok(k));
        }
        assert!("bogus".parse::<BranchKind>().is_err());
    }

    #[test]
    fn only_conditionals_predict() {
        assert!(BranchKind::Conditional.is_conditional());
        assert!(!BranchKind::Jump.is_conditional());
        assert!(!BranchKind::Return.is_conditional());
    }

    #[test]
    fn next_pc_follows_direction() {
        let taken = BranchRecord::conditional(0x100, 0x200, true, 5);
        assert_eq!(taken.next_pc(), 0x200);
        let not_taken = BranchRecord::conditional(0x100, 0x200, false, 5);
        assert_eq!(not_taken.next_pc(), 0x104);
        assert_eq!(not_taken.fall_through(), 0x104);
    }
}
