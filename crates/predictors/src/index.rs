//! Index and tag hash functions.
//!
//! Every table-based predictor boils down to “hash (PC, history) into an
//! index”. This module centralizes the hash families used across the crate:
//!
//! * [`gshare_index`] — the classic XOR of PC bits with (folded) history.
//! * [`skew`] — a family of three decorrelated indexing functions in the
//!   style of the e-gskew/2Bc-gskew predictors, built from two cheap
//!   bijections (`h` and `g` below play the roles of H and H⁻¹ in the
//!   Seznec/Michaud construction).
//! * [`mix2`] — a pair of *different* XOR-based hashes over (PC, BOR) used by
//!   the filtered critic, matching §4: “The index into the table and the tags
//!   are computed with two different hash functions … different XOR functions
//!   of the branch address and BOR value.”

use crate::history::{fold_bits, mask};

/// XOR-fold `value` down to `width` bits (re-export of the history fold for
/// arbitrary words such as PCs).
#[must_use]
pub fn fold(value: u64, width: usize) -> u64 {
    fold_bits(value, 64, width)
}

/// The conventional gshare index: PC bits XOR folded history, `width` bits.
///
/// The PC is pre-shifted by 2 since branch addresses of uop-level IA32 code
/// are effectively 4-byte aligned for indexing purposes.
#[must_use]
pub fn gshare_index(pc: u64, hist: u64, hist_len: usize, width: usize) -> u64 {
    let h = fold_bits(hist, hist_len, width);
    ((pc >> 2) ^ h) & mask(width)
}

/// The bijection H of the skewed hash family (Seznec's skewed-associative
/// construction): shift left, feeding `msb ^ lsb` into the vacated low bit.
///
/// `H(x)_i = x_{i-1}` for `i ≥ 1`, `H(x)_0 = x_{n-1} ^ x_0`.
#[must_use]
pub fn skew_h(x: u64, n: usize) -> u64 {
    debug_assert!((2..=63).contains(&n));
    let m = mask(n);
    let x = x & m;
    let msb = (x >> (n - 1)) & 1;
    (((x << 1) & m) | (msb ^ (x & 1))) & m
}

/// The exact inverse bijection H⁻¹: shift right, reconstructing the old high
/// bit as `lsb ^ bit1`.
#[must_use]
pub fn skew_g(x: u64, n: usize) -> u64 {
    debug_assert!((2..=63).contains(&n));
    let m = mask(n);
    let x = x & m;
    let lsb = x & 1;
    let bit1 = (x >> 1) & 1;
    ((x >> 1) | ((lsb ^ bit1) << (n - 1))) & m
}

/// The shared PC operand of the [`skew`] family at `width` bits — the
/// multiplicative scramble and fold every member applies to the branch
/// address. Factored out so fused kernels can compute it once per element
/// and combine it with [`skew_h`]/[`skew_g`] directly; [`skew`] itself is
/// defined in terms of it.
#[must_use]
pub fn skew_pc(pc: u64, width: usize) -> u64 {
    fold((pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15), width)
}

/// The three skewed indexing functions used by 2Bc-gskew's G0, G1 and META
/// banks.
///
/// `which` selects the member of the family (0, 1 or 2). The input is the
/// concatenation of folded history and PC bits, split in halves `v1`/`v2`
/// as in the original construction:
///
/// * `f0(v) = H(v1) ^ G(v2) ^ v2`
/// * `f1(v) = H(v1) ^ G(v2) ^ v1`
/// * `f2(v) = G(v1) ^ H(v2) ^ v2`
///
/// # Panics
///
/// Panics if `which > 2` or `width` is out of range `2..=31`.
#[must_use]
pub fn skew(which: usize, pc: u64, hist: u64, hist_len: usize, width: usize) -> u64 {
    assert!(which <= 2, "skew function index {which} out of range");
    assert!((2..=31).contains(&width), "skew width {width} out of range");
    let h = fold_bits(hist, hist_len, width);
    let p = skew_pc(pc, width);
    let v1 = h;
    let v2 = p;
    let out = match which {
        0 => skew_h(v1, width) ^ skew_g(v2, width) ^ v2,
        1 => skew_h(v1, width) ^ skew_g(v2, width) ^ v1,
        _ => skew_g(v1, width) ^ skew_h(v2, width) ^ v2,
    };
    out & mask(width)
}

/// Two different XOR hashes of `(pc, bits)` producing an `index` of
/// `index_width` bits and a `tag` of `tag_width` bits.
///
/// Used by the filtered critic (§4) and by tagged gshare. The two hashes
/// fold the history at different granularities and swizzle the PC
/// differently, minimizing the probability that two distinct
/// (address, BOR) contexts collide on *both* index and tag.
#[must_use]
pub fn mix2(
    pc: u64,
    bits: u64,
    bits_len: usize,
    index_width: usize,
    tag_width: usize,
) -> (u64, u64) {
    let idx = gshare_index(pc, bits, bits_len, index_width);
    // Tag: fold history at tag width, XOR with differently-shifted PC bits so
    // that index and tag disagree on how they view both inputs.
    let th = fold_bits(bits, bits_len, tag_width);
    let tp = fold(
        (pc >> 2).rotate_left(7) ^ (pc >> (2 + index_width)),
        tag_width,
    );
    let tag = (th ^ tp) & mask(tag_width);
    (idx, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_index_masks_to_width() {
        for pc in [0u64, 4, 0xdead_beef, u64::MAX] {
            for hist in [0u64, 0x5555, u64::MAX] {
                let idx = gshare_index(pc, hist, 16, 10);
                assert!(idx < (1 << 10));
            }
        }
    }

    #[test]
    fn gshare_index_depends_on_history() {
        let a = gshare_index(0x400_0000, 0b1010, 13, 13);
        let b = gshare_index(0x400_0000, 0b1011, 13, 13);
        assert_ne!(a, b);
    }

    #[test]
    fn gshare_index_depends_on_pc() {
        let a = gshare_index(0x1000, 0b1010, 13, 13);
        let b = gshare_index(0x1004, 0b1010, 13, 13);
        assert_ne!(a, b);
    }

    #[test]
    fn skew_h_is_bijective_on_small_width() {
        let n = 8;
        let mut seen = vec![false; 1 << n];
        for x in 0..(1u64 << n) {
            let y = skew_h(x, n) as usize;
            assert!(!seen[y], "skew_h collision at {x}");
            seen[y] = true;
        }
    }

    #[test]
    fn skew_g_is_bijective_on_small_width() {
        let n = 8;
        let mut seen = vec![false; 1 << n];
        for x in 0..(1u64 << n) {
            let y = skew_g(x, n) as usize;
            assert!(!seen[y], "skew_g collision at {x}");
            seen[y] = true;
        }
    }

    #[test]
    fn skew_members_are_decorrelated() {
        // The three functions must map the same (pc, hist) to mostly
        // different indices; count agreements over a sweep.
        let width = 10;
        let mut same01 = 0;
        let mut same02 = 0;
        let mut total = 0;
        for pc in (0..2048u64).map(|i| 0x40_0000 + i * 4) {
            let hist = pc.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let f0 = skew(0, pc, hist, 13, width);
            let f1 = skew(1, pc, hist, 13, width);
            let f2 = skew(2, pc, hist, 13, width);
            same01 += usize::from(f0 == f1);
            same02 += usize::from(f0 == f2);
            total += 1;
        }
        // Random chance of agreement is 1/1024; allow generous slack.
        assert!(
            same01 < total / 50,
            "f0/f1 agree too often: {same01}/{total}"
        );
        assert!(
            same02 < total / 50,
            "f0/f2 agree too often: {same02}/{total}"
        );
    }

    #[test]
    fn mix2_widths_respected() {
        let (idx, tag) = mix2(0xdead_bee0, 0xffff, 18, 8, 9);
        assert!(idx < (1 << 8));
        assert!(tag < (1 << 9));
    }

    #[test]
    fn mix2_index_and_tag_differ_in_sensitivity() {
        // Two contexts that collide on the index should usually have
        // different tags.
        let mut collisions = 0;
        let mut both = 0;
        let contexts: Vec<(u64, u64)> = (0..4096u64)
            .map(|i| (0x40_0000 + (i % 64) * 4, i.wrapping_mul(0x9E37_79B9)))
            .collect();
        for (i, &(pc_a, h_a)) in contexts.iter().enumerate() {
            let (ia, ta) = mix2(pc_a, h_a, 18, 8, 9);
            for &(pc_b, h_b) in &contexts[i + 1..i + 8.min(contexts.len() - i)] {
                let (ib, tb) = mix2(pc_b, h_b, 18, 8, 9);
                if ia == ib {
                    collisions += 1;
                    if ta == tb {
                        both += 1;
                    }
                }
            }
        }
        if collisions > 20 {
            assert!(
                both * 10 < collisions,
                "tags fail to disambiguate index collisions: {both}/{collisions}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "skew function index")]
    fn skew_rejects_bad_member() {
        let _ = skew(3, 0, 0, 8, 10);
    }
}
