//! Gshare and its tagged (set-associative) variant.

use crate::index::{gshare_index, mix2};
use crate::{
    CounterTable, DirectionPredictor, HistoryBits, Pc, PredictBlock, PredictInput, Prediction,
    SatCounter, TagLookup, TaggedTable,
};

/// McFarling's gshare predictor: two-bit counters indexed by
/// `PC XOR folded-history`.
///
/// Table 3 of the paper pairs the history length with the index width
/// (e.g. 8 K entries / 13-bit history at 2 KB up to 128 K / 17 at 32 KB);
/// [`crate::configs::gshare`] provides those pairings.
///
/// # Examples
///
/// ```
/// use predictors::{DirectionPredictor, Gshare, HistoryBits, Pc};
///
/// let mut p = Gshare::new(8192, 13);
/// let pc = Pc::new(0x400_100);
/// // Learn an alternating pattern purely from history correlation.
/// let mut bhr = HistoryBits::new(13);
/// for i in 0..200 {
///     let taken = i % 2 == 0;
///     p.update(pc, bhr, taken);
///     bhr.push(taken);
/// }
/// let pred = p.predict(pc, bhr);
/// assert!(pred.taken()); // after ...NTNT the next is T
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Gshare {
    table: CounterTable,
    history_len: usize,
}

impl Gshare {
    /// Creates a gshare predictor with `entries` two-bit counters and
    /// `history_len` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a non-zero power of two or
    /// `history_len > 64`.
    #[must_use]
    pub fn new(entries: usize, history_len: usize) -> Self {
        assert!(history_len <= crate::MAX_HISTORY_BITS);
        Self {
            table: CounterTable::new(entries, 2),
            history_len,
        }
    }

    fn index(&self, pc: Pc, hist: HistoryBits) -> u64 {
        gshare_index(
            pc.addr(),
            hist.recent(self.history_len),
            self.history_len,
            self.table.index_bits(),
        )
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        let c = self.table.counter(self.index(pc, hist));
        Prediction::with_confidence(c.is_taken(), i32::from(c.is_strong()))
    }

    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        self.table.update(self.index(pc, hist), taken);
    }

    fn history_len(&self) -> usize {
        self.history_len
    }

    fn storage_bits(&self) -> usize {
        self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "gshare"
    }

    /// Fused kernel: the index hash is computed once per element, the
    /// prediction read and training write share one table visit, and the
    /// directions accumulate in a local bitmask instead of per-element
    /// [`PredictBlock::push`] calls.
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        let mut bits = 0u64;
        let width = self.table.index_bits();
        for (i, input) in inputs.iter().enumerate() {
            let idx = gshare_index(
                input.pc.addr(),
                input.hist.recent(self.history_len),
                self.history_len,
                width,
            );
            bits |= u64::from(self.table.predict_update(idx, input.taken)) << i;
        }
        PredictBlock::from_parts(bits, inputs.len())
    }

    /// Register-history kernel: the per-element history values are
    /// reconstructed from `start` and the outcome mask in a local register —
    /// replay hands over no per-element [`HistoryBits`] snapshots at all.
    ///
    /// The register shifts at the *effective* length
    /// `min(history_len, start.len())`: bits the caller's register never
    /// retained read as zero, exactly as [`HistoryBits::recent`] reports
    /// them on the scalar path.
    fn replay_block(&mut self, pcs: &[Pc], outcomes: u64, start: HistoryBits) -> PredictBlock {
        let mut bits = 0u64;
        let width = self.table.index_bits();
        let eff = self.history_len.min(start.len());
        let m = crate::mask(eff);
        let mut h = start.recent(eff);
        for (i, &pc) in pcs.iter().enumerate() {
            let taken = (outcomes >> i) & 1 == 1;
            let idx = gshare_index(pc.addr(), h, self.history_len, width);
            bits |= u64::from(self.table.predict_update(idx, taken)) << i;
            h = ((h << 1) | u64::from(taken)) & m;
        }
        PredictBlock::from_parts(bits, pcs.len())
    }
}

/// Tagged gshare: a set-associative, tagged table of two-bit counters.
///
/// This is the paper's main critic engine (§6): “a variant of the gshare
/// predictor, in which a tag is assigned to each two-bit counter. Its
/// structure is similar to a N-way associative cache, with each data item
/// being a two-bit counter.” A lookup that misses produces no prediction —
/// in the critic role this is the *implicit agree* of the filter (§4).
///
/// Index and tag are two different XOR hashes of (PC, history) per §4; tags
/// are 8–10 bits (“our experiments have shown that only 8–10 bit tags are
/// needed”).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaggedGshare {
    table: TaggedTable<SatCounter>,
    history_len: usize,
}

impl TaggedGshare {
    /// Creates a tagged gshare with `sets`×`ways` tagged counters,
    /// `tag_bits`-wide tags and `history_len` history bits.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, `ways == 0`, or widths are out
    /// of range.
    #[must_use]
    pub fn new(sets: usize, ways: usize, tag_bits: usize, history_len: usize) -> Self {
        assert!(history_len <= crate::MAX_HISTORY_BITS);
        Self {
            table: TaggedTable::new(sets, ways, tag_bits, SatCounter::weakly_not_taken(2)),
            history_len,
        }
    }

    fn hash(&self, pc: Pc, hist: HistoryBits) -> (u64, u64) {
        mix2(
            pc.addr(),
            hist.recent(self.history_len),
            self.history_len,
            self.table.index_bits(),
            self.table.tag_bits(),
        )
    }

    /// Looks up a prediction; `None` on a tag miss.
    #[must_use]
    pub fn lookup(&self, pc: Pc, hist: HistoryBits) -> Option<Prediction> {
        let (idx, tag) = self.hash(pc, hist);
        self.table
            .peek(idx, tag)
            .map(|c| Prediction::with_confidence(c.is_taken(), i32::from(c.is_strong())))
    }

    /// Trains the entry for `(pc, hist)` if present, touching LRU state.
    ///
    /// Returns whether the entry was present.
    pub fn train_existing(&mut self, pc: Pc, hist: HistoryBits, taken: bool) -> bool {
        let (idx, tag) = self.hash(pc, hist);
        match self.table.lookup(idx, tag) {
            Some(c) => {
                c.update(taken);
                true
            }
            None => false,
        }
    }

    /// Allocates (or re-initializes) the entry for `(pc, hist)`, seeding its
    /// counter weakly toward `taken`.
    ///
    /// Returns [`TagLookup::Hit`] if the tag was already present.
    pub fn allocate(&mut self, pc: Pc, hist: HistoryBits, taken: bool) -> TagLookup {
        let (idx, tag) = self.hash(pc, hist);
        self.table.insert(idx, tag, SatCounter::weak_for(2, taken))
    }

    /// Number of valid entries currently held.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.table.occupancy()
    }

    /// Total entry capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }
}

impl DirectionPredictor for TaggedGshare {
    /// Predicts not-taken with zero confidence on a tag miss; in the critic
    /// role use [`TaggedGshare::lookup`], which distinguishes misses.
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        self.lookup(pc, hist)
            .unwrap_or(Prediction::taken_or_not(false))
    }

    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        if !self.train_existing(pc, hist, taken) {
            self.allocate(pc, hist, taken);
        }
    }

    fn history_len(&self) -> usize {
        self.history_len
    }

    fn storage_bits(&self) -> usize {
        // Tag + two-bit counter per entry; LRU bookkeeping excluded as usual.
        self.table.capacity() * (self.table.tag_bits() + 2)
    }

    fn name(&self) -> &'static str {
        "tagged-gshare"
    }

    /// Fused kernel: one hash and one LRU-touching set probe per element.
    ///
    /// The scalar path peeks (no LRU/clock effect) for the prediction, then
    /// `lookup`s for training; since `peek` is side-effect-free, reading the
    /// counter out of the single `lookup` before updating it leaves the
    /// clock/LRU sequence — and therefore every future victim choice —
    /// identical.
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        let mut out = PredictBlock::new();
        for input in inputs {
            let (idx, tag) = self.hash(input.pc, input.hist);
            match self.table.lookup(idx, tag) {
                Some(c) => {
                    out.push(c.is_taken());
                    c.update(input.taken);
                }
                None => {
                    // Scalar predict on a tag miss defaults to not-taken.
                    out.push(false);
                    self.table
                        .insert(idx, tag, SatCounter::weak_for(2, input.taken));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_distinguishes_history_contexts() {
        let mut p = Gshare::new(4096, 8);
        let pc = Pc::new(0x7000);
        let ha = HistoryBits::from_raw(0b1111_0000, 8);
        let hb = HistoryBits::from_raw(0b0000_1111, 8);
        for _ in 0..3 {
            p.update(pc, ha, true);
            p.update(pc, hb, false);
        }
        assert!(p.predict(pc, ha).taken());
        assert!(!p.predict(pc, hb).taken());
    }

    #[test]
    fn gshare_learns_loop_exit_pattern() {
        // A 4-iteration loop: T T T N repeating. With >=4 history bits the
        // exit becomes perfectly predictable.
        let mut p = Gshare::new(4096, 8);
        let pc = Pc::new(0x4040);
        let mut bhr = HistoryBits::new(8);
        let pattern = [true, true, true, false];
        for i in 0..400 {
            let taken = pattern[i % 4];
            p.update(pc, bhr, taken);
            bhr.push(taken);
        }
        // Measure accuracy over one more cycle of the pattern.
        let mut correct = 0;
        for i in 0..40 {
            let taken = pattern[i % 4];
            if p.predict(pc, bhr).taken() == taken {
                correct += 1;
            }
            p.update(pc, bhr, taken);
            bhr.push(taken);
        }
        assert!(
            correct >= 38,
            "loop pattern should be nearly perfect, got {correct}/40"
        );
    }

    #[test]
    fn gshare_storage_matches_table3() {
        // 2KB budget: 8K entries of 2 bits.
        let p = Gshare::new(8 * 1024, 13);
        assert_eq!(p.storage_bytes(), 2048);
        // 32KB: 128K entries.
        let p = Gshare::new(128 * 1024, 17);
        assert_eq!(p.storage_bytes(), 32 * 1024);
    }

    #[test]
    fn tagged_gshare_miss_yields_none() {
        let t = TaggedGshare::new(256, 6, 9, 18);
        assert!(t.lookup(Pc::new(0x100), HistoryBits::new(18)).is_none());
    }

    #[test]
    fn tagged_gshare_allocate_then_hit() {
        let mut t = TaggedGshare::new(256, 6, 9, 18);
        let pc = Pc::new(0x100);
        let h = HistoryBits::from_raw(0x2_5a5a, 18);
        t.allocate(pc, h, true);
        let pred = t.lookup(pc, h).expect("entry just allocated");
        assert!(pred.taken(), "allocation seeds counter toward outcome");
    }

    #[test]
    fn tagged_gshare_train_existing_misses_without_allocation() {
        let mut t = TaggedGshare::new(64, 2, 8, 10);
        let pc = Pc::new(0x200);
        let h = HistoryBits::from_raw(0x3ff, 10);
        assert!(!t.train_existing(pc, h, true));
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn tagged_gshare_different_contexts_use_different_entries() {
        let mut t = TaggedGshare::new(256, 6, 9, 18);
        let pc = Pc::new(0x300);
        let ha = HistoryBits::from_raw(0x00ff, 18);
        let hb = HistoryBits::from_raw(0xff00, 18);
        t.allocate(pc, ha, true);
        t.allocate(pc, hb, false);
        assert!(t.lookup(pc, ha).unwrap().taken());
        assert!(!t.lookup(pc, hb).unwrap().taken());
    }

    #[test]
    fn tagged_gshare_storage_counts_tags_and_counters() {
        // Table 3 at 8KB: 1024 * 6-way, 18 BOR bits; with 9-bit tags this is
        // 1024*6*(9+2) bits ≈ 8.25 KB — within the paper's ±10% sizing slop.
        let t = TaggedGshare::new(1024, 6, 9, 18);
        assert_eq!(t.storage_bits(), 1024 * 6 * 11);
    }

    #[test]
    fn tagged_gshare_as_direction_predictor_defaults_not_taken() {
        let t = TaggedGshare::new(64, 2, 8, 10);
        assert!(!t.predict(Pc::new(0x10), HistoryBits::new(10)).taken());
    }
}
