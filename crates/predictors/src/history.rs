//! Branch history registers.
//!
//! All predictors in this crate are *pure functions* of a program counter and
//! a bit register supplied by the caller. The register is either a classic
//! branch history register (BHR) holding past outcomes, or — in the
//! prophet/critic hybrid — a branch outcome register (BOR) holding a mix of
//! past outcomes and predicted *future* outcomes. Both are represented by
//! [`HistoryBits`].
//!
//! The longest register in any Table 3 configuration of the paper is 57 bits
//! (the 32 KB perceptron), so a fixed 64-bit backing word suffices and
//! checkpoints are plain copies, which is exactly the repair mechanism the
//! paper describes (§3.3: “the prophet BHR and the critic BOR are repaired
//! via checkpointing”).

/// Maximum number of bits a [`HistoryBits`] register can hold.
pub const MAX_HISTORY_BITS: usize = 64;

/// A fixed-width shift register of branch outcomes.
///
/// The most recently inserted outcome occupies bit 0; older outcomes occupy
/// higher bit positions; outcomes older than `len` are discarded. Pushing a
/// `taken` outcome shifts every bit left by one.
///
/// `HistoryBits` is `Copy`, so taking a checkpoint of a speculative history
/// is a simple assignment.
///
/// # Examples
///
/// ```
/// use predictors::HistoryBits;
///
/// let mut h = HistoryBits::new(4);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// // newest-to-oldest: taken, not-taken, taken => 0b101
/// assert_eq!(h.bits(), 0b101);
/// assert_eq!(h.len(), 4);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct HistoryBits {
    bits: u64,
    len: u8,
}

impl HistoryBits {
    /// Creates an empty (all not-taken) history of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    #[must_use]
    pub fn new(len: usize) -> Self {
        assert!(
            len <= MAX_HISTORY_BITS,
            "history length {len} exceeds {MAX_HISTORY_BITS}"
        );
        Self {
            bits: 0,
            len: len as u8,
        }
    }

    /// Creates a history register from a raw bit pattern.
    ///
    /// Bits above `len` are masked off.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    #[must_use]
    pub fn from_raw(bits: u64, len: usize) -> Self {
        let mut h = Self::new(len);
        h.bits = bits & h.mask();
        h
    }

    /// The number of outcomes this register retains.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the register retains zero outcomes (a zero-length register).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw bit pattern, newest outcome in bit 0.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }

    fn mask(&self) -> u64 {
        mask(self.len as usize)
    }

    /// Shifts in a new outcome (`true` = taken) as the newest bit.
    pub fn push(&mut self, taken: bool) {
        if self.len == 0 {
            return;
        }
        self.bits = ((self.bits << 1) | u64::from(taken)) & self.mask();
    }

    /// Returns the `n` most recent outcomes as the low `n` bits of a word.
    ///
    /// If `n` exceeds `len`, the missing (older) bits read as zero, matching
    /// a hardware register that was cleared at reset.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[must_use]
    pub fn recent(&self, n: usize) -> u64 {
        assert!(
            n <= MAX_HISTORY_BITS,
            "requested {n} bits from a history register"
        );
        self.bits & mask(n)
    }

    /// Returns outcome `i` positions back (0 = newest).
    ///
    /// Positions at or beyond `len` read as `false`.
    #[must_use]
    pub fn outcome(&self, i: usize) -> bool {
        if i >= self.len as usize {
            return false;
        }
        (self.bits >> i) & 1 == 1
    }

    /// XOR-folds the full register down to `width` bits.
    ///
    /// Folding preserves every retained outcome's influence on the result,
    /// which is how long histories index small tables (gshare and friends).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `width > 64`.
    #[must_use]
    pub fn fold(&self, width: usize) -> u64 {
        fold_bits(self.bits, self.len as usize, width)
    }

    /// Re-sizes the register, keeping the newest outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn resize(&mut self, len: usize) {
        assert!(len <= MAX_HISTORY_BITS);
        self.len = len as u8;
        self.bits &= self.mask();
    }
}

impl std::fmt::Display for HistoryBits {
    /// Renders newest-to-oldest as `T`/`N` characters, e.g. `TNTT`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.len() {
            f.write_str(if self.outcome(i) { "T" } else { "N" })?;
        }
        Ok(())
    }
}

/// A bit mask with the low `n` bits set.
///
/// # Panics
///
/// Panics if `n > 64`.
#[must_use]
pub fn mask(n: usize) -> u64 {
    assert!(n <= 64, "mask width {n} out of range");
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// XOR-folds the low `len` bits of `bits` down to `width` bits.
///
/// # Panics
///
/// Panics if `width == 0` or `width > 64`.
#[must_use]
pub fn fold_bits(bits: u64, len: usize, width: usize) -> u64 {
    assert!(width > 0 && width <= 64, "fold width {width} out of range");
    let mut v = bits & mask(len.min(64));
    if width >= len {
        return v;
    }
    let mut folded = 0u64;
    while v != 0 {
        folded ^= v & mask(width);
        v >>= width;
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_history_is_all_not_taken() {
        let h = HistoryBits::new(16);
        assert_eq!(h.bits(), 0);
        assert_eq!(h.len(), 16);
        assert!(!h.outcome(0));
        assert!(!h.outcome(15));
    }

    #[test]
    fn push_shifts_newest_into_bit_zero() {
        let mut h = HistoryBits::new(8);
        h.push(true);
        assert_eq!(h.bits(), 0b1);
        h.push(false);
        assert_eq!(h.bits(), 0b10);
        h.push(true);
        assert_eq!(h.bits(), 0b101);
        assert!(h.outcome(0));
        assert!(!h.outcome(1));
        assert!(h.outcome(2));
    }

    #[test]
    fn push_discards_outcomes_older_than_len() {
        let mut h = HistoryBits::new(3);
        for _ in 0..3 {
            h.push(true);
        }
        assert_eq!(h.bits(), 0b111);
        h.push(false);
        // Oldest taken bit fell off the top.
        assert_eq!(h.bits(), 0b110);
    }

    #[test]
    fn zero_length_history_ignores_pushes() {
        let mut h = HistoryBits::new(0);
        h.push(true);
        h.push(true);
        assert_eq!(h.bits(), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn recent_returns_low_bits() {
        let mut h = HistoryBits::new(10);
        for taken in [true, true, false, true] {
            h.push(taken);
        }
        // bit 0 = newest (T), bit 1 = F, bit 2 = T, bit 3 = T => 0b1101
        assert_eq!(h.recent(2), 0b01);
        assert_eq!(h.recent(4), 0b1101);
        assert_eq!(h.recent(10), 0b1101);
        // Requesting more than len pads with zeros.
        assert_eq!(h.recent(64), 0b1101);
    }

    #[test]
    fn fold_wider_than_len_is_identity() {
        let h = HistoryBits::from_raw(0b1011, 4);
        assert_eq!(h.fold(8), 0b1011);
        assert_eq!(h.fold(4), 0b1011);
    }

    #[test]
    fn fold_xors_chunks() {
        let h = HistoryBits::from_raw(0b11_0110, 6);
        // chunks of 3: 0b110 ^ 0b110 = 0
        assert_eq!(h.fold(3), 0b000);
        // chunks of 2: 0b10 ^ 0b01 ^ 0b11 = 0b00
        assert_eq!(h.fold(2), 0b00);
        let h2 = HistoryBits::from_raw(0b10_0110, 6);
        assert_eq!(h2.fold(3), 0b100 ^ 0b110);
    }

    #[test]
    fn from_raw_masks_extra_bits() {
        let h = HistoryBits::from_raw(u64::MAX, 5);
        assert_eq!(h.bits(), 0b11111);
    }

    #[test]
    fn resize_keeps_newest() {
        let mut h = HistoryBits::from_raw(0b101101, 6);
        h.resize(3);
        assert_eq!(h.bits(), 0b101);
        assert_eq!(h.len(), 3);
        h.resize(6);
        assert_eq!(h.bits(), 0b101);
    }

    #[test]
    fn display_renders_newest_first() {
        let mut h = HistoryBits::new(4);
        h.push(true);
        h.push(false);
        assert_eq!(h.to_string(), "NTNN");
    }

    #[test]
    fn checkpoint_restore_is_copy() {
        let mut h = HistoryBits::new(12);
        h.push(true);
        let cp = h;
        h.push(false);
        h.push(true);
        assert_ne!(h, cp);
        h = cp;
        assert_eq!(h.bits(), 0b1);
    }

    #[test]
    fn mask_edges() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn oversized_history_panics() {
        let _ = HistoryBits::new(65);
    }

    #[test]
    fn sixty_four_bit_history_works() {
        let mut h = HistoryBits::new(64);
        for _ in 0..64 {
            h.push(true);
        }
        assert_eq!(h.bits(), u64::MAX);
        h.push(false);
        assert_eq!(h.bits(), u64::MAX << 1);
    }
}
