//! The perceptron predictor of Jiménez and Lin.

use crate::{DirectionPredictor, HistoryBits, Pc, PredictBlock, PredictInput, Prediction};

/// Weight type: 8-bit signed, as budgeted by Table 3 of the paper
/// (e.g. 2 KB = 113 perceptrons × 18 weights × 1 byte).
type Weight = i8;

/// The perceptron branch predictor.
///
/// Each table entry is a vector of signed weights `w0..wh`; the prediction
/// for history bits `x1..xh ∈ {-1, +1}` is the sign of
/// `y = w0 + Σ wi·xi`. Training bumps each weight toward agreement whenever
/// the prediction was wrong or `|y|` was below the threshold
/// `θ = ⌊1.93·h + 14⌋`.
///
/// “A key advantage of the perceptron predictor is its ability to consider
/// much longer histories than schemes that use tables with saturating
/// counters” (§6) — which is also why the paper likes it as a critic: future
/// bits can be added to the BOR without sacrificing history reach.
///
/// # Examples
///
/// ```
/// use predictors::{DirectionPredictor, HistoryBits, Pc, Perceptron};
///
/// let mut p = Perceptron::new(113, 17); // the paper's 2 KB configuration
/// let pc = Pc::new(0x400_300);
/// let mut bhr = HistoryBits::new(17);
/// for i in 0..100 {
///     let taken = i % 2 == 0; // alternating branch
///     p.update(pc, bhr, taken);
///     bhr.push(taken);
/// }
/// assert!(p.predict(pc, bhr).confidence() > 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Perceptron {
    weights: Vec<Weight>, // n_perceptrons × (history_len + 1), bias first
    n_perceptrons: usize,
    history_len: usize,
    theta: i32,
}

impl Perceptron {
    /// Creates a perceptron table of `n_perceptrons` entries, each observing
    /// `history_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero or `history_len > 64`.
    #[must_use]
    pub fn new(n_perceptrons: usize, history_len: usize) -> Self {
        assert!(n_perceptrons > 0, "need at least one perceptron");
        assert!(
            (1..=crate::MAX_HISTORY_BITS).contains(&history_len),
            "history length {history_len} out of range"
        );
        Self {
            weights: vec![0; n_perceptrons * (history_len + 1)],
            n_perceptrons,
            history_len,
            theta: (1.93 * history_len as f64 + 14.0).floor() as i32,
        }
    }

    /// The training threshold θ.
    #[must_use]
    pub fn theta(&self) -> i32 {
        self.theta
    }

    /// Number of perceptrons in the table.
    #[must_use]
    pub fn table_len(&self) -> usize {
        self.n_perceptrons
    }

    fn row(&self, pc: Pc) -> usize {
        // Simple modulo hashing over perceptron count (not power-of-two in
        // Table 3: 113, 163, 282, ...).
        ((pc.addr() >> 2) % self.n_perceptrons as u64) as usize
    }

    fn output(&self, row: usize, hist: HistoryBits) -> i32 {
        let base = row * (self.history_len + 1);
        let w = &self.weights[base..base + self.history_len + 1];
        let mut y = i32::from(w[0]);
        for i in 0..self.history_len {
            let x = if hist.outcome(i) { 1 } else { -1 };
            y += i32::from(w[i + 1]) * x;
        }
        y
    }
}

impl DirectionPredictor for Perceptron {
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        let y = self.output(self.row(pc), hist);
        // Ties (y == 0) predict taken, per the original description where
        // "if the output is negative ... not taken", otherwise taken.
        Prediction::with_confidence(y >= 0, y.abs())
    }

    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        let row = self.row(pc);
        let y = self.output(row, hist);
        let pred = y >= 0;
        if pred != taken || y.abs() <= self.theta {
            let t: i32 = if taken { 1 } else { -1 };
            let base = row * (self.history_len + 1);
            let w = &mut self.weights[base..base + self.history_len + 1];
            w[0] = w[0].saturating_add(t as i8);
            for i in 0..self.history_len {
                let x: i32 = if hist.outcome(i) { 1 } else { -1 };
                // weight += 1 if outcome agrees with history bit, else -= 1
                let delta = (t * x) as i8;
                w[i + 1] = w[i + 1].saturating_add(delta);
            }
        }
    }

    fn history_len(&self) -> usize {
        self.history_len
    }

    fn storage_bits(&self) -> usize {
        self.n_perceptrons * (self.history_len + 1) * 8
    }

    fn name(&self) -> &'static str {
        "perceptron"
    }

    /// Fused kernel: the dot product `y` is computed once per element and
    /// serves both the prediction and the train-or-not decision — the
    /// scalar path walks the weight row twice (`predict` then `update`).
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        let mut out = PredictBlock::new();
        for input in inputs {
            let row = self.row(input.pc);
            let y = self.output(row, input.hist);
            let pred = y >= 0;
            out.push(pred);
            if pred != input.taken || y.abs() <= self.theta {
                let t: i32 = if input.taken { 1 } else { -1 };
                let base = row * (self.history_len + 1);
                let w = &mut self.weights[base..base + self.history_len + 1];
                w[0] = w[0].saturating_add(t as i8);
                for i in 0..self.history_len {
                    let x: i32 = if input.hist.outcome(i) { 1 } else { -1 };
                    let delta = (t * x) as i8;
                    w[i + 1] = w[i + 1].saturating_add(delta);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_follows_jimenez_lin_formula() {
        assert_eq!(
            Perceptron::new(10, 17).theta(),
            (1.93f64 * 17.0 + 14.0) as i32
        );
        assert_eq!(Perceptron::new(10, 28).theta(), 68);
    }

    #[test]
    fn learns_strong_bias_quickly() {
        let mut p = Perceptron::new(113, 17);
        let pc = Pc::new(0x100);
        let h = HistoryBits::new(17);
        for _ in 0..5 {
            p.update(pc, h, true);
        }
        assert!(p.predict(pc, h).taken());
    }

    #[test]
    fn learns_single_history_bit_correlation() {
        // Outcome = outcome of 3 branches ago. Linearly separable, so a
        // perceptron learns it exactly.
        let mut p = Perceptron::new(113, 17);
        let pc = Pc::new(0x200);
        let mut bhr = HistoryBits::new(17);
        let mut rng: u64 = 99;
        let mut outcomes = std::collections::VecDeque::from([true, false, true]);
        for _ in 0..1000 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let taken = outcomes.front().copied().unwrap();
            p.update(pc, bhr, taken);
            bhr.push(taken);
            outcomes.pop_front();
            outcomes.push_back(taken);
        }
        let mut correct = 0;
        for _ in 0..100 {
            let taken = outcomes.front().copied().unwrap();
            if p.predict(pc, bhr).taken() == taken {
                correct += 1;
            }
            p.update(pc, bhr, taken);
            bhr.push(taken);
            outcomes.pop_front();
            outcomes.push_back(taken);
        }
        assert!(
            correct >= 98,
            "linearly separable pattern, got {correct}/100"
        );
    }

    #[test]
    fn learns_long_history_loop() {
        // A 30-iteration loop exit needs ~30 bits of history: beyond
        // counter-based schemes at small budgets but fine for a perceptron
        // with h=47.
        let mut p = Perceptron::new(282, 47);
        let pc = Pc::new(0x300);
        let mut bhr = HistoryBits::new(47);
        let period = 30;
        for i in 0..3000 {
            let taken = (i % period) != period - 1;
            p.update(pc, bhr, taken);
            bhr.push(taken);
        }
        let mut correct = 0;
        for i in 0..period {
            let taken = (i % period) != period - 1;
            if p.predict(pc, bhr).taken() == taken {
                correct += 1;
            }
            p.update(pc, bhr, taken);
            bhr.push(taken);
        }
        assert!(
            correct >= period - 2,
            "loop exit learned, got {correct}/{period}"
        );
    }

    #[test]
    fn confidence_grows_with_training() {
        let mut p = Perceptron::new(113, 17);
        let pc = Pc::new(0x400);
        let h = HistoryBits::from_raw(0x1_5555, 17);
        p.update(pc, h, true);
        let early = p.predict(pc, h).confidence();
        for _ in 0..30 {
            p.update(pc, h, true);
        }
        let late = p.predict(pc, h).confidence();
        assert!(late > early, "confidence should grow: {early} -> {late}");
    }

    #[test]
    fn weights_saturate_instead_of_wrapping() {
        let mut p = Perceptron::new(1, 1);
        let pc = Pc::new(0);
        let h = HistoryBits::from_raw(1, 1);
        for _ in 0..500 {
            p.update(pc, h, true);
        }
        // Output bounded by 2 weights × 127.
        assert!(p.predict(pc, h).confidence() <= 254);
    }

    #[test]
    fn storage_matches_table3() {
        // 2 KB: 113 perceptrons × 18 weights × 8 bits = 2034 bytes.
        assert_eq!(Perceptron::new(113, 17).storage_bytes(), 2034);
        // 8 KB: 282 × 29 = 8178 bytes.
        assert_eq!(Perceptron::new(282, 28).storage_bytes(), 8178);
        // 32 KB: 565 × 58 = 32770 bytes (paper rounds to the 32 KB bucket).
        assert_eq!(Perceptron::new(565, 57).storage_bytes(), 32770);
    }
}
