//! YAGS — "Yet Another Global Scheme" (Eden/Mudge), a tagged de-aliased
//! predictor the paper lists alongside 2Bc-gskew.

use crate::index::{gshare_index, mix2};
use crate::{
    CounterTable, DirectionPredictor, HistoryBits, Pc, PredictBlock, PredictInput, Prediction,
    SatCounter, TaggedTable,
};

/// The YAGS predictor.
///
/// A choice PHT (bimodal, indexed by PC) gives each branch's bias. Two small
/// tagged *direction caches* store only the exceptions: the T-cache holds
/// contexts where a bias-taken branch went not-taken would be recorded in the
/// NT-cache and vice versa. On a lookup, the cache *opposite* the bias is
/// probed; a tag hit overrides the bias.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Yags {
    choice: CounterTable,
    taken_cache: TaggedTable<SatCounter>,
    not_taken_cache: TaggedTable<SatCounter>,
    history_len: usize,
}

impl Yags {
    /// Creates a YAGS predictor.
    ///
    /// `choice_entries` bimodal counters; each direction cache has
    /// `cache_sets` × `cache_ways` tagged counters with `tag_bits` tags;
    /// `history_len` bits of global history feed the cache hashes.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two table sizes or out-of-range widths.
    #[must_use]
    pub fn new(
        choice_entries: usize,
        cache_sets: usize,
        cache_ways: usize,
        tag_bits: usize,
        history_len: usize,
    ) -> Self {
        Self {
            choice: CounterTable::new(choice_entries, 2),
            taken_cache: TaggedTable::new(
                cache_sets,
                cache_ways,
                tag_bits,
                SatCounter::weakly_taken(2),
            ),
            not_taken_cache: TaggedTable::new(
                cache_sets,
                cache_ways,
                tag_bits,
                SatCounter::weakly_not_taken(2),
            ),
            history_len,
        }
    }

    fn choice_index(&self, pc: Pc) -> u64 {
        pc.addr() >> 2
    }

    fn cache_hash(&self, pc: Pc, hist: HistoryBits) -> (u64, u64) {
        let sets = self.taken_cache.sets();
        let idx = gshare_index(
            pc.addr(),
            hist.recent(self.history_len),
            self.history_len,
            sets.trailing_zeros() as usize,
        );
        let (_, tag) = mix2(
            pc.addr(),
            hist.recent(self.history_len),
            self.history_len,
            sets.trailing_zeros() as usize,
            self.taken_cache.tag_bits(),
        );
        (idx, tag)
    }
}

impl DirectionPredictor for Yags {
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        let bias = self.choice.counter(self.choice_index(pc)).is_taken();
        let (idx, tag) = self.cache_hash(pc, hist);
        // Probe the cache recording exceptions to the bias.
        let exception = if bias {
            self.not_taken_cache.peek(idx, tag)
        } else {
            self.taken_cache.peek(idx, tag)
        };
        match exception {
            Some(c) => Prediction::with_confidence(c.is_taken(), i32::from(c.is_strong())),
            None => Prediction::taken_or_not(bias),
        }
    }

    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        let ci = self.choice_index(pc);
        let bias = self.choice.counter(ci).is_taken();
        let (idx, tag) = self.cache_hash(pc, hist);

        // The prediction the exception cache gave *before* this update.
        let cache = if bias {
            &mut self.not_taken_cache
        } else {
            &mut self.taken_cache
        };
        let prior = cache.peek(idx, tag).map(SatCounter::is_taken);

        // Train the hitting entry, or allocate when the bias mispredicted
        // this context.
        if let Some(c) = cache.lookup(idx, tag) {
            c.update(taken);
        } else if taken != bias {
            cache.insert(idx, tag, SatCounter::weak_for(2, taken));
        }

        // The choice PHT trains as a bimodal, except it is left alone when
        // the exception cache already provided the correct prediction for a
        // context where the bias is wrong (standard YAGS policy): the bias
        // stays meaningful for the branch's other contexts.
        let cache_was_correct_exception = prior == Some(taken) && taken != bias;
        if !cache_was_correct_exception {
            self.choice.update(ci, taken);
        }
    }

    fn history_len(&self) -> usize {
        self.history_len
    }

    fn storage_bits(&self) -> usize {
        let cache_bits = |c: &TaggedTable<SatCounter>| c.capacity() * (c.tag_bits() + 2);
        self.choice.storage_bits()
            + cache_bits(&self.taken_cache)
            + cache_bits(&self.not_taken_cache)
    }

    fn name(&self) -> &'static str {
        "yags"
    }

    /// Fused kernel: choice index, bias and the cache hash are computed once
    /// per element; the exception cache's pre-update direction serves both
    /// as the prediction and as the `prior` the choice-update policy needs.
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        let mut out = PredictBlock::new();
        for input in inputs {
            let ci = self.choice_index(input.pc);
            let bias = self.choice.counter(ci).is_taken();
            let (idx, tag) = self.cache_hash(input.pc, input.hist);
            let taken = input.taken;

            let cache = if bias {
                &mut self.not_taken_cache
            } else {
                &mut self.taken_cache
            };
            let prior = cache.peek(idx, tag).map(SatCounter::is_taken);
            out.push(prior.unwrap_or(bias));

            if let Some(c) = cache.lookup(idx, tag) {
                c.update(taken);
            } else if taken != bias {
                cache.insert(idx, tag, SatCounter::weak_for(2, taken));
            }

            let cache_was_correct_exception = prior == Some(taken) && taken != bias;
            if !cache_was_correct_exception {
                self.choice.update(ci, taken);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Yags {
        Yags::new(1024, 128, 2, 8, 10)
    }

    #[test]
    fn bias_only_branch_allocates_at_most_cold_start_exceptions() {
        let mut p = small();
        let pc = Pc::new(0x100);
        let mut bhr = HistoryBits::new(10);
        for _ in 0..100 {
            p.update(pc, bhr, true);
            bhr.push(true);
        }
        assert!(p.predict(pc, bhr).taken());
        // Only the cold-start mispredicts (choice counter warming from
        // weakly-not-taken) may have allocated exception entries.
        assert!(
            p.taken_cache.occupancy() + p.not_taken_cache.occupancy() <= 2,
            "steady-state biased branch must not keep allocating exceptions"
        );
    }

    #[test]
    fn exception_contexts_override_bias() {
        // Branch is taken except when history ends 0b11.
        let mut p = small();
        let pc = Pc::new(0x200);
        let mut bhr = HistoryBits::new(10);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..2000 {
            let taken = bhr.recent(2) != 0b11;
            let pred = p.predict(pc, bhr).taken();
            if i >= 1000 {
                total += 1;
                correct += u32::from(pred == taken);
            }
            p.update(pc, bhr, taken);
            bhr.push(taken);
        }
        assert!(
            correct * 100 >= total * 95,
            "history exception should be learned: {correct}/{total}"
        );
    }

    #[test]
    fn storage_counts_choice_and_caches() {
        let p = Yags::new(1024, 128, 2, 8, 10);
        assert_eq!(p.storage_bits(), 1024 * 2 + 2 * (128 * 2 * (8 + 2)));
    }
}
