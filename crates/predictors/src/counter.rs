//! Saturating up/down counters — the storage cell of most branch predictors.
//!
//! The paper's component predictors (gshare, 2Bc-gskew, tagged gshare, YAGS,
//! the 2Bc-gskew META table) all store two-bit saturating counters; the width
//! is nonetheless configurable because confidence and filter structures
//! sometimes want one- or three-bit cells.

/// A saturating counter of `bits` width (1–7 bits).
///
/// The counter counts from `0` to `2^bits - 1` and saturates at both ends.
/// For direction prediction, values in the upper half mean *taken*.
///
/// # Examples
///
/// ```
/// use predictors::SatCounter;
///
/// let mut c = SatCounter::weakly_not_taken(2);
/// assert!(!c.is_taken());
/// c.update(true);
/// assert!(c.is_taken()); // weakly taken
/// c.update(true);
/// assert!(c.is_strong()); // strongly taken
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct SatCounter {
    value: u8,
    bits: u8,
}

impl SatCounter {
    /// Creates a counter of the given width initialized to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 7, or if `value` does not fit.
    #[must_use]
    pub fn new(bits: usize, value: u8) -> Self {
        assert!(
            (1..=7).contains(&bits),
            "counter width {bits} out of range 1..=7"
        );
        let c = Self {
            value,
            bits: bits as u8,
        };
        assert!(
            value <= c.max(),
            "initial value {value} exceeds counter maximum"
        );
        c
    }

    /// A counter one step below the taken threshold (e.g. `01` for 2 bits).
    #[must_use]
    pub fn weakly_not_taken(bits: usize) -> Self {
        let mut c = Self::new(bits, 0);
        c.value = c.threshold() - 1;
        c
    }

    /// A counter exactly at the taken threshold (e.g. `10` for 2 bits).
    #[must_use]
    pub fn weakly_taken(bits: usize) -> Self {
        let mut c = Self::new(bits, 0);
        c.value = c.threshold();
        c
    }

    /// A counter initialized to weakly agree with `taken`.
    ///
    /// This is the paper's initialization rule for newly allocated critic
    /// entries: “The critic’s prediction structures are also initialized
    /// according to the branch’s outcome” (§4).
    #[must_use]
    pub fn weak_for(bits: usize, taken: bool) -> Self {
        if taken {
            Self::weakly_taken(bits)
        } else {
            Self::weakly_not_taken(bits)
        }
    }

    /// The saturation maximum, `2^bits - 1`.
    #[must_use]
    pub fn max(&self) -> u8 {
        ((1u16 << self.bits) - 1) as u8
    }

    /// The smallest value that predicts taken, `2^(bits-1)`.
    #[must_use]
    pub fn threshold(&self) -> u8 {
        1 << (self.bits - 1)
    }

    /// The raw counter value.
    #[must_use]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// The counter width in bits.
    #[must_use]
    pub fn bits(&self) -> usize {
        self.bits as usize
    }

    /// Whether the counter currently predicts taken.
    #[must_use]
    pub fn is_taken(&self) -> bool {
        self.value >= self.threshold()
    }

    /// Whether the counter is saturated in its current direction.
    #[must_use]
    pub fn is_strong(&self) -> bool {
        self.value == 0 || self.value == self.max()
    }

    /// Increments with saturation.
    pub fn inc(&mut self) {
        if self.value < self.max() {
            self.value += 1;
        }
    }

    /// Decrements with saturation.
    pub fn dec(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Moves the counter toward `taken`.
    ///
    /// This is the non-speculative commit-time update of §3.2: “the two-bit
    /// counter that provided the prediction is only incremented if the branch
    /// was actually taken, and only decremented if the branch was actually
    /// not-taken”.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.inc();
        } else {
            self.dec();
        }
    }

    /// Moves the counter toward `taken` only if that strengthens (or keeps)
    /// its current direction — the *partial update* used by 2Bc-gskew banks
    /// on correct predictions.
    pub fn strengthen(&mut self, taken: bool) {
        if self.is_taken() == taken {
            self.update(taken);
        }
    }

    /// Resets to weakly agree with `taken`.
    pub fn reinit(&mut self, taken: bool) {
        *self = Self::weak_for(self.bits as usize, taken);
    }
}

impl Default for SatCounter {
    /// A two-bit weakly-not-taken counter, the conventional reset state.
    fn default() -> Self {
        Self::weakly_not_taken(2)
    }
}

/// Saturating update on a raw counter value already masked to `max` —
/// the arithmetic [`CounterTable`](crate::CounterTable) applies to its
/// bit-packed fields. Must stay step-for-step identical to
/// [`SatCounter::update`]; the equivalence test below sweeps every
/// (width, value, direction) combination.
pub(crate) fn packed_update(value: u64, max: u64, taken: bool) -> u64 {
    if taken {
        (value + 1).min(max)
    } else {
        value.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_thresholds() {
        let c = SatCounter::new(2, 0);
        assert_eq!(c.max(), 3);
        assert_eq!(c.threshold(), 2);
        assert!(!c.is_taken());
        assert!(c.is_strong());
    }

    #[test]
    fn saturates_high() {
        let mut c = SatCounter::new(2, 3);
        c.inc();
        assert_eq!(c.value(), 3);
        c.update(true);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn saturates_low() {
        let mut c = SatCounter::new(2, 0);
        c.dec();
        assert_eq!(c.value(), 0);
        c.update(false);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn full_walk_up_and_down() {
        let mut c = SatCounter::new(3, 0);
        for expect in 1..=7 {
            c.inc();
            assert_eq!(c.value(), expect);
        }
        for expect in (0..7).rev() {
            c.dec();
            assert_eq!(c.value(), expect);
        }
    }

    #[test]
    fn weakly_taken_predicts_taken_but_not_strong() {
        let c = SatCounter::weakly_taken(2);
        assert!(c.is_taken());
        assert!(!c.is_strong());
        let c = SatCounter::weakly_not_taken(2);
        assert!(!c.is_taken());
        assert!(!c.is_strong());
    }

    #[test]
    fn weak_for_matches_direction() {
        assert!(SatCounter::weak_for(2, true).is_taken());
        assert!(!SatCounter::weak_for(2, false).is_taken());
    }

    #[test]
    fn hysteresis_needs_two_updates_to_flip_from_strong() {
        let mut c = SatCounter::new(2, 3); // strongly taken
        c.update(false);
        assert!(
            c.is_taken(),
            "one bad outcome must not flip a strong counter"
        );
        c.update(false);
        assert!(!c.is_taken());
    }

    #[test]
    fn strengthen_only_moves_in_agreeing_direction() {
        let mut c = SatCounter::weakly_taken(2);
        c.strengthen(false); // disagrees: no movement
        assert_eq!(c.value(), 2);
        c.strengthen(true); // agrees: strengthens
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn reinit_resets_to_weak() {
        let mut c = SatCounter::new(2, 3);
        c.reinit(false);
        assert_eq!(c.value(), 1);
        c.reinit(true);
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn packed_update_matches_sat_counter_everywhere() {
        // The packed-word arithmetic must agree with SatCounter::update for
        // every width, every representable value, in both directions.
        for bits in 1..=7usize {
            let max = (1u64 << bits) - 1;
            for value in 0..=max {
                for taken in [false, true] {
                    let mut reference = SatCounter::new(bits, value as u8);
                    reference.update(taken);
                    let packed = packed_update(value, max, taken);
                    assert_eq!(
                        packed,
                        u64::from(reference.value()),
                        "bits={bits} value={value} taken={taken}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_panics() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    #[should_panic(expected = "initial value")]
    fn oversized_value_panics() {
        let _ = SatCounter::new(2, 4);
    }
}
