//! Local (per-address) two-level prediction, PAs / Alpha 21264 style.

use crate::history::mask;
use crate::{
    CounterTable, DirectionPredictor, HistoryBits, Pc, PredictBlock, PredictInput, Prediction,
};

/// A local-history two-level predictor.
///
/// Level 1 is a table of per-branch history registers; level 2 a table of
/// two-bit (here configurable-width) counters indexed by the local history.
/// The Alpha 21264's tournament predictor pairs such a local component with
/// a global one; the paper mentions that front end (§5) as a candidate host
/// for a prophet/critic hybrid.
///
/// Unlike the global-history predictors in this crate, `Local` keeps its own
/// level-1 state and updates it *non-speculatively* in
/// [`update`](DirectionPredictor::update); the caller's history register is
/// ignored. This matches how local components are modelled in accuracy
/// studies: their first level cannot be checkpoint-repaired cheaply, so they
/// train at commit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Local {
    histories: Vec<u64>,
    history_len: usize,
    table: CounterTable,
}

impl Local {
    /// Creates a local predictor with `history_entries` per-branch history
    /// registers of `history_len` bits and `counter_entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if either entry count is not a power of two, or
    /// `history_len > 32`.
    #[must_use]
    pub fn new(history_entries: usize, history_len: usize, counter_entries: usize) -> Self {
        assert!(history_entries.is_power_of_two());
        assert!(
            history_len <= 32,
            "local history length {history_len} too long"
        );
        Self {
            histories: vec![0; history_entries],
            history_len,
            table: CounterTable::new(counter_entries, 2),
        }
    }

    fn l1_index(&self, pc: Pc) -> usize {
        ((pc.addr() >> 2) & (self.histories.len() as u64 - 1)) as usize
    }

    fn l2_index(&self, pc: Pc) -> u64 {
        let local = self.histories[self.l1_index(pc)] & mask(self.history_len);
        // Mix a few PC bits above the history so branches sharing an L1 slot
        // do not fully collide in L2.
        local ^ ((pc.addr() >> 2) << self.history_len)
    }
}

impl DirectionPredictor for Local {
    fn predict(&self, pc: Pc, _hist: HistoryBits) -> Prediction {
        let c = self.table.counter(self.l2_index(pc));
        Prediction::with_confidence(c.is_taken(), i32::from(c.is_strong()))
    }

    fn update(&mut self, pc: Pc, _hist: HistoryBits, taken: bool) {
        self.table.update(self.l2_index(pc), taken);
        let slot = self.l1_index(pc);
        self.histories[slot] =
            ((self.histories[slot] << 1) | u64::from(taken)) & mask(self.history_len);
    }

    fn history_len(&self) -> usize {
        0 // consumes no caller-provided (global) history
    }

    fn storage_bits(&self) -> usize {
        self.histories.len() * self.history_len + self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "local"
    }

    /// Fused kernel: the L1 slot and L2 index are derived once per element;
    /// the L2 index is read *before* this element's history push, exactly as
    /// the scalar predict-before-update ordering demands.
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        let mut bits = 0u64;
        for (i, input) in inputs.iter().enumerate() {
            let slot = self.l1_index(input.pc);
            let l2 = self.l2_index(input.pc);
            bits |= u64::from(self.table.predict_update(l2, input.taken)) << i;
            self.histories[slot] =
                ((self.histories[slot] << 1) | u64::from(input.taken)) & mask(self.history_len);
        }
        PredictBlock::from_parts(bits, inputs.len())
    }

    /// Replay kernel: `Local` ignores the caller's global history entirely,
    /// so the chunk's addresses and outcome mask are all it needs.
    fn replay_block(&mut self, pcs: &[Pc], outcomes: u64, _start: HistoryBits) -> PredictBlock {
        let mut bits = 0u64;
        for (i, &pc) in pcs.iter().enumerate() {
            let taken = (outcomes >> i) & 1 == 1;
            let slot = self.l1_index(pc);
            let l2 = self.l2_index(pc);
            bits |= u64::from(self.table.predict_update(l2, taken)) << i;
            self.histories[slot] =
                ((self.histories[slot] << 1) | u64::from(taken)) & mask(self.history_len);
        }
        PredictBlock::from_parts(bits, pcs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> HistoryBits {
        HistoryBits::new(0)
    }

    #[test]
    fn learns_short_period_pattern() {
        // T T N repeating is invisible to a bimodal but trivial for local
        // history.
        let mut p = Local::new(1024, 10, 1024);
        let pc = Pc::new(0x900);
        let pattern = [true, true, false];
        for i in 0..600 {
            p.update(pc, g(), pattern[i % 3]);
        }
        let mut correct = 0;
        for i in 0..30 {
            if p.predict(pc, g()).taken() == pattern[i % 3] {
                correct += 1;
            }
            p.update(pc, g(), pattern[i % 3]);
        }
        assert!(
            correct >= 28,
            "local pattern nearly perfect, got {correct}/30"
        );
    }

    #[test]
    fn separate_branches_have_separate_histories() {
        let mut p = Local::new(1024, 8, 4096);
        let a = Pc::new(0x100);
        let b = Pc::new(0x104);
        for _ in 0..50 {
            p.update(a, g(), true);
            p.update(b, g(), false);
        }
        assert!(p.predict(a, g()).taken());
        assert!(!p.predict(b, g()).taken());
    }

    #[test]
    fn storage_includes_both_levels() {
        let p = Local::new(1024, 10, 1024);
        assert_eq!(p.storage_bits(), 1024 * 10 + 1024 * 2);
    }
}
