//! Bimodal predictor: a table of two-bit counters indexed by branch address.

use crate::{
    CounterTable, DirectionPredictor, HistoryBits, Pc, PredictBlock, PredictInput, Prediction,
};

/// The bimodal (per-address two-bit counter) predictor.
///
/// This is the simplest dynamic predictor and the BIM bank of
/// [`BcGskew`](crate::BcGskew). It ignores history entirely, capturing only
/// each branch's bias.
///
/// # Examples
///
/// ```
/// use predictors::{Bimodal, DirectionPredictor, HistoryBits, Pc};
///
/// let mut p = Bimodal::new(4096);
/// let pc = Pc::new(0x8000);
/// let h = HistoryBits::new(0);
/// p.update(pc, h, true);
/// p.update(pc, h, true);
/// assert!(p.predict(pc, h).taken());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bimodal {
    table: CounterTable,
}

impl Bimodal {
    /// Creates a bimodal predictor with `entries` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a non-zero power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        Self {
            table: CounterTable::new(entries, 2),
        }
    }

    fn index(&self, pc: Pc) -> u64 {
        pc.addr() >> 2
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: Pc, _hist: HistoryBits) -> Prediction {
        let c = self.table.counter(self.index(pc));
        Prediction::with_confidence(c.is_taken(), i32::from(c.is_strong()))
    }

    fn update(&mut self, pc: Pc, _hist: HistoryBits, taken: bool) {
        self.table.update(self.index(pc), taken);
    }

    fn history_len(&self) -> usize {
        0
    }

    fn storage_bits(&self) -> usize {
        self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }

    /// Fused kernel: one index computation and one packed-word visit per
    /// element.
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        let mut bits = 0u64;
        for (i, input) in inputs.iter().enumerate() {
            let idx = self.index(input.pc);
            bits |= u64::from(self.table.predict_update(idx, input.taken)) << i;
        }
        PredictBlock::from_parts(bits, inputs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> HistoryBits {
        HistoryBits::new(0)
    }

    #[test]
    fn learns_bias_per_branch() {
        let mut p = Bimodal::new(1024);
        let a = Pc::new(0x1000);
        let b = Pc::new(0x1004);
        for _ in 0..4 {
            p.update(a, h(), true);
            p.update(b, h(), false);
        }
        assert!(p.predict(a, h()).taken());
        assert!(!p.predict(b, h()).taken());
    }

    #[test]
    fn aliasing_branches_share_a_counter() {
        let mut p = Bimodal::new(16);
        let a = Pc::new(0x0);
        let b = Pc::new(16 * 4); // same index modulo table size
        for _ in 0..4 {
            p.update(a, h(), true);
        }
        assert!(p.predict(b, h()).taken(), "aliased branch sees a's state");
    }

    #[test]
    fn ignores_history() {
        let mut p = Bimodal::new(64);
        let pc = Pc::new(0x40);
        p.update(pc, h(), true);
        p.update(pc, h(), true);
        let h1 = HistoryBits::from_raw(0b1010, 4);
        let h2 = HistoryBits::from_raw(0b0101, 4);
        assert_eq!(p.predict(pc, h1).taken(), p.predict(pc, h2).taken());
    }

    #[test]
    fn storage_accounting() {
        let p = Bimodal::new(8192);
        assert_eq!(p.storage_bits(), 8192 * 2);
        assert_eq!(p.storage_bytes(), 2048);
        assert_eq!(p.history_len(), 0);
    }

    #[test]
    fn hysteresis_survives_single_flip() {
        let mut p = Bimodal::new(64);
        let pc = Pc::new(0x40);
        for _ in 0..3 {
            p.update(pc, h(), true);
        }
        p.update(pc, h(), false);
        assert!(p.predict(pc, h()).taken());
    }
}
