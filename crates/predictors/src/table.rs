//! Prediction table storage: bit-packed direct-mapped counter banks and
//! structure-of-arrays set-associative tagged tables with LRU replacement.
//!
//! Both structures are laid out for the batched kernels in the predictor
//! implementations: counters are packed many-per-word so the hot tables fit
//! in L1, and tagged sets are flat parallel arrays instead of
//! vectors-of-vectors-of-structs. The packing is an implementation detail —
//! the observable semantics (indexing, saturation, LRU victim choice) are
//! bit-identical to a plain `Vec<SatCounter>` / array-of-structs layout, and
//! the tests below pin that equivalence.

use crate::counter::{packed_update, SatCounter};
use crate::history::mask;

/// A direct-mapped table of saturating counters (the pattern history table of
/// two-level predictors), bit-packed into 64-bit words.
///
/// Counters never straddle a word boundary: each word holds the largest
/// *power of two* of counters that fits (`2^⌊log2(64 / counter_bits)⌋`),
/// so slot-to-word addressing is a shift and a mask rather than a hardware
/// division — the unpipelined 64-bit divide would otherwise dominate every
/// table access. For 1-, 2- and 4-bit counters the power-of-two lane count
/// equals `⌊64 / counter_bits⌋` exactly; odd widths leave a few unused high
/// bits per word. A 16K-entry two-bit table therefore occupies 4 KB — small
/// enough to stay L1-resident under replay — instead of the 32 KB an
/// unpacked `Vec<SatCounter>` would take.
///
/// # Examples
///
/// ```
/// use predictors::CounterTable;
///
/// let mut t = CounterTable::new(1024, 2);
/// assert!(!t.counter(5).is_taken());
/// t.update(5, true);
/// t.update(5, true);
/// assert!(t.counter(5).is_taken());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterTable {
    words: Vec<u64>,
    entries: usize,
    index_mask: u64,
    counter_bits: usize,
    /// log2 of the counters per 64-bit word.
    lane_shift: u32,
    /// `(1 << lane_shift) - 1`: selects a slot's lane within its word.
    lane_mask: usize,
}

impl CounterTable {
    /// Creates a table of `entries` counters of `counter_bits` width, all
    /// initialized weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a non-zero power of two, or if the counter
    /// width is out of range.
    #[must_use]
    pub fn new(entries: usize, counter_bits: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table entries {entries} must be a power of two"
        );
        // Delegates the width check (1..=7) and yields the reset value.
        let init = u64::from(SatCounter::weakly_not_taken(counter_bits).value());
        let lane_shift = (64 / counter_bits).ilog2();
        let per_word = 1usize << lane_shift;
        let mut filled = 0u64;
        for slot in 0..per_word {
            filled |= init << (slot * counter_bits);
        }
        Self {
            words: vec![filled; entries.div_ceil(per_word)],
            entries,
            index_mask: (entries - 1) as u64,
            counter_bits,
            lane_shift,
            lane_mask: per_word - 1,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the table has zero entries (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// log2 of the entry count — the index width in bits.
    #[must_use]
    pub fn index_bits(&self) -> usize {
        self.entries.trailing_zeros() as usize
    }

    /// Storage budget in bits (entries × counter width).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.entries * self.counter_bits
    }

    /// The packed slot for `index`, masked to the table size.
    fn slot_of(&self, index: u64) -> usize {
        (index & self.index_mask) as usize
    }

    /// Splits a slot into its word index and in-word bit shift — pure
    /// shift-and-mask thanks to the power-of-two lane count.
    fn word_shift_of(&self, slot: usize) -> (usize, usize) {
        (
            slot >> self.lane_shift,
            (slot & self.lane_mask) * self.counter_bits,
        )
    }

    /// The counter at `index` (masked to the table size).
    #[must_use]
    pub fn counter(&self, index: u64) -> SatCounter {
        let (word, shift) = self.word_shift_of(self.slot_of(index));
        let raw = (self.words[word] >> shift) & mask(self.counter_bits);
        SatCounter::new(self.counter_bits, raw as u8)
    }

    /// Moves the counter at `index` toward `taken` with saturation —
    /// equivalent to `SatCounter::update` on the packed value.
    pub fn update(&mut self, index: u64, taken: bool) {
        let (word, shift) = self.word_shift_of(self.slot_of(index));
        let field = mask(self.counter_bits);
        let word = &mut self.words[word];
        let value = (*word >> shift) & field;
        let next = packed_update(value, field, taken);
        *word = (*word & !(field << shift)) | (next << shift);
    }

    /// Overwrites the counter at `index` with a raw `value` — the
    /// allocation primitive of tagged-geometric predictors, where a newly
    /// stolen entry's counter resets to weakly agree with the outcome
    /// instead of stepping there through saturating updates.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the counter width.
    pub fn set(&mut self, index: u64, value: u8) {
        let field = mask(self.counter_bits);
        assert!(
            u64::from(value) <= field,
            "counter value {value} exceeds {}-bit field",
            self.counter_bits
        );
        let (word, shift) = self.word_shift_of(self.slot_of(index));
        let word = &mut self.words[word];
        *word = (*word & !(field << shift)) | (u64::from(value) << shift);
    }

    /// Halves every counter in the table — one shift-and-mask per packed
    /// word, not per entry. This is the periodic useful-bit aging of
    /// tagged-geometric predictors: entries that stopped earning usefulness
    /// decay toward 0 and become allocation victims again.
    pub fn halve_all(&mut self) {
        // After a whole-word right shift, the top bit of each lane holds the
        // low bit of its higher neighbour; keep only each lane's low
        // `counter_bits - 1` bits (a halved value never needs the top bit).
        let mut keep = 0u64;
        let lane = mask(self.counter_bits - 1);
        for slot in 0..=self.lane_mask {
            keep |= lane << (slot * self.counter_bits);
        }
        for word in &mut self.words {
            *word = (*word >> 1) & keep;
        }
    }

    /// The direction the counter at `index` currently predicts, without
    /// materializing a [`SatCounter`].
    #[must_use]
    pub fn taken(&self, index: u64) -> bool {
        let (word, shift) = self.word_shift_of(self.slot_of(index));
        let raw = (self.words[word] >> shift) & mask(self.counter_bits);
        raw >= 1 << (self.counter_bits - 1)
    }

    /// Fused predict-then-train: returns the pre-update direction at
    /// `index` and moves the counter toward `taken`, with one addressing
    /// computation and one word visit. Step-for-step identical to
    /// `counter(index).is_taken()` followed by `update(index, taken)` —
    /// the batched kernels' single-visit building block.
    pub fn predict_update(&mut self, index: u64, taken: bool) -> bool {
        let (word, shift) = self.word_shift_of(self.slot_of(index));
        let field = mask(self.counter_bits);
        let word = &mut self.words[word];
        let value = (*word >> shift) & field;
        let next = packed_update(value, field, taken);
        *word = (*word & !(field << shift)) | (next << shift);
        value >= 1 << (self.counter_bits - 1)
    }
}

/// The result of a tagged lookup.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TagLookup {
    /// The tag was present in the set.
    Hit,
    /// The tag was absent.
    Miss,
}

/// A set-associative table of tagged payloads with true-LRU replacement.
///
/// This is the structure behind the tagged gshare critic (“similar to an
/// N-way associative cache, with each data item being a two-bit counter”,
/// §6), the filter tag table of the filtered perceptron, and the BTB.
///
/// The ways are stored structure-of-arrays: four flat parallel vectors
/// (valid / tag / LRU stamp / payload) indexed `set * ways + way`, so a set
/// probe touches contiguous memory per field instead of hopping across
/// per-way structs. Way order within a set — which decides the victim among
/// equally-stale candidates — is the array order, exactly as in the
/// array-of-structs layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaggedTable<T> {
    valid: Vec<bool>,
    tags: Vec<u64>,
    lru: Vec<u32>,
    data: Vec<T>,
    ways: usize,
    tag_bits: usize,
    clock: u32,
    set_mask: u64,
}

impl<T: Clone> TaggedTable<T> {
    /// Creates a table with `sets` sets of `ways` ways and `tag_bits`-wide
    /// tags.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a non-zero power of two, `ways == 0`, or
    /// `tag_bits` is 0 or greater than 32.
    #[must_use]
    pub fn new(sets: usize, ways: usize, tag_bits: usize, fill: T) -> Self {
        assert!(sets.is_power_of_two(), "sets {sets} must be a power of two");
        assert!(ways > 0, "ways must be non-zero");
        assert!(
            (1..=32).contains(&tag_bits),
            "tag width {tag_bits} out of range"
        );
        let slots = sets * ways;
        Self {
            valid: vec![false; slots],
            tags: vec![0; slots],
            lru: vec![0; slots],
            data: vec![fill; slots],
            ways,
            tag_bits,
            clock: 0,
            set_mask: (sets - 1) as u64,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.valid.len() / self.ways
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// log2 of the set count — the index width in bits.
    #[must_use]
    pub fn index_bits(&self) -> usize {
        self.sets().trailing_zeros() as usize
    }

    /// Tag width in bits.
    #[must_use]
    pub fn tag_bits(&self) -> usize {
        self.tag_bits
    }

    /// Total entry capacity (sets × ways).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.valid.len()
    }

    /// The first slot of the set selected by `index`.
    fn base_of(&self, index: u64) -> usize {
        (index & self.set_mask) as usize * self.ways
    }

    fn masked_tag(&self, tag: u64) -> u64 {
        tag & mask(self.tag_bits)
    }

    /// The slot holding `tag` in the set starting at `base`, if any —
    /// scanning in way order, as the victim search does.
    fn find(&self, base: usize, tag: u64) -> Option<usize> {
        (base..base + self.ways).find(|&s| self.valid[s] && self.tags[s] == tag)
    }

    /// Looks up `tag` in the set selected by `index` without touching LRU
    /// state.
    #[must_use]
    pub fn peek(&self, index: u64, tag: u64) -> Option<&T> {
        let tag = self.masked_tag(tag);
        self.find(self.base_of(index), tag).map(|s| &self.data[s])
    }

    /// Looks up `tag` in the set selected by `index`, updating LRU state on a
    /// hit.
    pub fn lookup(&mut self, index: u64, tag: u64) -> Option<&mut T> {
        let tag = self.masked_tag(tag);
        let base = self.base_of(index);
        self.clock = self.clock.wrapping_add(1);
        self.find(base, tag).map(|s| {
            self.lru[s] = self.clock;
            &mut self.data[s]
        })
    }

    /// Inserts `data` under `tag`, evicting the LRU way if the set is full.
    ///
    /// Returns [`TagLookup::Hit`] if the tag was already present (its data is
    /// replaced), [`TagLookup::Miss`] if a way was allocated.
    pub fn insert(&mut self, index: u64, tag: u64, data: T) -> TagLookup {
        let tag = self.masked_tag(tag);
        let base = self.base_of(index);
        self.clock = self.clock.wrapping_add(1);
        if let Some(s) = self.find(base, tag) {
            self.data[s] = data;
            self.lru[s] = self.clock;
            return TagLookup::Hit;
        }
        // Victim: first invalid way in way order, else the least recently
        // used one (first such way on an LRU-stamp tie).
        let victim = (base..base + self.ways)
            .min_by_key(|&s| {
                if self.valid[s] {
                    (1u64, u64::from(self.lru[s]))
                } else {
                    (0, 0)
                }
            })
            .expect("set has at least one way");
        self.valid[victim] = true;
        self.tags[victim] = tag;
        self.data[victim] = data;
        self.lru[victim] = self.clock;
        TagLookup::Miss
    }

    /// Number of valid entries currently held.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.valid.iter().filter(|v| **v).count()
    }

    /// Iterates over all valid `(set, tag, data)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &T)> {
        self.valid
            .iter()
            .enumerate()
            .filter(|(_, v)| **v)
            .map(|(s, _)| (s / self.ways, self.tags[s], &self.data[s]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_indexes_with_mask() {
        let mut t = CounterTable::new(8, 2);
        t.update(3, true);
        t.update(3, true);
        // Index 11 aliases to 3 in an 8-entry table.
        assert!(t.counter(11).is_taken());
        assert_eq!(t.index_bits(), 3);
        assert_eq!(t.storage_bits(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn counter_table_rejects_non_power_of_two() {
        let _ = CounterTable::new(100, 2);
    }

    #[test]
    fn packed_counters_are_independent_within_a_word() {
        // 32 two-bit counters share each word; training one slot must not
        // leak into its packed neighbours.
        let mut t = CounterTable::new(64, 2);
        t.update(7, true);
        t.update(7, true);
        t.update(7, true);
        for i in 0..64u64 {
            if i == 7 {
                assert_eq!(t.counter(i).value(), 3);
            } else {
                assert_eq!(t.counter(i).value(), 1, "slot {i} corrupted");
            }
        }
    }

    #[test]
    fn word_boundary_neighbours_do_not_alias() {
        // With 3-bit counters 16 fit per word (power-of-two lanes, the top
        // 16 bits unused); slots 15 and 16 are the last of word 0 and the
        // first of word 1.
        let mut t = CounterTable::new(64, 3);
        for _ in 0..7 {
            t.update(15, true);
        }
        for _ in 0..3 {
            t.update(16, false);
        }
        assert_eq!(t.counter(15).value(), 7);
        assert_eq!(t.counter(16).value(), 0);
        assert_eq!(
            t.counter(14).value(),
            3,
            "weakly-not-taken reset for 3 bits"
        );
        assert_eq!(t.counter(17).value(), 3);
    }

    #[test]
    fn saturation_at_both_rails_in_packed_storage() {
        let mut t = CounterTable::new(8, 2);
        for _ in 0..10 {
            t.update(0, true);
        }
        assert_eq!(t.counter(0).value(), 3);
        assert!(t.counter(0).is_strong());
        for _ in 0..10 {
            t.update(0, false);
        }
        assert_eq!(t.counter(0).value(), 0);
        assert!(t.counter(0).is_strong());
    }

    #[test]
    fn packed_table_matches_unpacked_reference_per_slot() {
        // Drive the packed table and a plain Vec<SatCounter> with the same
        // deterministic stream; every slot must agree afterwards.
        for bits in 1..=7usize {
            let entries = 128;
            let mut packed = CounterTable::new(entries, bits);
            let mut reference = vec![SatCounter::weakly_not_taken(bits); entries];
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            for _ in 0..4096 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let index = state >> 32; // exercises the index mask too
                let taken = state & 1 == 1;
                packed.update(index, taken);
                reference[(index as usize) % entries].update(taken);
            }
            for (i, want) in reference.iter().enumerate() {
                assert_eq!(
                    packed.counter(i as u64),
                    *want,
                    "{bits}-bit slot {i} diverged from reference"
                );
            }
        }
    }

    #[test]
    fn fused_predict_update_matches_split_read_then_train() {
        // predict_update must be indistinguishable from counter().is_taken()
        // followed by update(), for every width, over a deterministic sweep.
        for bits in 1..=7usize {
            let mut fused = CounterTable::new(64, bits);
            let mut split = CounterTable::new(64, bits);
            let mut state = 0x243f_6a88_85a3_08d3u64;
            for _ in 0..2048 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let index = state >> 40;
                let taken = state & 2 == 2;
                let want = split.counter(index).is_taken();
                split.update(index, taken);
                assert_eq!(fused.taken(index), want, "{bits}-bit read drifted");
                assert_eq!(
                    fused.predict_update(index, taken),
                    want,
                    "{bits}-bit fused direction drifted"
                );
            }
            assert_eq!(fused, split, "{bits}-bit tables diverged after sweep");
        }
    }

    #[test]
    fn full_index_space_sweep_at_smallest_table3_budget() {
        // The smallest Table-3 gshare (2 KB budget) has 8K two-bit entries.
        // Touch every index once and verify full isolation, then again via
        // aliased indices above the mask.
        let entries = 8 * 1024;
        let mut t = CounterTable::new(entries, 2);
        for i in 0..entries as u64 {
            t.update(i, i % 3 == 0);
        }
        for i in 0..entries as u64 {
            let want = if i % 3 == 0 { 2 } else { 0 };
            assert_eq!(t.counter(i).value(), want, "slot {i}");
        }
        // An index with bits above the mask must land on its alias.
        t.update(entries as u64 + 5, true);
        assert_eq!(t.counter(5).value(), t.counter(entries as u64 + 5).value());
    }

    #[test]
    fn set_overwrites_without_touching_neighbours() {
        let mut t = CounterTable::new(64, 3);
        for i in 0..64u64 {
            t.update(i, i % 2 == 0);
        }
        let before: Vec<u8> = (0..64u64).map(|i| t.counter(i).value()).collect();
        t.set(20, 7);
        t.set(21, 0);
        for i in 0..64u64 {
            let want = match i {
                20 => 7,
                21 => 0,
                _ => before[i as usize],
            };
            assert_eq!(t.counter(i).value(), want, "slot {i}");
        }
        // Aliased indices land on the same slot.
        t.set(64 + 20, 2);
        assert_eq!(t.counter(20).value(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn set_rejects_oversized_value() {
        let mut t = CounterTable::new(8, 2);
        t.set(0, 4);
    }

    #[test]
    fn halve_all_matches_per_entry_halving() {
        for bits in 1..=7usize {
            let mut t = CounterTable::new(64, bits);
            let mut state = 0x1234_5678_9abc_def0u64;
            for _ in 0..1024 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                t.update(state >> 32, state & 1 == 1);
            }
            let want: Vec<u8> = (0..64u64).map(|i| t.counter(i).value() / 2).collect();
            t.halve_all();
            for i in 0..64u64 {
                assert_eq!(
                    t.counter(i).value(),
                    want[i as usize],
                    "{bits}-bit slot {i}"
                );
            }
        }
    }

    #[test]
    fn tagged_miss_then_hit() {
        let mut t: TaggedTable<u8> = TaggedTable::new(4, 2, 8, 0);
        assert!(t.peek(1, 0x42).is_none());
        assert_eq!(t.insert(1, 0x42, 7), TagLookup::Miss);
        assert_eq!(t.peek(1, 0x42), Some(&7));
        assert_eq!(*t.lookup(1, 0x42).unwrap(), 7);
    }

    #[test]
    fn tagged_insert_same_tag_replaces() {
        let mut t: TaggedTable<u8> = TaggedTable::new(4, 2, 8, 0);
        t.insert(0, 0x11, 1);
        assert_eq!(t.insert(0, 0x11, 2), TagLookup::Hit);
        assert_eq!(t.peek(0, 0x11), Some(&2));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut t: TaggedTable<u8> = TaggedTable::new(1, 2, 8, 0);
        t.insert(0, 0xa, 1);
        t.insert(0, 0xb, 2);
        // Touch 0xa so 0xb becomes LRU.
        let _ = t.lookup(0, 0xa);
        t.insert(0, 0xc, 3);
        assert!(t.peek(0, 0xa).is_some(), "recently used entry must survive");
        assert!(t.peek(0, 0xb).is_none(), "LRU entry must be evicted");
        assert!(t.peek(0, 0xc).is_some());
    }

    #[test]
    fn invalid_ways_fill_before_eviction() {
        let mut t: TaggedTable<u8> = TaggedTable::new(1, 4, 8, 0);
        for (i, tag) in [0x1u64, 0x2, 0x3, 0x4].iter().enumerate() {
            t.insert(0, *tag, i as u8);
        }
        assert_eq!(t.occupancy(), 4);
        for tag in [0x1u64, 0x2, 0x3, 0x4] {
            assert!(t.peek(0, tag).is_some());
        }
    }

    #[test]
    fn tags_are_masked_to_width() {
        let mut t: TaggedTable<u8> = TaggedTable::new(2, 1, 4, 0);
        t.insert(0, 0xf3, 9);
        // Only low 4 bits of the tag are stored/compared.
        assert_eq!(t.peek(0, 0x3), Some(&9));
    }

    #[test]
    fn sets_are_independent() {
        let mut t: TaggedTable<u8> = TaggedTable::new(2, 1, 8, 0);
        t.insert(0, 0x5, 1);
        t.insert(1, 0x5, 2);
        assert_eq!(t.peek(0, 0x5), Some(&1));
        assert_eq!(t.peek(1, 0x5), Some(&2));
    }

    #[test]
    fn iter_reports_valid_entries() {
        let mut t: TaggedTable<u8> = TaggedTable::new(2, 2, 8, 0);
        t.insert(0, 0x1, 10);
        t.insert(1, 0x2, 20);
        let mut entries: Vec<_> = t.iter().map(|(s, tag, d)| (s, tag, *d)).collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(0, 0x1, 10), (1, 0x2, 20)]);
    }
}
