//! Prediction table storage: direct-mapped counter tables and set-associative
//! tagged tables with LRU replacement.

use crate::counter::SatCounter;
use crate::history::mask;

/// A direct-mapped table of saturating counters (the pattern history table of
/// two-level predictors).
///
/// # Examples
///
/// ```
/// use predictors::CounterTable;
///
/// let mut t = CounterTable::new(1024, 2);
/// assert!(!t.counter(5).is_taken());
/// t.counter_mut(5).update(true);
/// t.counter_mut(5).update(true);
/// assert!(t.counter(5).is_taken());
/// ```
#[derive(Clone, Debug)]
pub struct CounterTable {
    counters: Vec<SatCounter>,
    index_mask: u64,
    counter_bits: usize,
}

impl CounterTable {
    /// Creates a table of `entries` counters of `counter_bits` width, all
    /// initialized weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a non-zero power of two, or if the counter
    /// width is out of range.
    #[must_use]
    pub fn new(entries: usize, counter_bits: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "table entries {entries} must be a power of two"
        );
        Self {
            counters: vec![SatCounter::weakly_not_taken(counter_bits); entries],
            index_mask: (entries - 1) as u64,
            counter_bits,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether the table has zero entries (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// log2 of the entry count — the index width in bits.
    #[must_use]
    pub fn index_bits(&self) -> usize {
        self.counters.len().trailing_zeros() as usize
    }

    /// Storage budget in bits (entries × counter width).
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.counters.len() * self.counter_bits
    }

    /// The counter at `index` (masked to the table size).
    #[must_use]
    pub fn counter(&self, index: u64) -> SatCounter {
        self.counters[(index & self.index_mask) as usize]
    }

    /// Mutable access to the counter at `index` (masked to the table size).
    pub fn counter_mut(&mut self, index: u64) -> &mut SatCounter {
        &mut self.counters[(index & self.index_mask) as usize]
    }
}

/// One way of a set in a [`TaggedTable`].
#[derive(Clone, Debug)]
struct Way<T> {
    valid: bool,
    tag: u64,
    lru: u32,
    data: T,
}

/// The result of a tagged lookup.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TagLookup {
    /// The tag was present in the set.
    Hit,
    /// The tag was absent.
    Miss,
}

/// A set-associative table of tagged payloads with true-LRU replacement.
///
/// This is the structure behind the tagged gshare critic (“similar to an
/// N-way associative cache, with each data item being a two-bit counter”,
/// §6), the filter tag table of the filtered perceptron, and the BTB.
#[derive(Clone, Debug)]
pub struct TaggedTable<T> {
    sets: Vec<Vec<Way<T>>>,
    ways: usize,
    tag_bits: usize,
    clock: u32,
    set_mask: u64,
}

impl<T: Clone> TaggedTable<T> {
    /// Creates a table with `sets` sets of `ways` ways and `tag_bits`-wide
    /// tags.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a non-zero power of two, `ways == 0`, or
    /// `tag_bits` is 0 or greater than 32.
    #[must_use]
    pub fn new(sets: usize, ways: usize, tag_bits: usize, fill: T) -> Self {
        assert!(sets.is_power_of_two(), "sets {sets} must be a power of two");
        assert!(ways > 0, "ways must be non-zero");
        assert!(
            (1..=32).contains(&tag_bits),
            "tag width {tag_bits} out of range"
        );
        let way = Way {
            valid: false,
            tag: 0,
            lru: 0,
            data: fill,
        };
        Self {
            sets: vec![vec![way; ways]; sets],
            ways,
            tag_bits,
            clock: 0,
            set_mask: (sets - 1) as u64,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    #[must_use]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// log2 of the set count — the index width in bits.
    #[must_use]
    pub fn index_bits(&self) -> usize {
        self.sets.len().trailing_zeros() as usize
    }

    /// Tag width in bits.
    #[must_use]
    pub fn tag_bits(&self) -> usize {
        self.tag_bits
    }

    /// Total entry capacity (sets × ways).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }

    fn set_of(&self, index: u64) -> usize {
        (index & self.set_mask) as usize
    }

    fn masked_tag(&self, tag: u64) -> u64 {
        tag & mask(self.tag_bits)
    }

    /// Looks up `tag` in the set selected by `index` without touching LRU
    /// state.
    #[must_use]
    pub fn peek(&self, index: u64, tag: u64) -> Option<&T> {
        let tag = self.masked_tag(tag);
        self.sets[self.set_of(index)]
            .iter()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| &w.data)
    }

    /// Looks up `tag` in the set selected by `index`, updating LRU state on a
    /// hit.
    pub fn lookup(&mut self, index: u64, tag: u64) -> Option<&mut T> {
        let tag = self.masked_tag(tag);
        let set = self.set_of(index);
        self.clock = self.clock.wrapping_add(1);
        let clock = self.clock;
        self.sets[set]
            .iter_mut()
            .find(|w| w.valid && w.tag == tag)
            .map(|w| {
                w.lru = clock;
                &mut w.data
            })
    }

    /// Inserts `data` under `tag`, evicting the LRU way if the set is full.
    ///
    /// Returns [`TagLookup::Hit`] if the tag was already present (its data is
    /// replaced), [`TagLookup::Miss`] if a way was allocated.
    pub fn insert(&mut self, index: u64, tag: u64, data: T) -> TagLookup {
        let tag = self.masked_tag(tag);
        let set = self.set_of(index);
        self.clock = self.clock.wrapping_add(1);
        let clock = self.clock;
        let ways = &mut self.sets[set];
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.data = data;
            w.lru = clock;
            return TagLookup::Hit;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|w| {
                if w.valid {
                    (1u64, u64::from(w.lru))
                } else {
                    (0, 0)
                }
            })
            .expect("set has at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.data = data;
        victim.lru = clock;
        TagLookup::Miss
    }

    /// Number of valid entries currently held.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }

    /// Iterates over all valid `(set, tag, data)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &T)> {
        self.sets.iter().enumerate().flat_map(|(s, ways)| {
            ways.iter()
                .filter(|w| w.valid)
                .map(move |w| (s, w.tag, &w.data))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_table_indexes_with_mask() {
        let mut t = CounterTable::new(8, 2);
        t.counter_mut(3).update(true);
        t.counter_mut(3).update(true);
        // Index 11 aliases to 3 in an 8-entry table.
        assert!(t.counter(11).is_taken());
        assert_eq!(t.index_bits(), 3);
        assert_eq!(t.storage_bits(), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn counter_table_rejects_non_power_of_two() {
        let _ = CounterTable::new(100, 2);
    }

    #[test]
    fn tagged_miss_then_hit() {
        let mut t: TaggedTable<u8> = TaggedTable::new(4, 2, 8, 0);
        assert!(t.peek(1, 0x42).is_none());
        assert_eq!(t.insert(1, 0x42, 7), TagLookup::Miss);
        assert_eq!(t.peek(1, 0x42), Some(&7));
        assert_eq!(*t.lookup(1, 0x42).unwrap(), 7);
    }

    #[test]
    fn tagged_insert_same_tag_replaces() {
        let mut t: TaggedTable<u8> = TaggedTable::new(4, 2, 8, 0);
        t.insert(0, 0x11, 1);
        assert_eq!(t.insert(0, 0x11, 2), TagLookup::Hit);
        assert_eq!(t.peek(0, 0x11), Some(&2));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut t: TaggedTable<u8> = TaggedTable::new(1, 2, 8, 0);
        t.insert(0, 0xa, 1);
        t.insert(0, 0xb, 2);
        // Touch 0xa so 0xb becomes LRU.
        let _ = t.lookup(0, 0xa);
        t.insert(0, 0xc, 3);
        assert!(t.peek(0, 0xa).is_some(), "recently used entry must survive");
        assert!(t.peek(0, 0xb).is_none(), "LRU entry must be evicted");
        assert!(t.peek(0, 0xc).is_some());
    }

    #[test]
    fn invalid_ways_fill_before_eviction() {
        let mut t: TaggedTable<u8> = TaggedTable::new(1, 4, 8, 0);
        for (i, tag) in [0x1u64, 0x2, 0x3, 0x4].iter().enumerate() {
            t.insert(0, *tag, i as u8);
        }
        assert_eq!(t.occupancy(), 4);
        for tag in [0x1u64, 0x2, 0x3, 0x4] {
            assert!(t.peek(0, tag).is_some());
        }
    }

    #[test]
    fn tags_are_masked_to_width() {
        let mut t: TaggedTable<u8> = TaggedTable::new(2, 1, 4, 0);
        t.insert(0, 0xf3, 9);
        // Only low 4 bits of the tag are stored/compared.
        assert_eq!(t.peek(0, 0x3), Some(&9));
    }

    #[test]
    fn sets_are_independent() {
        let mut t: TaggedTable<u8> = TaggedTable::new(2, 1, 8, 0);
        t.insert(0, 0x5, 1);
        t.insert(1, 0x5, 2);
        assert_eq!(t.peek(0, 0x5), Some(&1));
        assert_eq!(t.peek(1, 0x5), Some(&2));
    }

    #[test]
    fn iter_reports_valid_entries() {
        let mut t: TaggedTable<u8> = TaggedTable::new(2, 2, 8, 0);
        t.insert(0, 0x1, 10);
        t.insert(1, 0x2, 20);
        let mut entries: Vec<_> = t.iter().map(|(s, tag, d)| (s, tag, *d)).collect();
        entries.sort_unstable();
        assert_eq!(entries, vec![(0, 0x1, 10), (1, 0x2, 20)]);
    }
}
