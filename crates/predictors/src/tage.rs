//! TAGE — a TAgged GEometric-history-length predictor — plus a
//! Bullseye-style hard-to-predict (H2P) side allocator.
//!
//! The prophet/critic split is predictor-agnostic (§3.1: “the components …
//! can be any existing predictors”), and the tagged-geometric family is the
//! strongest conventional engine known for the role. [`Tage`] follows the
//! classic construction: a bimodal base table plus N partially-tagged
//! direct-mapped banks indexed by geometrically growing history lengths.
//! The longest-history hitting bank *provides* the prediction; the next
//! hit (or the base table) is the *alternate*. Useful bits guard provider
//! entries from reallocation and decay on a deterministic period; on a
//! mispredict a new entry is stolen in a longer-history bank.
//!
//! [`DynamicAllocator`] is the H2P subsystem in the style of Bullseye
//! (arXiv:2506.06773): hard-to-predict statics — the top slice of
//! mispredicting branches, which Lin & Tarsa (arXiv:1906.08170) show
//! dominate misprediction cost — are flagged by an online
//! occurrence/mispredict tracker (the same ≥32-execution threshold the
//! trace-side `BranchProfile` H2P flagging uses) and each flagged static
//! *steals dedicated table capacity*: a private slice of pattern counters
//! no other branch can alias. A confidence gate arbitrates: the dedicated
//! entry only overrides TAGE when its counter is saturated.
//!
//! Both scalar and fused batched kernels are provided. `predict` is pure
//! (`&self`), so the fused `predict_block` — which computes each element's
//! per-bank index/tag hashes once and predicts-then-trains in element
//! order — is *exactly* the scalar sequence; `batch_equiv.rs` pins the
//! equivalence and `tage_invariants.rs` pins the structural invariants.

use crate::counter::SatCounter;
use crate::history::{mask, HistoryBits};
use crate::index::{fold, gshare_index, mix2};
use crate::table::CounterTable;
use crate::{DirectionPredictor, Pc, PredictBlock, PredictInput, Prediction};

/// Counter width of the tagged banks (the conventional TAGE choice).
const CTR_BITS: usize = 3;
/// Counter width of the bimodal base table.
const BASE_BITS: usize = 2;
/// Width of the useful counters guarding tagged entries.
const U_BITS: usize = 2;
/// Width of the use-alt-on-newly-allocated policy counter.
const ALT_BITS: usize = 4;
/// Shortest geometric history length.
const MIN_HIST: usize = 5;
/// Updates between useful-bit aging passes (deterministic, not wall-clock).
const U_AGING_PERIOD: u32 = 4096;
/// Upper bound on tagged banks a [`Tage`] instance may carry.
const MAX_BANKS: usize = 8;

/// One tagged bank: packed prediction counters, packed useful counters and
/// a parallel partial-tag vector, all direct-mapped at one history length.
#[derive(Clone, Debug, PartialEq, Eq)]
struct TageBank {
    counters: CounterTable,
    useful: CounterTable,
    tags: Vec<u16>,
    tag_bits: usize,
    hist_len: usize,
}

impl TageBank {
    fn new(entries: usize, tag_bits: usize, hist_len: usize) -> Self {
        assert!(
            (1..=16).contains(&tag_bits),
            "tag width {tag_bits} out of range 1..=16"
        );
        Self {
            counters: CounterTable::new(entries, CTR_BITS),
            useful: CounterTable::new(entries, U_BITS),
            tags: vec![0; entries],
            tag_bits,
            hist_len,
        }
    }

    /// Per-entry storage: prediction counter + useful counter + tag.
    fn storage_bits(&self) -> usize {
        self.counters.storage_bits() + self.useful.storage_bits() + self.tags.len() * self.tag_bits
    }
}

/// Everything one `(pc, history)` context resolves to: per-bank hashes and
/// the provider/alternate scan result. Computed once and shared between
/// the predict and train halves of the fused kernels — `predict` reads no
/// mutable state, so the reuse is bit-identical to recomputing.
struct Lookup {
    idx: [u64; MAX_BANKS],
    tag: [u16; MAX_BANKS],
    base_idx: u64,
    /// Longest-history hitting bank, if any.
    provider: Option<usize>,
    /// Next-longest hitting bank below the provider, if any.
    alt: Option<usize>,
}

/// The directions a lookup decides on, before training.
struct Decision {
    /// The prediction actually returned (after the H2P chooser).
    final_taken: bool,
    /// The TAGE-side prediction (after the alternate policy) — this is what
    /// drives bank allocation; the H2P override is a separate structure.
    tage_taken: bool,
    provider_taken: bool,
    alt_taken: bool,
    /// Provider entry looks newly allocated: weak counter, zero useful.
    newly: bool,
    confidence: i32,
}

/// A Bullseye-style dynamic allocator for hard-to-predict statics.
///
/// Tracks per-static occurrence and mispredict counts in a small
/// direct-mapped profile; a static that crosses the H2P thresholds
/// (≥ [`Self::FLAG_MIN_OCCURRENCES`] executions with ≥ 25 % mispredicts —
/// the online mirror of the trace-side `BranchProfile` flagging) is
/// *flagged* and assigned a private slice of the dedicated counter table
/// that no other branch can alias. Flag capacity is bounded; the flagged
/// set is append-only, so slot assignment is stable and deterministic.
///
/// # Examples
///
/// ```
/// use predictors::DynamicAllocator;
///
/// let a = DynamicAllocator::new(16, 16, 32);
/// assert_eq!(a.flagged_statics(), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DynamicAllocator {
    /// Flagged static branch addresses, in flagging order (append-only —
    /// slot `s` permanently owns dedicated entries `s * entries_per ..`).
    flagged: Vec<u64>,
    capacity: usize,
    /// Dedicated pattern counters: `capacity × entries_per` three-bit cells.
    table: CounterTable,
    /// log2 of the per-static entry count.
    ctx_bits: usize,
    /// Per-slot tournament chooser: counts up when the dedicated entry
    /// beats the TAGE-side prediction on a disagreement, down when it
    /// loses. The override fires only while this counter is taken, so a
    /// flagged static's dedicated slice must earn a winning record before
    /// it may overrule TAGE.
    chooser: CounterTable,
    /// Online H2P profile, direct-mapped: partial tag + occurrence and
    /// mispredict counts (saturating bytes).
    track_tags: Vec<u16>,
    track_occ: Vec<u8>,
    track_misp: Vec<u8>,
}

impl DynamicAllocator {
    /// Executions before a static can be flagged (matches the trace-side
    /// `H2P_MIN_OCCURRENCES`).
    pub const FLAG_MIN_OCCURRENCES: u8 = 32;

    /// Partial-tag width of the tracker.
    const TRACK_TAG_BITS: usize = 12;

    /// Creates an allocator for up to `capacity` flagged statics, each
    /// owning `entries_per` dedicated counters, with a `tracker_entries`
    /// online profile.
    ///
    /// # Panics
    ///
    /// Panics if any size is not a non-zero power of two.
    #[must_use]
    pub fn new(capacity: usize, entries_per: usize, tracker_entries: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && entries_per.is_power_of_two(),
            "allocator capacity {capacity} × {entries_per} must be powers of two"
        );
        assert!(
            tracker_entries.is_power_of_two(),
            "tracker entries {tracker_entries} must be a power of two"
        );
        Self {
            flagged: Vec::new(),
            capacity,
            table: CounterTable::new(capacity * entries_per, CTR_BITS),
            ctx_bits: entries_per.trailing_zeros() as usize,
            chooser: CounterTable::new(capacity, CTR_BITS),
            track_tags: vec![0; tracker_entries],
            track_occ: vec![0; tracker_entries],
            track_misp: vec![0; tracker_entries],
        }
    }

    /// Number of statics currently holding dedicated capacity.
    #[must_use]
    pub fn flagged_statics(&self) -> usize {
        self.flagged.len()
    }

    /// Maximum number of flagged statics.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `pc` currently holds dedicated capacity.
    #[must_use]
    pub fn is_flagged(&self, pc: Pc) -> bool {
        self.flagged.contains(&pc.addr())
    }

    /// Flags `pc` as hard-to-predict, stealing a dedicated table slice for
    /// it (no-op when already flagged or at capacity). Exposed so callers
    /// with trace-side profiles — `BranchProfile::h2p_candidates` — can
    /// seed the flag set instead of waiting for the online tracker.
    pub fn flag(&mut self, pc: Pc) {
        if self.flagged.len() < self.capacity && !self.flagged.contains(&pc.addr()) {
            self.flagged.push(pc.addr());
        }
    }

    /// The dedicated-table index of flagged slot `slot` in context `hist`.
    fn entry_index(&self, slot: usize, pc: Pc, hist: HistoryBits) -> u64 {
        let ctx = gshare_index(pc.addr(), hist.bits(), hist.len(), self.ctx_bits);
        ((slot as u64) << self.ctx_bits) | ctx
    }

    /// The dedicated prediction for `pc`, if flagged: `(direction,
    /// saturated)`. The caller's chooser only honours saturated entries.
    #[must_use]
    pub fn predict_h2p(&self, pc: Pc, hist: HistoryBits) -> Option<(bool, bool)> {
        let slot = self.flagged.iter().position(|&p| p == pc.addr())?;
        let c = self.table.counter(self.entry_index(slot, pc, hist));
        Some((c.is_taken(), c.is_strong()))
    }

    /// Whether the tournament chooser currently favours `pc`'s dedicated
    /// entry over the TAGE-side prediction.
    #[must_use]
    pub fn chooser_favors(&self, pc: Pc) -> bool {
        self.flagged
            .iter()
            .position(|&p| p == pc.addr())
            .is_some_and(|slot| self.chooser.taken(slot as u64))
    }

    /// Commit-time bookkeeping: profile the static, flag it when it crosses
    /// the H2P thresholds, score the chooser on disagreements, and train
    /// the dedicated entry if flagged. `tage_taken` is the TAGE-side
    /// prediction the chooser competes against.
    pub fn observe(
        &mut self,
        pc: Pc,
        hist: HistoryBits,
        taken: bool,
        tage_taken: bool,
        mispredicted: bool,
    ) {
        let word = pc.addr() >> 2;
        let slot = (word & (self.track_tags.len() as u64 - 1)) as usize;
        let tag = (fold(word.rotate_left(17), Self::TRACK_TAG_BITS)) as u16;
        if self.track_tags[slot] != tag {
            // Direct-mapped replacement: the newcomer restarts the profile.
            self.track_tags[slot] = tag;
            self.track_occ[slot] = 0;
            self.track_misp[slot] = 0;
        }
        self.track_occ[slot] = self.track_occ[slot].saturating_add(1);
        if mispredicted {
            self.track_misp[slot] = self.track_misp[slot].saturating_add(1);
        }
        if self.track_occ[slot] >= Self::FLAG_MIN_OCCURRENCES
            && u32::from(self.track_misp[slot]) * 4 >= u32::from(self.track_occ[slot])
        {
            self.flag(pc);
        }
        if let Some(slot) = self.flagged.iter().position(|&p| p == pc.addr()) {
            let idx = self.entry_index(slot, pc, hist);
            let c = self.table.counter(idx);
            // Tournament scoring: only committed (saturated) dedicated
            // predictions that disagreed with TAGE move the chooser —
            // agreements carry no information about which side is better.
            if c.is_strong() && c.is_taken() != tage_taken {
                self.chooser.update(slot as u64, c.is_taken() == taken);
            }
            self.table.update(idx, taken);
        }
    }

    /// Storage: dedicated counters + chooser + flagged addresses +
    /// tracker profile.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.table.storage_bits()
            + self.chooser.storage_bits()
            + self.capacity * 64
            + self.track_tags.len() * (Self::TRACK_TAG_BITS + 16)
    }
}

/// The TAGE predictor: bimodal base + N tagged geometric-history banks,
/// with an optional [`DynamicAllocator`] H2P subsystem.
///
/// # Examples
///
/// ```
/// use predictors::{DirectionPredictor, HistoryBits, Pc, Tage};
///
/// let mut p = Tage::new(1024, 256, 4, 8, 32);
/// let mut bhr = HistoryBits::new(p.history_len());
/// let pc = Pc::new(0x40_1000);
/// for _ in 0..4 {
///     p.update(pc, bhr, true);
///     bhr.push(true);
/// }
/// assert!(p.predict(pc, bhr).taken());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tage {
    base: CounterTable,
    banks: Vec<TageBank>,
    /// Policy counter: trust the alternate over a newly allocated provider?
    use_alt_on_new: SatCounter,
    /// Deterministic update counter driving periodic useful-bit aging.
    tick: u32,
    history_len: usize,
    allocator: Option<DynamicAllocator>,
}

impl Tage {
    /// Creates a TAGE predictor with `banks` tagged banks of `bank_entries`
    /// entries each over geometric history lengths from `MIN_HIST` to
    /// `max_hist`, plus a `base_entries`-entry bimodal base.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is 0 or exceeds 8, if `max_hist` exceeds 64 or is
    /// not past the geometric minimum, or if any table size is not a
    /// power of two.
    #[must_use]
    pub fn new(
        base_entries: usize,
        bank_entries: usize,
        banks: usize,
        tag_bits: usize,
        max_hist: usize,
    ) -> Self {
        assert!(
            (1..=MAX_BANKS).contains(&banks),
            "bank count {banks} out of range 1..={MAX_BANKS}"
        );
        assert!(
            (MIN_HIST + banks..=64).contains(&max_hist),
            "max history {max_hist} out of range"
        );
        let lengths = geometric_lengths(banks, MIN_HIST, max_hist);
        Self {
            base: CounterTable::new(base_entries, BASE_BITS),
            banks: lengths
                .iter()
                .map(|&l| TageBank::new(bank_entries, tag_bits, l))
                .collect(),
            use_alt_on_new: SatCounter::weakly_not_taken(ALT_BITS),
            tick: 0,
            history_len: max_hist,
            allocator: None,
        }
    }

    /// Attaches a [`DynamicAllocator`] H2P subsystem (builder style).
    #[must_use]
    pub fn with_allocator(mut self, allocator: DynamicAllocator) -> Self {
        self.allocator = Some(allocator);
        self
    }

    /// The attached H2P allocator, if any.
    #[must_use]
    pub fn allocator(&self) -> Option<&DynamicAllocator> {
        self.allocator.as_ref()
    }

    /// Mutable access to the attached H2P allocator, if any — for seeding
    /// the flag set from a trace-side `BranchProfile`.
    pub fn allocator_mut(&mut self) -> Option<&mut DynamicAllocator> {
        self.allocator.as_mut()
    }

    /// The geometric history length of each tagged bank, shortest first.
    #[must_use]
    pub fn bank_history_lengths(&self) -> Vec<usize> {
        self.banks.iter().map(|b| b.hist_len).collect()
    }

    /// The useful-counter value of every entry in bank `bank`.
    /// Test instrumentation for the aging invariants.
    #[must_use]
    pub fn useful_values(&self, bank: usize) -> Vec<u8> {
        let b = &self.banks[bank];
        (0..b.counters.len())
            .map(|i| b.useful.counter(i as u64).value())
            .collect()
    }

    /// The provider and alternate bank history lengths for one context, if
    /// any bank hits: `(provider_hist_len, alternate_hist_len_or_0)`.
    /// Test instrumentation for the provider ≥ alternate invariant.
    #[must_use]
    pub fn provider_lengths(&self, pc: Pc, hist: HistoryBits) -> Option<(usize, usize)> {
        let look = self.lookup(pc, hist);
        look.provider.map(|p| {
            (
                self.banks[p].hist_len,
                look.alt.map_or(0, |a| self.banks[a].hist_len),
            )
        })
    }

    /// The prediction, only when a *tagged* bank provides it — `None` when
    /// the context falls through to the bimodal base. Critic wrappers use
    /// this as their engagement filter: the tagged banks effectively tag
    /// the contexts TAGE has allocated capacity for, exactly the filtering
    /// role the tagged-gshare critic's tag table plays.
    #[must_use]
    pub fn predict_tagged(&self, pc: Pc, hist: HistoryBits) -> Option<Prediction> {
        let look = self.lookup(pc, hist);
        look.provider?;
        let dec = self.decide(&look, pc, hist);
        Some(Prediction::with_confidence(dec.final_taken, dec.confidence))
    }

    /// Hashes every bank and scans for provider/alternate. Pure.
    fn lookup(&self, pc: Pc, hist: HistoryBits) -> Lookup {
        let mut idx = [0u64; MAX_BANKS];
        let mut tag = [0u16; MAX_BANKS];
        for (b, bank) in self.banks.iter().enumerate() {
            let (i, t) = mix2(
                pc.addr(),
                hist.recent(bank.hist_len),
                bank.hist_len,
                bank.counters.index_bits(),
                bank.tag_bits,
            );
            idx[b] = i;
            tag[b] = t as u16;
        }
        let mut provider = None;
        let mut alt = None;
        for b in (0..self.banks.len()).rev() {
            if self.banks[b].tags[idx[b] as usize] == tag[b] {
                if provider.is_none() {
                    provider = Some(b);
                } else {
                    alt = Some(b);
                    break;
                }
            }
        }
        Lookup {
            idx,
            tag,
            base_idx: pc.addr() >> 2,
            provider,
            alt,
        }
    }

    /// Resolves a lookup into directions and confidence. Pure.
    fn decide(&self, look: &Lookup, pc: Pc, hist: HistoryBits) -> Decision {
        let base_taken = self.base.taken(look.base_idx);
        let alt_taken = look
            .alt
            .map_or(base_taken, |a| self.banks[a].counters.taken(look.idx[a]));
        let (provider_taken, tage_taken, newly, mut confidence) = match look.provider {
            Some(p) => {
                let c = self.banks[p].counters.counter(look.idx[p]);
                let provider_taken = c.is_taken();
                let thr = c.threshold();
                let weak = c.value() == thr || c.value() + 1 == thr;
                let newly = weak && self.banks[p].useful.counter(look.idx[p]).value() == 0;
                // The alternate-prediction policy: a newly allocated entry
                // has not earned trust yet; a policy counter learns whether
                // the alternate does better in that situation.
                let tage_taken = if newly && self.use_alt_on_new.is_taken() {
                    alt_taken
                } else {
                    provider_taken
                };
                let confidence = i32::from(if provider_taken {
                    c.value() - thr
                } else {
                    thr - 1 - c.value()
                });
                (provider_taken, tage_taken, newly, confidence)
            }
            None => {
                let c = self.base.counter(look.base_idx);
                let confidence = i32::from(if base_taken {
                    c.value() - c.threshold()
                } else {
                    c.threshold() - 1 - c.value()
                });
                (base_taken, base_taken, false, confidence)
            }
        };
        // The confidence-gated chooser, gated on THREE sides: a flagged
        // static's dedicated entry overrides TAGE only when the entry is
        // saturated, TAGE itself is weak (boundary-distance-0 provider
        // or a newly allocated entry), AND the per-slot tournament
        // chooser says the dedicated slice has been winning its
        // disagreements. A confident TAGE prediction always stands — the
        // dedicated slice exists to repair the low-confidence tail, not
        // to second-guess established providers.
        let mut final_taken = tage_taken;
        if let Some(a) = &self.allocator {
            if let Some((dir, strong)) = a.predict_h2p(pc, hist) {
                if strong && (confidence == 0 || newly) && a.chooser_favors(pc) {
                    final_taken = dir;
                    confidence = i32::from(SatCounter::weakly_not_taken(CTR_BITS).max());
                }
            }
        }
        Decision {
            final_taken,
            tage_taken,
            provider_taken,
            alt_taken,
            newly,
            confidence,
        }
    }

    /// The commit-time training step for one resolved branch, given the
    /// lookup/decision its prediction was made from.
    fn train(&mut self, look: &Lookup, dec: &Decision, pc: Pc, hist: HistoryBits, taken: bool) {
        if let Some(p) = look.provider {
            // Alternate policy: when a newly allocated provider and the
            // alternate disagreed, learn which to trust next time.
            if dec.newly && dec.provider_taken != dec.alt_taken {
                self.use_alt_on_new.update(dec.alt_taken == taken);
            }
            self.banks[p].counters.update(look.idx[p], taken);
            // Useful bits move only when provider and alternate disagreed:
            // credit the provider for beating the alternate, blame it for
            // losing (the entry stops being worth protecting).
            if dec.provider_taken != dec.alt_taken {
                self.banks[p]
                    .useful
                    .update(look.idx[p], dec.provider_taken == taken);
            }
        } else {
            self.base.update(look.base_idx, taken);
        }
        // Allocation on a TAGE mispredict: steal the first longer-history
        // entry whose useful counter has decayed to zero; if every
        // candidate is protected, weaken them all so one frees up soon.
        if dec.tage_taken != taken {
            let start = look.provider.map_or(0, |p| p + 1);
            if start < self.banks.len() {
                let mut allocated = false;
                for b in start..self.banks.len() {
                    if self.banks[b].useful.counter(look.idx[b]).value() == 0 {
                        let weak = SatCounter::weak_for(CTR_BITS, taken).value();
                        let bank = &mut self.banks[b];
                        bank.tags[look.idx[b] as usize] = look.tag[b];
                        bank.counters.set(look.idx[b], weak);
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    for b in start..self.banks.len() {
                        self.banks[b].useful.update(look.idx[b], false);
                    }
                }
            }
        }
        // Deterministic periodic aging — an update counter, never wall
        // clock, so replays and batched kernels age at identical points.
        self.tick += 1;
        if self.tick >= U_AGING_PERIOD {
            self.tick = 0;
            for bank in &mut self.banks {
                bank.useful.halve_all();
            }
        }
        if let Some(a) = &mut self.allocator {
            a.observe(pc, hist, taken, dec.tage_taken, dec.final_taken != taken);
        }
    }

    /// Fused predict-then-train for one element: the lookup is computed
    /// once and shared. `predict` reads no mutable state, so this is
    /// bit-identical to scalar predict-then-update.
    fn predict_train(&mut self, input: &PredictInput) -> bool {
        let look = self.lookup(input.pc, input.hist);
        let dec = self.decide(&look, input.pc, input.hist);
        let pred = dec.final_taken;
        self.train(&look, &dec, input.pc, input.hist, input.taken);
        pred
    }
}

/// `n` geometrically spaced history lengths from `min` to `max`,
/// strictly increasing.
fn geometric_lengths(n: usize, min: usize, max: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let l = if n == 1 {
            max as f64
        } else {
            let ratio = (max as f64 / min as f64).powf(i as f64 / (n - 1) as f64);
            min as f64 * ratio
        };
        let mut l = l.round() as usize;
        if let Some(&prev) = out.last() {
            l = l.max(prev + 1);
        }
        out.push(l.min(64));
    }
    out
}

impl DirectionPredictor for Tage {
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        let look = self.lookup(pc, hist);
        let dec = self.decide(&look, pc, hist);
        Prediction::with_confidence(dec.final_taken, dec.confidence)
    }

    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        let look = self.lookup(pc, hist);
        let dec = self.decide(&look, pc, hist);
        self.train(&look, &dec, pc, hist, taken);
    }

    fn history_len(&self) -> usize {
        self.history_len
    }

    fn storage_bits(&self) -> usize {
        self.base.storage_bits()
            + self.banks.iter().map(TageBank::storage_bits).sum::<usize>()
            + ALT_BITS
            + self
                .allocator
                .as_ref()
                .map_or(0, DynamicAllocator::storage_bits)
    }

    fn name(&self) -> &'static str {
        if self.allocator.is_some() {
            "tage+h2p"
        } else {
            "tage"
        }
    }

    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        assert!(inputs.len() <= PredictBlock::CAPACITY, "block overfull");
        let mut bits = 0u64;
        for (i, input) in inputs.iter().enumerate() {
            bits |= u64::from(self.predict_train(input)) << i;
        }
        PredictBlock::from_parts(bits, inputs.len())
    }

    fn train_block(&mut self, inputs: &[PredictInput]) {
        for input in inputs {
            let look = self.lookup(input.pc, input.hist);
            let dec = self.decide(&look, input.pc, input.hist);
            self.train(&look, &dec, input.pc, input.hist, input.taken);
        }
    }

    fn replay_block(&mut self, pcs: &[Pc], outcomes: u64, start: HistoryBits) -> PredictBlock {
        assert!(pcs.len() <= PredictBlock::CAPACITY, "replay block overfull");
        let eff = self.history_len.min(start.len());
        let m = mask(eff);
        let mut h = start.recent(eff);
        let mut bits = 0u64;
        for (i, &pc) in pcs.iter().enumerate() {
            let taken = (outcomes >> i) & 1 == 1;
            let input = PredictInput {
                pc,
                hist: HistoryBits::from_raw(h, eff),
                taken,
            };
            bits |= u64::from(self.predict_train(&input)) << i;
            h = ((h << 1) | u64::from(taken)) & m;
        }
        PredictBlock::from_parts(bits, pcs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tage {
        Tage::new(256, 64, 4, 8, 24)
    }

    #[test]
    fn geometric_lengths_are_strictly_increasing() {
        for n in 1..=8usize {
            let ls = geometric_lengths(n, MIN_HIST, 48);
            assert_eq!(ls.len(), n);
            for w in ls.windows(2) {
                assert!(w[0] < w[1], "lengths not increasing: {ls:?}");
            }
            assert_eq!(*ls.last().unwrap(), 48);
        }
        assert_eq!(geometric_lengths(4, 5, 24), vec![5, 8, 14, 24]);
    }

    #[test]
    fn learns_a_biased_branch() {
        let mut p = small();
        let mut bhr = HistoryBits::new(p.history_len());
        let pc = Pc::new(0x40_0000);
        for _ in 0..8 {
            p.update(pc, bhr, true);
            bhr.push(true);
        }
        assert!(p.predict(pc, bhr).taken());
    }

    #[test]
    fn learns_a_history_correlated_pattern_bimodal_cannot() {
        // Alternating T/N at one PC: bimodal oscillates, tagged banks key
        // on the history and lock on.
        let mut p = small();
        let mut bhr = HistoryBits::new(p.history_len());
        let pc = Pc::new(0x40_0100);
        let mut correct_late = 0;
        for i in 0..512 {
            let taken = i % 2 == 0;
            let pred = p.predict(pc, bhr).taken();
            if i >= 256 && pred == taken {
                correct_late += 1;
            }
            p.update(pc, bhr, taken);
            bhr.push(taken);
        }
        assert!(
            correct_late > 240,
            "TAGE failed to learn the alternating pattern: {correct_late}/256"
        );
    }

    #[test]
    fn provider_uses_longest_matching_history() {
        let mut p = small();
        let mut bhr = HistoryBits::new(p.history_len());
        let pc = Pc::new(0x40_0200);
        for i in 0..2048 {
            let taken = (i / 3) % 2 == 0;
            p.update(pc, bhr, taken);
            bhr.push(taken);
        }
        if let Some((prov, alt)) = p.provider_lengths(pc, bhr) {
            assert!(prov >= alt, "provider {prov} below alternate {alt}");
        }
    }

    #[test]
    fn update_trains_exactly_like_predict_block() {
        let mut scalar = small();
        let mut fused = small();
        let mut bhr = HistoryBits::new(scalar.history_len());
        let mut inputs = Vec::new();
        let mut state = 0x9e37_79b9u64;
        for _ in 0..512 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pc = Pc::new(0x40_0000 + (state >> 58) * 4);
            let taken = state & 4 == 4;
            inputs.push(PredictInput {
                pc,
                hist: bhr,
                taken,
            });
            bhr.push(taken);
        }
        for input in &inputs {
            scalar.update(input.pc, input.hist, input.taken);
        }
        for chunk in inputs.chunks(64) {
            let _ = fused.predict_block(chunk);
        }
        assert_eq!(scalar, fused);
    }

    #[test]
    fn allocator_flags_a_hard_static_and_steals_capacity() {
        let mut a = DynamicAllocator::new(4, 16, 32);
        let pc = Pc::new(0x41_0000);
        let hist = HistoryBits::new(24);
        // A 50%-mispredicted static crosses the flag thresholds.
        for i in 0..64 {
            a.observe(pc, hist, i % 2 == 0, false, i % 2 == 0);
        }
        assert!(a.is_flagged(pc));
        assert_eq!(a.flagged_statics(), 1);
    }

    #[test]
    fn allocator_capacity_is_bounded() {
        let mut a = DynamicAllocator::new(2, 16, 32);
        for s in 0..8u64 {
            a.flag(Pc::new(0x40_0000 + s * 4));
        }
        assert_eq!(a.flagged_statics(), 2);
    }

    #[test]
    fn allocator_dedicated_entries_do_not_alias_across_statics() {
        let mut a = DynamicAllocator::new(4, 16, 32);
        let pc1 = Pc::new(0x40_0000);
        let pc2 = Pc::new(0x40_0004);
        a.flag(pc1);
        a.flag(pc2);
        let hist = HistoryBits::new(8);
        for _ in 0..8 {
            a.observe(pc1, hist, true, false, false);
            a.observe(pc2, hist, false, true, false);
        }
        assert_eq!(a.predict_h2p(pc1, hist), Some((true, true)));
        assert_eq!(a.predict_h2p(pc2, hist), Some((false, true)));
    }

    #[test]
    fn h2p_override_is_confidence_gated() {
        // The chooser is gated on both sides: a saturated dedicated entry
        // wins only while TAGE itself is weak; a confident TAGE stands.
        let mut p = Tage::new(256, 64, 4, 8, 24).with_allocator(DynamicAllocator::new(4, 16, 32));
        let pc = Pc::new(0x40_0300);
        let hist = HistoryBits::new(p.history_len());
        // Flag the static and saturate its dedicated entry taken while
        // TAGE is still untrained (weak base counter, confidence 0).
        // Reporting tage_taken=false makes each post-saturation observe a
        // disagreement the dedicated entry wins, so the tournament
        // chooser also comes to favour the dedicated slice.
        p.allocator_mut().unwrap().flag(pc);
        for _ in 0..8 {
            p.allocator_mut()
                .unwrap()
                .observe(pc, hist, true, false, false);
        }
        assert!(
            p.predict(pc, hist).taken(),
            "saturated H2P entry must win over a weak TAGE"
        );
        // Train the base strongly not-taken: TAGE is now confident, so
        // the dedicated entry must no longer override.
        for _ in 0..4 {
            p.base.update(pc.addr() >> 2, false);
        }
        assert!(
            !p.predict(pc, hist).taken(),
            "a confident TAGE prediction stands against the dedicated entry"
        );
    }

    #[test]
    fn storage_accounts_for_every_structure() {
        let plain = small();
        let with = small().with_allocator(DynamicAllocator::new(4, 16, 32));
        assert!(with.storage_bits() > plain.storage_bits());
        // base 256×2 + 4 banks × 64 × (3+2+8) + 4-bit policy counter.
        assert_eq!(plain.storage_bits(), 256 * 2 + 4 * 64 * 13 + 4);
        assert_eq!(plain.name(), "tage");
        assert_eq!(with.name(), "tage+h2p");
    }
}
