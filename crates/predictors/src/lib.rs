//! Component conditional-branch predictors for the prophet/critic
//! reproduction (Falcón et al., ISCA 2004).
//!
//! The paper's hybrid composes *conventional* predictors into the roles of
//! prophet and critic: “As in a typical hybrid, the components of the
//! prophet/critic hybrid can be any existing predictors” (§3.1). This crate
//! provides those components:
//!
//! * [`Bimodal`] — per-address two-bit counters (McFarling's baseline).
//! * [`Gshare`] — global history XOR address ([McFarling, TN-36]).
//! * [`GAs`] — two-level adaptive with global history concatenation.
//! * [`Local`] — per-address history, two-level (PAs / 21264-style local).
//! * [`BcGskew`] — 2Bc-gskew, the de-aliased EV8-style predictor.
//! * [`Perceptron`] — the Jiménez/Lin neural predictor.
//! * [`Yags`] — YAGS, a tagged de-aliased scheme (Eden/Mudge).
//! * [`Tage`] — tagged geometric-history-length predictor, with an optional
//!   Bullseye-style [`DynamicAllocator`] for hard-to-predict statics.
//!
//! Every predictor implements [`DirectionPredictor`], a *pure* interface:
//! prediction is a function of `(pc, history-bits)` and the caller owns the
//! history register. This mirrors the paper's split of responsibilities —
//! speculative history (BHR/BOR) management, checkpointing and repair happen
//! in the hybrid engine (the `prophet-critic` crate), while pattern tables
//! are trained non-speculatively at commit (§3.2).
//!
//! Table 3 of the paper fixes the configuration of every predictor at each
//! hardware budget from 2 KB to 32 KB; those configurations are encoded in
//! [`configs`] and honoured by the [`DirectionPredictor::storage_bits`]
//! audit.
//!
//! # Quick example
//!
//! ```
//! use predictors::{DirectionPredictor, Gshare, HistoryBits, Pc};
//!
//! let mut p = Gshare::new(1 << 13, 13); // 8K two-bit counters, 13-bit history
//! let bhr = HistoryBits::new(13);
//! let pc = Pc::new(0x401_000);
//!
//! // A branch seen taken twice in the same history context is learned.
//! p.update(pc, bhr, true);
//! p.update(pc, bhr, true);
//! assert!(p.predict(pc, bhr).taken());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
pub mod configs;
mod counter;
mod gas;
mod gshare;
mod gskew;
mod history;
pub mod index;
mod local;
mod perceptron;
mod table;
mod tage;
mod yags;

pub use bimodal::Bimodal;
pub use counter::SatCounter;
pub use gas::GAs;
pub use gshare::{Gshare, TaggedGshare};
pub use gskew::BcGskew;
pub use history::{fold_bits, mask, HistoryBits, MAX_HISTORY_BITS};
pub use local::Local;
pub use perceptron::Perceptron;
pub use table::{CounterTable, TagLookup, TaggedTable};
pub use tage::{DynamicAllocator, Tage};
pub use yags::Yags;

/// The address of a (micro-op level) branch instruction.
///
/// A newtype keeps branch addresses from being confused with table indices
/// or history words in predictor plumbing.
///
/// # Examples
///
/// ```
/// use predictors::Pc;
///
/// let pc = Pc::new(0x40_1000);
/// assert_eq!(pc.addr(), 0x40_1000);
/// assert_eq!(format!("{pc}"), "0x0000000000401000");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Pc(u64);

impl Pc {
    /// Wraps a raw byte address.
    #[must_use]
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// The raw byte address.
    #[must_use]
    pub const fn addr(self) -> u64 {
        self.0
    }
}

impl From<u64> for Pc {
    fn from(addr: u64) -> Self {
        Self(addr)
    }
}

impl From<Pc> for u64 {
    fn from(pc: Pc) -> Self {
        pc.0
    }
}

impl std::fmt::Display for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

impl std::fmt::LowerHex for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A direction prediction together with the predictor's confidence signal.
///
/// Most predictors only produce a direction; the perceptron also exposes the
/// magnitude of its dot product, which downstream work uses for confidence.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Prediction {
    taken: bool,
    confidence: i32,
}

impl Prediction {
    /// A prediction with explicit confidence.
    #[must_use]
    pub const fn with_confidence(taken: bool, confidence: i32) -> Self {
        Self { taken, confidence }
    }

    /// A bare direction prediction (confidence 0).
    #[must_use]
    pub const fn taken_or_not(taken: bool) -> Self {
        Self {
            taken,
            confidence: 0,
        }
    }

    /// The predicted direction, `true` = taken.
    #[must_use]
    pub const fn taken(self) -> bool {
        self.taken
    }

    /// Predictor-specific confidence magnitude (0 when not provided).
    #[must_use]
    pub const fn confidence(self) -> i32 {
        self.confidence
    }
}

/// One element of a batched predictor call: the branch, the history value
/// its prediction must be made with, and its resolved outcome for the fused
/// training step.
///
/// Batched replay knows every branch's outcome up front (the trace is
/// non-speculative), so prediction and commit-time training fuse into one
/// table visit per element.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PredictInput {
    /// Branch address.
    pub pc: Pc,
    /// History register value at prediction time.
    pub hist: HistoryBits,
    /// The branch's resolved outcome (trains the predictor).
    pub taken: bool,
}

/// The directions produced by one batched call, one bit per element in
/// input order.
///
/// Confidence is not carried — batched consumers (replay, throughput) only
/// score directions. Callers that need confidence use the scalar
/// [`DirectionPredictor::predict`].
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct PredictBlock {
    bits: u64,
    len: u8,
}

impl PredictBlock {
    /// Maximum number of elements per block.
    pub const CAPACITY: usize = 64;

    /// An empty block.
    #[must_use]
    pub const fn new() -> Self {
        Self { bits: 0, len: 0 }
    }

    /// Number of directions held.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the block holds no directions.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a direction.
    ///
    /// # Panics
    ///
    /// Panics if the block already holds [`Self::CAPACITY`] directions.
    pub fn push(&mut self, taken: bool) {
        assert!((self.len as usize) < Self::CAPACITY, "PredictBlock full");
        self.bits |= u64::from(taken) << self.len;
        self.len += 1;
    }

    /// Builds a block directly from a direction bitmask and a length, for
    /// kernels that accumulate their directions in a local `u64` instead of
    /// calling [`push`](Self::push) per element. Bits at and above `len`
    /// are cleared so [`bits`](Self::bits) stays canonical.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`Self::CAPACITY`].
    pub(crate) fn from_parts(bits: u64, len: usize) -> Self {
        assert!(len <= Self::CAPACITY, "PredictBlock overfull");
        let mask = if len == Self::CAPACITY {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        Self {
            bits: bits & mask,
            len: len as u8,
        }
    }

    /// The direction predicted for element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn taken(&self, i: usize) -> bool {
        assert!(i < self.len(), "index {i} out of range {}", self.len());
        (self.bits >> i) & 1 == 1
    }

    /// All predicted directions as a bit-vector: bit `i` is element `i`'s
    /// direction, and bits at and above [`len`](Self::len) are zero. Batched
    /// consumers use this to compare a whole block against recorded outcomes
    /// with one XOR instead of [`Self::taken`] calls per element.
    #[must_use]
    pub const fn bits(&self) -> u64 {
        self.bits
    }
}

/// A conditional branch direction predictor as a pure function of
/// `(pc, history)`.
///
/// The caller supplies the history register — a BHR when the predictor acts
/// as a prophet, a BOR (history + future bits) when it acts as the engine of
/// a critic. Implementations must not retain speculative state between
/// [`predict`](Self::predict) and [`update`](Self::update); `update` is the
/// non-speculative commit-time training step of §3.2 and receives the same
/// history value the prediction was made with.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc` given the history
    /// register value `hist`.
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction;

    /// Trains the predictor with the resolved outcome of the branch at `pc`,
    /// using the same history value `hist` that produced its prediction.
    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool);

    /// The number of history bits the predictor actually consumes.
    fn history_len(&self) -> usize;

    /// The storage budget in bits (counters, weights and tags; excludes LRU
    /// bookkeeping, as is conventional in predictor sizing).
    fn storage_bits(&self) -> usize;

    /// A short human-readable name (e.g. `"gshare"`).
    fn name(&self) -> &'static str;

    /// The storage budget in bytes, rounded up.
    fn storage_bytes(&self) -> usize {
        self.storage_bits().div_ceil(8)
    }

    /// Fused batched predict-then-train over up to
    /// [`PredictBlock::CAPACITY`] branches.
    ///
    /// For each element in order: predict with the element's history value,
    /// then train with its outcome — exactly the scalar
    /// [`predict`](Self::predict)/[`update`](Self::update) interleaving, so
    /// the returned directions and the post-call predictor state are
    /// bit-identical to the scalar path. The default does precisely that;
    /// structure-of-arrays predictors override it to compute each element's
    /// table index once instead of twice. `batch_equiv.rs` pins the
    /// equivalence for every implementation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() > PredictBlock::CAPACITY`.
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        let mut out = PredictBlock::new();
        for input in inputs {
            out.push(self.predict(input.pc, input.hist).taken());
            self.update(input.pc, input.hist, input.taken);
        }
        out
    }

    /// Batched train-only pass: [`update`](Self::update) per element, in
    /// order, with no predictions produced.
    ///
    /// Used where predictions would be discarded (warm-up regions, deferred
    /// commit-time training). Because `predict` has no side effects,
    /// skipping it leaves the predictor in exactly the scalar-path state.
    fn train_block(&mut self, inputs: &[PredictInput]) {
        for input in inputs {
            self.update(input.pc, input.hist, input.taken);
        }
    }

    /// Fused batched predict-then-train from a chunk's *implicit* histories:
    /// element `i`'s history register value is `start` advanced by outcome
    /// bits `0..i` of `outcomes`.
    ///
    /// This is how trace replay presents a chunk — on a correct-path trace
    /// every element's history is derivable from the chunk's start history
    /// and the recorded outcome mask, so the replay engine does not buffer a
    /// per-element [`HistoryBits`] snapshot (the measured ~6.5 ns/pred
    /// buffering residual). Global-history predictors override this to keep
    /// the running history in a register; the default materializes the
    /// per-element inputs on the stack and delegates to
    /// [`predict_block`](Self::predict_block), which is exact for every
    /// implementation. `batch_equiv.rs` pins both against the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if `pcs.len() > PredictBlock::CAPACITY`.
    fn replay_block(&mut self, pcs: &[Pc], outcomes: u64, start: HistoryBits) -> PredictBlock {
        assert!(pcs.len() <= PredictBlock::CAPACITY, "replay block overfull");
        let mut inputs = [PredictInput {
            pc: Pc::new(0),
            hist: start,
            taken: false,
        }; PredictBlock::CAPACITY];
        let mut hist = start;
        for (i, &pc) in pcs.iter().enumerate() {
            let taken = (outcomes >> i) & 1 == 1;
            inputs[i] = PredictInput { pc, hist, taken };
            hist.push(taken);
        }
        self.predict_block(&inputs[..pcs.len()])
    }
}

impl<P: DirectionPredictor + ?Sized> DirectionPredictor for Box<P> {
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        (**self).predict(pc, hist)
    }

    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        (**self).update(pc, hist, taken);
    }

    fn history_len(&self) -> usize {
        (**self).history_len()
    }

    fn storage_bits(&self) -> usize {
        (**self).storage_bits()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        (**self).predict_block(inputs)
    }

    fn train_block(&mut self, inputs: &[PredictInput]) {
        (**self).train_block(inputs);
    }

    fn replay_block(&mut self, pcs: &[Pc], outcomes: u64, start: HistoryBits) -> PredictBlock {
        (**self).replay_block(pcs, outcomes, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_round_trips_through_u64() {
        let pc = Pc::new(0xdead_beef);
        let raw: u64 = pc.into();
        assert_eq!(Pc::from(raw), pc);
    }

    #[test]
    fn pc_display_is_padded_hex() {
        assert_eq!(Pc::new(0x12).to_string(), "0x0000000000000012");
        assert_eq!(format!("{:x}", Pc::new(0xab)), "ab");
    }

    #[test]
    fn prediction_accessors() {
        let p = Prediction::with_confidence(true, 42);
        assert!(p.taken());
        assert_eq!(p.confidence(), 42);
        let p = Prediction::taken_or_not(false);
        assert!(!p.taken());
        assert_eq!(p.confidence(), 0);
    }

    #[test]
    fn boxed_predictor_is_object_safe() {
        let mut p: Box<dyn DirectionPredictor> = Box::new(Bimodal::new(64));
        let pc = Pc::new(0x100);
        let h = HistoryBits::new(0);
        p.update(pc, h, true);
        p.update(pc, h, true);
        assert!(p.predict(pc, h).taken());
        assert_eq!(p.name(), "bimodal");
    }

    #[test]
    fn predict_block_packs_directions_in_order() {
        let mut b = PredictBlock::new();
        assert!(b.is_empty());
        for i in 0..PredictBlock::CAPACITY {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), PredictBlock::CAPACITY);
        for i in 0..PredictBlock::CAPACITY {
            assert_eq!(b.taken(i), i % 3 == 0, "direction {i}");
        }
    }

    #[test]
    #[should_panic(expected = "PredictBlock full")]
    fn predict_block_rejects_overflow() {
        let mut b = PredictBlock::new();
        for _ in 0..=PredictBlock::CAPACITY {
            b.push(true);
        }
    }

    #[test]
    fn batched_calls_work_through_trait_objects() {
        // The default batched implementations must be reachable through
        // `Box<dyn DirectionPredictor>` — dispatch stays object-safe.
        let mut p: Box<dyn DirectionPredictor> = Box::new(Bimodal::new(64));
        let inputs: Vec<PredictInput> = (0..8)
            .map(|i| PredictInput {
                pc: Pc::new(0x100),
                hist: HistoryBits::new(0),
                taken: i % 2 == 0,
            })
            .collect();
        let block = p.predict_block(&inputs);
        assert_eq!(block.len(), inputs.len());
        p.train_block(&inputs);
    }
}
