//! Component conditional-branch predictors for the prophet/critic
//! reproduction (Falcón et al., ISCA 2004).
//!
//! The paper's hybrid composes *conventional* predictors into the roles of
//! prophet and critic: “As in a typical hybrid, the components of the
//! prophet/critic hybrid can be any existing predictors” (§3.1). This crate
//! provides those components:
//!
//! * [`Bimodal`] — per-address two-bit counters (McFarling's baseline).
//! * [`Gshare`] — global history XOR address ([McFarling, TN-36]).
//! * [`GAs`] — two-level adaptive with global history concatenation.
//! * [`Local`] — per-address history, two-level (PAs / 21264-style local).
//! * [`BcGskew`] — 2Bc-gskew, the de-aliased EV8-style predictor.
//! * [`Perceptron`] — the Jiménez/Lin neural predictor.
//! * [`Yags`] — YAGS, a tagged de-aliased scheme (Eden/Mudge).
//!
//! Every predictor implements [`DirectionPredictor`], a *pure* interface:
//! prediction is a function of `(pc, history-bits)` and the caller owns the
//! history register. This mirrors the paper's split of responsibilities —
//! speculative history (BHR/BOR) management, checkpointing and repair happen
//! in the hybrid engine (the `prophet-critic` crate), while pattern tables
//! are trained non-speculatively at commit (§3.2).
//!
//! Table 3 of the paper fixes the configuration of every predictor at each
//! hardware budget from 2 KB to 32 KB; those configurations are encoded in
//! [`configs`] and honoured by the [`DirectionPredictor::storage_bits`]
//! audit.
//!
//! # Quick example
//!
//! ```
//! use predictors::{DirectionPredictor, Gshare, HistoryBits, Pc};
//!
//! let mut p = Gshare::new(1 << 13, 13); // 8K two-bit counters, 13-bit history
//! let bhr = HistoryBits::new(13);
//! let pc = Pc::new(0x401_000);
//!
//! // A branch seen taken twice in the same history context is learned.
//! p.update(pc, bhr, true);
//! p.update(pc, bhr, true);
//! assert!(p.predict(pc, bhr).taken());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimodal;
pub mod configs;
mod counter;
mod gas;
mod gshare;
mod gskew;
mod history;
pub mod index;
mod local;
mod perceptron;
mod table;
mod yags;

pub use bimodal::Bimodal;
pub use counter::SatCounter;
pub use gas::GAs;
pub use gshare::{Gshare, TaggedGshare};
pub use gskew::BcGskew;
pub use history::{fold_bits, mask, HistoryBits, MAX_HISTORY_BITS};
pub use local::Local;
pub use perceptron::Perceptron;
pub use table::{CounterTable, TagLookup, TaggedTable};
pub use yags::Yags;

/// The address of a (micro-op level) branch instruction.
///
/// A newtype keeps branch addresses from being confused with table indices
/// or history words in predictor plumbing.
///
/// # Examples
///
/// ```
/// use predictors::Pc;
///
/// let pc = Pc::new(0x40_1000);
/// assert_eq!(pc.addr(), 0x40_1000);
/// assert_eq!(format!("{pc}"), "0x0000000000401000");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Pc(u64);

impl Pc {
    /// Wraps a raw byte address.
    #[must_use]
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// The raw byte address.
    #[must_use]
    pub const fn addr(self) -> u64 {
        self.0
    }
}

impl From<u64> for Pc {
    fn from(addr: u64) -> Self {
        Self(addr)
    }
}

impl From<Pc> for u64 {
    fn from(pc: Pc) -> Self {
        pc.0
    }
}

impl std::fmt::Display for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

impl std::fmt::LowerHex for Pc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A direction prediction together with the predictor's confidence signal.
///
/// Most predictors only produce a direction; the perceptron also exposes the
/// magnitude of its dot product, which downstream work uses for confidence.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Prediction {
    taken: bool,
    confidence: i32,
}

impl Prediction {
    /// A prediction with explicit confidence.
    #[must_use]
    pub const fn with_confidence(taken: bool, confidence: i32) -> Self {
        Self { taken, confidence }
    }

    /// A bare direction prediction (confidence 0).
    #[must_use]
    pub const fn taken_or_not(taken: bool) -> Self {
        Self {
            taken,
            confidence: 0,
        }
    }

    /// The predicted direction, `true` = taken.
    #[must_use]
    pub const fn taken(self) -> bool {
        self.taken
    }

    /// Predictor-specific confidence magnitude (0 when not provided).
    #[must_use]
    pub const fn confidence(self) -> i32 {
        self.confidence
    }
}

/// A conditional branch direction predictor as a pure function of
/// `(pc, history)`.
///
/// The caller supplies the history register — a BHR when the predictor acts
/// as a prophet, a BOR (history + future bits) when it acts as the engine of
/// a critic. Implementations must not retain speculative state between
/// [`predict`](Self::predict) and [`update`](Self::update); `update` is the
/// non-speculative commit-time training step of §3.2 and receives the same
/// history value the prediction was made with.
pub trait DirectionPredictor {
    /// Predicts the direction of the branch at `pc` given the history
    /// register value `hist`.
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction;

    /// Trains the predictor with the resolved outcome of the branch at `pc`,
    /// using the same history value `hist` that produced its prediction.
    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool);

    /// The number of history bits the predictor actually consumes.
    fn history_len(&self) -> usize;

    /// The storage budget in bits (counters, weights and tags; excludes LRU
    /// bookkeeping, as is conventional in predictor sizing).
    fn storage_bits(&self) -> usize;

    /// A short human-readable name (e.g. `"gshare"`).
    fn name(&self) -> &'static str;

    /// The storage budget in bytes, rounded up.
    fn storage_bytes(&self) -> usize {
        self.storage_bits().div_ceil(8)
    }
}

impl<P: DirectionPredictor + ?Sized> DirectionPredictor for Box<P> {
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        (**self).predict(pc, hist)
    }

    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        (**self).update(pc, hist, taken);
    }

    fn history_len(&self) -> usize {
        (**self).history_len()
    }

    fn storage_bits(&self) -> usize {
        (**self).storage_bits()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_round_trips_through_u64() {
        let pc = Pc::new(0xdead_beef);
        let raw: u64 = pc.into();
        assert_eq!(Pc::from(raw), pc);
    }

    #[test]
    fn pc_display_is_padded_hex() {
        assert_eq!(Pc::new(0x12).to_string(), "0x0000000000000012");
        assert_eq!(format!("{:x}", Pc::new(0xab)), "ab");
    }

    #[test]
    fn prediction_accessors() {
        let p = Prediction::with_confidence(true, 42);
        assert!(p.taken());
        assert_eq!(p.confidence(), 42);
        let p = Prediction::taken_or_not(false);
        assert!(!p.taken());
        assert_eq!(p.confidence(), 0);
    }

    #[test]
    fn boxed_predictor_is_object_safe() {
        let mut p: Box<dyn DirectionPredictor> = Box::new(Bimodal::new(64));
        let pc = Pc::new(0x100);
        let h = HistoryBits::new(0);
        p.update(pc, h, true);
        p.update(pc, h, true);
        assert!(p.predict(pc, h).taken());
        assert_eq!(p.name(), "bimodal");
    }
}
