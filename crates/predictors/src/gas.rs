//! GAs: two-level adaptive prediction with global history concatenation.

use crate::{
    CounterTable, DirectionPredictor, HistoryBits, Pc, PredictBlock, PredictInput, Prediction,
};

/// The GAs two-level adaptive predictor (Yeh/Patt).
///
/// The table index is the concatenation of low PC bits with the global
/// history: unlike [`Gshare`](crate::Gshare), which XORs the two (sharing
/// table entries among many contexts), GAs dedicates a history column per
/// address group. The paper cites it as the classic *aliased* global-history
/// scheme that de-aliased predictors (2Bc-gskew, YAGS) improve upon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GAs {
    table: CounterTable,
    history_len: usize,
}

impl GAs {
    /// Creates a GAs predictor with `entries` counters, of which the low
    /// `history_len` index bits come from history and the rest from the PC.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_len` exceeds
    /// the index width.
    #[must_use]
    pub fn new(entries: usize, history_len: usize) -> Self {
        let table = CounterTable::new(entries, 2);
        assert!(
            history_len <= table.index_bits(),
            "history length {history_len} exceeds index width {}",
            table.index_bits()
        );
        Self { table, history_len }
    }

    fn index(&self, pc: Pc, hist: HistoryBits) -> u64 {
        let pc_bits = pc.addr() >> 2;
        (pc_bits << self.history_len) | hist.recent(self.history_len)
    }
}

impl DirectionPredictor for GAs {
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        let c = self.table.counter(self.index(pc, hist));
        Prediction::with_confidence(c.is_taken(), i32::from(c.is_strong()))
    }

    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        self.table.update(self.index(pc, hist), taken);
    }

    fn history_len(&self) -> usize {
        self.history_len
    }

    fn storage_bits(&self) -> usize {
        self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "gas"
    }

    /// Fused kernel: one concatenated index per element serves the read and
    /// the training write.
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        let mut bits = 0u64;
        for (i, input) in inputs.iter().enumerate() {
            let idx = self.index(input.pc, input.hist);
            bits |= u64::from(self.table.predict_update(idx, input.taken)) << i;
        }
        PredictBlock::from_parts(bits, inputs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_columns_are_disjoint() {
        let mut p = GAs::new(1 << 12, 4);
        let pc = Pc::new(0x100);
        let ha = HistoryBits::from_raw(0b0000, 4);
        let hb = HistoryBits::from_raw(0b0001, 4);
        p.update(pc, ha, true);
        p.update(pc, ha, true);
        assert!(p.predict(pc, ha).taken());
        assert!(
            !p.predict(pc, hb).taken(),
            "adjacent history column untouched"
        );
    }

    #[test]
    fn learns_alternating_branch() {
        let mut p = GAs::new(1 << 12, 6);
        let pc = Pc::new(0x200);
        let mut bhr = HistoryBits::new(6);
        for i in 0..200 {
            let taken = i % 2 == 0;
            p.update(pc, bhr, taken);
            bhr.push(taken);
        }
        let mut correct = 0;
        for i in 0..20 {
            let taken = i % 2 == 0;
            if p.predict(pc, bhr).taken() == taken {
                correct += 1;
            }
            p.update(pc, bhr, taken);
            bhr.push(taken);
        }
        assert_eq!(correct, 20);
    }

    #[test]
    #[should_panic(expected = "exceeds index width")]
    fn rejects_history_longer_than_index() {
        let _ = GAs::new(256, 10);
    }
}
