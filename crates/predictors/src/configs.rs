//! Table 3 of the paper: prophet and critic configurations per hardware
//! budget.
//!
//! The paper evaluates every predictor at total hardware budgets of 2, 4, 8,
//! 16 and 32 kilobytes, with history lengths tuned per budget. This module
//! encodes those rows verbatim and provides constructors that honour them,
//! so experiments elsewhere in the workspace can request e.g. “the 8 KB
//! perceptron” and get exactly the paper's configuration.
//!
//! Component-level configuration stops here: *hybrid*-level presets
//! (which prophet/critic pairing, future-bit count, override threshold)
//! are `HybridSpec` constructors in the `prophet-critic` crate — that
//! crate depends on this one, so presets the `sim::tune` calibration
//! search promotes (e.g. `HybridSpec::tuned_headline`) live there, built
//! on these Table 3 rows.

use crate::{BcGskew, DynamicAllocator, Gshare, Perceptron, Tage, TaggedGshare};

/// A total hardware budget from Table 3.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Budget {
    /// 2 KB.
    K2,
    /// 4 KB.
    K4,
    /// 8 KB.
    K8,
    /// 16 KB.
    K16,
    /// 32 KB.
    K32,
}

impl Budget {
    /// All budgets in ascending order.
    pub const ALL: [Budget; 5] = [Budget::K2, Budget::K4, Budget::K8, Budget::K16, Budget::K32];

    /// The budget in bytes.
    #[must_use]
    pub fn bytes(self) -> usize {
        match self {
            Budget::K2 => 2 * 1024,
            Budget::K4 => 4 * 1024,
            Budget::K8 => 8 * 1024,
            Budget::K16 => 16 * 1024,
            Budget::K32 => 32 * 1024,
        }
    }

    fn row(self) -> usize {
        match self {
            Budget::K2 => 0,
            Budget::K4 => 1,
            Budget::K8 => 2,
            Budget::K16 => 3,
            Budget::K32 => 4,
        }
    }

    /// Parses `"2KB"`, `"8kb"`, `"32KB"`, …
    #[must_use]
    pub fn parse(s: &str) -> Option<Budget> {
        match s.to_ascii_lowercase().as_str() {
            "2kb" | "2k" => Some(Budget::K2),
            "4kb" | "4k" => Some(Budget::K4),
            "8kb" | "8k" => Some(Budget::K8),
            "16kb" | "16k" => Some(Budget::K16),
            "32kb" | "32k" => Some(Budget::K32),
            _ => None,
        }
    }
}

impl std::fmt::Display for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}KB", self.bytes() / 1024)
    }
}

/// Table 3, gshare rows: `# entries` and `history length`.
pub const GSHARE: [(usize, usize); 5] = [
    (8 * 1024, 13),
    (16 * 1024, 14),
    (32 * 1024, 15),
    (64 * 1024, 16),
    (128 * 1024, 17),
];

/// Table 3, perceptron rows: `# perceptrons` and `history length`.
pub const PERCEPTRON: [(usize, usize); 5] = [(113, 17), (163, 24), (282, 28), (348, 47), (565, 57)];

/// Table 3, 2Bc-gskew rows: `# entries (per table)` and `history length`.
pub const BC_GSKEW: [(usize, usize); 5] = [
    (2 * 1024, 11),
    (4 * 1024, 12),
    (8 * 1024, 13),
    (16 * 1024, 14),
    (32 * 1024, 15),
];

/// Table 3, tagged gshare (critic) rows: `sets` (×6-way) and `BOR size`.
pub const TAGGED_GSHARE: [(usize, usize); 5] =
    [(256, 18), (512, 18), (1024, 18), (2048, 18), (4096, 18)];

/// Tag width for tagged structures: “only 8–10 bit tags are needed” (§4).
pub const TAG_BITS: usize = 9;

/// Associativity of the tagged gshare critic (Table 3: ×6-way).
pub const TAGGED_GSHARE_WAYS: usize = 6;

/// Table 3, filtered perceptron rows: `# perceptrons` and perceptron
/// `history length`.
pub const FILTERED_PERCEPTRON: [(usize, usize); 5] =
    [(73, 13), (113, 17), (163, 24), (282, 28), (348, 47)];

/// Table 3, perceptron-filter rows: filter `sets` (×3-way), filter history
/// length (fixed 18) and total BOR size.
pub const PERCEPTRON_FILTER: [(usize, usize, usize); 5] = [
    (128, 18, 18),
    (256, 18, 18),
    (512, 18, 24),
    (1024, 18, 28),
    (2048, 18, 47),
];

/// Associativity of the perceptron filter (Table 3: ×3-way).
pub const PERCEPTRON_FILTER_WAYS: usize = 3;

/// TAGE rows (post-paper entrant, sized to Table 3's budget ladder):
/// `base entries`, `entries per tagged bank` and `max history length`.
///
/// Per tagged-bank entry: 3-bit counter + 2-bit useful + 8-bit tag =
/// 13 bits; with a 2-bit bimodal base each row lands at ~94 % of nominal.
pub const TAGE: [(usize, usize, usize); 5] = [
    (1024, 256, 32),
    (2048, 512, 40),
    (4096, 1024, 48),
    (8192, 2048, 56),
    (16384, 4096, 63),
];

/// Number of tagged TAGE banks at every budget.
pub const TAGE_BANKS: usize = 4;

/// TAGE partial-tag width (“only 8–10 bit tags are needed”, §4).
pub const TAGE_TAG_BITS: usize = 8;

/// H2P allocator sizing, budget-independent: flagged-static capacity,
/// dedicated entries per static, and online tracker entries (336 bytes —
/// small enough that the smallest 2 KB row stays inside the ±15 % band).
pub const TAGE_H2P: (usize, usize, usize) = (16, 16, 32);

/// The gshare configuration of Table 3 for `budget`.
#[must_use]
pub fn gshare(budget: Budget) -> Gshare {
    let (entries, hist) = GSHARE[budget.row()];
    Gshare::new(entries, hist)
}

/// The perceptron configuration of Table 3 for `budget`.
#[must_use]
pub fn perceptron(budget: Budget) -> Perceptron {
    let (n, hist) = PERCEPTRON[budget.row()];
    Perceptron::new(n, hist)
}

/// The 2Bc-gskew configuration of Table 3 for `budget`.
#[must_use]
pub fn bc_gskew(budget: Budget) -> BcGskew {
    let (entries, hist) = BC_GSKEW[budget.row()];
    BcGskew::new(entries, hist)
}

/// The tagged gshare critic engine of Table 3 for `budget`.
///
/// The BOR size (18 for all budgets) is the history length the structure
/// hashes; how many of those bits are future bits is the hybrid's choice.
#[must_use]
pub fn tagged_gshare(budget: Budget) -> TaggedGshare {
    let (sets, bor) = TAGGED_GSHARE[budget.row()];
    TaggedGshare::new(sets, TAGGED_GSHARE_WAYS, TAG_BITS, bor)
}

/// The TAGE configuration for `budget` (no H2P allocator).
#[must_use]
pub fn tage(budget: Budget) -> Tage {
    let (base, bank, max_hist) = TAGE[budget.row()];
    Tage::new(base, bank, TAGE_BANKS, TAGE_TAG_BITS, max_hist)
}

/// The TAGE configuration for `budget` with the Bullseye-style H2P
/// [`DynamicAllocator`] attached.
#[must_use]
pub fn tage_h2p(budget: Budget) -> Tage {
    let (capacity, entries_per, tracker) = TAGE_H2P;
    tage(budget).with_allocator(DynamicAllocator::new(capacity, entries_per, tracker))
}

/// The perceptron used inside the filtered-perceptron critic for `budget`.
#[must_use]
pub fn filtered_perceptron_core(budget: Budget) -> Perceptron {
    let (n, hist) = FILTERED_PERCEPTRON[budget.row()];
    Perceptron::new(n, hist)
}

/// The `(filter_sets, filter_history_len, bor_size)` of the perceptron
/// filter for `budget`.
#[must_use]
pub fn perceptron_filter_params(budget: Budget) -> (usize, usize, usize) {
    PERCEPTRON_FILTER[budget.row()]
}

/// The BOR size used by the filtered perceptron critic at `budget`
/// (Table 3's last row).
#[must_use]
pub fn filtered_perceptron_bor_size(budget: Budget) -> usize {
    PERCEPTRON_FILTER[budget.row()]
        .2
        .max(FILTERED_PERCEPTRON[budget.row()].1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectionPredictor;

    /// Sizing tolerance: the paper buckets configurations into nominal
    /// budgets (its own 32 KB perceptron is 32 770 bytes); we accept ±15 %.
    fn assert_within_budget(bits: usize, budget: Budget, what: &str) {
        let bytes = bits.div_ceil(8);
        let nominal = budget.bytes();
        assert!(
            bytes * 100 <= nominal * 115 && bytes * 100 >= nominal * 60,
            "{what} at {budget}: {bytes} bytes vs nominal {nominal}"
        );
    }

    #[test]
    fn gshare_budgets_are_exact() {
        for b in Budget::ALL {
            assert_eq!(gshare(b).storage_bytes(), b.bytes(), "gshare at {b}");
        }
    }

    #[test]
    fn bc_gskew_budgets_are_exact() {
        for b in Budget::ALL {
            assert_eq!(bc_gskew(b).storage_bytes(), b.bytes(), "2Bc-gskew at {b}");
        }
    }

    #[test]
    fn perceptron_budgets_are_close() {
        for b in Budget::ALL {
            assert_within_budget(perceptron(b).storage_bits(), b, "perceptron");
        }
    }

    #[test]
    fn tagged_gshare_budgets_are_close() {
        for b in Budget::ALL {
            assert_within_budget(tagged_gshare(b).storage_bits(), b, "tagged gshare");
        }
    }

    #[test]
    fn history_lengths_match_paper() {
        assert_eq!(gshare(Budget::K16).history_len(), 16);
        assert_eq!(bc_gskew(Budget::K8).history_len(), 13);
        assert_eq!(perceptron(Budget::K32).history_len(), 57);
        assert_eq!(tagged_gshare(Budget::K8).history_len(), 18);
    }

    #[test]
    fn budget_parse_round_trips() {
        for b in Budget::ALL {
            assert_eq!(Budget::parse(&b.to_string()), Some(b));
        }
        assert_eq!(Budget::parse("64KB"), None);
    }

    #[test]
    fn tage_budgets_are_close() {
        for b in Budget::ALL {
            assert_within_budget(tage(b).storage_bits(), b, "tage");
            assert_within_budget(tage_h2p(b).storage_bits(), b, "tage+h2p");
        }
    }

    #[test]
    fn tage_history_lengths_follow_the_ladder() {
        assert_eq!(tage(Budget::K2).history_len(), 32);
        assert_eq!(tage(Budget::K16).history_len(), 56);
        assert_eq!(tage(Budget::K32).history_len(), 63);
        assert_eq!(tage(Budget::K8).bank_history_lengths().len(), TAGE_BANKS);
    }

    #[test]
    fn filtered_perceptron_params_follow_table3() {
        assert_eq!(perceptron_filter_params(Budget::K2), (128, 18, 18));
        assert_eq!(perceptron_filter_params(Budget::K32), (2048, 18, 47));
        assert_eq!(filtered_perceptron_bor_size(Budget::K8), 24);
        assert_eq!(filtered_perceptron_core(Budget::K8).history_len(), 24);
    }
}
