//! 2Bc-gskew — the de-aliased hybrid of Seznec and Michaud, a derivative of
//! which was designed into the Compaq Alpha EV8.

use crate::history::{fold_bits, mask};
use crate::index::{skew, skew_g, skew_h, skew_pc};
use crate::{
    CounterTable, DirectionPredictor, HistoryBits, Pc, PredictBlock, PredictInput, Prediction,
};

/// The 2Bc-gskew predictor.
///
/// Four equally-sized banks of two-bit counters (§6 of the paper):
///
/// * **BIM** — a bimodal bank indexed by PC alone;
/// * **G0**, **G1** — gshare-like banks indexed by *skewed* hashes of
///   (PC, history), G1 using a longer history slice than G0;
/// * **META** — a meta-predictor bank choosing between BIM and the majority
///   vote of (BIM, G0, G1).
///
/// The partial-update policy follows Seznec/Michaud's description:
///
/// * On a correct final prediction, only the banks that *participated and
///   agreed* are strengthened (never weakened).
/// * On a misprediction, all direction banks are updated toward the outcome.
/// * META is updated only when BIM and the majority vote disagree, toward
///   whichever was correct.
///
/// # Examples
///
/// ```
/// use predictors::{BcGskew, DirectionPredictor, HistoryBits, Pc};
///
/// let mut p = BcGskew::new(2048, 11); // the paper's 2 KB configuration
/// let pc = Pc::new(0x400_200);
/// let h = HistoryBits::new(11);
/// p.update(pc, h, true);
/// p.update(pc, h, true);
/// assert!(p.predict(pc, h).taken());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BcGskew {
    bim: CounterTable,
    g0: CounterTable,
    g1: CounterTable,
    meta: CounterTable,
    history_len: usize,
    pc_memo: FoldMemo,
}

/// Direct-mapped memo of [`skew_pc`] values, keyed by low PC bits — the
/// scramble-and-fold is a pure function of the address, and replay streams
/// revisit a few hundred static branches, so the fused kernel can skip the
/// 64-bit fold on nearly every element.
///
/// This is simulator bookkeeping, not predictor state: it never influences
/// a prediction (a hit returns exactly what [`skew_pc`] would), so it is
/// excluded from storage accounting and compares equal to any other memo —
/// keeping the differential suite's whole-state `PartialEq` pinned to the
/// architectural tables alone.
#[derive(Clone, Debug)]
struct FoldMemo(Vec<(u64, u64)>);

impl FoldMemo {
    /// Entries; a power of two. `(0, 0)` is a *valid* initial state, not a
    /// sentinel: `skew_pc(0, w)` is 0 for every width.
    const LEN: usize = 256;

    fn new() -> Self {
        Self(vec![(0, 0); Self::LEN])
    }

    /// The memoized [`skew_pc`] at `width` bits.
    #[inline(always)]
    fn skew_pc_at(&mut self, addr: u64, width: usize) -> u64 {
        let slot = ((addr >> 2) as usize) & (Self::LEN - 1);
        let (mpc, mp) = self.0[slot];
        if mpc == addr {
            mp
        } else {
            let p = skew_pc(addr, width);
            self.0[slot] = (addr, p);
            p
        }
    }
}

impl PartialEq for FoldMemo {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for FoldMemo {}

/// Which banks said what for one lookup.
#[derive(Copy, Clone, Debug)]
struct BankVotes {
    bim: bool,
    g0: bool,
    g1: bool,
    use_majority: bool,
    majority: bool,
}

impl BcGskew {
    /// Creates a 2Bc-gskew with `entries_per_bank` counters in each of the
    /// four banks and `history_len` bits of global history.
    ///
    /// G0 uses roughly half the history length of G1, the short/long split
    /// of the original design.
    ///
    /// # Panics
    ///
    /// Panics if `entries_per_bank` is not a power of two or the history is
    /// too long.
    #[must_use]
    pub fn new(entries_per_bank: usize, history_len: usize) -> Self {
        assert!(history_len <= crate::MAX_HISTORY_BITS);
        Self {
            bim: CounterTable::new(entries_per_bank, 2),
            g0: CounterTable::new(entries_per_bank, 2),
            g1: CounterTable::new(entries_per_bank, 2),
            meta: CounterTable::new(entries_per_bank, 2),
            history_len,
            pc_memo: FoldMemo::new(),
        }
    }

    fn g0_history_len(&self) -> usize {
        self.history_len.div_ceil(2)
    }

    fn indices(&self, pc: Pc, hist: HistoryBits) -> (u64, u64, u64, u64) {
        let width = self.bim.index_bits();
        let short = hist.recent(self.g0_history_len());
        let long = hist.recent(self.history_len);
        let bim_idx = pc.addr() >> 2;
        let g0_idx = skew(0, pc.addr(), short, self.g0_history_len(), width);
        let g1_idx = skew(1, pc.addr(), long, self.history_len, width);
        let meta_idx = skew(2, pc.addr(), long, self.history_len, width);
        (bim_idx, g0_idx, g1_idx, meta_idx)
    }

    fn votes(&self, pc: Pc, hist: HistoryBits) -> BankVotes {
        self.votes_at(self.indices(pc, hist))
    }

    /// Reads the four banks at precomputed indices through the
    /// [`SatCounter`](crate::SatCounter) accessors — the readable
    /// reference formulation used by the scalar path.
    fn votes_at(&self, (bi, g0i, g1i, mi): (u64, u64, u64, u64)) -> BankVotes {
        let bim = self.bim.counter(bi).is_taken();
        let g0 = self.g0.counter(g0i).is_taken();
        let g1 = self.g1.counter(g1i).is_taken();
        let majority = (u8::from(bim) + u8::from(g0) + u8::from(g1)) >= 2;
        let use_majority = self.meta.counter(mi).is_taken();
        BankVotes {
            bim,
            g0,
            g1,
            use_majority,
            majority,
        }
    }

    /// The fused kernels' bank reader: the same votes as [`votes_at`] via
    /// the raw [`CounterTable::taken`] reads (pinned equal to the
    /// `SatCounter` accessor by the table's unit tests).
    fn votes_at_raw(&self, (bi, g0i, g1i, mi): (u64, u64, u64, u64)) -> BankVotes {
        let bim = self.bim.taken(bi);
        let g0 = self.g0.taken(g0i);
        let g1 = self.g1.taken(g1i);
        let majority = (u8::from(bim) + u8::from(g0) + u8::from(g1)) >= 2;
        let use_majority = self.meta.taken(mi);
        BankVotes {
            bim,
            g0,
            g1,
            use_majority,
            majority,
        }
    }

    fn final_of(v: BankVotes) -> bool {
        if v.use_majority {
            v.majority
        } else {
            v.bim
        }
    }

    /// The partial-update policy, applied to pre-read votes at precomputed
    /// indices — shared by the scalar and fused paths.
    fn train_at(&mut self, v: BankVotes, (bi, g0i, g1i, mi): (u64, u64, u64, u64), taken: bool) {
        let final_pred = Self::final_of(v);

        if final_pred == taken {
            // Partial update: strengthen only participating, agreeing banks.
            if v.use_majority {
                if v.bim == taken {
                    self.bim.update(bi, taken);
                }
                if v.g0 == taken {
                    self.g0.update(g0i, taken);
                }
                if v.g1 == taken {
                    self.g1.update(g1i, taken);
                }
            } else {
                self.bim.update(bi, taken);
            }
        } else {
            // Mispredict: retrain everything toward the outcome.
            self.bim.update(bi, taken);
            self.g0.update(g0i, taken);
            self.g1.update(g1i, taken);
        }

        // META learns which side to trust, but only when they disagree.
        if v.bim != v.majority {
            self.meta.update(mi, v.majority == taken);
        }
    }
}

impl DirectionPredictor for BcGskew {
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        let v = self.votes(pc, hist);
        let unanimous = v.bim == v.g0 && v.g0 == v.g1;
        Prediction::with_confidence(Self::final_of(v), i32::from(unanimous))
    }

    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        let banks = self.indices(pc, hist);
        let v = self.votes_at(banks);
        self.train_at(v, banks, taken);
    }

    fn history_len(&self) -> usize {
        self.history_len
    }

    fn storage_bits(&self) -> usize {
        self.bim.storage_bits()
            + self.g0.storage_bits()
            + self.g1.storage_bits()
            + self.meta.storage_bits()
    }

    fn name(&self) -> &'static str {
        "2bc-gskew"
    }

    /// Fused kernel: the four skewed indices and the bank votes are computed
    /// once per element and reused by the training half — the scalar path
    /// hashes and reads them twice (once in `predict`, once in `update`).
    ///
    /// The hashes are additionally factored across the skew family: all
    /// three members share the same scrambled-PC operand ([`skew_pc`]) and
    /// G1/META share the long-history fold, so the per-element cost is one
    /// multiply and two history folds instead of three of each. The
    /// factored expressions are [`skew`]'s own definition term for term.
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        let mut bits = 0u64;
        let width = self.bim.index_bits();
        let g0_len = self.g0_history_len();
        let m = mask(width);
        for (i, input) in inputs.iter().enumerate() {
            let addr = input.pc.addr();
            let hs = fold_bits(input.hist.recent(g0_len), g0_len, width);
            let hl = fold_bits(input.hist.recent(self.history_len), self.history_len, width);
            let p = self.pc_memo.skew_pc_at(addr, width);
            let gp = skew_g(p, width);
            let banks = (
                addr >> 2,
                (skew_h(hs, width) ^ gp ^ p) & m,
                (skew_h(hl, width) ^ gp ^ hl) & m,
                (skew_g(hl, width) ^ skew_h(p, width) ^ p) & m,
            );
            let v = self.votes_at_raw(banks);
            bits |= u64::from(Self::final_of(v)) << i;
            self.train_at(v, banks, input.taken);
        }
        PredictBlock::from_parts(bits, inputs.len())
    }

    /// Register-history kernel: both the short (`g0`) and long history
    /// values derive from one running register reconstructed from `start`
    /// and the outcome mask, shifted at the effective length
    /// `min(history_len, start.len())` so dropped bits read as zero exactly
    /// like [`HistoryBits::recent`] on the scalar path.
    fn replay_block(&mut self, pcs: &[Pc], outcomes: u64, start: HistoryBits) -> PredictBlock {
        let mut bits = 0u64;
        let width = self.bim.index_bits();
        let g0_len = self.g0_history_len();
        let m = mask(width);
        let eff = self.history_len.min(start.len());
        let hm = mask(eff);
        let mut h = start.recent(eff);
        for (i, &pc) in pcs.iter().enumerate() {
            let taken = (outcomes >> i) & 1 == 1;
            let addr = pc.addr();
            let hs = fold_bits(h & mask(g0_len), g0_len, width);
            let hl = fold_bits(h, self.history_len, width);
            let p = self.pc_memo.skew_pc_at(addr, width);
            let gp = skew_g(p, width);
            let banks = (
                addr >> 2,
                (skew_h(hs, width) ^ gp ^ p) & m,
                (skew_h(hl, width) ^ gp ^ hl) & m,
                (skew_g(hl, width) ^ skew_h(p, width) ^ p) & m,
            );
            let v = self.votes_at_raw(banks);
            bits |= u64::from(Self::final_of(v)) << i;
            self.train_at(v, banks, taken);
            h = ((h << 1) | u64::from(taken)) & hm;
        }
        PredictBlock::from_parts(bits, pcs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_simple_bias() {
        let mut p = BcGskew::new(1024, 10);
        let pc = Pc::new(0x500);
        let h = HistoryBits::new(10);
        for _ in 0..4 {
            p.update(pc, h, false);
        }
        assert!(!p.predict(pc, h).taken());
    }

    #[test]
    fn learns_history_correlated_branch() {
        // Outcome equals the outcome two branches ago: needs global history.
        let mut p = BcGskew::new(4096, 12);
        let pc = Pc::new(0x600);
        let mut bhr = HistoryBits::new(12);
        let mut last2 = [false, true];
        for i in 0..2000 {
            let taken = last2[0];
            p.update(pc, bhr, taken);
            bhr.push(taken);
            last2 = [last2[1], taken];
            let _ = i;
        }
        let mut correct = 0;
        for _ in 0..100 {
            let taken = last2[0];
            if p.predict(pc, bhr).taken() == taken {
                correct += 1;
            }
            p.update(pc, bhr, taken);
            bhr.push(taken);
            last2 = [last2[1], taken];
        }
        assert!(
            correct >= 95,
            "correlated branch should be learned, got {correct}/100"
        );
    }

    #[test]
    fn storage_matches_table3() {
        // Table 3: 2KB budget = 2K entries per bank (4 banks × 2K × 2 bits).
        let p = BcGskew::new(2048, 11);
        assert_eq!(p.storage_bytes(), 2048);
        let p = BcGskew::new(32 * 1024, 15);
        assert_eq!(p.storage_bytes(), 32 * 1024);
    }

    #[test]
    fn meta_learns_to_prefer_bimodal_for_biased_branch_under_noise() {
        // A branch that is ~always taken but whose history context is
        // polluted by a noisy neighbour: BIM is the reliable source.
        let mut p = BcGskew::new(256, 10);
        let biased = Pc::new(0x700);
        let noisy = Pc::new(0x704);
        let mut bhr = HistoryBits::new(10);
        let mut rng: u64 = 0x1234_5678;
        for _ in 0..4000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n_taken = (rng >> 33) & 1 == 1;
            p.update(noisy, bhr, n_taken);
            bhr.push(n_taken);
            p.update(biased, bhr, true);
            bhr.push(true);
        }
        let mut correct = 0;
        for _ in 0..200 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let n_taken = (rng >> 33) & 1 == 1;
            p.update(noisy, bhr, n_taken);
            bhr.push(n_taken);
            if p.predict(biased, bhr).taken() {
                correct += 1;
            }
            p.update(biased, bhr, true);
            bhr.push(true);
        }
        assert!(
            correct >= 195,
            "biased branch should stay predicted, got {correct}/200"
        );
    }

    #[test]
    fn partial_update_preserves_disagreeing_bank_on_correct_prediction() {
        // Construct a case where majority is correct but one bank disagrees;
        // the disagreeing bank must not be touched.
        let mut p = BcGskew::new(64, 6);
        let pc = Pc::new(0x800);
        let h = HistoryBits::from_raw(0b101010, 6);
        // Train g0/g1/bim all taken first.
        for _ in 0..4 {
            p.update(pc, h, true);
        }
        let (_, g0i, _, _) = p.indices(pc, h);
        // Manually flip g0 to strongly not-taken.
        for _ in 0..4 {
            p.g0.update(g0i, false);
        }
        let before = p.g0.counter(g0i).value();
        // Correct taken prediction via majority (bim+g1 vote taken).
        p.update(pc, h, true);
        let after = p.g0.counter(g0i).value();
        assert_eq!(
            before, after,
            "disagreeing bank untouched by partial update"
        );
    }
}
