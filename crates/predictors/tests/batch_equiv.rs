//! Differential property suite for the batched kernels.
//!
//! Every predictor's `predict_block`/`train_block`/`replay_block` must be
//! prediction-for-prediction and state-for-state identical to the scalar
//! `predict`/`update` path — for random chunk sizes 1..=64, with the global
//! history evolving *inside* chunks (each element's history value already
//! contains the outcomes of the elements before it). The BENCH artifacts and
//! every cached `sim::store` cell depend on prediction streams, so this
//! equivalence is the gate on the whole structure-of-arrays layer.

use predictors::{
    BcGskew, Bimodal, DirectionPredictor, DynamicAllocator, GAs, Gshare, HistoryBits, Local, Pc,
    PredictInput, Prediction, Tage, TaggedGshare, Yags,
};
use predictors::{Perceptron, PredictBlock};
use workloads::rng::SmallRng;

/// Builds a branch stream with evolving global history: a pool of aliasing
/// branch addresses with mixed behaviours (biased, patterned, noisy), where
/// each element's history value captures all earlier outcomes — so chunk
/// boundaries fall mid-pattern and mid-history.
fn stream(hist_len: usize, n: usize, seed: u64) -> Vec<PredictInput> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut hist = HistoryBits::new(hist_len);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let which = rng.gen_range(0usize..24);
        let pc = Pc::new(0x40_0000 + (which as u64) * 4);
        let taken = match which % 3 {
            0 => which.is_multiple_of(2),             // statically biased
            1 => (i / (which + 1)).is_multiple_of(2), // loop-like pattern
            _ => rng.gen_bool(0.5),                   // noise
        };
        out.push(PredictInput { pc, hist, taken });
        hist.push(taken);
    }
    out
}

/// Splits `inputs` into chunks of random sizes 1..=64.
fn random_chunks(inputs: &[PredictInput], seed: u64) -> Vec<&[PredictInput]> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut chunks = Vec::new();
    let mut rest = inputs;
    while !rest.is_empty() {
        let take = rng.gen_range(1usize..=64).min(rest.len());
        let (head, tail) = rest.split_at(take);
        chunks.push(head);
        rest = tail;
    }
    chunks
}

/// The scalar reference: predict-then-update per element.
fn scalar_run<P: DirectionPredictor>(p: &mut P, inputs: &[PredictInput]) -> Vec<bool> {
    inputs
        .iter()
        .map(|input| {
            let pred = p.predict(input.pc, input.hist).taken();
            p.update(input.pc, input.hist, input.taken);
            pred
        })
        .collect()
}

/// Asserts batched == scalar: directions element-for-element, then the full
/// predictor state (via `PartialEq` over every table word, weight, tag and
/// LRU stamp), for both `predict_block` and `train_block`.
fn assert_batch_equiv<P>(make: impl Fn() -> P, seed: u64)
where
    P: DirectionPredictor + PartialEq + std::fmt::Debug,
{
    let mut scalar = make();
    let hist_len = scalar.history_len().max(1);
    let inputs = stream(hist_len, 4096, seed);
    let scalar_preds = scalar_run(&mut scalar, &inputs);

    // predict_block over random chunk sizes.
    let mut batched = make();
    let mut batched_preds = Vec::with_capacity(inputs.len());
    for chunk in random_chunks(&inputs, seed ^ 0x000c_4a17) {
        let block = batched.predict_block(chunk);
        assert_eq!(block.len(), chunk.len());
        for i in 0..block.len() {
            batched_preds.push(block.taken(i));
        }
    }
    assert_eq!(
        batched_preds,
        scalar_preds,
        "{}: batched directions diverged from scalar",
        scalar.name()
    );
    assert_eq!(
        batched,
        scalar,
        "{}: predictor state diverged after predict_block",
        scalar.name()
    );

    // train_block must land in the same state (predict has no side effects,
    // so a train-only pass tracks the scalar state exactly).
    let mut trained = make();
    for chunk in random_chunks(&inputs, seed ^ 0x7_ea1) {
        trained.train_block(chunk);
    }
    assert_eq!(
        trained,
        scalar,
        "{}: predictor state diverged after train_block",
        scalar.name()
    );

    // replay_block reconstructs per-element histories from the chunk's
    // start register and outcome mask — it must match the scalar path (and
    // therefore predict_block) exactly, directions and state.
    let mut replayed = make();
    let mut replay_preds = Vec::with_capacity(inputs.len());
    for chunk in random_chunks(&inputs, seed ^ 0x000b_10c4) {
        let pcs: Vec<Pc> = chunk.iter().map(|input| input.pc).collect();
        let mut outcomes = 0u64;
        for (i, input) in chunk.iter().enumerate() {
            outcomes |= u64::from(input.taken) << i;
        }
        let block = replayed.replay_block(&pcs, outcomes, chunk[0].hist);
        assert_eq!(block.len(), chunk.len());
        for i in 0..block.len() {
            replay_preds.push(block.taken(i));
        }
    }
    assert_eq!(
        replay_preds,
        scalar_preds,
        "{}: replay_block directions diverged from scalar",
        scalar.name()
    );
    assert_eq!(
        replayed,
        scalar,
        "{}: predictor state diverged after replay_block",
        scalar.name()
    );

    // Interleaving the two batched entry points mid-stream must also track
    // the scalar state (replay alternates them around warm-up boundaries).
    let mut mixed = make();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x3_b0b);
    for chunk in random_chunks(&inputs, seed ^ 0x3_b0b) {
        if rng.gen_bool(0.5) {
            let _ = mixed.predict_block(chunk);
        } else {
            mixed.train_block(chunk);
        }
    }
    assert_eq!(
        mixed,
        scalar,
        "{}: predictor state diverged after mixed predict/train blocks",
        scalar.name()
    );
}

#[test]
fn bimodal_batched_equals_scalar() {
    assert_batch_equiv(|| Bimodal::new(1024), 0xb1);
}

#[test]
fn gshare_batched_equals_scalar() {
    assert_batch_equiv(|| Gshare::new(4096, 12), 0x95);
}

#[test]
fn gshare_smallest_table3_budget_batched_equals_scalar() {
    // The 2 KB Table-3 gshare: 8K entries, 13-bit history — the packed
    // banks' smallest production configuration.
    assert_batch_equiv(|| Gshare::new(8 * 1024, 13), 0x2b);
}

#[test]
fn gas_batched_equals_scalar() {
    assert_batch_equiv(|| GAs::new(4096, 6), 0x6a);
}

#[test]
fn local_batched_equals_scalar() {
    assert_batch_equiv(|| Local::new(512, 10, 4096), 0x10c);
}

#[test]
fn bc_gskew_batched_equals_scalar() {
    assert_batch_equiv(|| BcGskew::new(2048, 11), 0x65);
}

#[test]
fn perceptron_batched_equals_scalar() {
    assert_batch_equiv(|| Perceptron::new(113, 17), 0x9e);
}

#[test]
fn yags_batched_equals_scalar() {
    assert_batch_equiv(|| Yags::new(1024, 128, 2, 8, 13), 0x7a);
}

#[test]
fn tagged_gshare_batched_equals_scalar() {
    // Exercises the fused LRU/clock sequence: hits and misses, allocation,
    // eviction — all must leave the clock and stamps bit-identical.
    assert_batch_equiv(|| TaggedGshare::new(256, 6, 9, 18), 0x46);
}

#[test]
fn tage_batched_equals_scalar() {
    // The production-shaped TAGE: provider/altpred selection, use-alt
    // policy updates, allocation and useful-bit movement all must land
    // bit-identical under the fused kernels.
    assert_batch_equiv(|| Tage::new(256, 64, 4, 8, 24), 0x7a9e);
}

#[test]
fn tage_allocation_storm_batched_equals_scalar() {
    // 16-entry banks: the 24-address stream aliases constantly, so most
    // elements mispredict and hammer the allocate-on-mispredict path —
    // including the everyone-protected fallback that decays a whole
    // column of useful bits at once.
    assert_batch_equiv(|| Tage::new(64, 16, 4, 4, 12), 0x57_0a);
}

#[test]
fn tage_tag_aliasing_batched_equals_scalar() {
    // 2-bit partial tags over 8-entry banks: false tag hits are the
    // common case, so provider selection constantly lands on entries
    // trained by other statics. Order-dependent — any reordering inside
    // the batched kernels shows up immediately.
    assert_batch_equiv(|| Tage::new(64, 8, 4, 2, 10), 0xa11a);
}

#[test]
fn tage_with_allocator_batched_equals_scalar() {
    // Pre-flagged H2P statics: dedicated-entry training, the tournament
    // chooser and the confidence-gated override all run inside the
    // batched kernels and must track scalar exactly.
    assert_batch_equiv(
        || {
            let mut p =
                Tage::new(256, 64, 4, 8, 24).with_allocator(DynamicAllocator::new(8, 16, 32));
            let a = p.allocator_mut().unwrap();
            // Statics 0, 7 and 13 from the stream's 24-address pool.
            a.flag(Pc::new(0x40_0000));
            a.flag(Pc::new(0x40_0000 + 7 * 4));
            a.flag(Pc::new(0x40_0000 + 13 * 4));
            p
        },
        0xa110,
    );
}

#[test]
fn tage_aging_reset_boundary_batched_equals_scalar() {
    // Three full useful-bit aging periods (one `halve_all` per 4096
    // updates), with random chunk boundaries falling mid-period: the
    // deterministic aging tick must fire at the same element index in
    // scalar and batched runs, and the saturated useful counters built
    // up within each period must halve to identical values.
    let make = || Tage::new(256, 64, 4, 8, 24);
    let mut scalar = make();
    let inputs = stream(scalar.history_len(), 3 * 4096 + 777, 0xa6e);
    let scalar_preds = scalar_run(&mut scalar, &inputs);

    let mut batched = make();
    let mut got = Vec::with_capacity(inputs.len());
    for chunk in random_chunks(&inputs, 0xa6e ^ 0x77) {
        let block = batched.predict_block(chunk);
        for i in 0..block.len() {
            got.push(block.taken(i));
        }
    }
    assert_eq!(
        got, scalar_preds,
        "tage: directions diverged across aging resets"
    );
    assert_eq!(batched, scalar, "tage: state diverged across aging resets");
}

/// A predictor that implements only the scalar interface — it exercises the
/// trait's *default* batched implementations, which every non-SoA
/// implementation (and `Box<dyn DirectionPredictor>`) falls back on.
#[derive(Clone, Debug, PartialEq, Eq)]
struct ScalarOnly(Gshare);

impl DirectionPredictor for ScalarOnly {
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        self.0.predict(pc, hist)
    }
    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        self.0.update(pc, hist, taken);
    }
    fn history_len(&self) -> usize {
        self.0.history_len()
    }
    fn storage_bits(&self) -> usize {
        self.0.storage_bits()
    }
    fn name(&self) -> &'static str {
        "scalar-only"
    }
}

#[test]
fn default_batched_implementations_equal_scalar() {
    assert_batch_equiv(|| ScalarOnly(Gshare::new(2048, 10)), 0xde);
}

#[test]
fn chunk_capacity_boundary_is_exact() {
    // Full 64-element blocks — the replay engine's steady-state chunk size.
    let mut scalar = Gshare::new(4096, 12);
    let inputs = stream(12, 64 * 32, 0xca);
    let scalar_preds = scalar_run(&mut scalar, &inputs);
    let mut batched = Gshare::new(4096, 12);
    let mut got = Vec::new();
    for chunk in inputs.chunks(PredictBlock::CAPACITY) {
        let block = batched.predict_block(chunk);
        for i in 0..block.len() {
            got.push(block.taken(i));
        }
    }
    assert_eq!(got, scalar_preds);
    assert_eq!(batched, scalar);
}
