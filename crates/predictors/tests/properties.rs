//! Randomized property tests over the predictor primitives.
//!
//! The workspace builds offline, so instead of proptest these use the
//! in-repo seeded generator (`workloads::rng`) and sweep each invariant
//! over a few hundred deterministic cases.

use workloads::rng::SmallRng;

use predictors::index::{gshare_index, mix2, skew, skew_g, skew_h};
use predictors::{
    Bimodal, DirectionPredictor, Gshare, HistoryBits, Pc, Perceptron, SatCounter, TaggedTable,
};

const CASES: usize = 300;

#[test]
fn skew_h_and_g_are_mutual_inverses() {
    let mut rng = SmallRng::seed_from_u64(0xA001);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..=32);
        let x = rng.gen::<u64>() & ((1u64 << n) - 1);
        assert_eq!(skew_g(skew_h(x, n), n), x);
        assert_eq!(skew_h(skew_g(x, n), n), x);
    }
}

#[test]
fn skew_indices_stay_in_range() {
    let mut rng = SmallRng::seed_from_u64(0xA002);
    for _ in 0..CASES {
        let which = rng.gen_range(0usize..3);
        let pc = rng.gen::<u64>();
        let hist = rng.gen::<u64>();
        let hist_len = rng.gen_range(0usize..=64);
        let width = rng.gen_range(2usize..=31);
        let idx = skew(which, pc, hist, hist_len, width);
        assert!(idx < (1u64 << width));
    }
}

#[test]
fn gshare_index_is_pure() {
    let mut rng = SmallRng::seed_from_u64(0xA003);
    for _ in 0..CASES {
        let pc = rng.gen::<u64>();
        let hist = rng.gen::<u64>();
        let len = rng.gen_range(0usize..=64);
        let a = gshare_index(pc, hist, len, 13);
        let b = gshare_index(pc, hist, len, 13);
        assert_eq!(a, b);
        assert!(a < (1 << 13));
    }
}

#[test]
fn mix2_outputs_respect_widths() {
    let mut rng = SmallRng::seed_from_u64(0xA004);
    for _ in 0..CASES {
        let pc = rng.gen::<u64>();
        let bits = rng.gen::<u64>();
        let len = rng.gen_range(0usize..=64);
        let iw = rng.gen_range(1usize..=20);
        let tw = rng.gen_range(1usize..=16);
        let (idx, tag) = mix2(pc, bits, len, iw, tw);
        assert!(idx < (1u64 << iw));
        assert!(tag < (1u64 << tw));
    }
}

#[test]
fn tagged_table_never_exceeds_capacity() {
    let mut rng = SmallRng::seed_from_u64(0xA005);
    for _ in 0..20 {
        let mut t: TaggedTable<u8> = TaggedTable::new(16, 4, 9, 0);
        let ops = rng.gen_range(0usize..300);
        for _ in 0..ops {
            let idx = rng.gen_range(0u64..64);
            let tag = rng.gen_range(0u64..512);
            let data = (rng.gen::<u64>() & 0xff) as u8;
            t.insert(idx, tag, data);
            assert!(t.occupancy() <= t.capacity());
        }
    }
}

#[test]
fn tagged_table_insert_then_peek_hits() {
    let mut rng = SmallRng::seed_from_u64(0xA006);
    for _ in 0..CASES {
        let idx = rng.gen_range(0u64..1024);
        let tag = rng.gen_range(0u64..512);
        let data = (rng.gen::<u64>() & 0xff) as u8;
        let mut t: TaggedTable<u8> = TaggedTable::new(64, 4, 9, 0);
        t.insert(idx, tag, data);
        assert_eq!(t.peek(idx, tag), Some(&data));
    }
}

#[test]
fn counters_round_trip_direction() {
    for bits in 1usize..=7 {
        for taken in [false, true] {
            let c = SatCounter::weak_for(bits, taken);
            assert_eq!(c.is_taken(), taken);
            // A 1-bit counter has no hysteresis: its weak state *is* strong.
            if bits >= 2 {
                assert!(!c.is_strong());
            }
        }
    }
}

#[test]
fn predictors_are_deterministic_under_identical_streams() {
    let mut rng = SmallRng::seed_from_u64(0xA007);
    let stream: Vec<(u64, bool)> = (0..200)
        .map(|_| (rng.gen_range(0u64..1 << 20), rng.gen::<bool>()))
        .collect();
    let run = |mut p: Box<dyn DirectionPredictor>| -> Vec<bool> {
        let mut hist = HistoryBits::new(p.history_len().max(1));
        let mut out = Vec::new();
        for (pc_raw, taken) in &stream {
            let pc = Pc::new(0x40_0000 + pc_raw * 4);
            out.push(p.predict(pc, hist).taken());
            p.update(pc, hist, *taken);
            hist.push(*taken);
        }
        out
    };
    for make in [
        || Box::new(Bimodal::new(256)) as Box<dyn DirectionPredictor>,
        || Box::new(Gshare::new(1024, 10)) as Box<dyn DirectionPredictor>,
        || Box::new(Perceptron::new(37, 12)) as Box<dyn DirectionPredictor>,
    ] {
        assert_eq!(run(make()), run(make()));
    }
}

#[test]
fn history_resize_is_prefix_preserving() {
    let mut rng = SmallRng::seed_from_u64(0xA008);
    for _ in 0..CASES {
        let bits = rng.gen::<u64>();
        let a = rng.gen_range(1usize..=64);
        let b = rng.gen_range(1usize..=64);
        let (big, small) = (a.max(b), a.min(b));
        let mut h = HistoryBits::from_raw(bits, big);
        let expected = h.recent(small);
        h.resize(small);
        assert_eq!(h.bits(), expected);
    }
}
