//! Property-based tests over the predictor primitives.

use proptest::prelude::*;

use predictors::index::{gshare_index, mix2, skew, skew_g, skew_h};
use predictors::{
    Bimodal, DirectionPredictor, Gshare, HistoryBits, Pc, Perceptron, SatCounter, TaggedTable,
};

proptest! {
    #[test]
    fn skew_h_and_g_are_mutual_inverses(x in any::<u64>(), n in 2usize..=32) {
        let x = x & ((1u64 << n) - 1);
        prop_assert_eq!(skew_g(skew_h(x, n), n), x);
        prop_assert_eq!(skew_h(skew_g(x, n), n), x);
    }

    #[test]
    fn skew_indices_stay_in_range(
        which in 0usize..3,
        pc in any::<u64>(),
        hist in any::<u64>(),
        hist_len in 0usize..=64,
        width in 2usize..=31,
    ) {
        let idx = skew(which, pc, hist, hist_len, width);
        prop_assert!(idx < (1u64 << width));
    }

    #[test]
    fn gshare_index_is_pure(pc in any::<u64>(), hist in any::<u64>(), len in 0usize..=64) {
        let a = gshare_index(pc, hist, len, 13);
        let b = gshare_index(pc, hist, len, 13);
        prop_assert_eq!(a, b);
        prop_assert!(a < (1 << 13));
    }

    #[test]
    fn mix2_outputs_respect_widths(
        pc in any::<u64>(),
        bits in any::<u64>(),
        len in 0usize..=64,
        iw in 1usize..=20,
        tw in 1usize..=16,
    ) {
        let (idx, tag) = mix2(pc, bits, len, iw, tw);
        prop_assert!(idx < (1u64 << iw));
        prop_assert!(tag < (1u64 << tw));
    }

    #[test]
    fn tagged_table_never_exceeds_capacity(
        ops in prop::collection::vec((0u64..64, 0u64..512, any::<u8>()), 0..300),
    ) {
        let mut t: TaggedTable<u8> = TaggedTable::new(16, 4, 9, 0);
        for (idx, tag, data) in ops {
            t.insert(idx, tag, data);
            prop_assert!(t.occupancy() <= t.capacity());
        }
    }

    #[test]
    fn tagged_table_insert_then_peek_hits(idx in 0u64..1024, tag in 0u64..512, data: u8) {
        let mut t: TaggedTable<u8> = TaggedTable::new(64, 4, 9, 0);
        t.insert(idx, tag, data);
        prop_assert_eq!(t.peek(idx, tag), Some(&data));
    }

    #[test]
    fn counters_round_trip_direction(bits in 1usize..=7, taken: bool) {
        let c = SatCounter::weak_for(bits, taken);
        prop_assert_eq!(c.is_taken(), taken);
        // A 1-bit counter has no hysteresis: its weak state *is* strong.
        if bits >= 2 {
            prop_assert!(!c.is_strong());
        }
    }

    #[test]
    fn predictors_are_deterministic_under_identical_streams(
        stream in prop::collection::vec((0u64..1 << 20, any::<bool>()), 1..200),
    ) {
        let run = |mut p: Box<dyn DirectionPredictor>| -> Vec<bool> {
            let mut hist = HistoryBits::new(p.history_len().max(1));
            let mut out = Vec::new();
            for (pc_raw, taken) in &stream {
                let pc = Pc::new(0x40_0000 + pc_raw * 4);
                out.push(p.predict(pc, hist).taken());
                p.update(pc, hist, *taken);
                hist.push(*taken);
            }
            out
        };
        for make in [
            || Box::new(Bimodal::new(256)) as Box<dyn DirectionPredictor>,
            || Box::new(Gshare::new(1024, 10)) as Box<dyn DirectionPredictor>,
            || Box::new(Perceptron::new(37, 12)) as Box<dyn DirectionPredictor>,
        ] {
            prop_assert_eq!(run(make()), run(make()));
        }
    }

    #[test]
    fn history_resize_is_prefix_preserving(bits in any::<u64>(), big in 1usize..=64, small in 1usize..=64) {
        let (big, small) = (big.max(small), big.min(small));
        let mut h = HistoryBits::from_raw(bits, big);
        let expected = h.recent(small);
        h.resize(small);
        prop_assert_eq!(h.bits(), expected);
    }
}
