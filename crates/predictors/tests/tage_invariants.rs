//! Seeded property tests for the TAGE invariants the sim layer leans on.
//!
//! These pin the *structural* contract — which bank may provide, when
//! allocation is allowed to touch the tag arrays, how useful counters move
//! between deterministic aging resets, and how the budget ladder's storage
//! accounting relates to `configs` — independently of any prediction-
//! accuracy claim. The differential suite (`batch_equiv`) pins scalar vs
//! batched; this suite pins scalar vs the paper-shaped state machine.

use predictors::configs::{self, Budget};
use predictors::{DirectionPredictor, DynamicAllocator, HistoryBits, Pc, Tage};
use workloads::rng::SmallRng;

/// A branch element: context plus resolved outcome.
struct Element {
    pc: Pc,
    hist: HistoryBits,
    taken: bool,
}

/// A pool of aliasing statics with mixed behaviours and evolving global
/// history — the same shape the differential suite uses.
fn stream(hist_len: usize, n: usize, seed: u64) -> Vec<Element> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut hist = HistoryBits::new(hist_len);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let which = rng.gen_range(0usize..24);
        let pc = Pc::new(0x40_0000 + (which as u64) * 4);
        let taken = match which % 3 {
            0 => which.is_multiple_of(2),
            1 => (i / (which + 1)).is_multiple_of(2),
            _ => rng.gen_bool(0.5),
        };
        out.push(Element { pc, hist, taken });
        hist.push(taken);
    }
    out
}

const SEEDS: [u64; 4] = [0x7a_9e01, 0x7a_9e02, 0x7a_9e03, 0x7a_9e04];

#[test]
fn provider_history_length_dominates_the_alternate() {
    // Whenever a tagged bank provides, its geometric history length must
    // be strictly longer than the alternate's (or the alternate is the
    // base, reported as length 0) — the defining TAGE selection rule.
    for seed in SEEDS {
        let mut p = Tage::new(256, 64, 4, 8, 24);
        let mut provided = 0usize;
        for e in stream(p.history_len(), 4096, seed) {
            if let Some((prov, alt)) = p.provider_lengths(e.pc, e.hist) {
                assert!(
                    prov > alt,
                    "seed {seed:#x}: provider length {prov} must beat alternate {alt}"
                );
                provided += 1;
            }
            p.update(e.pc, e.hist, e.taken);
        }
        assert!(
            provided > 100,
            "seed {seed:#x}: tagged banks never provided"
        );
    }
}

#[test]
fn allocation_happens_only_on_a_mispredict() {
    // The tag arrays are written only by allocate-on-mispredict, and the
    // set of banks hitting a context is a pure function of the tags. So a
    // *correct* prediction must leave that context's provider/alternate
    // structure untouched, while mispredicts are the only steps after
    // which a longer provider may appear.
    for seed in SEEDS {
        let mut p = Tage::new(64, 16, 4, 6, 12);
        let mut grew_on_mispredict = 0usize;
        for e in stream(p.history_len(), 4096, seed) {
            let before = p.provider_lengths(e.pc, e.hist);
            let correct = p.predict(e.pc, e.hist).taken() == e.taken;
            p.update(e.pc, e.hist, e.taken);
            let after = p.provider_lengths(e.pc, e.hist);
            if correct {
                assert_eq!(
                    before, after,
                    "seed {seed:#x}: a correct prediction reshaped the tag hits"
                );
            } else if after.map_or(0, |(prov, _)| prov) > before.map_or(0, |(prov, _)| prov) {
                grew_on_mispredict += 1;
            }
        }
        assert!(
            grew_on_mispredict > 10,
            "seed {seed:#x}: mispredicts never allocated a longer provider"
        );
    }
}

#[test]
fn useful_counters_move_one_step_between_aging_resets() {
    // Between the deterministic aging boundaries (every 4096 updates) a
    // useful counter moves by at most one per update; at the boundary,
    // every counter halves. Pinning both halves of that contract keeps
    // the batched kernels from ever reordering aging around training.
    let seed = SEEDS[0];
    let mut p = Tage::new(256, 64, 4, 8, 24);
    let banks = p.bank_history_lengths().len();
    let inputs = stream(p.history_len(), 4096, seed);
    let mut prev: Vec<Vec<u8>> = (0..banks).map(|b| p.useful_values(b)).collect();
    for (i, e) in inputs.iter().enumerate() {
        p.update(e.pc, e.hist, e.taken);
        let now: Vec<Vec<u8>> = (0..banks).map(|b| p.useful_values(b)).collect();
        let at_reset = i + 1 == 4096;
        for b in 0..banks {
            for (j, (&old, &new)) in prev[b].iter().zip(&now[b]).enumerate() {
                if at_reset {
                    // The 4096th update may move the entry one step before
                    // the halving fires, hence the +1 slack.
                    assert!(
                        new <= old.div_ceil(2),
                        "bank {b} entry {j}: {old} -> {new} across the aging reset"
                    );
                } else {
                    assert!(
                        old.abs_diff(new) <= 1,
                        "bank {b} entry {j}: {old} -> {new} in one update"
                    );
                }
            }
        }
        prev = now;
    }
    // The stream's biased statics must have saturated some useful bits
    // along the way, or the halving assertion was vacuous.
    let total: u32 = (0..banks)
        .flat_map(|b| p.useful_values(b))
        .map(u32::from)
        .sum();
    assert!(total > 0, "useful counters never charged");
}

#[test]
fn budget_ladder_accounting_matches_configs() {
    // Every Table-3-ladder TAGE row lands inside the ±15 % band that the
    // paper's fixed-budget comparisons assume, and the H2P-augmented
    // flagship stays under an 18 KB hard cap (16 KB nominal + allocator).
    for budget in Budget::ALL {
        let bits = configs::tage(budget).storage_bits();
        let nominal = budget.bytes() * 8;
        let percent = bits as f64 / nominal as f64 * 100.0;
        assert!(
            (85.0..=115.0).contains(&percent),
            "{budget:?}: tage at {percent:.1}% of nominal"
        );
    }
    let plain = configs::tage(Budget::K16);
    let with = configs::tage_h2p(Budget::K16);
    assert!(
        with.storage_bits() <= 18 * 1024 * 8,
        "tage+h2p exceeds the 18 KB cap"
    );
    // The allocator's storage is accounted exactly once.
    let (capacity, entries_per, tracker) = configs::TAGE_H2P;
    let alloc = DynamicAllocator::new(capacity, entries_per, tracker);
    assert_eq!(
        with.storage_bits(),
        plain.storage_bits() + alloc.storage_bits(),
        "allocator storage must be additive"
    );
}

#[test]
fn allocator_capacity_and_chooser_gating_hold_under_load() {
    // Twin-run property: the allocator must not perturb the main TAGE
    // state machine (its training is driven by `tage_taken`, not the
    // overridden direction), so a plain twin and an allocator-equipped
    // twin fed the same stream may only ever disagree on elements where
    // the full override gate holds — flagged static, saturated dedicated
    // entry, and a tournament chooser that has earned credit. And the
    // flagged list never exceeds its capacity.
    for seed in SEEDS {
        let mut plain = Tage::new(256, 64, 4, 8, 24);
        let mut with =
            Tage::new(256, 64, 4, 8, 24).with_allocator(DynamicAllocator::new(4, 16, 32));
        for e in stream(plain.history_len(), 8192, seed) {
            let p0 = plain.predict(e.pc, e.hist).taken();
            let p1 = with.predict(e.pc, e.hist).taken();
            if p0 != p1 {
                let a = with.allocator().unwrap();
                assert!(a.is_flagged(e.pc), "override on an unflagged static");
                assert!(a.chooser_favors(e.pc), "override without chooser credit");
                assert_eq!(
                    a.predict_h2p(e.pc, e.hist),
                    Some((p1, true)),
                    "override without a saturated dedicated entry"
                );
            }
            plain.update(e.pc, e.hist, e.taken);
            with.update(e.pc, e.hist, e.taken);
            let a = with.allocator().unwrap();
            assert!(a.flagged_statics() <= a.capacity());
        }
    }
}
