//! Robustness sweeps for the block-compressed `.bt` v2 format.
//!
//! Four properties, per the format's durability contract:
//!
//! 1. **Round-trip** — on randomized streams, a v2 image decodes (through
//!    the scalar reference reader) to exactly the records a v1 image does.
//! 2. **Truncation** — a v2 image cut at *any* byte offset either fails
//!    with a typed error or yields a strict prefix of the records; it
//!    never panics and never fabricates data.
//! 3. **Bit flips** — a single flipped bit in any block loses *only* that
//!    block: `salvage` recovers every other record intact.
//! 4. **Fault injection** — [`FaultPlan`] flip/trunc corruption applied to
//!    a recorded v2 trace is caught by the strict reader and contained by
//!    `salvage`.

use bptrace::{
    salvage, sniff_version, BranchKind, BranchRecord, BtBlockWriter, BtWriter, BT_BLOCK_MAGIC,
    BT_VERSION,
};
use replay::{decode_records, record_trace, replay_bytes, FaultPlan, ReplayConfig};

/// xorshift64* — deterministic, dependency-free randomness for streams.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A randomized branch stream: mostly conditionals over a PC pool (so the
/// dictionary sees reuse *and* misses), with calls/returns and occasional
/// uops outliers mixed in.
fn random_stream(seed: u64, n: usize) -> Vec<BranchRecord> {
    let mut rng = Rng(seed | 1);
    let pool: Vec<u64> = (0..24)
        .map(|_| 0x40_0000 + (rng.next() & 0xf_fffc))
        .collect();
    (0..n)
        .map(|_| {
            let pc = pool[(rng.next() % pool.len() as u64) as usize];
            let target = pool[(rng.next() % pool.len() as u64) as usize];
            let uops = 1
                + (rng.next() % 9) as u32
                + if rng.next().is_multiple_of(41) {
                    300
                } else {
                    0
                };
            match rng.next() % 10 {
                0 => BranchRecord {
                    pc,
                    target,
                    kind: BranchKind::Call,
                    taken: true,
                    uops_since_prev: uops,
                },
                1 => BranchRecord {
                    pc,
                    target,
                    kind: BranchKind::Return,
                    taken: true,
                    uops_since_prev: uops,
                },
                2 => BranchRecord {
                    pc,
                    target,
                    kind: BranchKind::Jump,
                    taken: true,
                    uops_since_prev: uops,
                },
                _ => BranchRecord::conditional(pc, target, !rng.next().is_multiple_of(3), uops),
            }
        })
        .collect()
}

fn encode_v1(records: &[BranchRecord], name: &str) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = BtWriter::new(&mut buf, name).unwrap();
    for r in records {
        w.write(r).unwrap();
    }
    w.finish().unwrap();
    buf
}

fn encode_v2(records: &[BranchRecord], name: &str, cap: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    let mut w = BtBlockWriter::with_block_capacity(&mut buf, name, cap).unwrap();
    for r in records {
        w.write(r).unwrap();
    }
    w.finish().unwrap();
    buf
}

#[test]
fn randomized_streams_round_trip_identically_across_formats() {
    for seed in [3, 0x5eed, 0xdead_beef] {
        // Lengths straddling the default and a small block boundary.
        for n in [1usize, 63, 64, 65, 4095, 4096, 4097] {
            let records = random_stream(seed, n);
            let v1 = encode_v1(&records, "rt");
            let v2 = encode_v2(&records, "rt", 64);
            let (n1, d1) = decode_records(&v1).unwrap();
            let (n2, d2) = decode_records(&v2).unwrap();
            assert_eq!((n1.as_str(), &d1), ("rt", &records), "v1 seed={seed} n={n}");
            assert_eq!((n2.as_str(), &d2), ("rt", &records), "v2 seed={seed} n={n}");
        }
    }
}

#[test]
fn truncation_at_every_byte_offset_errors_or_yields_a_strict_prefix() {
    let records = random_stream(7, 500);
    let image = encode_v2(&records, "cut", 64);
    for cut in 0..image.len() {
        match decode_records(&image[..cut]) {
            // A cut landing exactly on a block boundary reads as clean
            // EOF: fewer records, but every one of them right.
            Ok((name, prefix)) => {
                assert_eq!(name, "cut", "cut={cut}");
                assert!(prefix.len() < records.len(), "cut={cut} lost no records");
                assert_eq!(prefix, records[..prefix.len()], "cut={cut} corrupted data");
            }
            Err(e) => {
                let _typed: replay::ReplayError = e;
            }
        }
    }
}

#[test]
fn single_bit_flip_in_any_block_loses_only_that_block() {
    const CAP: usize = 64;
    let records = random_stream(11, 500);
    let image = encode_v2(&records, "flip", CAP);

    let markers: Vec<usize> = (0..image.len().saturating_sub(BT_BLOCK_MAGIC.len()))
        .filter(|&i| image[i..i + BT_BLOCK_MAGIC.len()] == BT_BLOCK_MAGIC)
        .collect();
    assert_eq!(
        markers.len(),
        records.len().div_ceil(CAP),
        "spurious marker in image"
    );

    for (b, &start) in markers.iter().enumerate() {
        let end = markers.get(b + 1).copied().unwrap_or(image.len());
        let mut bad = image.clone();
        // Flip one payload bit in the middle of the block's framed span.
        bad[start + (end - start) / 2] ^= 0x10;

        assert!(
            decode_records(&bad).is_err(),
            "strict reader accepted block {b} damage"
        );

        let report = salvage(&bad).unwrap();
        assert_eq!(report.name, "flip");
        assert_eq!(report.corrupt_spans, 1, "block {b}");
        let lo = b * CAP;
        let hi = ((b + 1) * CAP).min(records.len());
        let mut expected = records[..lo].to_vec();
        expected.extend_from_slice(&records[hi..]);
        assert_eq!(
            report.records, expected,
            "block {b} damage leaked past the block"
        );
    }
}

#[test]
fn fault_plan_flip_and_trunc_are_caught_by_the_v2_reader() {
    let bench = workloads::benchmark("gzip").unwrap();
    let mut image = Vec::new();
    record_trace(&bench.program(), bench.seed, 60_000, &mut image).unwrap();
    assert_eq!(sniff_version(&image), Some(BT_VERSION));
    let (_, full) = decode_records(&image).unwrap();
    let cfg = ReplayConfig::with_budget(60_000);

    // Flip: one seeded bit in the second half. Every block byte is under
    // a checksum, so the strict reader must refuse the whole image, and
    // salvage must contain the loss to a single span.
    let plan = FaultPlan::from_spec("seed=11;flip=gzip").unwrap();
    let mut flipped = image.clone();
    assert!(plan.corrupt_trace("gzip", &mut flipped).is_some());
    assert!(decode_records(&flipped).is_err());
    let mut p = predictors::configs::gshare(predictors::configs::Budget::K16);
    assert!(replay_bytes(&flipped, &mut p, &cfg).is_err());
    let report = salvage(&flipped).unwrap();
    assert_eq!(report.corrupt_spans, 1);
    assert!(report.records.len() < full.len());

    // Trunc: a seeded cut in the second half — an error, or a clean-EOF
    // strict prefix if the cut lands exactly between blocks.
    let plan = FaultPlan::from_spec("seed=11;trunc=gzip").unwrap();
    let mut cut = image.clone();
    assert!(plan.corrupt_trace("gzip", &mut cut).is_some());
    assert!(cut.len() < image.len());
    if let Ok((_, prefix)) = decode_records(&cut) {
        assert!(prefix.len() < full.len());
        assert_eq!(prefix, full[..prefix.len()]);
    }
}
