//! Integration: the `record → replay` round trip over a real on-disk
//! corpus is deterministic — replaying the recorded corpus reproduces the
//! same per-predictor accuracy as direct execution on the same seeds
//! (the subsystem's acceptance pin).

use predictors::configs::{self, Budget};
use predictors::{Bimodal, DirectionPredictor};
use replay::{
    direct_replay, load_snapshot, open_trace, record_corpus, replay_reader, verify_corpus,
    Manifest, ReplayConfig, ReplayResult,
};
use workloads::{Benchmark, Walker};

const BUDGET: u64 = 30_000;

fn corpus_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("replay-it-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn benches(names: &[&str]) -> Vec<Benchmark> {
    names
        .iter()
        .map(|n| workloads::benchmark(n).unwrap())
        .collect()
}

fn predictors_under_test() -> Vec<Box<dyn DirectionPredictor>> {
    vec![
        Box::new(Bimodal::new(8 * 1024)),
        Box::new(configs::gshare(Budget::K8)),
        Box::new(configs::bc_gskew(Budget::K8)),
        Box::new(configs::perceptron(Budget::K8)),
    ]
}

#[test]
fn recorded_corpus_replay_matches_direct_execution() {
    let dir = corpus_dir("determinism");
    let benches = benches(&["gzip", "gcc", "tpcc"]);
    let manifest = record_corpus(&dir, &benches, BUDGET).unwrap();
    verify_corpus(&dir, &manifest).unwrap();

    let cfg = ReplayConfig::with_budget(BUDGET);
    for (bench, entry) in benches.iter().zip(&manifest.entries) {
        assert_eq!(entry.uop_budget, BUDGET);
        for (mut disk_pred, mut direct_pred) in predictors_under_test()
            .into_iter()
            .zip(predictors_under_test())
        {
            let mut reader = open_trace(&dir, entry).unwrap();
            let from_disk: ReplayResult = replay_reader(&mut reader, &mut disk_pred, &cfg).unwrap();
            let direct = direct_replay(&bench.program(), bench.seed, &mut direct_pred, &cfg);
            assert_eq!(
                from_disk, direct,
                "{} on {}: corpus replay diverged from direct execution",
                direct.predictor, bench.name
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn re_recording_reproduces_the_corpus_bit_for_bit() {
    let dir_a = corpus_dir("rerecord-a");
    let dir_b = corpus_dir("rerecord-b");
    let set = benches(&["mcf", "swim"]);
    let a = record_corpus(&dir_a, &set, BUDGET).unwrap();
    let b = record_corpus(&dir_b, &set, BUDGET).unwrap();
    assert_eq!(a, b, "manifests must agree (checksums included)");
    for entry in &a.entries {
        let bytes_a = std::fs::read(dir_a.join(&entry.bt_file)).unwrap();
        let bytes_b = std::fs::read(dir_b.join(&entry.bt_file)).unwrap();
        assert_eq!(bytes_a, bytes_b, "{}: .bt files differ", entry.name);
        let pcl_a = std::fs::read(dir_a.join(&entry.pcl_file)).unwrap();
        let pcl_b = std::fs::read(dir_b.join(&entry.pcl_file)).unwrap();
        assert_eq!(pcl_a, pcl_b, "{}: .pcl files differ", entry.name);
    }
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn snapshot_path_reproduces_the_traced_branch_stream() {
    // The hybrid evaluation path re-executes the snapshot; its
    // correct-path walk must match the recorded trace exactly.
    let dir = corpus_dir("snapshot");
    let set = benches(&["crafty"]);
    let manifest = record_corpus(&dir, &set, BUDGET).unwrap();
    let entry = manifest.entry("crafty").unwrap();

    let snap = load_snapshot(&dir, entry).unwrap();
    let mut walker = Walker::with_seed(&snap.program, snap.seed);
    let mut reader = open_trace(&dir, entry).unwrap();
    let mut compared = 0u64;
    while let Some(rec) = reader.next_record().unwrap() {
        let ev = walker.next_branch();
        assert_eq!(
            (ev.pc, ev.outcome, ev.uops),
            (rec.pc, rec.taken, u64::from(rec.uops_since_prev))
        );
        walker.follow(ev.outcome);
        compared += 1;
    }
    assert_eq!(compared, entry.records);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn manifest_survives_reload_between_sessions() {
    // A corpus is a durable artifact: a second process (here, a second
    // load) sees the same manifest and can replay without re-recording.
    let dir = corpus_dir("reload");
    let set = benches(&["art"]);
    let written = record_corpus(&dir, &set, BUDGET).unwrap();
    let reloaded = Manifest::load(&dir).unwrap();
    assert_eq!(written, reloaded);

    let entry = reloaded.entry("art").unwrap();
    let mut p = configs::gshare(Budget::K4);
    let mut reader = open_trace(&dir, entry).unwrap();
    let r = replay_reader(&mut reader, &mut p, &ReplayConfig::with_budget(BUDGET)).unwrap();
    assert_eq!(r.trace, "art");
    assert!(r.measured_conditionals > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
