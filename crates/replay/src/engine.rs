//! The streaming trace-replay engine for conventional predictors.
//!
//! CBP-style trace-driven evaluation: records stream out of a
//! [`BtReader`] one at a time (the full trace is never materialized), each
//! conditional is predicted from the replay's branch-history register,
//! compared against the recorded outcome, and the predictor is trained
//! with that outcome — in-order, non-speculative, the standard
//! methodology of trace-driven championship harnesses.
//!
//! Warm-up mirrors the execution-driven simulator (`sim::accuracy`):
//! statistics collection starts only after [`ReplayConfig::warmup_uops`]
//! recorded micro-ops have passed (default: 20 % of the budget), and the
//! replay stops once [`ReplayConfig::max_uops`] have been covered, so a
//! trace recorded at a given budget and a direct execution at the same
//! budget measure the same window.
//!
//! This engine is **only** for conventional predictors. A prophet/critic
//! hybrid must not be evaluated here: its critic consumes *predicted
//! future* bits that on a real machine come from wrong-path fetch, and a
//! correct-path trace would silently hand it oracle outcomes instead
//! (paper §6). Hybrids are re-executed from the corpus' `.pcl` snapshots
//! by the `sim` crate.

use std::collections::HashMap;
use std::io::Read;

use bptrace::{BranchRecord, BtReader};
use predictors::{DirectionPredictor, HistoryBits, Pc};
use workloads::{Program, Walker};

use crate::error::Result;

/// Budget and measurement window of one replay, mirroring the
/// execution-driven `SimConfig`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ReplayConfig {
    /// Stop once this many recorded micro-ops have been replayed.
    pub max_uops: u64,
    /// Recorded micro-ops to pass before statistics collection starts
    /// (predictor warm-up).
    pub warmup_uops: u64,
}

impl ReplayConfig {
    /// A configuration replaying `max_uops` with the workspace's standard
    /// 20 % warm-up fraction.
    #[must_use]
    pub fn with_budget(max_uops: u64) -> Self {
        Self {
            max_uops,
            warmup_uops: max_uops / 5,
        }
    }
}

/// Per-static-branch replay outcome (measured region only).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BranchReplay {
    /// The branch instruction's address.
    pub pc: u64,
    /// Measured dynamic occurrences.
    pub occurrences: u64,
    /// Measured taken occurrences.
    pub taken: u64,
    /// Measured mispredicts.
    pub mispredicts: u64,
}

impl BranchReplay {
    /// Fraction of occurrences that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.occurrences == 0 {
            return 0.0;
        }
        self.taken as f64 / self.occurrences as f64
    }

    /// Direction bias in `[0.5, 1.0]` (majority-direction frequency).
    #[must_use]
    pub fn bias(&self) -> f64 {
        let r = self.taken_rate();
        r.max(1.0 - r)
    }
}

/// The outcome of replaying one trace through one predictor.
///
/// `PartialEq` compares every counter, so determinism tests can pin
/// corpus replay against direct execution bit-for-bit.
#[derive(Clone, PartialEq, Debug)]
pub struct ReplayResult {
    /// The trace (benchmark) name.
    pub trace: String,
    /// The predictor's name.
    pub predictor: &'static str,
    /// Micro-ops in the measured region.
    pub measured_uops: u64,
    /// Conditional branches in the measured region.
    pub measured_conditionals: u64,
    /// Mispredicts in the measured region.
    pub mispredicts: u64,
    /// Total records consumed (warm-up included).
    pub replayed_records: u64,
    /// Per-static-branch outcomes over the measured region, sorted
    /// hardest-first (descending mispredicts, then PC).
    pub per_branch: Vec<BranchReplay>,
}

impl ReplayResult {
    /// Mispredicts per thousand measured micro-ops — the paper's headline
    /// accuracy metric, reconstructed from the trace.
    #[must_use]
    pub fn misp_per_kuops(&self) -> f64 {
        if self.measured_uops == 0 {
            return 0.0;
        }
        self.mispredicts as f64 * 1000.0 / self.measured_uops as f64
    }

    /// Percentage of measured conditionals mispredicted.
    #[must_use]
    pub fn mispredict_percent(&self) -> f64 {
        if self.measured_conditionals == 0 {
            return 0.0;
        }
        self.mispredicts as f64 * 100.0 / self.measured_conditionals as f64
    }

    /// The hard-to-predict branches this replay actually measured: the
    /// top `n` static branches by mispredict count (ties by PC), skipping
    /// branches that never mispredicted.
    #[must_use]
    pub fn h2p_branches(&self, n: usize) -> &[BranchReplay] {
        let end = self
            .per_branch
            .iter()
            .take(n)
            .take_while(|b| b.mispredicts > 0)
            .count();
        &self.per_branch[..end]
    }
}

/// Running replay state shared by the streaming and direct paths, so the
/// corpus replay and the direct-execution reference cannot drift apart.
struct ReplaySession {
    config: ReplayConfig,
    hist: HistoryBits,
    total_uops: u64,
    records: u64,
    measured_uops: u64,
    measured_conditionals: u64,
    mispredicts: u64,
    per_pc: HashMap<u64, BranchReplay>,
}

impl ReplaySession {
    fn new<P: DirectionPredictor>(predictor: &P, config: ReplayConfig) -> Self {
        Self {
            config,
            hist: HistoryBits::new(predictor.history_len().min(predictors::MAX_HISTORY_BITS)),
            total_uops: 0,
            records: 0,
            measured_uops: 0,
            measured_conditionals: 0,
            mispredicts: 0,
            per_pc: HashMap::new(),
        }
    }

    /// Replays one record; returns `false` once the budget is exhausted.
    fn step<P: DirectionPredictor>(&mut self, rec: &BranchRecord, predictor: &mut P) -> bool {
        if self.total_uops >= self.config.max_uops {
            return false;
        }
        let measuring = self.total_uops >= self.config.warmup_uops;
        self.total_uops += u64::from(rec.uops_since_prev);
        self.records += 1;
        if rec.kind.is_conditional() {
            let pc = Pc::new(rec.pc);
            let predicted = predictor.predict(pc, self.hist).taken();
            let mispredict = predicted != rec.taken;
            predictor.update(pc, self.hist, rec.taken);
            self.hist.push(rec.taken);
            if measuring {
                self.measured_uops += u64::from(rec.uops_since_prev);
                self.measured_conditionals += 1;
                self.mispredicts += u64::from(mispredict);
                let entry = self.per_pc.entry(rec.pc).or_insert(BranchReplay {
                    pc: rec.pc,
                    occurrences: 0,
                    taken: 0,
                    mispredicts: 0,
                });
                entry.occurrences += 1;
                entry.taken += u64::from(rec.taken);
                entry.mispredicts += u64::from(mispredict);
            }
        } else if measuring {
            // Unconditional kinds consume no prediction but their uops
            // still belong to the measured window.
            self.measured_uops += u64::from(rec.uops_since_prev);
        }
        true
    }

    fn finish(self, trace: String, predictor: &'static str) -> ReplayResult {
        let mut per_branch: Vec<BranchReplay> = self.per_pc.into_values().collect();
        per_branch.sort_unstable_by(|a, b| b.mispredicts.cmp(&a.mispredicts).then(a.pc.cmp(&b.pc)));
        ReplayResult {
            trace,
            predictor,
            measured_uops: self.measured_uops,
            measured_conditionals: self.measured_conditionals,
            mispredicts: self.mispredicts,
            replayed_records: self.records,
            per_branch,
        }
    }
}

/// Replays a `.bt` stream through `predictor` without materializing it.
///
/// # Examples
///
/// Record a benchmark's correct path in memory, then stream it back
/// through a conventional predictor one record at a time:
///
/// ```
/// use bptrace::BtReader;
/// use predictors::configs::{self, Budget};
/// use replay::{record_trace, replay_reader, ReplayConfig};
///
/// let bench = workloads::benchmark("gzip").unwrap();
/// let mut bt = Vec::new();
/// record_trace(&bench.program(), bench.seed, 40_000, &mut bt)?;
///
/// let mut reader = BtReader::new(bt.as_slice())?;
/// let mut predictor = configs::gshare(Budget::K8);
/// let result = replay_reader(&mut reader, &mut predictor, &ReplayConfig::with_budget(40_000))?;
/// assert_eq!(result.trace, "gzip");
/// assert!(result.measured_conditionals > 0);
/// // Per-branch profiles reconcile with the totals.
/// let sum: u64 = result.per_branch.iter().map(|b| b.mispredicts).sum();
/// assert_eq!(sum, result.mispredicts);
/// # Ok::<(), replay::ReplayError>(())
/// ```
///
/// # Errors
///
/// Trace-format errors from the reader (corruption, truncation, I/O).
pub fn replay_reader<R: Read, P: DirectionPredictor>(
    reader: &mut BtReader<R>,
    predictor: &mut P,
    config: &ReplayConfig,
) -> Result<ReplayResult> {
    let mut session = ReplaySession::new(predictor, *config);
    while let Some(rec) = reader.next_record()? {
        if !session.step(&rec, predictor) {
            break;
        }
    }
    Ok(session.finish(reader.name().to_string(), predictor.name()))
}

/// Convenience wrapper over [`replay_reader`] for an in-memory `.bt`
/// image (header included).
///
/// # Errors
///
/// As [`replay_reader`], plus header validation.
pub fn replay_bytes<P: DirectionPredictor>(
    bytes: &[u8],
    predictor: &mut P,
    config: &ReplayConfig,
) -> Result<ReplayResult> {
    let mut reader = BtReader::new(bytes)?;
    replay_reader(&mut reader, predictor, config)
}

/// The direct-execution reference: walks `program`'s correct path and
/// feeds the *same* replay step the streaming path uses, with no trace
/// in between. Replaying a corpus recorded from `(program, seed)` at the
/// same budget must reproduce this bit-for-bit — the round-trip
/// determinism guarantee the integration tests pin.
#[must_use]
pub fn direct_replay<P: DirectionPredictor>(
    program: &Program,
    seed: u64,
    predictor: &mut P,
    config: &ReplayConfig,
) -> ReplayResult {
    let mut walker = Walker::with_seed(program, seed);
    let mut session = ReplaySession::new(predictor, *config);
    loop {
        let ev = walker.next_branch();
        // The same event-to-record conversion the corpus recorder uses,
        // so the two paths cannot drift on a field mapping.
        if !session.step(&ev.to_record(), predictor) {
            break;
        }
        walker.follow(ev.outcome);
    }
    session.finish(program.name().to_string(), predictor.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictors::configs::{self, Budget};
    use predictors::{Bimodal, Gshare};

    fn recorded(name: &str, max_uops: u64) -> (Vec<u8>, workloads::Benchmark) {
        let bench = workloads::benchmark(name).unwrap();
        let program = bench.program();
        let mut buf = Vec::new();
        crate::corpus::record_trace(&program, bench.seed, max_uops, &mut buf).unwrap();
        (buf, bench)
    }

    #[test]
    fn replay_produces_sane_stats() {
        let (bytes, _) = recorded("gzip", 60_000);
        let mut p = configs::gshare(Budget::K16);
        let r = replay_bytes(&bytes, &mut p, &ReplayConfig::with_budget(60_000)).unwrap();
        assert_eq!(r.trace, "gzip");
        assert_eq!(r.predictor, "gshare");
        assert!(r.measured_uops >= 40_000, "measured {}", r.measured_uops);
        assert!(r.measured_conditionals > 1_000);
        assert!(r.mispredicts > 0, "synthetic code is not perfect");
        let mr = r.misp_per_kuops();
        assert!(mr > 0.1 && mr < 200.0, "misp/Kuops {mr}");
        // Per-branch counters reconcile with the totals.
        let sum: u64 = r.per_branch.iter().map(|b| b.mispredicts).sum();
        assert_eq!(sum, r.mispredicts);
        let occ: u64 = r.per_branch.iter().map(|b| b.occurrences).sum();
        assert_eq!(occ, r.measured_conditionals);
    }

    #[test]
    fn corpus_replay_equals_direct_execution() {
        let (bytes, bench) = recorded("gcc", 50_000);
        let cfg = ReplayConfig::with_budget(50_000);
        let mut a = configs::gshare(Budget::K8);
        let from_trace = replay_bytes(&bytes, &mut a, &cfg).unwrap();
        let mut b = configs::gshare(Budget::K8);
        let direct = direct_replay(&bench.program(), bench.seed, &mut b, &cfg);
        assert_eq!(
            from_trace, direct,
            "trace replay must equal direct execution"
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let (bytes, _) = recorded("tpcc", 40_000);
        let cfg = ReplayConfig::with_budget(40_000);
        let run = || {
            let mut p = configs::bc_gskew(Budget::K8);
            replay_bytes(&bytes, &mut p, &cfg).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warmup_region_is_excluded() {
        let (bytes, _) = recorded("swim", 40_000);
        let all = ReplayConfig {
            max_uops: 40_000,
            warmup_uops: 0,
        };
        let warm = ReplayConfig::with_budget(40_000);
        let mut p = Bimodal::new(4096);
        let cold = replay_bytes(&bytes, &mut p, &all).unwrap();
        let mut p = Bimodal::new(4096);
        let warmed = replay_bytes(&bytes, &mut p, &warm).unwrap();
        assert!(warmed.measured_conditionals < cold.measured_conditionals);
        assert!(warmed.measured_uops < cold.measured_uops);
        assert_eq!(warmed.replayed_records, cold.replayed_records);
    }

    #[test]
    fn better_predictors_win_on_history_predictable_code() {
        // unzip is dominated by long periodic patterns and correlation —
        // exactly what a global-history predictor captures and a bimodal
        // counter cannot. (On large-footprint chaotic code the ranking can
        // invert at replay scale, because rarely-revisited (pc, history)
        // contexts keep a long-history predictor cold; the tournament
        // reports, not asserts, those rankings.)
        let (bytes, _) = recorded("unzip", 400_000);
        let cfg = ReplayConfig::with_budget(400_000);
        let mut bimodal = Bimodal::new(8 * 1024);
        let weak = replay_bytes(&bytes, &mut bimodal, &cfg).unwrap();
        let mut gshare = Gshare::new(8 * 1024, 8);
        let strong = replay_bytes(&bytes, &mut gshare, &cfg).unwrap();
        assert!(
            strong.mispredicts < weak.mispredicts,
            "history predictor should beat bimodal on unzip: {} vs {}",
            strong.mispredicts,
            weak.mispredicts
        );
    }

    #[test]
    fn h2p_branches_are_ranked_and_positive() {
        let (bytes, _) = recorded("tpcc", 60_000);
        let mut p = configs::gshare(Budget::K4);
        let r = replay_bytes(&bytes, &mut p, &ReplayConfig::with_budget(60_000)).unwrap();
        let top = r.h2p_branches(5);
        assert!(!top.is_empty(), "tpcc must have hard branches");
        assert!(top.windows(2).all(|w| w[0].mispredicts >= w[1].mispredicts));
        assert!(top.iter().all(|b| b.mispredicts > 0));
        assert!(top[0].bias() >= 0.5 && top[0].bias() <= 1.0);
    }

    #[test]
    fn truncated_stream_is_a_typed_error() {
        let (mut bytes, _) = recorded("art", 20_000);
        bytes.truncate(bytes.len() - 3);
        let mut p = Bimodal::new(64);
        let err = replay_bytes(&bytes, &mut p, &ReplayConfig::with_budget(20_000)).unwrap_err();
        assert!(matches!(err, crate::error::ReplayError::Trace(_)));
    }
}
