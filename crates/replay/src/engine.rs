//! The streaming trace-replay engine for conventional predictors.
//!
//! CBP-style trace-driven evaluation: records stream out of a
//! [`BtReader`] one at a time (the full trace is never materialized), each
//! conditional is predicted from the replay's branch-history register,
//! compared against the recorded outcome, and the predictor is trained
//! with that outcome — in-order, non-speculative, the standard
//! methodology of trace-driven championship harnesses.
//!
//! The streaming path hands the predictor **64-branch chunks** through the
//! batched [`DirectionPredictor::predict_block`] kernels rather than one
//! call per branch: because replay history evolves on *recorded* outcomes
//! only, each conditional's history value is known at buffering time, so a
//! whole chunk can be predicted and trained by one fused structure-of-arrays
//! kernel call. The per-record scalar path ([`ReplaySession::step`]) is kept
//! as the reference implementation — [`direct_replay`] still uses it, and
//! the batched kernels are pinned bit-identical to it by the
//! `batch_equiv` differential suite plus the corpus-vs-direct round-trip
//! tests below.
//!
//! Warm-up mirrors the execution-driven simulator (`sim::accuracy`):
//! statistics collection starts only after [`ReplayConfig::warmup_uops`]
//! recorded micro-ops have passed (default: 20 % of the budget), and the
//! replay stops once [`ReplayConfig::max_uops`] have been covered, so a
//! trace recorded at a given budget and a direct execution at the same
//! budget measure the same window.
//!
//! This engine is **only** for conventional predictors. A prophet/critic
//! hybrid must not be evaluated here: its critic consumes *predicted
//! future* bits that on a real machine come from wrong-path fetch, and a
//! correct-path trace would silently hand it oracle outcomes instead
//! (paper §6). Hybrids are re-executed from the corpus' `.pcl` snapshots
//! by the `sim` crate.

use std::collections::HashMap;
use std::io::Read;

use bptrace::{BranchKind, BranchRecord, BtBlockReader, BtReader, DecodedBlock};
use predictors::{DirectionPredictor, HistoryBits, Pc, PredictBlock};
use workloads::{Program, Walker};

use crate::error::Result;

/// Budget and measurement window of one replay, mirroring the
/// execution-driven `SimConfig`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ReplayConfig {
    /// Stop once this many recorded micro-ops have been replayed.
    pub max_uops: u64,
    /// Recorded micro-ops to pass before statistics collection starts
    /// (predictor warm-up).
    pub warmup_uops: u64,
}

impl ReplayConfig {
    /// A configuration replaying `max_uops` with the workspace's standard
    /// 20 % warm-up fraction.
    #[must_use]
    pub fn with_budget(max_uops: u64) -> Self {
        Self {
            max_uops,
            warmup_uops: max_uops / 5,
        }
    }
}

/// Per-static-branch replay outcome (measured region only).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BranchReplay {
    /// The branch instruction's address.
    pub pc: u64,
    /// Measured dynamic occurrences.
    pub occurrences: u64,
    /// Measured taken occurrences.
    pub taken: u64,
    /// Measured mispredicts.
    pub mispredicts: u64,
}

impl BranchReplay {
    /// Fraction of occurrences that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.occurrences == 0 {
            return 0.0;
        }
        self.taken as f64 / self.occurrences as f64
    }

    /// Direction bias in `[0.5, 1.0]` (majority-direction frequency).
    #[must_use]
    pub fn bias(&self) -> f64 {
        let r = self.taken_rate();
        r.max(1.0 - r)
    }
}

/// The outcome of replaying one trace through one predictor.
///
/// `PartialEq` compares every counter, so determinism tests can pin
/// corpus replay against direct execution bit-for-bit.
#[derive(Clone, PartialEq, Debug)]
pub struct ReplayResult {
    /// The trace (benchmark) name.
    pub trace: String,
    /// The predictor's name.
    pub predictor: &'static str,
    /// Micro-ops in the measured region.
    pub measured_uops: u64,
    /// Conditional branches in the measured region.
    pub measured_conditionals: u64,
    /// Mispredicts in the measured region.
    pub mispredicts: u64,
    /// Total records consumed (warm-up included).
    pub replayed_records: u64,
    /// Per-static-branch outcomes over the measured region, sorted
    /// hardest-first (descending mispredicts, then PC).
    pub per_branch: Vec<BranchReplay>,
}

impl ReplayResult {
    /// Mispredicts per thousand measured micro-ops — the paper's headline
    /// accuracy metric, reconstructed from the trace.
    #[must_use]
    pub fn misp_per_kuops(&self) -> f64 {
        if self.measured_uops == 0 {
            return 0.0;
        }
        self.mispredicts as f64 * 1000.0 / self.measured_uops as f64
    }

    /// Percentage of measured conditionals mispredicted.
    #[must_use]
    pub fn mispredict_percent(&self) -> f64 {
        if self.measured_conditionals == 0 {
            return 0.0;
        }
        self.mispredicts as f64 * 100.0 / self.measured_conditionals as f64
    }

    /// The hard-to-predict branches this replay actually measured: the
    /// top `n` static branches by mispredict count (ties by PC), skipping
    /// branches that never mispredicted.
    #[must_use]
    pub fn h2p_branches(&self, n: usize) -> &[BranchReplay] {
        let end = self
            .per_branch
            .iter()
            .take(n)
            .take_while(|b| b.mispredicts > 0)
            .count();
        &self.per_branch[..end]
    }
}

/// Open-addressed per-static-branch accumulator for the batched path:
/// power-of-two capacity, multiplicative hashing, linear probing, and a
/// small direct-mapped memo of recently touched slots. Loop bodies cycle
/// through a handful of static branches, so keying the memo by low PC
/// bits catches nearly every repeat without hashing or probing.
///
/// The hot increment is a *single* 64-bit read-modify-write:
/// `occurrences` lives in the low half and `taken` in the high half of
/// one packed word, and the (rare) mispredict counter sits in a separate
/// array touched only when a chunk element actually missed. A loop branch
/// repeating inside a chunk therefore costs one store-to-load forward per
/// occurrence instead of three. The 32-bit halves cap per-static-branch
/// occurrences per trace at ~4.29 billion — orders of magnitude above any
/// replay budget this workspace runs, and the scalar reference would take
/// hours before the cap could matter.
///
/// Purely an accumulation detail — [`ReplaySession::finish`] folds it
/// into the same per-branch profile the scalar reference builds through a
/// plain `HashMap`, and the deterministic hardest-first sort erases any
/// iteration-order difference.
struct PcStats {
    /// Probe key per slot (the branch PC). Kept apart from the counters so
    /// the memo-validation and probe loads stay in a dense, L1-resident
    /// array.
    keys: Vec<u64>,
    /// Occupancy bitset, one bit per slot (vacancy cannot be derived from
    /// `keys` alone without reserving a sentinel PC value).
    occ: Vec<u64>,
    /// `occurrences + (taken << 32)`, packed so the hot path is one RMW.
    counts: Vec<u64>,
    /// Mispredict counts, written only on a mispredicted element.
    miss: Vec<u64>,
    mask: usize,
    len: usize,
    memo: [usize; Self::MEMO],
}

impl PcStats {
    /// Memo entries; a power of two, sized to cover typical loop bodies.
    const MEMO: usize = 16;

    /// Initial slot count (a power of two).
    const INITIAL: usize = 1024;

    fn new() -> Self {
        Self {
            keys: vec![0; Self::INITIAL],
            occ: vec![0; Self::INITIAL / 64],
            counts: vec![0; Self::INITIAL],
            miss: vec![0; Self::INITIAL],
            mask: Self::INITIAL - 1,
            len: 0,
            memo: [0; Self::MEMO],
        }
    }

    fn hash(pc: u64) -> usize {
        (pc.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
    }

    #[inline(always)]
    fn occupied(&self, i: usize) -> bool {
        self.occ[i / 64] >> (i % 64) & 1 == 1
    }

    /// Folds a run of measured occurrences of `pc` into its slot:
    /// `packed` is the pre-summed `occurrences + (taken << 32)` increment
    /// in the `counts` encoding, `mispredicts` the run's miss count.
    #[inline(always)]
    fn add(&mut self, pc: u64, packed: u64, mispredicts: u64) {
        // `>> 2` before the memo key: branch addresses are effectively
        // 4-byte aligned, so the lowest bits carry no entropy.
        let key = ((pc >> 2) as usize) % Self::MEMO;
        let mut i = self.memo[key];
        if self.keys[i] != pc || !self.occupied(i) {
            if (self.len + 1) * 2 > self.keys.len() {
                self.grow();
            }
            i = Self::hash(pc) & self.mask;
            while self.occupied(i) && self.keys[i] != pc {
                i = (i + 1) & self.mask;
            }
            if !self.occupied(i) {
                self.occ[i / 64] |= 1 << (i % 64);
                self.keys[i] = pc;
                self.len += 1;
            }
            self.memo[key] = i;
        }
        self.counts[i] += packed;
        if mispredicts != 0 {
            self.miss[i] += mispredicts;
        }
    }

    fn grow(&mut self) {
        let cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_occ = std::mem::replace(&mut self.occ, vec![0; cap / 64]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; cap]);
        let old_miss = std::mem::replace(&mut self.miss, vec![0; cap]);
        self.mask = cap - 1;
        self.memo = [0; Self::MEMO];
        for (s, k) in old_keys.into_iter().enumerate() {
            if old_occ[s / 64] >> (s % 64) & 1 == 0 {
                continue;
            }
            let mut i = Self::hash(k) & self.mask;
            while self.occupied(i) {
                i = (i + 1) & self.mask;
            }
            self.occ[i / 64] |= 1 << (i % 64);
            self.keys[i] = k;
            self.counts[i] = old_counts[s];
            self.miss[i] = old_miss[s];
        }
    }

    fn drain(self) -> impl Iterator<Item = BranchReplay> {
        let occ = self.occ;
        let counts = self.counts;
        let miss = self.miss;
        self.keys
            .into_iter()
            .enumerate()
            .filter(move |(i, _)| occ[i / 64] >> (i % 64) & 1 == 1)
            .map(move |(i, pc)| BranchReplay {
                pc,
                occurrences: counts[i] & 0xFFFF_FFFF,
                taken: counts[i] >> 32,
                mispredicts: miss[i],
            })
    }
}

/// One batch in flight toward the fused kernels: the branch addresses,
/// the chunk-start history register, and per-element accounting packed
/// into bit masks (bit `i` belongs to element `i`), so a flush folds
/// whole-chunk totals with mask arithmetic instead of a branch per
/// element.
///
/// No per-element history is stored: replay history evolves on recorded
/// outcomes only, so every element's history value is derivable from
/// `start` plus the low bits of `taken` — which is exactly the contract
/// of [`DirectionPredictor::replay_block`]. Dropping the 64 snapshot
/// copies shrinks the buffer from three words per element to one.
struct Chunk {
    /// Fixed-capacity address buffer — a plain array, so the hot push is
    /// a bounds-checked store with no heap indirection or capacity branch.
    pcs: [Pc; PredictBlock::CAPACITY],
    /// The replay history register as of the chunk's first element.
    start: HistoryBits,
    /// Elements currently buffered.
    len: usize,
    /// Recorded outcomes, one bit per element.
    taken: u64,
    /// Which elements fell inside the measured region.
    measuring: u64,
    /// Total micro-ops of the measured elements (only the sum is ever
    /// needed once a chunk's statistics are folded).
    measured_uops: u64,
}

impl Chunk {
    fn new() -> Self {
        Self {
            pcs: [Pc::new(0); PredictBlock::CAPACITY],
            start: HistoryBits::new(0),
            len: 0,
            taken: 0,
            measuring: 0,
            measured_uops: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.len == PredictBlock::CAPACITY
    }

    fn clear(&mut self) {
        self.len = 0;
        self.taken = 0;
        self.measuring = 0;
        self.measured_uops = 0;
    }
}

/// Running replay state shared by the streaming and direct paths, so the
/// corpus replay and the direct-execution reference cannot drift apart.
struct ReplaySession {
    config: ReplayConfig,
    hist: HistoryBits,
    total_uops: u64,
    records: u64,
    measured_uops: u64,
    measured_conditionals: u64,
    mispredicts: u64,
    /// Per-pc profile of the scalar reference path (the straightforward
    /// structure; `step` is the semantics spec, not the fast path).
    per_pc: HashMap<u64, BranchReplay>,
    /// Per-pc profile of the batched path's measured branches.
    batched_pc: PcStats,
}

impl ReplaySession {
    fn new<P: DirectionPredictor>(predictor: &P, config: ReplayConfig) -> Self {
        Self {
            config,
            hist: HistoryBits::new(predictor.history_len().min(predictors::MAX_HISTORY_BITS)),
            total_uops: 0,
            records: 0,
            measured_uops: 0,
            measured_conditionals: 0,
            mispredicts: 0,
            per_pc: HashMap::new(),
            batched_pc: PcStats::new(),
        }
    }

    /// Replays one record; returns `false` once the budget is exhausted.
    fn step<P: DirectionPredictor>(&mut self, rec: &BranchRecord, predictor: &mut P) -> bool {
        if self.total_uops >= self.config.max_uops {
            return false;
        }
        let measuring = self.total_uops >= self.config.warmup_uops;
        self.total_uops += u64::from(rec.uops_since_prev);
        self.records += 1;
        if rec.kind.is_conditional() {
            let pc = Pc::new(rec.pc);
            let predicted = predictor.predict(pc, self.hist).taken();
            let mispredict = predicted != rec.taken;
            predictor.update(pc, self.hist, rec.taken);
            self.hist.push(rec.taken);
            if measuring {
                self.measured_uops += u64::from(rec.uops_since_prev);
                self.measured_conditionals += 1;
                self.mispredicts += u64::from(mispredict);
                let entry = self.per_pc.entry(rec.pc).or_insert(BranchReplay {
                    pc: rec.pc,
                    occurrences: 0,
                    taken: 0,
                    mispredicts: 0,
                });
                entry.occurrences += 1;
                entry.taken += u64::from(rec.taken);
                entry.mispredicts += u64::from(mispredict);
            }
        } else if measuring {
            // Unconditional kinds consume no prediction but their uops
            // still belong to the measured window.
            self.measured_uops += u64::from(rec.uops_since_prev);
        }
        true
    }

    /// Batched counterpart of [`step`](Self::step): performs the budget
    /// check and uop/record accounting, and *buffers* a conditional's
    /// address and outcome instead of predicting it. The chunk captures
    /// the history register once, at its first element; everything after
    /// that is reconstructible from the outcome mask. Returns `false`
    /// once the budget is exhausted.
    ///
    /// Takes the record's fields rather than a [`BranchRecord`] so the
    /// column-oriented v2 path ([`replay_blocks`]) can feed it straight
    /// from decoded block columns without materializing records.
    #[inline(always)]
    fn buffer(
        &mut self,
        pc: u64,
        kind: BranchKind,
        taken: bool,
        uops: u32,
        chunk: &mut Chunk,
    ) -> bool {
        if self.total_uops >= self.config.max_uops {
            return false;
        }
        let measuring = self.total_uops >= self.config.warmup_uops;
        self.total_uops += u64::from(uops);
        self.records += 1;
        if kind.is_conditional() {
            let i = chunk.len;
            if i == 0 {
                chunk.start = self.hist;
            }
            chunk.pcs[i] = Pc::new(pc);
            chunk.len = i + 1;
            chunk.taken |= u64::from(taken) << i;
            if measuring {
                chunk.measuring |= 1 << i;
                chunk.measured_uops += u64::from(uops);
            }
            self.hist.push(taken);
        } else if measuring {
            self.measured_uops += u64::from(uops);
        }
        true
    }

    /// [`buffer`](Self::buffer) from a decoded [`BranchRecord`], for the
    /// record-at-a-time entry points.
    #[inline(always)]
    fn buffer_record(&mut self, rec: &BranchRecord, chunk: &mut Chunk) -> bool {
        self.buffer(rec.pc, rec.kind, rec.taken, rec.uops_since_prev, chunk)
    }

    /// Runs one buffered chunk through the fused predict+train kernel and
    /// folds its statistics: the chunk totals fall out of one XOR against
    /// the recorded-outcome mask plus popcounts, and the per-pc profile
    /// walks only the measured elements' set bits. (Bits of
    /// [`PredictBlock::bits`] and of the chunk masks above the chunk
    /// length are all zero, so no length mask is needed.)
    ///
    /// The walk coalesces *runs* of the same static branch into one
    /// accumulator visit: a tight loop whose body holds a single
    /// conditional fills whole chunks with one PC, and folding the run in
    /// registers replaces its chain of dependent read-modify-writes on
    /// one slot with a single one.
    fn flush_chunk<P: DirectionPredictor>(&mut self, predictor: &mut P, chunk: &Chunk) {
        if chunk.len == 0 {
            return;
        }
        let block = predictor.replay_block(&chunk.pcs[..chunk.len], chunk.taken, chunk.start);
        let miss = block.bits() ^ chunk.taken;
        self.measured_uops += chunk.measured_uops;
        self.measured_conditionals += u64::from(chunk.measuring.count_ones());
        self.mispredicts += u64::from((miss & chunk.measuring).count_ones());
        let mut m = chunk.measuring;
        while m != 0 {
            let i = m.trailing_zeros();
            m &= m - 1;
            let pc = chunk.pcs[i as usize].addr();
            // One occurrence is `1 + (taken << 32)` in the accumulator's
            // packed encoding; mispredicts accumulate separately.
            let mut packed = 1 + (((chunk.taken >> i) & 1) << 32);
            let mut misses = (miss >> i) & 1;
            while m != 0 {
                let j = m.trailing_zeros();
                if chunk.pcs[j as usize].addr() != pc {
                    break;
                }
                m &= m - 1;
                packed += 1 + (((chunk.taken >> j) & 1) << 32);
                misses += (miss >> j) & 1;
            }
            self.batched_pc.add(pc, packed, misses);
        }
    }

    fn finish(self, trace: String, predictor: &'static str) -> ReplayResult {
        // One of the two per-pc structures is empty for any given session:
        // take the batched accumulator's entries directly when the scalar
        // map was never touched (the deterministic sort below erases any
        // iteration-order difference), and fold otherwise so both paths
        // always report through identical downstream arithmetic.
        let mut per_branch: Vec<BranchReplay> = if self.per_pc.is_empty() {
            self.batched_pc.drain().collect()
        } else {
            let mut per_pc = self.per_pc;
            for b in self.batched_pc.drain() {
                let entry = per_pc.entry(b.pc).or_insert(BranchReplay {
                    pc: b.pc,
                    occurrences: 0,
                    taken: 0,
                    mispredicts: 0,
                });
                entry.occurrences += b.occurrences;
                entry.taken += b.taken;
                entry.mispredicts += b.mispredicts;
            }
            per_pc.into_values().collect()
        };
        per_branch.sort_unstable_by(|a, b| b.mispredicts.cmp(&a.mispredicts).then(a.pc.cmp(&b.pc)));
        ReplayResult {
            trace,
            predictor,
            measured_uops: self.measured_uops,
            measured_conditionals: self.measured_conditionals,
            mispredicts: self.mispredicts,
            replayed_records: self.records,
            per_branch,
        }
    }
}

/// Replays a `.bt` stream through `predictor` without materializing it.
///
/// # Examples
///
/// Record a benchmark's correct path in memory, then stream it back
/// through a conventional predictor one record at a time:
///
/// ```
/// use bptrace::BtReader;
/// use predictors::configs::{self, Budget};
/// use replay::{record_trace, replay_reader, ReplayConfig};
///
/// let bench = workloads::benchmark("gzip").unwrap();
/// let mut bt = Vec::new();
/// record_trace(&bench.program(), bench.seed, 40_000, &mut bt)?;
///
/// let mut reader = BtReader::new(bt.as_slice())?;
/// let mut predictor = configs::gshare(Budget::K8);
/// let result = replay_reader(&mut reader, &mut predictor, &ReplayConfig::with_budget(40_000))?;
/// assert_eq!(result.trace, "gzip");
/// assert!(result.measured_conditionals > 0);
/// // Per-branch profiles reconcile with the totals.
/// let sum: u64 = result.per_branch.iter().map(|b| b.mispredicts).sum();
/// assert_eq!(sum, result.mispredicts);
/// # Ok::<(), replay::ReplayError>(())
/// ```
///
/// # Errors
///
/// Trace-format errors from the reader (corruption, truncation, I/O).
pub fn replay_reader<R: Read, P: DirectionPredictor>(
    reader: &mut BtReader<R>,
    predictor: &mut P,
    config: &ReplayConfig,
) -> Result<ReplayResult> {
    let mut session = ReplaySession::new(predictor, *config);
    let mut chunk = Chunk::new();
    while let Some(rec) = reader.next_record()? {
        if !session.buffer_record(&rec, &mut chunk) {
            break;
        }
        if chunk.is_full() {
            session.flush_chunk(predictor, &chunk);
            chunk.clear();
        }
    }
    session.flush_chunk(predictor, &chunk);
    Ok(session.finish(reader.name().to_string(), predictor.name()))
}

/// Replays a v2 block stream through `predictor` via the chunked decode
/// path: whole blocks decode into [`DecodedBlock`]'s reusable column
/// buffers, and the engine feeds the predictor 64-branch chunks straight
/// from those columns — no [`BranchRecord`] is materialized per branch,
/// and no per-element history snapshot is taken (the chunk carries one
/// start register; predictors reconstruct element histories from the
/// outcome mask via [`DirectionPredictor::replay_block`]).
///
/// Must produce results bit-identical to [`replay_reader`] over the same
/// stream — the scalar reader is the reference decoder for both format
/// versions, and the engine tests pin exactly that.
///
/// # Errors
///
/// Trace-format errors from the block reader (corruption, truncation,
/// checksum mismatch, I/O).
pub fn replay_blocks<R: Read, P: DirectionPredictor>(
    reader: &mut BtBlockReader<R>,
    predictor: &mut P,
    config: &ReplayConfig,
) -> Result<ReplayResult> {
    let mut session = ReplaySession::new(predictor, *config);
    let mut chunk = Chunk::new();
    let mut block = DecodedBlock::new();
    'blocks: while reader.next_block(&mut block)? {
        let pcs = block.pcs();
        let kinds = block.kinds();
        let uops = block.uops();
        let words = block.taken_words();
        let n = block.len();
        let mut r = 0;
        while r < n {
            // Bulk path: when the next 64 records form a full, word-aligned
            // window of conditionals lying strictly inside the budget and
            // entirely on one side of the warm-up boundary, the window maps
            // onto one chunk with no per-record bookkeeping — the outcome
            // word is lifted straight from the block's taken bitmask, and
            // the history register advances by one assignment (64 pushes of
            // word `w` leave it holding the window's outcomes newest-first,
            // i.e. `w` bit-reversed). Windows straddling a boundary, or
            // containing unconditional records, fall back to the per-record
            // reference below; both must agree bit-for-bit and the engine
            // equivalence tests pin that.
            if chunk.len == 0 && r.is_multiple_of(64) && n - r >= 64 {
                let all_conditional = kinds[r..r + 64].iter().all(|k| k.is_conditional());
                if all_conditional {
                    let sum: u64 = uops[r..r + 64].iter().map(|&u| u64::from(u)).sum();
                    let measured = session.total_uops >= session.config.warmup_uops;
                    let one_side =
                        measured || session.total_uops + sum < session.config.warmup_uops;
                    if one_side && session.total_uops + sum < session.config.max_uops {
                        let w = words[r / 64];
                        session.total_uops += sum;
                        session.records += 64;
                        chunk.start = session.hist;
                        for (dst, &pc) in chunk.pcs.iter_mut().zip(&pcs[r..r + 64]) {
                            *dst = Pc::new(pc);
                        }
                        chunk.len = 64;
                        chunk.taken = w;
                        chunk.measuring = if measured { !0 } else { 0 };
                        chunk.measured_uops = if measured { sum } else { 0 };
                        session.hist = HistoryBits::from_raw(w.reverse_bits(), session.hist.len());
                        session.flush_chunk(predictor, &chunk);
                        chunk.clear();
                        r += 64;
                        continue;
                    }
                }
            }
            if !session.buffer(pcs[r], kinds[r], block.taken(r), uops[r], &mut chunk) {
                break 'blocks;
            }
            r += 1;
            if chunk.is_full() {
                session.flush_chunk(predictor, &chunk);
                chunk.clear();
            }
        }
    }
    session.flush_chunk(predictor, &chunk);
    Ok(session.finish(reader.name().to_string(), predictor.name()))
}

/// Replays pre-decoded records through the batched 64-branch kernels —
/// the same engine [`replay_reader`] drives, minus trace decoding, so
/// throughput measurements isolate predictor-table time.
#[must_use]
pub fn replay_records<P: DirectionPredictor>(
    trace: &str,
    records: &[BranchRecord],
    predictor: &mut P,
    config: &ReplayConfig,
) -> ReplayResult {
    let mut session = ReplaySession::new(predictor, *config);
    let mut chunk = Chunk::new();
    for rec in records {
        if !session.buffer_record(rec, &mut chunk) {
            break;
        }
        if chunk.is_full() {
            session.flush_chunk(predictor, &chunk);
            chunk.clear();
        }
    }
    session.flush_chunk(predictor, &chunk);
    session.finish(trace.to_string(), predictor.name())
}

/// Replays pre-decoded records through the scalar reference path (one
/// `predict`/`update` pair per branch). Must produce results identical to
/// [`replay_records`] for any predictor — the throughput experiment
/// asserts exactly that while timing both.
#[must_use]
pub fn replay_records_scalar<P: DirectionPredictor>(
    trace: &str,
    records: &[BranchRecord],
    predictor: &mut P,
    config: &ReplayConfig,
) -> ReplayResult {
    let mut session = ReplaySession::new(predictor, *config);
    for rec in records {
        if !session.step(rec, predictor) {
            break;
        }
    }
    session.finish(trace.to_string(), predictor.name())
}

/// Decodes a `.bt` image into its trace name and record list, for replay
/// entry points that separate decode time from predictor time.
///
/// # Errors
///
/// Trace-format errors from the reader (corruption, truncation, I/O).
pub fn decode_records(bytes: &[u8]) -> Result<(String, Vec<BranchRecord>)> {
    let mut reader = BtReader::new(bytes)?;
    let mut records = Vec::new();
    while let Some(rec) = reader.next_record()? {
        records.push(rec);
    }
    Ok((reader.name().to_string(), records))
}

/// Replays an in-memory `.bt` image (header included), negotiating the
/// format version: v2 images route through the chunked block decoder
/// ([`replay_blocks`]); v1 images through the scalar record reader
/// ([`replay_reader`]). Results are bit-identical either way — the two
/// paths are differentially pinned against each other.
///
/// # Errors
///
/// As [`replay_reader`], plus header validation.
pub fn replay_bytes<P: DirectionPredictor>(
    bytes: &[u8],
    predictor: &mut P,
    config: &ReplayConfig,
) -> Result<ReplayResult> {
    if bptrace::sniff_version(bytes) == Some(bptrace::BT_VERSION) {
        let mut reader = BtBlockReader::new(bytes)?;
        return replay_blocks(&mut reader, predictor, config);
    }
    let mut reader = BtReader::new(bytes)?;
    replay_reader(&mut reader, predictor, config)
}

/// The direct-execution reference: walks `program`'s correct path and
/// feeds the *same* replay step the streaming path uses, with no trace
/// in between. Replaying a corpus recorded from `(program, seed)` at the
/// same budget must reproduce this bit-for-bit — the round-trip
/// determinism guarantee the integration tests pin.
#[must_use]
pub fn direct_replay<P: DirectionPredictor>(
    program: &Program,
    seed: u64,
    predictor: &mut P,
    config: &ReplayConfig,
) -> ReplayResult {
    let mut walker = Walker::with_seed(program, seed);
    let mut session = ReplaySession::new(predictor, *config);
    loop {
        let ev = walker.next_branch();
        // The same event-to-record conversion the corpus recorder uses,
        // so the two paths cannot drift on a field mapping.
        if !session.step(&ev.to_record(), predictor) {
            break;
        }
        walker.follow(ev.outcome);
    }
    session.finish(program.name().to_string(), predictor.name())
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictors::configs::{self, Budget};
    use predictors::{Bimodal, Gshare};

    fn recorded(name: &str, max_uops: u64) -> (Vec<u8>, workloads::Benchmark) {
        let bench = workloads::benchmark(name).unwrap();
        let program = bench.program();
        let mut buf = Vec::new();
        crate::corpus::record_trace(&program, bench.seed, max_uops, &mut buf).unwrap();
        (buf, bench)
    }

    #[test]
    fn replay_produces_sane_stats() {
        let (bytes, _) = recorded("gzip", 60_000);
        let mut p = configs::gshare(Budget::K16);
        let r = replay_bytes(&bytes, &mut p, &ReplayConfig::with_budget(60_000)).unwrap();
        assert_eq!(r.trace, "gzip");
        assert_eq!(r.predictor, "gshare");
        assert!(r.measured_uops >= 40_000, "measured {}", r.measured_uops);
        assert!(r.measured_conditionals > 1_000);
        assert!(r.mispredicts > 0, "synthetic code is not perfect");
        let mr = r.misp_per_kuops();
        assert!(mr > 0.1 && mr < 200.0, "misp/Kuops {mr}");
        // Per-branch counters reconcile with the totals.
        let sum: u64 = r.per_branch.iter().map(|b| b.mispredicts).sum();
        assert_eq!(sum, r.mispredicts);
        let occ: u64 = r.per_branch.iter().map(|b| b.occurrences).sum();
        assert_eq!(occ, r.measured_conditionals);
    }

    #[test]
    fn corpus_replay_equals_direct_execution() {
        let (bytes, bench) = recorded("gcc", 50_000);
        let cfg = ReplayConfig::with_budget(50_000);
        let mut a = configs::gshare(Budget::K8);
        let from_trace = replay_bytes(&bytes, &mut a, &cfg).unwrap();
        let mut b = configs::gshare(Budget::K8);
        let direct = direct_replay(&bench.program(), bench.seed, &mut b, &cfg);
        assert_eq!(
            from_trace, direct,
            "trace replay must equal direct execution"
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let (bytes, _) = recorded("tpcc", 40_000);
        let cfg = ReplayConfig::with_budget(40_000);
        let run = || {
            let mut p = configs::bc_gskew(Budget::K8);
            replay_bytes(&bytes, &mut p, &cfg).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn batched_streaming_replay_equals_scalar_reference() {
        // The streaming path feeds 64-branch chunks to the fused kernels;
        // the scalar reference predicts one branch at a time. Every counter
        // and per-branch profile must agree, including across the warm-up
        // boundary (which falls mid-chunk).
        let (bytes, _) = recorded("crafty", 70_000);
        let (name, records) = decode_records(&bytes).unwrap();
        let cfg = ReplayConfig::with_budget(70_000);
        let mut a = configs::bc_gskew(Budget::K8);
        let batched = replay_records(&name, &records, &mut a, &cfg);
        let mut b = configs::bc_gskew(Budget::K8);
        let scalar = replay_records_scalar(&name, &records, &mut b, &cfg);
        assert_eq!(batched, scalar);

        let mut c = configs::bc_gskew(Budget::K8);
        let streamed = replay_bytes(&bytes, &mut c, &cfg).unwrap();
        assert_eq!(streamed, scalar);
    }

    #[test]
    fn v1_and_v2_images_replay_bit_identically() {
        // The same walk recorded in both formats must replay to identical
        // results — v2 routes through the chunked block decoder and
        // replay_block kernels, v1 through the scalar record reader.
        let bench = workloads::benchmark("tpcc").unwrap();
        let program = bench.program();
        let mut v1 = Vec::new();
        crate::corpus::record_trace_v1(&program, bench.seed, 50_000, &mut v1).unwrap();
        let mut v2 = Vec::new();
        crate::corpus::record_trace(&program, bench.seed, 50_000, &mut v2).unwrap();
        assert_eq!(bptrace::sniff_version(&v1), Some(bptrace::BT_VERSION_V1));
        assert_eq!(bptrace::sniff_version(&v2), Some(bptrace::BT_VERSION));

        let cfg = ReplayConfig::with_budget(50_000);
        let mut a = configs::bc_gskew(Budget::K8);
        let from_v1 = replay_bytes(&v1, &mut a, &cfg).unwrap();
        let mut b = configs::bc_gskew(Budget::K8);
        let from_v2 = replay_bytes(&v2, &mut b, &cfg).unwrap();
        assert_eq!(from_v1, from_v2, "format version changed replay results");
    }

    #[test]
    fn warmup_region_is_excluded() {
        let (bytes, _) = recorded("swim", 40_000);
        let all = ReplayConfig {
            max_uops: 40_000,
            warmup_uops: 0,
        };
        let warm = ReplayConfig::with_budget(40_000);
        let mut p = Bimodal::new(4096);
        let cold = replay_bytes(&bytes, &mut p, &all).unwrap();
        let mut p = Bimodal::new(4096);
        let warmed = replay_bytes(&bytes, &mut p, &warm).unwrap();
        assert!(warmed.measured_conditionals < cold.measured_conditionals);
        assert!(warmed.measured_uops < cold.measured_uops);
        assert_eq!(warmed.replayed_records, cold.replayed_records);
    }

    #[test]
    fn better_predictors_win_on_history_predictable_code() {
        // unzip is dominated by long periodic patterns and correlation —
        // exactly what a global-history predictor captures and a bimodal
        // counter cannot. (On large-footprint chaotic code the ranking can
        // invert at replay scale, because rarely-revisited (pc, history)
        // contexts keep a long-history predictor cold; the tournament
        // reports, not asserts, those rankings.)
        let (bytes, _) = recorded("unzip", 400_000);
        let cfg = ReplayConfig::with_budget(400_000);
        let mut bimodal = Bimodal::new(8 * 1024);
        let weak = replay_bytes(&bytes, &mut bimodal, &cfg).unwrap();
        let mut gshare = Gshare::new(8 * 1024, 8);
        let strong = replay_bytes(&bytes, &mut gshare, &cfg).unwrap();
        assert!(
            strong.mispredicts < weak.mispredicts,
            "history predictor should beat bimodal on unzip: {} vs {}",
            strong.mispredicts,
            weak.mispredicts
        );
    }

    #[test]
    fn h2p_branches_are_ranked_and_positive() {
        let (bytes, _) = recorded("tpcc", 60_000);
        let mut p = configs::gshare(Budget::K4);
        let r = replay_bytes(&bytes, &mut p, &ReplayConfig::with_budget(60_000)).unwrap();
        let top = r.h2p_branches(5);
        assert!(!top.is_empty(), "tpcc must have hard branches");
        assert!(top.windows(2).all(|w| w[0].mispredicts >= w[1].mispredicts));
        assert!(top.iter().all(|b| b.mispredicts > 0));
        assert!(top[0].bias() >= 0.5 && top[0].bias() <= 1.0);
    }

    #[test]
    fn truncated_stream_is_a_typed_error() {
        let (mut bytes, _) = recorded("art", 20_000);
        bytes.truncate(bytes.len() - 3);
        let mut p = Bimodal::new(64);
        let err = replay_bytes(&bytes, &mut p, &ReplayConfig::with_budget(20_000)).unwrap_err();
        assert!(matches!(err, crate::error::ReplayError::Trace(_)));
    }
}
