//! FNV-1a-64 checksums for corpus artifacts.
//!
//! FNV-1a is not cryptographic; its job here is to catch torn writes,
//! truncation and bit rot in a corpus directory, with a dependency-free
//! streaming implementation that is stable across platforms (manifest
//! checksums are portable corpus metadata).

use std::io::Write;

/// The FNV-1a-64 offset basis (the hash of the empty byte string).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds `bytes` into a running FNV-1a-64 state.
#[must_use]
pub fn fnv1a_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The FNV-1a-64 hash of `bytes`.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// A [`Write`] adapter that checksums and counts everything written
/// through it, so corpus files are hashed while they stream to disk
/// rather than by a second read pass.
#[derive(Debug)]
pub struct HashingWriter<W> {
    inner: W,
    hash: u64,
    written: u64,
}

impl<W: Write> HashingWriter<W> {
    /// Wraps a writer with a fresh checksum state.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            hash: FNV_OFFSET,
            written: 0,
        }
    }

    /// The checksum of everything written so far.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Bytes written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash = fnv1a_update(self.hash, &buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Hashes a file by streaming it in chunks; returns `(byte_len, fnv1a)`.
///
/// # Errors
///
/// Propagates I/O errors from the read loop.
pub fn hash_file(path: &std::path::Path) -> std::io::Result<(u64, u64)> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut hash = FNV_OFFSET;
    let mut len = 0u64;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = file.read(&mut buf)?;
        if n == 0 {
            return Ok((len, hash));
        }
        hash = fnv1a_update(hash, &buf[..n]);
        len += n as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a-64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn writer_matches_one_shot_hash() {
        let payload = b"the quick brown fox jumps over the lazy dog";
        let mut w = HashingWriter::new(Vec::new());
        // Write in uneven pieces; the running hash must match the one-shot.
        Write::write_all(&mut w, &payload[..7]).unwrap();
        Write::write_all(&mut w, &payload[7..19]).unwrap();
        Write::write_all(&mut w, &payload[19..]).unwrap();
        assert_eq!(w.hash(), fnv1a(payload));
        assert_eq!(w.written(), payload.len() as u64);
        assert_eq!(w.into_inner(), payload.to_vec());
    }

    #[test]
    fn hash_file_round_trips() {
        let dir = std::env::temp_dir().join("replay-checksum-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("payload.bin");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let (len, hash) = hash_file(&path).unwrap();
        assert_eq!(len, payload.len() as u64);
        assert_eq!(hash, fnv1a(&payload));
        std::fs::remove_file(&path).unwrap();
    }
}
