//! Trace corpus + streaming replay: the trace-driven evaluation subsystem.
//!
//! The paper evaluated on recorded Intel LIT traces; this crate provides
//! the open equivalent on top of the `bptrace` formats — a durable
//! on-disk corpus and a CBP-style replay path beside the execution-driven
//! simulator:
//!
//! * [`record_corpus`]/[`record_benchmark`]/[`record_trace`] — the
//!   **corpus builder**: records every benchmark's correct path to a
//!   deterministic `.bt` trace plus a `.pcl` program snapshot, streaming
//!   and checksumming as it writes.
//! * [`Manifest`]/[`TraceEntry`] — the hand-parsed `corpus.manifest`
//!   index: name, seed, uop budget, per-file checksums and the
//!   [`bptrace::TraceStats`] summary.
//! * [`replay_reader`]/[`replay_bytes`] — the **streaming replay
//!   engine**: feeds `.bt` records to any conventional
//!   [`predictors::DirectionPredictor`] without materializing the trace,
//!   with warm-up handling mirroring the execution-driven simulator.
//! * [`direct_replay`] — the no-trace reference path; corpus replay is
//!   pinned bit-for-bit against it.
//! * [`verify_corpus`]/[`cross_check_snapshot`] — integrity checking:
//!   checksums, record counts, and the snapshot-vs-trace cross-check.
//!
//! # Why every entry carries *both* a trace and a snapshot
//!
//! A correct-path trace cannot evaluate a prophet/critic hybrid: the
//! critic's future bits must come from real wrong-path fetch, and
//! deriving them from a correct-path trace hands the critic oracle
//! information (paper §6). The corpus therefore records the program
//! snapshot next to the trace — **conventional predictors replay the
//! trace; hybrids are re-executed from the snapshot** (by the `sim`
//! crate), and [`cross_check_snapshot`] proves the two paths observe the
//! identical correct-path branch stream.
//!
//! # Example
//!
//! ```
//! use predictors::configs::{self, Budget};
//! use replay::{replay_bytes, record_trace, ReplayConfig};
//!
//! let bench = workloads::benchmark("gzip").unwrap();
//! let program = bench.program();
//! let mut bt = Vec::new();
//! record_trace(&program, bench.seed, 30_000, &mut bt)?;
//!
//! let mut predictor = configs::gshare(Budget::K16);
//! let result = replay_bytes(&bt, &mut predictor, &ReplayConfig::with_budget(30_000))?;
//! assert!(result.measured_conditionals > 0);
//! # Ok::<(), replay::ReplayError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
mod corpus;
mod engine;
mod error;
pub mod fault;
mod manifest;

pub use corpus::{
    cross_check_snapshot, load_snapshot, migrate_entry, open_trace, record_benchmark,
    record_benchmark_with, record_corpus, record_trace, record_trace_v1, replay_entry,
    verify_corpus, verify_corpus_report, verify_entry, QuarantineEntry, VerifyReport,
};
pub use engine::{
    decode_records, direct_replay, replay_blocks, replay_bytes, replay_reader, replay_records,
    replay_records_scalar, BranchReplay, ReplayConfig, ReplayResult,
};
pub use error::{ReplayError, Result};
pub use fault::FaultPlan;
pub use manifest::{
    Manifest, TraceEntry, MANIFEST_FILE, MANIFEST_HEADER, MANIFEST_SHARDED_HEADER, SHARD_TRACES,
};
