//! The hand-parsed `corpus.manifest` index of a trace corpus directory.
//!
//! Layout — a line-oriented text format in the workspace's no-framework
//! tradition:
//!
//! ```text
//! btcorpus-manifest v1
//! # optional comment lines
//! trace name=gzip seed=0x... uop_budget=1200000 records=91234 \
//!       bt=gzip.bt bt_bytes=... bt_fnv1a=0x... \
//!       pcl=gzip.pcl pcl_bytes=... pcl_fnv1a=0x... \
//!       branches=... conditionals=... taken=... uops=... static=...
//! ```
//!
//! (shown wrapped; each `trace` entry is a single line of
//! whitespace-separated `key=value` pairs). Unknown keys are ignored so
//! newer writers stay readable by older parsers; missing required keys are
//! a typed [`ReplayError::Manifest`] error carrying the line number.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use bptrace::TraceStats;

use crate::error::{ReplayError, Result};

/// File name of the manifest inside a corpus directory.
pub const MANIFEST_FILE: &str = "corpus.manifest";

/// Header line of the newest manifest version this build reads and writes.
pub const MANIFEST_HEADER: &str = "btcorpus-manifest v1";

/// One recorded benchmark: its trace and snapshot files plus everything
/// needed to re-derive or verify them.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEntry {
    /// Benchmark name (unique within the corpus).
    pub name: String,
    /// Execution seed of the walk that produced the trace.
    pub seed: u64,
    /// The committed-uop budget the recording stopped at.
    pub uop_budget: u64,
    /// Branch records in the `.bt` file.
    pub records: u64,
    /// `.bt` file name, relative to the corpus directory.
    pub bt_file: String,
    /// Byte length of the `.bt` file.
    pub bt_bytes: u64,
    /// FNV-1a-64 checksum of the `.bt` file.
    pub bt_fnv1a: u64,
    /// `.pcl` snapshot file name, relative to the corpus directory.
    pub pcl_file: String,
    /// Byte length of the `.pcl` file.
    pub pcl_bytes: u64,
    /// FNV-1a-64 checksum of the `.pcl` file.
    pub pcl_fnv1a: u64,
    /// Whole-trace statistics summary.
    pub stats: TraceStats,
}

/// The parsed manifest: recorded entries in recording order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Manifest {
    /// One entry per recorded benchmark.
    pub entries: Vec<TraceEntry>,
}

impl Manifest {
    /// Looks an entry up by benchmark name.
    #[must_use]
    pub fn entry(&self, name: &str) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Serializes the manifest.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, mut out: W) -> Result<()> {
        let mut text = String::new();
        text.push_str(MANIFEST_HEADER);
        text.push('\n');
        for e in &self.entries {
            let s = &e.stats;
            let mut line = String::new();
            let _ = write!(
                line,
                "trace name={} seed={:#x} uop_budget={} records={} \
                 bt={} bt_bytes={} bt_fnv1a={:#x} \
                 pcl={} pcl_bytes={} pcl_fnv1a={:#x} \
                 branches={} conditionals={} taken={} uops={} static={}",
                e.name,
                e.seed,
                e.uop_budget,
                e.records,
                e.bt_file,
                e.bt_bytes,
                e.bt_fnv1a,
                e.pcl_file,
                e.pcl_bytes,
                e.pcl_fnv1a,
                s.branches,
                s.conditionals,
                s.taken_conditionals,
                s.uops,
                s.static_branches,
            );
            text.push_str(&line);
            text.push('\n');
        }
        out.write_all(text.as_bytes())?;
        Ok(())
    }

    /// Parses a manifest.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Manifest`] with the offending line number on a bad
    /// header, malformed pair, unparsable number or missing required key.
    pub fn read_from<R: Read>(input: R) -> Result<Self> {
        let reader = BufReader::new(input);
        let mut entries = Vec::new();
        let mut saw_header = false;
        for (i, line) in reader.lines().enumerate() {
            let lineno = i + 1;
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                if line != MANIFEST_HEADER {
                    return Err(ReplayError::Manifest {
                        line: lineno,
                        reason: format!("expected header {MANIFEST_HEADER:?}, found {line:?}"),
                    });
                }
                saw_header = true;
                continue;
            }
            let Some(rest) = line.strip_prefix("trace ") else {
                return Err(ReplayError::Manifest {
                    line: lineno,
                    reason: format!("expected a `trace` entry, found {line:?}"),
                });
            };
            entries.push(parse_entry(rest, lineno)?);
        }
        if !saw_header {
            return Err(ReplayError::Manifest {
                line: 1,
                reason: "empty manifest (missing header)".into(),
            });
        }
        Ok(Self { entries })
    }

    /// Loads `dir/corpus.manifest`.
    ///
    /// # Errors
    ///
    /// As [`read_from`](Self::read_from), plus I/O errors opening the file.
    pub fn load(dir: &Path) -> Result<Self> {
        let file = std::fs::File::open(dir.join(MANIFEST_FILE))?;
        Self::read_from(file)
    }

    /// Writes `dir/corpus.manifest`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, dir: &Path) -> Result<()> {
        let file = std::fs::File::create(dir.join(MANIFEST_FILE))?;
        self.write_to(file)
    }
}

fn parse_entry(pairs: &str, line: usize) -> Result<TraceEntry> {
    let bad = |reason: String| ReplayError::Manifest { line, reason };
    let mut name = None;
    let mut str_fields: [Option<String>; 2] = [None, None]; // bt, pcl
    let mut num_fields: [Option<u64>; 12] = [None; 12];
    const NUM_KEYS: [&str; 12] = [
        "seed",
        "uop_budget",
        "records",
        "bt_bytes",
        "bt_fnv1a",
        "pcl_bytes",
        "pcl_fnv1a",
        "branches",
        "conditionals",
        "taken",
        "uops",
        "static",
    ];
    for pair in pairs.split_ascii_whitespace() {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| bad(format!("malformed pair {pair:?}")))?;
        match key {
            "name" => name = Some(value.to_string()),
            "bt" => str_fields[0] = Some(value.to_string()),
            "pcl" => str_fields[1] = Some(value.to_string()),
            _ => {
                if let Some(slot) = NUM_KEYS.iter().position(|k| *k == key) {
                    let parsed = value
                        .strip_prefix("0x")
                        .map_or_else(|| value.parse::<u64>(), |hex| u64::from_str_radix(hex, 16))
                        .map_err(|_| bad(format!("bad number for {key}: {value:?}")))?;
                    num_fields[slot] = Some(parsed);
                }
                // Unknown keys: ignored for forward compatibility.
            }
        }
    }
    let take_num = |slot: usize| {
        num_fields[slot].ok_or_else(|| bad(format!("missing key {}", NUM_KEYS[slot])))
    };
    Ok(TraceEntry {
        name: name.ok_or_else(|| bad("missing key name".into()))?,
        seed: take_num(0)?,
        uop_budget: take_num(1)?,
        records: take_num(2)?,
        bt_file: str_fields[0]
            .clone()
            .ok_or_else(|| bad("missing key bt".into()))?,
        bt_bytes: take_num(3)?,
        bt_fnv1a: take_num(4)?,
        pcl_file: str_fields[1]
            .clone()
            .ok_or_else(|| bad("missing key pcl".into()))?,
        pcl_bytes: take_num(5)?,
        pcl_fnv1a: take_num(6)?,
        stats: TraceStats {
            branches: take_num(7)?,
            conditionals: take_num(8)?,
            taken_conditionals: take_num(9)?,
            uops: take_num(10)?,
            static_branches: take_num(11)? as usize,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(name: &str) -> TraceEntry {
        TraceEntry {
            name: name.to_string(),
            seed: 0xdead_beef_0bad_cafe,
            uop_budget: 1_200_000,
            records: 91_234,
            bt_file: format!("{name}.bt"),
            bt_bytes: 250_101,
            bt_fnv1a: 0x1234_5678_9abc_def0,
            pcl_file: format!("{name}.pcl"),
            pcl_bytes: 40_000,
            pcl_fnv1a: 42,
            stats: TraceStats {
                branches: 91_234,
                conditionals: 91_234,
                taken_conditionals: 60_000,
                uops: 1_200_003,
                static_branches: 1_871,
            },
        }
    }

    #[test]
    fn round_trips() {
        let manifest = Manifest {
            entries: vec![sample_entry("gzip"), sample_entry("tpcc")],
        };
        let mut buf = Vec::new();
        manifest.write_to(&mut buf).unwrap();
        let parsed = Manifest::read_from(buf.as_slice()).unwrap();
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.entry("tpcc").unwrap().records, 91_234);
        assert!(parsed.entry("nope").is_none());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("# corpus for the smoke test\n\n{MANIFEST_HEADER}\n# another comment\n");
        let parsed = Manifest::read_from(text.as_bytes()).unwrap();
        assert!(parsed.entries.is_empty());
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let manifest = Manifest {
            entries: vec![sample_entry("art")],
        };
        let mut buf = Vec::new();
        manifest.write_to(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text = text.replace("records=", "future_key=7 records=");
        let parsed = Manifest::read_from(text.as_bytes()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn typed_errors_carry_line_numbers() {
        // Wrong header.
        let err = Manifest::read_from(b"btcorpus-manifest v9\n".as_slice()).unwrap_err();
        assert!(matches!(err, ReplayError::Manifest { line: 1, .. }));
        // Missing key.
        let text = format!("{MANIFEST_HEADER}\ntrace name=x seed=1\n");
        let err = Manifest::read_from(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ReplayError::Manifest { line: 2, .. }));
        assert!(err.to_string().contains("line 2"));
        // Bad number.
        let text = format!("{MANIFEST_HEADER}\ntrace name=x seed=zebra\n");
        let err = Manifest::read_from(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("seed"));
        // Not a trace line.
        let text = format!("{MANIFEST_HEADER}\nsnapshot name=x\n");
        assert!(Manifest::read_from(text.as_bytes()).is_err());
        // Empty file.
        assert!(Manifest::read_from(b"".as_slice()).is_err());
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("replay-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = Manifest {
            entries: vec![sample_entry("swim")],
        };
        manifest.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), manifest);
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
    }
}
