//! The hand-parsed `corpus.manifest` index of a trace corpus directory.
//!
//! Layout — a line-oriented text format in the workspace's no-framework
//! tradition:
//!
//! ```text
//! btcorpus-manifest v1
//! # optional comment lines
//! trace name=gzip seed=0x... uop_budget=1200000 records=91234 \
//!       bt=gzip.bt bt_bytes=... bt_fnv1a=0x... bt_version=2 \
//!       pcl=gzip.pcl pcl_bytes=... pcl_fnv1a=0x... \
//!       branches=... conditionals=... taken=... uops=... static=...
//! ```
//!
//! (shown wrapped; each `trace` entry is a single line of
//! whitespace-separated `key=value` pairs). Unknown keys are ignored so
//! newer writers stay readable by older parsers; missing required keys are
//! a typed [`ReplayError::Manifest`] error carrying the line number.
//! `bt_version` defaults to 1 when absent, so pre-v2 manifests parse
//! unchanged.
//!
//! # Sharded manifests
//!
//! A corpus with more than [`SHARD_TRACES`] entries would put every trace
//! line in one file that grows (and must be rewritten) linearly with the
//! corpus. [`Manifest::save`] therefore shards large corpora: the root
//! `corpus.manifest` becomes an index of shard files,
//!
//! ```text
//! btcorpus-manifest v2
//! shard file=corpus.shard-000.manifest traces=256 fnv1a=0x...
//! shard file=corpus.shard-001.manifest traces=256 fnv1a=0x...
//! ```
//!
//! where each shard file is itself a complete v1 manifest holding a
//! contiguous run of entries, checksummed (FNV-1a-64 over the shard's
//! bytes) from the root so a damaged shard is detected at load.
//! [`Manifest::load`] negotiates the root header, so callers never see
//! the difference: both layouts load to the same in-memory [`Manifest`].

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use bptrace::TraceStats;

use crate::error::{ReplayError, Result};

/// File name of the manifest inside a corpus directory.
pub const MANIFEST_FILE: &str = "corpus.manifest";

/// Header line of a single-file (or shard) manifest.
pub const MANIFEST_HEADER: &str = "btcorpus-manifest v1";

/// Header line of a sharded root manifest (an index of shard files).
pub const MANIFEST_SHARDED_HEADER: &str = "btcorpus-manifest v2";

/// Entries per shard file, and the threshold above which
/// [`Manifest::save`] switches to the sharded layout.
pub const SHARD_TRACES: usize = 256;

/// One recorded benchmark: its trace and snapshot files plus everything
/// needed to re-derive or verify them.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEntry {
    /// Benchmark name (unique within the corpus).
    pub name: String,
    /// Execution seed of the walk that produced the trace.
    pub seed: u64,
    /// The committed-uop budget the recording stopped at.
    pub uop_budget: u64,
    /// Branch records in the `.bt` file.
    pub records: u64,
    /// `.bt` file name, relative to the corpus directory.
    pub bt_file: String,
    /// Byte length of the `.bt` file.
    pub bt_bytes: u64,
    /// FNV-1a-64 checksum of the `.bt` file.
    pub bt_fnv1a: u64,
    /// `.bt` format version (1 = record stream, 2 = block-compressed).
    /// Defaults to 1 when the manifest predates the key.
    pub bt_version: u16,
    /// `.pcl` snapshot file name, relative to the corpus directory.
    pub pcl_file: String,
    /// Byte length of the `.pcl` file.
    pub pcl_bytes: u64,
    /// FNV-1a-64 checksum of the `.pcl` file.
    pub pcl_fnv1a: u64,
    /// Whole-trace statistics summary.
    pub stats: TraceStats,
}

/// The parsed manifest: recorded entries in recording order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Manifest {
    /// One entry per recorded benchmark.
    pub entries: Vec<TraceEntry>,
}

impl Manifest {
    /// Looks an entry up by benchmark name.
    #[must_use]
    pub fn entry(&self, name: &str) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Serializes the manifest.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, mut out: W) -> Result<()> {
        let mut text = String::new();
        text.push_str(MANIFEST_HEADER);
        text.push('\n');
        for e in &self.entries {
            let s = &e.stats;
            let mut line = String::new();
            let _ = write!(
                line,
                "trace name={} seed={:#x} uop_budget={} records={} \
                 bt={} bt_bytes={} bt_fnv1a={:#x} bt_version={} \
                 pcl={} pcl_bytes={} pcl_fnv1a={:#x} \
                 branches={} conditionals={} taken={} uops={} static={}",
                e.name,
                e.seed,
                e.uop_budget,
                e.records,
                e.bt_file,
                e.bt_bytes,
                e.bt_fnv1a,
                e.bt_version,
                e.pcl_file,
                e.pcl_bytes,
                e.pcl_fnv1a,
                s.branches,
                s.conditionals,
                s.taken_conditionals,
                s.uops,
                s.static_branches,
            );
            text.push_str(&line);
            text.push('\n');
        }
        out.write_all(text.as_bytes())?;
        Ok(())
    }

    /// Parses a manifest.
    ///
    /// # Errors
    ///
    /// [`ReplayError::Manifest`] with the offending line number on a bad
    /// header, malformed pair, unparsable number or missing required key.
    pub fn read_from<R: Read>(input: R) -> Result<Self> {
        let reader = BufReader::new(input);
        let mut entries = Vec::new();
        let mut saw_header = false;
        for (i, line) in reader.lines().enumerate() {
            let lineno = i + 1;
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                if line != MANIFEST_HEADER {
                    return Err(ReplayError::Manifest {
                        line: lineno,
                        reason: format!("expected header {MANIFEST_HEADER:?}, found {line:?}"),
                    });
                }
                saw_header = true;
                continue;
            }
            let Some(rest) = line.strip_prefix("trace ") else {
                return Err(ReplayError::Manifest {
                    line: lineno,
                    reason: format!("expected a `trace` entry, found {line:?}"),
                });
            };
            entries.push(parse_entry(rest, lineno)?);
        }
        if !saw_header {
            return Err(ReplayError::Manifest {
                line: 1,
                reason: "empty manifest (missing header)".into(),
            });
        }
        Ok(Self { entries })
    }

    /// Loads `dir/corpus.manifest`, negotiating the root layout: a v1
    /// root is parsed directly; a v2 root is an index of shard files,
    /// each of which is checksum-verified and parsed as a v1 manifest.
    ///
    /// # Errors
    ///
    /// As [`read_from`](Self::read_from), plus I/O errors opening the
    /// files, and [`ReplayError::Manifest`] on a shard checksum or
    /// entry-count mismatch.
    pub fn load(dir: &Path) -> Result<Self> {
        let root = std::fs::read(dir.join(MANIFEST_FILE))?;
        let first_content = root
            .split(|&b| b == b'\n')
            .map(|l| std::str::from_utf8(l).unwrap_or("").trim())
            .find(|l| !l.is_empty() && !l.starts_with('#'));
        if first_content != Some(MANIFEST_SHARDED_HEADER) {
            return Self::read_from(root.as_slice());
        }
        let mut entries = Vec::new();
        for (i, line) in root.split(|&b| b == b'\n').enumerate() {
            let lineno = i + 1;
            let bad = |reason: String| ReplayError::Manifest {
                line: lineno,
                reason,
            };
            let line = std::str::from_utf8(line)
                .map_err(|_| bad("root manifest is not UTF-8".into()))?
                .trim();
            if line.is_empty() || line.starts_with('#') || line == MANIFEST_SHARDED_HEADER {
                continue;
            }
            let Some(rest) = line.strip_prefix("shard ") else {
                return Err(bad(format!("expected a `shard` entry, found {line:?}")));
            };
            let (mut file, mut traces, mut fnv) = (None, None, None);
            for pair in rest.split_ascii_whitespace() {
                let (key, value) = pair
                    .split_once('=')
                    .ok_or_else(|| bad(format!("malformed pair {pair:?}")))?;
                match key {
                    "file" => file = Some(value.to_string()),
                    "traces" => traces = Some(parse_num(key, value, lineno)?),
                    "fnv1a" => fnv = Some(parse_num(key, value, lineno)?),
                    _ => {} // forward compatibility
                }
            }
            let file = file.ok_or_else(|| bad("missing key file".into()))?;
            let traces = traces.ok_or_else(|| bad("missing key traces".into()))?;
            let fnv = fnv.ok_or_else(|| bad("missing key fnv1a".into()))?;
            let bytes = std::fs::read(dir.join(&file))?;
            let found = crate::checksum::fnv1a(&bytes);
            if found != fnv {
                return Err(bad(format!(
                    "shard {file}: expected fnv1a {fnv:#x}, found {found:#x}"
                )));
            }
            let shard = Self::read_from(bytes.as_slice())?;
            if shard.entries.len() as u64 != traces {
                return Err(bad(format!(
                    "shard {file}: expected {traces} traces, found {}",
                    shard.entries.len()
                )));
            }
            entries.extend(shard.entries);
        }
        Ok(Self { entries })
    }

    /// Writes `dir/corpus.manifest`, sharding automatically: up to
    /// [`SHARD_TRACES`] entries land in a single v1 file; larger corpora
    /// get the sharded layout via
    /// [`save_sharded`](Self::save_sharded)`(dir, SHARD_TRACES)`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, dir: &Path) -> Result<()> {
        if self.entries.len() > SHARD_TRACES {
            return self.save_sharded(dir, SHARD_TRACES);
        }
        let file = std::fs::File::create(dir.join(MANIFEST_FILE))?;
        self.write_to(file)
    }

    /// Writes the sharded layout explicitly: `shard_size` entries per
    /// `corpus.shard-NNN.manifest` file (each a complete v1 manifest),
    /// with the root `corpus.manifest` indexing them by name, entry count
    /// and FNV-1a-64 checksum.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `shard_size` is zero.
    pub fn save_sharded(&self, dir: &Path, shard_size: usize) -> Result<()> {
        assert!(shard_size > 0, "shard size must be positive");
        let mut root = String::new();
        root.push_str(MANIFEST_SHARDED_HEADER);
        root.push('\n');
        for (i, chunk) in self.entries.chunks(shard_size).enumerate() {
            let shard = Self {
                entries: chunk.to_vec(),
            };
            let mut bytes = Vec::new();
            shard.write_to(&mut bytes)?;
            let file = format!("corpus.shard-{i:03}.manifest");
            std::fs::write(dir.join(&file), &bytes)?;
            let _ = writeln!(
                root,
                "shard file={file} traces={} fnv1a={:#x}",
                chunk.len(),
                crate::checksum::fnv1a(&bytes)
            );
        }
        std::fs::write(dir.join(MANIFEST_FILE), root.as_bytes())?;
        Ok(())
    }
}

/// Parses a decimal or `0x`-prefixed hexadecimal `u64`.
fn parse_num(key: &str, value: &str, line: usize) -> Result<u64> {
    value
        .strip_prefix("0x")
        .map_or_else(|| value.parse::<u64>(), |hex| u64::from_str_radix(hex, 16))
        .map_err(|_| ReplayError::Manifest {
            line,
            reason: format!("bad number for {key}: {value:?}"),
        })
}

fn parse_entry(pairs: &str, line: usize) -> Result<TraceEntry> {
    let bad = |reason: String| ReplayError::Manifest { line, reason };
    let mut name = None;
    let mut str_fields: [Option<String>; 2] = [None, None]; // bt, pcl
    let mut num_fields: [Option<u64>; 12] = [None; 12];
    // Optional key: absent in pre-v2 manifests, which recorded v1 streams.
    let mut bt_version: u64 = 1;
    const NUM_KEYS: [&str; 12] = [
        "seed",
        "uop_budget",
        "records",
        "bt_bytes",
        "bt_fnv1a",
        "pcl_bytes",
        "pcl_fnv1a",
        "branches",
        "conditionals",
        "taken",
        "uops",
        "static",
    ];
    for pair in pairs.split_ascii_whitespace() {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| bad(format!("malformed pair {pair:?}")))?;
        match key {
            "name" => name = Some(value.to_string()),
            "bt" => str_fields[0] = Some(value.to_string()),
            "pcl" => str_fields[1] = Some(value.to_string()),
            "bt_version" => bt_version = parse_num(key, value, line)?,
            _ => {
                if let Some(slot) = NUM_KEYS.iter().position(|k| *k == key) {
                    num_fields[slot] = Some(parse_num(key, value, line)?);
                }
                // Unknown keys: ignored for forward compatibility.
            }
        }
    }
    let take_num = |slot: usize| {
        num_fields[slot].ok_or_else(|| bad(format!("missing key {}", NUM_KEYS[slot])))
    };
    Ok(TraceEntry {
        name: name.ok_or_else(|| bad("missing key name".into()))?,
        seed: take_num(0)?,
        uop_budget: take_num(1)?,
        records: take_num(2)?,
        bt_file: str_fields[0]
            .clone()
            .ok_or_else(|| bad("missing key bt".into()))?,
        bt_bytes: take_num(3)?,
        bt_fnv1a: take_num(4)?,
        bt_version: u16::try_from(bt_version)
            .map_err(|_| bad(format!("bt_version {bt_version} out of range")))?,
        pcl_file: str_fields[1]
            .clone()
            .ok_or_else(|| bad("missing key pcl".into()))?,
        pcl_bytes: take_num(5)?,
        pcl_fnv1a: take_num(6)?,
        stats: TraceStats {
            branches: take_num(7)?,
            conditionals: take_num(8)?,
            taken_conditionals: take_num(9)?,
            uops: take_num(10)?,
            static_branches: take_num(11)? as usize,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(name: &str) -> TraceEntry {
        TraceEntry {
            name: name.to_string(),
            seed: 0xdead_beef_0bad_cafe,
            uop_budget: 1_200_000,
            records: 91_234,
            bt_file: format!("{name}.bt"),
            bt_bytes: 250_101,
            bt_fnv1a: 0x1234_5678_9abc_def0,
            bt_version: 2,
            pcl_file: format!("{name}.pcl"),
            pcl_bytes: 40_000,
            pcl_fnv1a: 42,
            stats: TraceStats {
                branches: 91_234,
                conditionals: 91_234,
                taken_conditionals: 60_000,
                uops: 1_200_003,
                static_branches: 1_871,
            },
        }
    }

    #[test]
    fn round_trips() {
        let manifest = Manifest {
            entries: vec![sample_entry("gzip"), sample_entry("tpcc")],
        };
        let mut buf = Vec::new();
        manifest.write_to(&mut buf).unwrap();
        let parsed = Manifest::read_from(buf.as_slice()).unwrap();
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.entry("tpcc").unwrap().records, 91_234);
        assert!(parsed.entry("nope").is_none());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("# corpus for the smoke test\n\n{MANIFEST_HEADER}\n# another comment\n");
        let parsed = Manifest::read_from(text.as_bytes()).unwrap();
        assert!(parsed.entries.is_empty());
    }

    #[test]
    fn unknown_keys_are_ignored() {
        let manifest = Manifest {
            entries: vec![sample_entry("art")],
        };
        let mut buf = Vec::new();
        manifest.write_to(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text = text.replace("records=", "future_key=7 records=");
        let parsed = Manifest::read_from(text.as_bytes()).unwrap();
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn typed_errors_carry_line_numbers() {
        // Wrong header.
        let err = Manifest::read_from(b"btcorpus-manifest v9\n".as_slice()).unwrap_err();
        assert!(matches!(err, ReplayError::Manifest { line: 1, .. }));
        // Missing key.
        let text = format!("{MANIFEST_HEADER}\ntrace name=x seed=1\n");
        let err = Manifest::read_from(text.as_bytes()).unwrap_err();
        assert!(matches!(err, ReplayError::Manifest { line: 2, .. }));
        assert!(err.to_string().contains("line 2"));
        // Bad number.
        let text = format!("{MANIFEST_HEADER}\ntrace name=x seed=zebra\n");
        let err = Manifest::read_from(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("seed"));
        // Not a trace line.
        let text = format!("{MANIFEST_HEADER}\nsnapshot name=x\n");
        assert!(Manifest::read_from(text.as_bytes()).is_err());
        // Empty file.
        assert!(Manifest::read_from(b"".as_slice()).is_err());
    }

    #[test]
    fn bt_version_defaults_to_v1_when_absent() {
        // Pre-v2 manifests carry no bt_version key; they indexed v1
        // record streams.
        let manifest = Manifest {
            entries: vec![sample_entry("gzip")],
        };
        let mut buf = Vec::new();
        manifest.write_to(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap().replace("bt_version=2 ", "");
        let parsed = Manifest::read_from(text.as_bytes()).unwrap();
        assert_eq!(parsed.entries[0].bt_version, 1);
    }

    #[test]
    fn sharded_save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("replay-manifest-sharded-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = Manifest {
            entries: (0..10).map(|i| sample_entry(&format!("b{i}"))).collect(),
        };
        manifest.save_sharded(&dir, 4).unwrap();
        // Root is an index of three checksummed shard files.
        let root = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        assert!(root.starts_with(MANIFEST_SHARDED_HEADER));
        assert_eq!(root.matches("shard file=").count(), 3);
        assert_eq!(Manifest::load(&dir).unwrap(), manifest);

        // A flipped byte inside a shard is caught by the root checksum.
        let shard = dir.join("corpus.shard-001.manifest");
        let mut bytes = std::fs::read(&shard).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&shard, &bytes).unwrap();
        let err = Manifest::load(&dir).unwrap_err();
        assert!(err.to_string().contains("fnv1a"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_auto_shards_above_the_threshold() {
        let dir = std::env::temp_dir().join("replay-manifest-autoshard-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = Manifest {
            entries: (0..SHARD_TRACES + 1)
                .map(|i| sample_entry(&format!("b{i}")))
                .collect(),
        };
        manifest.save(&dir).unwrap();
        let root = std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap();
        assert!(root.starts_with(MANIFEST_SHARDED_HEADER));
        assert_eq!(Manifest::load(&dir).unwrap(), manifest);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("replay-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = Manifest {
            entries: vec![sample_entry("swim")],
        };
        manifest.save(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), manifest);
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
    }
}
