//! Building and verifying on-disk trace corpora.
//!
//! A corpus directory holds, per benchmark:
//!
//! * `<name>.bt` — the correct-path branch trace, recorded by streaming
//!   the walker's branch events straight into a [`BtWriter`] (nothing is
//!   materialized);
//! * `<name>.pcl` — the program snapshot (the LIT analog), so hybrids can
//!   be *re-executed* rather than trace-replayed (paper §6);
//! * one `trace` line in `corpus.manifest` ([`Manifest`]) carrying seeds,
//!   budgets, byte lengths, FNV-1a checksums and the [`TraceStats`]
//!   summary.
//!
//! [`verify_entry`] closes the loop: it re-hashes both artifacts against
//! the manifest and then replays the snapshot's correct path against the
//! recorded trace record-for-record — the cross-check that the two
//! evaluation paths (trace replay for conventional predictors, snapshot
//! re-execution for hybrids) observe the identical architectural branch
//! stream.

use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use bptrace::{BranchProfile, BranchRecord, BtBlockReader, BtBlockWriter, BtReader, BtWriter};
use predictors::DirectionPredictor;
use workloads::{Benchmark, Program, Snapshot, Walker};

use crate::checksum::{hash_file, HashingWriter};
use crate::engine::{replay_blocks, replay_reader, ReplayConfig, ReplayResult};
use crate::error::{ReplayError, Result};
use crate::manifest::{Manifest, TraceEntry};

/// The minimal writer surface shared by the v1 record-stream and v2
/// block-compressed trace writers, so one recording walk serves both.
trait TraceSink {
    fn put(&mut self, rec: &BranchRecord) -> bptrace::Result<()>;
    fn count(&self) -> u64;
    fn close(self) -> bptrace::Result<()>;
}

impl<W: Write> TraceSink for BtWriter<W> {
    fn put(&mut self, rec: &BranchRecord) -> bptrace::Result<()> {
        self.write(rec)
    }
    fn count(&self) -> u64 {
        self.records()
    }
    fn close(self) -> bptrace::Result<()> {
        self.finish().map(|_| ())
    }
}

impl<W: Write> TraceSink for BtBlockWriter<W> {
    fn put(&mut self, rec: &BranchRecord) -> bptrace::Result<()> {
        self.write(rec)
    }
    fn count(&self) -> u64 {
        self.records()
    }
    fn close(self) -> bptrace::Result<()> {
        self.finish().map(|_| ())
    }
}

/// The correct-path walk behind [`record_trace`]/[`record_trace_v1`]:
/// format-agnostic, so both writers record the identical record stream.
fn record_walk<S: TraceSink>(
    program: &Program,
    seed: u64,
    max_uops: u64,
    mut writer: S,
) -> Result<(u64, BranchProfile)> {
    let mut walker = Walker::with_seed(program, seed);
    let mut profile = BranchProfile::new();
    let mut uops: u64 = 0;
    while uops < max_uops {
        let ev = walker.next_branch();
        let rec = ev.to_record();
        writer.put(&rec)?;
        profile.observe(&rec);
        uops += ev.uops;
        walker.follow(ev.outcome);
    }
    let records = writer.count();
    writer.close()?;
    Ok((records, profile))
}

/// Walks `program`'s correct path until `max_uops` micro-ops are covered,
/// streaming one [`BranchRecord`] per conditional branch into `out` in
/// the block-compressed v2 format (the recording default).
///
/// Returns the record count and the per-static-branch profile (whose
/// [`BranchProfile::stats`] is the manifest summary). The record stream is
/// identical to [`workloads::correct_path_trace`] on the same
/// `(program, seed)` — deterministic in the seed, so re-recording always
/// reproduces the corpus bit-for-bit.
///
/// # Errors
///
/// Propagates trace-format/I/O errors from the writer.
pub fn record_trace<W: Write>(
    program: &Program,
    seed: u64,
    max_uops: u64,
    out: W,
) -> Result<(u64, BranchProfile)> {
    let writer = BtBlockWriter::new(out, program.name())?;
    record_walk(program, seed, max_uops, writer)
}

/// [`record_trace`] in the legacy v1 record-stream format — the
/// migration baseline (`traces migrate` rewrites such traces to v2) and
/// the reference image for the v1-vs-v2 differential tests.
///
/// # Errors
///
/// Propagates trace-format/I/O errors from the writer.
pub fn record_trace_v1<W: Write>(
    program: &Program,
    seed: u64,
    max_uops: u64,
    out: W,
) -> Result<(u64, BranchProfile)> {
    let writer = BtWriter::new(out, program.name())?;
    record_walk(program, seed, max_uops, writer)
}

/// Records one benchmark into `dir`: writes `<name>.bt` (in the v2
/// block-compressed format) and `<name>.pcl` (checksummed as they stream
/// out) and returns the manifest entry.
///
/// # Errors
///
/// Propagates trace-format and I/O errors.
pub fn record_benchmark(dir: &Path, bench: &Benchmark, uop_budget: u64) -> Result<TraceEntry> {
    record_benchmark_with(dir, bench, uop_budget, bptrace::BT_VERSION)
}

/// [`record_benchmark`] with an explicit trace format version
/// ([`bptrace::BT_VERSION`] or [`bptrace::BT_VERSION_V1`]) — the CLI's
/// `record --format` plumbing and the migration tests' v1 baseline.
///
/// # Errors
///
/// Propagates trace-format and I/O errors; rejects unknown versions.
pub fn record_benchmark_with(
    dir: &Path,
    bench: &Benchmark,
    uop_budget: u64,
    bt_version: u16,
) -> Result<TraceEntry> {
    let program = bench.program();

    let bt_file = format!("{}.bt", bench.name);
    // The hashing layer sits outside the buffer so it sees the final byte
    // stream exactly as it lands on disk.
    let mut bt = HashingWriter::new(BufWriter::new(std::fs::File::create(dir.join(&bt_file))?));
    let (records, profile) = match bt_version {
        bptrace::BT_VERSION_V1 => record_trace_v1(&program, bench.seed, uop_budget, &mut bt)?,
        bptrace::BT_VERSION => record_trace(&program, bench.seed, uop_budget, &mut bt)?,
        v => {
            return Err(ReplayError::Corpus {
                trace: bench.name.clone(),
                reason: format!("unknown .bt format version {v}"),
            })
        }
    };
    bt.flush()?;
    let (bt_bytes, bt_fnv1a) = (bt.written(), bt.hash());

    let pcl_file = format!("{}.pcl", bench.name);
    let mut pcl = HashingWriter::new(BufWriter::new(std::fs::File::create(dir.join(&pcl_file))?));
    Snapshot::new(program, bench.seed).write_to(&mut pcl)?;
    pcl.flush()?;
    let (pcl_bytes, pcl_fnv1a) = (pcl.written(), pcl.hash());

    Ok(TraceEntry {
        name: bench.name.clone(),
        seed: bench.seed,
        uop_budget,
        records,
        bt_file,
        bt_bytes,
        bt_fnv1a,
        bt_version,
        pcl_file,
        pcl_bytes,
        pcl_fnv1a,
        stats: profile.stats(),
    })
}

/// Records `benches` into `dir` sequentially and writes the manifest.
///
/// (The `traces` CLI fans [`record_benchmark`] cells over the parallel
/// grid runner instead; this is the plain library entry point.)
///
/// # Errors
///
/// Propagates per-benchmark errors; on success the manifest is on disk.
pub fn record_corpus(dir: &Path, benches: &[Benchmark], uop_budget: u64) -> Result<Manifest> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = Manifest::default();
    for bench in benches {
        manifest
            .entries
            .push(record_benchmark(dir, bench, uop_budget)?);
    }
    manifest.save(dir)?;
    Ok(manifest)
}

/// Loads the program snapshot of a corpus entry.
///
/// # Errors
///
/// Trace-format/I/O errors opening or parsing the `.pcl` file.
pub fn load_snapshot(dir: &Path, entry: &TraceEntry) -> Result<Snapshot> {
    let file = std::fs::File::open(dir.join(&entry.pcl_file))?;
    Ok(Snapshot::read_from(BufReader::new(file))?)
}

/// Opens a streaming reader over a corpus entry's `.bt` trace.
///
/// # Errors
///
/// Trace-format/I/O errors opening the file or its header.
pub fn open_trace(dir: &Path, entry: &TraceEntry) -> Result<BtReader<BufReader<std::fs::File>>> {
    let file = std::fs::File::open(dir.join(&entry.bt_file))?;
    Ok(BtReader::new(BufReader::new(file))?)
}

/// Rewrites one corpus entry's `.bt` trace from the v1 record stream to
/// the v2 block-compressed format, in a bounded-memory stream (one block
/// buffered at a time, never the whole trace).
///
/// The rewrite is gated before it replaces anything: the new file is
/// written to `<bt_file>.v2tmp`, re-read with the scalar reference
/// reader, and compared record-for-record against the original; only a
/// bit-identical record stream is renamed over the v1 file. Returns the
/// updated manifest entry (new byte length, checksum, `bt_version=2`;
/// record count and stats unchanged). An entry already at v2 is returned
/// unchanged without touching disk.
///
/// # Errors
///
/// Trace-format/I/O errors, or [`ReplayError::Corpus`] if the re-decoded
/// stream diverges from the original (the temp file is removed and the
/// v1 trace left in place).
pub fn migrate_entry(dir: &Path, entry: &TraceEntry) -> Result<TraceEntry> {
    if entry.bt_version == bptrace::BT_VERSION {
        return Ok(entry.clone());
    }
    let src = dir.join(&entry.bt_file);
    let tmp = dir.join(format!("{}.v2tmp", entry.bt_file));
    let fail = |reason: String| {
        let _ = std::fs::remove_file(&tmp);
        Err(ReplayError::Corpus {
            trace: entry.name.clone(),
            reason,
        })
    };

    let mut reader = BtReader::new(BufReader::new(std::fs::File::open(&src)?))?;
    let mut out = HashingWriter::new(BufWriter::new(std::fs::File::create(&tmp)?));
    let mut writer = BtBlockWriter::new(&mut out, reader.name())?;
    while let Some(rec) = reader.next_record()? {
        writer.write(&rec)?;
    }
    let records = writer.records();
    writer.finish()?;
    out.flush()?;
    let (bt_bytes, bt_fnv1a) = (out.written(), out.hash());
    if records != entry.records {
        return fail(format!(
            "migration wrote {records} records, manifest says {}",
            entry.records
        ));
    }

    // Lockstep gate: the rewritten stream must decode bit-identically to
    // the original before it may replace it.
    let mut old = BtReader::new(BufReader::new(std::fs::File::open(&src)?))?;
    let mut new = BtReader::new(BufReader::new(std::fs::File::open(&tmp)?))?;
    let mut index: u64 = 0;
    loop {
        match (old.next_record()?, new.next_record()?) {
            (None, None) => break,
            (Some(a), Some(b)) if a == b => index += 1,
            (a, b) => {
                return fail(format!(
                    "migrated stream diverges at record {index}: v1 {a:?} vs v2 {b:?}"
                ))
            }
        }
    }

    std::fs::rename(&tmp, &src)?;
    Ok(TraceEntry {
        bt_bytes,
        bt_fnv1a,
        bt_version: bptrace::BT_VERSION,
        ..entry.clone()
    })
}

/// Replays one corpus entry's trace straight off disk through
/// `predictor`, negotiating the format version from the file header: v2
/// traces stream through the chunked block decoder, v1 traces through
/// the scalar record reader. Memory stays bounded either way — the trace
/// is never materialized.
///
/// # Errors
///
/// Trace-format/I/O errors from the reader.
pub fn replay_entry<P: DirectionPredictor>(
    dir: &Path,
    entry: &TraceEntry,
    predictor: &mut P,
    config: &ReplayConfig,
) -> Result<ReplayResult> {
    use std::io::{Read as _, Seek, SeekFrom};
    let mut file = std::fs::File::open(dir.join(&entry.bt_file))?;
    let mut head = [0u8; 6];
    let is_v2 = file.read_exact(&mut head).is_ok()
        && bptrace::sniff_version(&head) == Some(bptrace::BT_VERSION);
    file.seek(SeekFrom::Start(0))?;
    let reader = BufReader::new(file);
    if is_v2 {
        let mut blocks = BtBlockReader::new(reader)?;
        replay_blocks(&mut blocks, predictor, config)
    } else {
        let mut records = BtReader::new(reader)?;
        replay_reader(&mut records, predictor, config)
    }
}

/// Streams the recorded trace against a fresh correct-path walk of
/// `snapshot`, failing on the first diverging record; returns the number
/// of records compared.
///
/// This is the §6 split made checkable: conventional predictors will
/// consume the `.bt` stream and hybrids will re-execute the snapshot, so
/// the walk's record (via [`BranchEvent::to_record`]) must equal every
/// trace record field-for-field.
///
/// [`BranchEvent::to_record`]: workloads::BranchEvent::to_record
///
/// # Errors
///
/// [`ReplayError::Corpus`] naming the diverging record, or trace-format
/// errors from the reader.
pub fn cross_check_snapshot<R: std::io::Read>(
    mut trace: BtReader<R>,
    snapshot: &Snapshot,
) -> Result<u64> {
    let mut walker = Walker::with_seed(&snapshot.program, snapshot.seed);
    let name = snapshot.program.name().to_string();
    let mut index: u64 = 0;
    while let Some(rec) = trace.next_record()? {
        let ev = walker.next_branch();
        let walked = ev.to_record();
        if walked != rec {
            return Err(ReplayError::Corpus {
                trace: name,
                reason: format!(
                    "snapshot walk diverges from trace at record {index}: \
                     walk {walked:?} vs trace {rec:?}"
                ),
            });
        }
        walker.follow(ev.outcome);
        index += 1;
    }
    Ok(index)
}

/// Fully verifies one corpus entry: byte lengths and checksums of both
/// artifacts against the manifest, the record count, and the
/// snapshot-vs-trace cross-check.
///
/// # Errors
///
/// [`ReplayError::Corpus`] describing the first failed check.
pub fn verify_entry(dir: &Path, entry: &TraceEntry) -> Result<()> {
    let fail = |reason: String| {
        Err(ReplayError::Corpus {
            trace: entry.name.clone(),
            reason,
        })
    };
    let (bt_bytes, bt_hash) = hash_file(&dir.join(&entry.bt_file))?;
    if (bt_bytes, bt_hash) != (entry.bt_bytes, entry.bt_fnv1a) {
        return fail(format!(
            "{}: expected {} bytes fnv1a {:#x}, found {} bytes fnv1a {:#x}",
            entry.bt_file, entry.bt_bytes, entry.bt_fnv1a, bt_bytes, bt_hash
        ));
    }
    let (pcl_bytes, pcl_hash) = hash_file(&dir.join(&entry.pcl_file))?;
    if (pcl_bytes, pcl_hash) != (entry.pcl_bytes, entry.pcl_fnv1a) {
        return fail(format!(
            "{}: expected {} bytes fnv1a {:#x}, found {} bytes fnv1a {:#x}",
            entry.pcl_file, entry.pcl_bytes, entry.pcl_fnv1a, pcl_bytes, pcl_hash
        ));
    }

    let snapshot = load_snapshot(dir, entry)?;
    if snapshot.seed != entry.seed {
        return fail(format!(
            "snapshot seed {:#x} != manifest seed {:#x}",
            snapshot.seed, entry.seed
        ));
    }
    let reader = open_trace(dir, entry)?;
    if reader.name() != entry.name {
        return fail(format!(
            "trace header name {:?} != manifest name",
            reader.name()
        ));
    }
    let records = cross_check_snapshot(reader, &snapshot)?;
    if records != entry.records {
        return fail(format!(
            "record count {records} != manifest records {}",
            entry.records
        ));
    }
    Ok(())
}

/// Verifies every entry of `manifest` in order.
///
/// # Errors
///
/// The first entry's failure, as [`verify_entry`].
pub fn verify_corpus(dir: &Path, manifest: &Manifest) -> Result<()> {
    for entry in &manifest.entries {
        verify_entry(dir, entry)?;
    }
    Ok(())
}

/// One corpus entry that failed verification and was set aside.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// The trace (benchmark) name from the manifest.
    pub trace: String,
    /// Why verification failed, verbatim.
    pub reason: String,
}

/// The outcome of a full, non-short-circuiting corpus verification.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Names of entries that passed every check, in manifest order.
    pub ok: Vec<String>,
    /// Entries that failed a check, in manifest order, with reasons.
    pub quarantine: Vec<QuarantineEntry>,
}

impl VerifyReport {
    /// Whether every entry verified clean.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.quarantine.is_empty()
    }
}

/// Verifies every entry of `manifest` without short-circuiting: failed
/// entries are quarantined (name + reason) and the rest still get
/// checked. This is the graceful-degradation counterpart of
/// [`verify_corpus`] — a single rotten `.bt` block marks one trace bad
/// instead of aborting the whole corpus.
#[must_use]
pub fn verify_corpus_report(dir: &Path, manifest: &Manifest) -> VerifyReport {
    let mut report = VerifyReport::default();
    for entry in &manifest.entries {
        match verify_entry(dir, entry) {
            Ok(()) => report.ok.push(entry.name.clone()),
            Err(e) => report.quarantine.push(QuarantineEntry {
                trace: entry.name.clone(),
                reason: e.to_string(),
            }),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bptrace::TraceStats;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("replay-corpus-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn recording_matches_correct_path_trace() {
        let bench = workloads::benchmark("gzip").unwrap();
        let program = bench.program();
        let mut buf = Vec::new();
        let (records, profile) = record_trace(&program, bench.seed, 30_000, &mut buf).unwrap();
        let decoded = BtReader::new(buf.as_slice()).unwrap().read_all().unwrap();
        assert_eq!(decoded.len() as u64, records);
        assert_eq!(profile.stats(), TraceStats::from_records(&decoded));
        // Identical to the materializing extractor on the same prefix.
        let reference = workloads::correct_path_trace(&program, bench.seed, decoded.len());
        assert_eq!(decoded, reference);
        // The uop budget is honoured (stop at the first record crossing it).
        assert!(profile.stats().uops >= 30_000);
        let without_last: u64 = decoded[..decoded.len() - 1]
            .iter()
            .map(|r| u64::from(r.uops_since_prev))
            .sum();
        assert!(without_last < 30_000);
    }

    #[test]
    fn corpus_records_verifies_and_reloads() {
        let dir = temp_dir("roundtrip");
        let benches: Vec<Benchmark> = ["mcf", "swim"]
            .iter()
            .map(|n| workloads::benchmark(n).unwrap())
            .collect();
        let manifest = record_corpus(&dir, &benches, 20_000).unwrap();
        assert_eq!(manifest.entries.len(), 2);
        assert_eq!(Manifest::load(&dir).unwrap(), manifest);
        verify_corpus(&dir, &manifest).unwrap();

        let entry = manifest.entry("mcf").unwrap();
        assert!(entry.records > 100);
        assert!(entry.stats.uops >= 20_000);
        let snap = load_snapshot(&dir, entry).unwrap();
        assert_eq!(snap.program.name(), "mcf");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected() {
        let dir = temp_dir("corrupt");
        let benches = vec![workloads::benchmark("art").unwrap()];
        let manifest = record_corpus(&dir, &benches, 10_000).unwrap();
        let entry = &manifest.entries[0];

        // Flip one payload byte in the .bt file.
        let path = dir.join(&entry.bt_file);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = verify_entry(&dir, entry).unwrap_err();
        assert!(err.to_string().contains("fnv1a"), "{err}");

        // Truncation is also a checksum/length failure.
        bytes[mid] ^= 0x40;
        bytes.pop();
        std::fs::write(&path, &bytes).unwrap();
        assert!(verify_entry(&dir, entry).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migration_rewrites_v1_to_v2_with_replay_pinned() {
        use crate::engine::ReplayConfig;
        use predictors::configs::{self, Budget};

        let dir = temp_dir("migrate");
        let bench = workloads::benchmark("gzip").unwrap();
        let v1 = record_benchmark_with(&dir, &bench, 30_000, bptrace::BT_VERSION_V1).unwrap();
        assert_eq!(v1.bt_version, 1);
        verify_entry(&dir, &v1).unwrap();

        let cfg = ReplayConfig::with_budget(30_000);
        let mut p = configs::gshare(Budget::K8);
        let before = replay_entry(&dir, &v1, &mut p, &cfg).unwrap();

        let v2 = migrate_entry(&dir, &v1).unwrap();
        assert_eq!(v2.bt_version, 2);
        assert_eq!(v2.records, v1.records);
        assert!(
            v2.bt_bytes < v1.bt_bytes,
            "v2 must shrink the trace: {} vs {}",
            v2.bt_bytes,
            v1.bt_bytes
        );
        // The updated entry verifies clean (checksums, cross-check) and
        // replays bit-identically to the v1 original.
        verify_entry(&dir, &v2).unwrap();
        let mut p = configs::gshare(Budget::K8);
        let after = replay_entry(&dir, &v2, &mut p, &cfg).unwrap();
        assert_eq!(before, after, "migration changed replay results");
        // No stray temp file; re-migrating is a no-op.
        assert!(!dir.join(format!("{}.v2tmp", v2.bt_file)).exists());
        assert_eq!(migrate_entry(&dir, &v2).unwrap(), v2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_benchmark_defaults_to_v2_and_verifies() {
        let dir = temp_dir("default-v2");
        let bench = workloads::benchmark("art").unwrap();
        let entry = record_benchmark(&dir, &bench, 15_000).unwrap();
        assert_eq!(entry.bt_version, bptrace::BT_VERSION);
        let bytes = std::fs::read(dir.join(&entry.bt_file)).unwrap();
        assert_eq!(bptrace::sniff_version(&bytes), Some(bptrace::BT_VERSION));
        verify_entry(&dir, &entry).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cross_check_catches_wrong_seed() {
        let bench = workloads::benchmark("gcc").unwrap();
        let program = bench.program();
        let mut buf = Vec::new();
        record_trace(&program, bench.seed, 15_000, &mut buf).unwrap();
        // Same program, different execution seed: the walks diverge. (The
        // per-branch RNG keeps only odd seeds, so flip a high bit rather
        // than bit 0.)
        let snapshot = Snapshot::new(bench.program(), bench.seed ^ 0xdead_0000);
        let reader = BtReader::new(buf.as_slice()).unwrap();
        let err = cross_check_snapshot(reader, &snapshot).unwrap_err();
        assert!(err.to_string().contains("diverges"), "{err}");
        // And the honest snapshot passes.
        let snapshot = Snapshot::new(bench.program(), bench.seed);
        let reader = BtReader::new(buf.as_slice()).unwrap();
        cross_check_snapshot(reader, &snapshot).unwrap();
    }
}
