//! Deterministic fault injection for robustness testing.
//!
//! Crash-safety claims are only as good as the faults they were tested
//! against, so this module makes faults *injectable and reproducible*: a
//! [`FaultPlan`] names which traces get corrupted (seeded bit flips,
//! truncations), which experiment cells panic mid-grid, and everything is
//! derived from a single seed through [`workloads::rng`] — two runs with
//! the same plan inject byte-identical faults, so tests can assert
//! recovery, quarantine accounting, and bit-identical surviving cells for
//! any thread count.
//!
//! Consumers:
//!
//! * the `tracecmp` tournament corrupts its in-memory corpus through
//!   [`FaultPlan::corrupt_trace`] and quarantines what the integrity
//!   checks catch;
//! * the `sim` grid runners call [`FaultPlan::panic_if_scheduled`] at the
//!   top of every cell, exercising the `catch_unwind` isolation path;
//! * the cell-store tests simulate crashes mid-write with [`torn_write`].
//!
//! The plan is inert by default ([`FaultPlan::none`]); production runs
//! never pay for it. The `FAULT_PLAN` environment variable arms it from
//! the command line:
//!
//! ```text
//! FAULT_PLAN="seed=7;flip=gcc;trunc=swim;panic=16KB perceptron"
//! ```

use std::path::Path;

use workloads::rng::SmallRng;

use crate::checksum::fnv1a;

/// Environment variable holding a fault-plan spec (see [`FaultPlan::from_spec`]).
pub const FAULT_PLAN_ENV: &str = "FAULT_PLAN";

/// A seeded, declarative fault-injection plan.
///
/// The default plan injects nothing; every injection site is a cheap
/// membership test when the plan is inactive.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Master seed all injected faults derive from.
    pub seed: u64,
    /// Trace names whose `.bt` bytes get one seeded bit flip (in the
    /// record region, so integrity checks must catch it).
    pub flip: Vec<String>,
    /// Trace names whose `.bt` bytes are truncated at a seeded offset.
    pub trunc: Vec<String>,
    /// Cell-label substrings that panic when a grid cell matching them
    /// starts (scheduled worker panics).
    pub panic_cells: Vec<String>,
}

impl FaultPlan {
    /// The inert plan: injects nothing anywhere.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether this plan injects any fault at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !(self.flip.is_empty() && self.trunc.is_empty() && self.panic_cells.is_empty())
    }

    /// Parses a plan spec: `;`-separated `key=value` pairs where `key` is
    /// `seed` (integer, `0x` hex accepted), `flip`/`trunc` (comma-separated
    /// trace names) or `panic` (a cell-label substring; repeatable).
    ///
    /// # Errors
    ///
    /// A description of the first malformed pair.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = Self::none();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed fault spec pair {part:?} (want key=value)"))?;
            match key.trim() {
                "seed" => {
                    let v = value.trim();
                    plan.seed = v
                        .strip_prefix("0x")
                        .map_or_else(|| v.parse::<u64>(), |hex| u64::from_str_radix(hex, 16))
                        .map_err(|_| format!("bad fault seed {value:?}"))?;
                }
                "flip" => plan
                    .flip
                    .extend(value.split(',').map(|s| s.trim().to_string())),
                "trunc" => plan
                    .trunc
                    .extend(value.split(',').map(|s| s.trim().to_string())),
                "panic" => plan.panic_cells.push(value.trim().to_string()),
                other => return Err(format!("unknown fault spec key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Reads the plan from the `FAULT_PLAN` environment variable; unset
    /// means [`FaultPlan::none`].
    ///
    /// # Panics
    ///
    /// On a malformed spec — an armed-but-broken fault plan silently
    /// testing nothing is worse than a loud failure.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(FAULT_PLAN_ENV) {
            Ok(spec) => Self::from_spec(&spec).unwrap_or_else(|e| panic!("{FAULT_PLAN_ENV}: {e}")),
            Err(_) => Self::none(),
        }
    }

    /// Applies this plan's corruptions to one trace's `.bt` bytes.
    /// Returns a description of what was injected, or `None` when the
    /// trace is not targeted. Deterministic in `(seed, name)`.
    pub fn corrupt_trace(&self, name: &str, bytes: &mut Vec<u8>) -> Option<String> {
        let mut applied: Vec<String> = Vec::new();
        if self.trunc.iter().any(|t| t == name) && bytes.len() > 4 {
            let mut rng = SmallRng::seed_from_u64(self.seed ^ fnv1a(name.as_bytes()) ^ 0x7472_756e);
            // Cut somewhere in the second half: past the header, inside
            // the record stream.
            let len = bytes.len();
            let keep = len / 2 + (rng.next_u64() % (len as u64 / 4).max(1)) as usize;
            bytes.truncate(keep);
            applied.push(format!("truncated to {keep} of {len} bytes"));
        }
        if self.flip.iter().any(|t| t == name) && !bytes.is_empty() {
            let mut rng = SmallRng::seed_from_u64(self.seed ^ fnv1a(name.as_bytes()) ^ 0x666c_6970);
            // Flip a bit in the second half of the (possibly already
            // truncated) stream — record bytes, not the header, so the
            // corruption must surface as divergence, not a bad magic.
            let start = bytes.len() / 2;
            let span = (bytes.len() - start).max(1) as u64;
            let pos = start + (rng.next_u64() % span) as usize;
            let bit = (rng.next_u64() % 8) as u8;
            bytes[pos] ^= 1 << bit;
            applied.push(format!("flipped bit {bit} of byte {pos}"));
        }
        if applied.is_empty() {
            None
        } else {
            Some(applied.join("; "))
        }
    }

    /// Whether a grid cell with this label is scheduled to panic.
    #[must_use]
    pub fn should_panic(&self, label: &str) -> bool {
        self.panic_cells.iter().any(|p| label.contains(p.as_str()))
    }

    /// Panics (deterministically) when `label` matches a scheduled cell
    /// panic — the grid runners call this at the top of every cell.
    ///
    /// # Panics
    ///
    /// When the plan schedules a panic for this label; that is the point.
    pub fn panic_if_scheduled(&self, label: &str) {
        if self.should_panic(label) {
            panic!("injected fault: scheduled panic in cell '{label}'");
        }
    }
}

/// Simulates a torn write: persists only the first `keep` bytes of
/// `bytes` to `path`, as if the process died mid-`write`. Recovery code
/// must treat the result as absent/corrupt, never as valid data.
///
/// # Errors
///
/// Propagates I/O errors from the (partial) write.
pub fn torn_write(path: &Path, bytes: &[u8], keep: usize) -> std::io::Result<()> {
    std::fs::write(path, &bytes[..keep.min(bytes.len())])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trip() {
        let plan =
            FaultPlan::from_spec("seed=0x2a; flip=gcc,swim; trunc=art; panic=perceptron").unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.flip, vec!["gcc".to_string(), "swim".to_string()]);
        assert_eq!(plan.trunc, vec!["art".to_string()]);
        assert!(plan.should_panic("16KB perceptron × gzip"));
        assert!(!plan.should_panic("16KB gshare × gzip"));
        assert!(plan.is_active());
        assert!(!FaultPlan::none().is_active());
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultPlan::from_spec("seed=zebra").is_err());
        assert!(FaultPlan::from_spec("frobnicate=1").is_err());
        assert!(FaultPlan::from_spec("justakey").is_err());
        // Empty / whitespace specs are the inert plan.
        assert_eq!(FaultPlan::from_spec("").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::from_spec(" ; ").unwrap(), FaultPlan::none());
    }

    #[test]
    fn corruption_is_deterministic_and_targeted() {
        let plan = FaultPlan {
            seed: 7,
            flip: vec!["gcc".into()],
            trunc: vec!["swim".into()],
            ..FaultPlan::none()
        };
        let original: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();

        let mut a = original.clone();
        let mut b = original.clone();
        assert!(plan.corrupt_trace("gcc", &mut a).is_some());
        assert!(plan.corrupt_trace("gcc", &mut b).is_some());
        assert_eq!(a, b, "same plan, same trace, same corruption");
        assert_eq!(a.len(), original.len(), "flip does not change length");
        assert_ne!(a, original);
        // Exactly one bit differs.
        let diff_bits: u32 = a
            .iter()
            .zip(&original)
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(diff_bits, 1);

        let mut t = original.clone();
        assert!(plan.corrupt_trace("swim", &mut t).is_some());
        assert!(t.len() < original.len());
        assert!(t.len() >= original.len() / 2);

        let mut untouched = original.clone();
        assert!(plan.corrupt_trace("tpcc", &mut untouched).is_none());
        assert_eq!(untouched, original);
    }

    #[test]
    fn torn_write_persists_a_prefix() {
        let dir = std::env::temp_dir().join("replay-fault-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.bin");
        let payload = b"0123456789";
        torn_write(&path, payload, 4).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"0123");
        // keep beyond the end clamps to the full payload.
        torn_write(&path, payload, 64).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), payload);
        std::fs::remove_file(&path).unwrap();
    }
}
