//! Error type for corpus building, verification and replay.

use std::fmt;
use std::io;

use bptrace::TraceError;

/// An error produced by the corpus or replay tooling.
#[derive(Debug)]
pub enum ReplayError {
    /// A trace-format error (bad magic, corruption, truncation, …).
    Trace(TraceError),
    /// An underlying I/O failure outside the trace parsers.
    Io(io::Error),
    /// A manifest line failed to parse.
    Manifest {
        /// 1-based line number within the manifest file.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// A corpus artifact disagrees with its manifest entry or its sibling
    /// artifact (checksum mismatch, snapshot/trace divergence, …).
    Corpus {
        /// The trace (benchmark) name.
        trace: String,
        /// Description of the disagreement.
        reason: String,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Trace(e) => write!(f, "trace format error: {e}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Manifest { line, reason } => write!(f, "manifest line {line}: {reason}"),
            Self::Corpus { trace, reason } => write!(f, "corpus entry {trace}: {reason}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Trace(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        Self::Trace(e)
    }
}

impl From<io::Error> for ReplayError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Convenience alias for replay results.
pub type Result<T> = std::result::Result<T, ReplayError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ReplayError::Manifest {
            line: 3,
            reason: "missing seed".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = ReplayError::Corpus {
            trace: "gcc".into(),
            reason: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("gcc"));
    }

    #[test]
    fn sources_convert() {
        let e: ReplayError = TraceError::UnexpectedEof { what: "flags" }.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: ReplayError = io::Error::other("boom").into();
        assert!(matches!(e, ReplayError::Io(_)));
    }
}
