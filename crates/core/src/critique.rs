//! Critique taxonomy and statistics (paper §7.3, Figure 8 and Table 4).

/// The decision a critic renders for one prophet prediction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CriticDecision {
    /// The critic's predicted direction for the branch (the *final*
    /// prediction when the critic is engaged).
    pub direction: bool,
    /// Whether the critic actually engaged. A filtered critic with a tag
    /// miss does not engage — it *implicitly agrees* and its direction is
    /// the prophet's (§4).
    pub engaged: bool,
}

impl CriticDecision {
    /// An implicit agreement (filter miss): the prophet's prediction stands.
    #[must_use]
    pub fn implicit_agree(prophet_pred: bool) -> Self {
        Self {
            direction: prophet_pred,
            engaged: false,
        }
    }

    /// An explicit critique with the given direction.
    #[must_use]
    pub fn explicit(direction: bool) -> Self {
        Self {
            direction,
            engaged: true,
        }
    }

    /// Whether the critique agrees with the prophet (implicitly or not).
    #[must_use]
    pub fn agrees_with(&self, prophet_pred: bool) -> bool {
        self.direction == prophet_pred
    }
}

/// Classification of one committed branch's critique, following §7.3.
///
/// The first word refers to the *prophet's* prediction, the second to the
/// critic's reaction:
///
/// * the ideal case is [`IncorrectDisagree`](Self::IncorrectDisagree) — the
///   critic fixed a prophet mispredict;
/// * the case to minimize is [`CorrectDisagree`](Self::CorrectDisagree) —
///   the critic broke a correct prediction;
/// * `*None` are the *implicit* critiques from filter misses, reported
///   separately in Table 4.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CritiqueKind {
    /// Prophet correct, critic (explicitly) agreed: no change, no harm.
    CorrectAgree,
    /// Prophet wrong, critic disagreed: a mispredict was corrected.
    IncorrectDisagree,
    /// Prophet wrong, critic agreed: a lost opportunity.
    IncorrectAgree,
    /// Prophet correct, critic disagreed: the critic *introduced* a
    /// mispredict — the worst case.
    CorrectDisagree,
    /// Prophet correct, filter miss (implicit agree).
    CorrectNone,
    /// Prophet wrong, filter miss (implicit agree).
    IncorrectNone,
}

impl CritiqueKind {
    /// Classifies a committed branch.
    #[must_use]
    pub fn classify(prophet_pred: bool, decision: CriticDecision, outcome: bool) -> Self {
        let prophet_correct = prophet_pred == outcome;
        match (
            prophet_correct,
            decision.engaged,
            decision.agrees_with(prophet_pred),
        ) {
            (true, false, _) => Self::CorrectNone,
            (false, false, _) => Self::IncorrectNone,
            (true, true, true) => Self::CorrectAgree,
            (true, true, false) => Self::CorrectDisagree,
            (false, true, true) => Self::IncorrectAgree,
            (false, true, false) => Self::IncorrectDisagree,
        }
    }

    /// All kinds, in the display order of Figure 8 plus the two implicit
    /// kinds of Table 4.
    pub const ALL: [CritiqueKind; 6] = [
        Self::CorrectAgree,
        Self::IncorrectDisagree,
        Self::IncorrectAgree,
        Self::CorrectDisagree,
        Self::CorrectNone,
        Self::IncorrectNone,
    ];

    /// The snake_case label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::CorrectAgree => "correct_agree",
            Self::IncorrectDisagree => "incorrect_disagree",
            Self::IncorrectAgree => "incorrect_agree",
            Self::CorrectDisagree => "correct_disagree",
            Self::CorrectNone => "correct_none",
            Self::IncorrectNone => "incorrect_none",
        }
    }

    /// Whether the final prediction for a branch of this kind is correct.
    #[must_use]
    pub fn final_correct(self) -> bool {
        match self {
            Self::CorrectAgree | Self::CorrectNone | Self::IncorrectDisagree => true,
            Self::IncorrectAgree | Self::CorrectDisagree | Self::IncorrectNone => false,
        }
    }
}

impl std::fmt::Display for CritiqueKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Counters over committed branches, aggregating critique kinds.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CritiqueStats {
    counts: [u64; 6],
}

impl CritiqueStats {
    /// An all-zero table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn slot(kind: CritiqueKind) -> usize {
        CritiqueKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL")
    }

    /// Records one committed branch.
    pub fn record(&mut self, kind: CritiqueKind) {
        self.counts[Self::slot(kind)] += 1;
    }

    /// The count for one kind.
    #[must_use]
    pub fn count(&self, kind: CritiqueKind) -> u64 {
        self.counts[Self::slot(kind)]
    }

    /// Total committed conditional branches.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Branches for which the critic engaged (tag hit / unfiltered).
    #[must_use]
    pub fn engaged(&self) -> u64 {
        self.total() - self.none_total()
    }

    /// Branches filtered out (implicit agree), Table 4's `% none` numerator.
    #[must_use]
    pub fn none_total(&self) -> u64 {
        self.count(CritiqueKind::CorrectNone) + self.count(CritiqueKind::IncorrectNone)
    }

    /// Branches whose *final* prediction was wrong.
    #[must_use]
    pub fn final_mispredicts(&self) -> u64 {
        CritiqueKind::ALL
            .iter()
            .filter(|k| !k.final_correct())
            .map(|k| self.count(*k))
            .sum()
    }

    /// Branches the *prophet* mispredicted.
    #[must_use]
    pub fn prophet_mispredicts(&self) -> u64 {
        self.count(CritiqueKind::IncorrectDisagree)
            + self.count(CritiqueKind::IncorrectAgree)
            + self.count(CritiqueKind::IncorrectNone)
    }

    /// Merges another stats table into this one.
    pub fn merge(&mut self, other: &CritiqueStats) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// The raw per-kind counters, in [`CritiqueKind::ALL`] order — for
    /// exact (lossless) serialization of results.
    #[must_use]
    pub fn counts(&self) -> [u64; 6] {
        self.counts
    }

    /// Rebuilds a table from counters previously taken via
    /// [`counts`](Self::counts).
    #[must_use]
    pub fn from_counts(counts: [u64; 6]) -> Self {
        Self { counts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_all_six_cases() {
        use CritiqueKind::*;
        let agree = |p| CriticDecision::explicit(p);
        let disagree = |p: bool| CriticDecision::explicit(!p);
        let none = CriticDecision::implicit_agree(true);

        assert_eq!(
            CritiqueKind::classify(true, agree(true), true),
            CorrectAgree
        );
        assert_eq!(
            CritiqueKind::classify(true, disagree(true), false),
            IncorrectDisagree
        );
        assert_eq!(
            CritiqueKind::classify(true, agree(true), false),
            IncorrectAgree
        );
        assert_eq!(
            CritiqueKind::classify(true, disagree(true), true),
            CorrectDisagree
        );
        assert_eq!(CritiqueKind::classify(true, none, true), CorrectNone);
        assert_eq!(CritiqueKind::classify(true, none, false), IncorrectNone);
    }

    #[test]
    fn final_correct_matches_override_semantics() {
        // The critic's direction is final: incorrect_disagree repairs,
        // correct_disagree breaks.
        assert!(CritiqueKind::IncorrectDisagree.final_correct());
        assert!(!CritiqueKind::CorrectDisagree.final_correct());
        assert!(!CritiqueKind::IncorrectAgree.final_correct());
        assert!(!CritiqueKind::IncorrectNone.final_correct());
    }

    #[test]
    fn stats_aggregate_and_derive() {
        let mut s = CritiqueStats::new();
        s.record(CritiqueKind::CorrectAgree);
        s.record(CritiqueKind::CorrectNone);
        s.record(CritiqueKind::CorrectNone);
        s.record(CritiqueKind::IncorrectDisagree);
        s.record(CritiqueKind::IncorrectAgree);
        s.record(CritiqueKind::CorrectDisagree);
        assert_eq!(s.total(), 6);
        assert_eq!(s.none_total(), 2);
        assert_eq!(s.engaged(), 4);
        assert_eq!(s.final_mispredicts(), 2); // incorrect_agree + correct_disagree
        assert_eq!(s.prophet_mispredicts(), 2); // disagree + agree on incorrect
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = CritiqueStats::new();
        a.record(CritiqueKind::CorrectAgree);
        let mut b = CritiqueStats::new();
        b.record(CritiqueKind::CorrectAgree);
        b.record(CritiqueKind::IncorrectNone);
        a.merge(&b);
        assert_eq!(a.count(CritiqueKind::CorrectAgree), 2);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn implicit_agree_matches_prophet() {
        let d = CriticDecision::implicit_agree(false);
        assert!(!d.direction);
        assert!(!d.engaged);
        assert!(d.agrees_with(false));
    }

    #[test]
    fn labels_are_paper_spelling() {
        assert_eq!(CritiqueKind::CorrectAgree.to_string(), "correct_agree");
        assert_eq!(CritiqueKind::IncorrectNone.to_string(), "incorrect_none");
    }
}
