//! The prophet/critic hybrid conditional branch predictor.
//!
//! A reproduction of **“Prophet/Critic Hybrid Branch Prediction”**
//! (Falcón, Stark, Ramirez, Lai, Valero — ISCA 2004).
//!
//! The hybrid composes two conventional predictors into new roles:
//!
//! * The **prophet** predicts each branch from history, exactly like a
//!   conventional predictor, and keeps predicting down the predicted path.
//!   Its prediction stream is the *branch future* (a prophecy).
//! * The **critic** waits until the prophet has produced a configurable
//!   number of *future bits* for a branch, then critiques the prediction
//!   using its branch outcome register (BOR) — a shift register holding
//!   both history and future. An engaged critique that disagrees overrides
//!   the prophet; the critic's prediction is always final.
//!
//! Because the critic is consulted *later* than the prophet, it can
//! correlate on the (predicted) future — something no conventional hybrid,
//! fusion, or overriding predictor can do, since those give every component
//! the same history (§2). After a prophet mispredict, the future bits in the
//! BOR come from the *wrong path*, and that wrong-path signature is exactly
//! what the critic learns to recognize (§3.3).
//!
//! # Crate layout
//!
//! * [`ProphetCritic`] — the engine: speculative BHR/BOR management,
//!   in-order critique scheduling, override/flush, checkpoint repair, and
//!   commit-time training.
//! * [`Critic`] and implementations: [`NullCritic`] (prophet-alone
//!   baseline), [`UnfilteredCritic`], [`TaggedGshareCritic`],
//!   [`FilteredPerceptronCritic`] (§4's filtering).
//! * [`CritiqueKind`]/[`CritiqueStats`] — the §7.3 taxonomy
//!   (`correct_agree`, `incorrect_disagree`, …) behind Figure 8 and Table 4.
//! * [`HybridSpec`] — named paper configurations, buildable at any Table 3
//!   budget.
//!
//! # Example: an 8 KB + 8 KB hybrid with 8 future bits
//!
//! ```
//! use predictors::Pc;
//! use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};
//!
//! let spec = HybridSpec::paired(
//!     ProphetKind::Perceptron,
//!     Budget::K8,
//!     CriticKind::TaggedGshare,
//!     Budget::K8,
//!     8,
//! );
//! let mut hybrid = spec.build();
//!
//! // Fetch-order protocol: predict, drain critiques, resolve in order.
//! let ev = hybrid.predict(Pc::new(0x400_000));
//! assert_eq!(ev.id.seq(), 0);
//! while let Some(critique) = hybrid.critique_next() {
//!     // an override would require redirecting fetch here
//!     let _ = critique;
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod combos;
mod critic;
mod critique;
mod dispatch;
mod hybrid;

pub use combos::{BoxedHybrid, CriticKind, DynHybrid, Hybrid, HybridSpec, ProphetKind};
pub use critic::{
    AllocationPolicy, Critic, CriticTrainInput, FilteredPerceptronCritic, NullCritic, TageCritic,
    TaggedGshareCritic, UnfilteredCritic,
};
pub use critique::{CriticDecision, CritiqueKind, CritiqueStats};
pub use dispatch::{AnyCritic, AnyProphet};
pub use hybrid::{BranchId, CritiqueEvent, HybridError, PredictEvent, ProphetCritic, ResolveEvent};

// Re-export the budget type: every spec in this crate is parameterized by it.
pub use predictors::configs::Budget;
