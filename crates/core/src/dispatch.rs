//! Enum-based static dispatch over the concrete prophets and critics.
//!
//! The experiment grids build thousands of hybrids and drive tens of
//! millions of `predict`/`update`/`critique` calls through them. Boxed
//! trait objects (`Box<dyn DirectionPredictor>`) put a virtual call on
//! every one of those operations and defeat inlining of the table lookups
//! behind them. [`AnyProphet`] and [`AnyCritic`] close the set of
//! component predictors instead: one match (a jump table) selects the
//! concrete implementation, which the compiler can then inline and
//! monomorphize all the way down — the hybrid engine built from them,
//! [`Hybrid`](crate::Hybrid), contains no virtual dispatch at all.
//!
//! The open, object-safe traits remain for exotic compositions; wrap a
//! predictor in a box only when it genuinely isn't one of the closed set.

use predictors::{
    BcGskew, Bimodal, DirectionPredictor, GAs, Gshare, HistoryBits, Local, Pc, Perceptron,
    PredictBlock, PredictInput, Prediction, Tage, Yags,
};

use crate::critic::{
    Critic, CriticTrainInput, FilteredPerceptronCritic, NullCritic, TageCritic, TaggedGshareCritic,
    UnfilteredCritic,
};
use crate::critique::CriticDecision;

/// Every concrete component predictor, statically dispatched.
///
/// Implements [`DirectionPredictor`] by matching once and delegating, so a
/// monomorphized engine (`ProphetCritic<AnyProphet, _>`) pays a jump table
/// instead of a vtable on the per-branch hot path.
#[derive(Clone, Debug)]
pub enum AnyProphet {
    /// Per-address two-bit counters.
    Bimodal(Bimodal),
    /// Global history XOR address.
    Gshare(Gshare),
    /// Two-level adaptive with global history concatenation.
    GAs(GAs),
    /// Per-address history, two-level.
    Local(Local),
    /// 2Bc-gskew, the de-aliased EV8-style predictor.
    BcGskew(BcGskew),
    /// The Jiménez/Lin neural predictor.
    Perceptron(Perceptron),
    /// YAGS, a tagged de-aliased scheme.
    Yags(Yags),
    /// TAGE, tagged geometric history lengths (optionally with the
    /// Bullseye-style H2P allocator attached).
    Tage(Tage),
}

/// Delegates a method call to whichever variant is live.
macro_rules! each_prophet {
    ($self:expr, $p:ident => $body:expr) => {
        match $self {
            AnyProphet::Bimodal($p) => $body,
            AnyProphet::Gshare($p) => $body,
            AnyProphet::GAs($p) => $body,
            AnyProphet::Local($p) => $body,
            AnyProphet::BcGskew($p) => $body,
            AnyProphet::Perceptron($p) => $body,
            AnyProphet::Yags($p) => $body,
            AnyProphet::Tage($p) => $body,
        }
    };
}

impl DirectionPredictor for AnyProphet {
    #[inline]
    fn predict(&self, pc: Pc, hist: HistoryBits) -> Prediction {
        each_prophet!(self, p => p.predict(pc, hist))
    }

    #[inline]
    fn update(&mut self, pc: Pc, hist: HistoryBits, taken: bool) {
        each_prophet!(self, p => p.update(pc, hist, taken))
    }

    #[inline]
    fn history_len(&self) -> usize {
        each_prophet!(self, p => p.history_len())
    }

    fn storage_bits(&self) -> usize {
        each_prophet!(self, p => p.storage_bits())
    }

    fn name(&self) -> &'static str {
        each_prophet!(self, p => p.name())
    }

    /// One variant match per *chunk* instead of per branch: the selected
    /// concrete predictor's fused kernel then runs the whole block inlined.
    #[inline]
    fn predict_block(&mut self, inputs: &[PredictInput]) -> PredictBlock {
        each_prophet!(self, p => p.predict_block(inputs))
    }

    #[inline]
    fn train_block(&mut self, inputs: &[PredictInput]) {
        each_prophet!(self, p => p.train_block(inputs))
    }

    #[inline]
    fn replay_block(&mut self, pcs: &[Pc], outcomes: u64, start: HistoryBits) -> PredictBlock {
        each_prophet!(self, p => p.replay_block(pcs, outcomes, start))
    }
}

macro_rules! prophet_from {
    ($($ty:ident),*) => {$(
        impl From<$ty> for AnyProphet {
            fn from(p: $ty) -> Self {
                AnyProphet::$ty(p)
            }
        }
    )*};
}

prophet_from!(Bimodal, Gshare, GAs, Local, BcGskew, Perceptron, Yags, Tage);

impl From<AnyProphet> for Box<dyn DirectionPredictor> {
    /// Unwraps the enum into a trait object over the same concrete
    /// predictor, so builders can construct once and box on demand.
    fn from(p: AnyProphet) -> Self {
        each_prophet!(p, inner => Box::new(inner))
    }
}

/// Every concrete critic, statically dispatched.
///
/// The unfiltered variant wraps [`AnyProphet`] so *any* component
/// predictor can serve as an always-engaged critic without a box.
#[derive(Clone, Debug)]
pub enum AnyCritic {
    /// The no-op critic (prophet-alone baseline).
    Null(NullCritic),
    /// An always-engaged critic around any component predictor.
    Unfiltered(UnfilteredCritic<AnyProphet>),
    /// The tagged gshare critic (§6).
    TaggedGshare(TaggedGshareCritic),
    /// The filtered perceptron critic (§4).
    FilteredPerceptron(FilteredPerceptronCritic),
    /// The self-filtering TAGE critic.
    Tage(TageCritic),
}

impl AnyCritic {
    /// Applies the override-confidence threshold where the critic kind
    /// supports one (the tagged gshare and TAGE critics; a no-op for the
    /// rest). See [`TaggedGshareCritic::set_confident_override`].
    pub fn set_confident_override(&mut self, on: bool) {
        match self {
            AnyCritic::TaggedGshare(c) => c.set_confident_override(on),
            AnyCritic::Tage(c) => c.set_confident_override(on),
            _ => {}
        }
    }
}

macro_rules! each_critic {
    ($self:expr, $c:ident => $body:expr) => {
        match $self {
            AnyCritic::Null($c) => $body,
            AnyCritic::Unfiltered($c) => $body,
            AnyCritic::TaggedGshare($c) => $body,
            AnyCritic::FilteredPerceptron($c) => $body,
            AnyCritic::Tage($c) => $body,
        }
    };
}

impl Critic for AnyCritic {
    #[inline]
    fn critique(&self, pc: Pc, bor: HistoryBits, prophet_pred: bool) -> CriticDecision {
        each_critic!(self, c => c.critique(pc, bor, prophet_pred))
    }

    #[inline]
    fn train(&mut self, pc: Pc, bor: HistoryBits, outcome: bool, prophet_pred: bool) {
        each_critic!(self, c => c.train(pc, bor, outcome, prophet_pred))
    }

    #[inline]
    fn bor_len(&self) -> usize {
        each_critic!(self, c => c.bor_len())
    }

    fn storage_bits(&self) -> usize {
        each_critic!(self, c => c.storage_bits())
    }

    fn name(&self) -> &'static str {
        each_critic!(self, c => c.name())
    }

    /// One variant match per chunk of deferred commit-time trainings.
    #[inline]
    fn train_block(&mut self, inputs: &[CriticTrainInput]) {
        each_critic!(self, c => c.train_block(inputs))
    }
}

impl From<NullCritic> for AnyCritic {
    fn from(c: NullCritic) -> Self {
        AnyCritic::Null(c)
    }
}

impl From<UnfilteredCritic<AnyProphet>> for AnyCritic {
    fn from(c: UnfilteredCritic<AnyProphet>) -> Self {
        AnyCritic::Unfiltered(c)
    }
}

impl From<TaggedGshareCritic> for AnyCritic {
    fn from(c: TaggedGshareCritic) -> Self {
        AnyCritic::TaggedGshare(c)
    }
}

impl From<FilteredPerceptronCritic> for AnyCritic {
    fn from(c: FilteredPerceptronCritic) -> Self {
        AnyCritic::FilteredPerceptron(c)
    }
}

impl From<TageCritic> for AnyCritic {
    fn from(c: TageCritic) -> Self {
        AnyCritic::Tage(c)
    }
}

impl From<AnyCritic> for Box<dyn Critic> {
    /// Unwraps the enum into a trait object over the same concrete
    /// critic, so builders can construct once and box on demand.
    fn from(c: AnyCritic) -> Self {
        each_critic!(c, inner => Box::new(inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_prophet_delegates_every_method() {
        let cases: Vec<AnyProphet> = vec![
            Bimodal::new(256).into(),
            Gshare::new(256, 8).into(),
            Perceptron::new(37, 12).into(),
        ];
        let hist = HistoryBits::new(12);
        for mut p in cases {
            assert!(!p.name().is_empty());
            assert!(p.storage_bits() > 0);
            let pc = Pc::new(0x400);
            let before = p.predict(pc, hist).taken();
            // Train hard toward taken; the prediction must become taken.
            for _ in 0..8 {
                p.update(pc, hist, true);
            }
            assert!(p.predict(pc, hist).taken());
            let _ = before;
        }
    }

    #[test]
    fn any_prophet_matches_inner_predictor_exactly() {
        let mut plain = Gshare::new(512, 9);
        let mut wrapped = AnyProphet::from(Gshare::new(512, 9));
        let mut hist = HistoryBits::new(9);
        for i in 0..500u64 {
            let pc = Pc::new(0x1000 + (i % 32) * 4);
            let taken = (i / 3) % 2 == 0;
            assert_eq!(
                plain.predict(pc, hist).taken(),
                wrapped.predict(pc, hist).taken(),
                "diverged at step {i}"
            );
            plain.update(pc, hist, taken);
            wrapped.update(pc, hist, taken);
            hist.push(taken);
        }
    }

    #[test]
    fn any_critic_delegates_and_converts() {
        let mut critics: Vec<AnyCritic> = vec![
            NullCritic::new().into(),
            UnfilteredCritic::new(AnyProphet::from(Gshare::new(256, 8))).into(),
            TaggedGshareCritic::new(predictors::TaggedGshare::new(64, 4, 9, 8)).into(),
        ];
        let bor = HistoryBits::from_raw(0b1010, 8);
        for c in &mut critics {
            let d = c.critique(Pc::new(0x10), bor, true);
            // A disengaged critique must echo the prophet's direction.
            assert!(d.engaged || d.direction);
            c.train(Pc::new(0x10), bor, false, true);
            assert!(!c.name().is_empty());
        }
        assert_eq!(critics[0].bor_len(), 0);
        assert_eq!(critics[1].bor_len(), 8);
    }
}
