//! Named prophet/critic combinations from the paper's evaluation, buildable
//! by specification.
//!
//! The figures pair three prophets (gshare, 2Bc-gskew, perceptron) with two
//! filtered critics (tagged gshare, filtered perceptron) and one unfiltered
//! critic (perceptron), at the Table 3 budgets. [`HybridSpec`] names such a
//! combination and [`HybridSpec::build`] constructs the monomorphized
//! engine ([`Hybrid`]); [`HybridSpec::build_boxed`] still produces the
//! old trait-object engine for open-set compositions.

use predictors::configs::{self, Budget};
use predictors::DirectionPredictor;

use crate::critic::{
    Critic, FilteredPerceptronCritic, NullCritic, TageCritic, TaggedGshareCritic, UnfilteredCritic,
};
use crate::dispatch::{AnyCritic, AnyProphet};
use crate::hybrid::ProphetCritic;

/// The prophet component of a [`HybridSpec`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ProphetKind {
    /// gshare at the Table 3 configuration.
    Gshare,
    /// 2Bc-gskew at the Table 3 configuration.
    BcGskew,
    /// Perceptron at the Table 3 configuration.
    Perceptron,
    /// TAGE at the budget-ladder configuration (post-paper entrant).
    Tage,
    /// TAGE with the Bullseye-style H2P allocator attached.
    TageH2p,
}

impl ProphetKind {
    /// All prophets in the evaluation grid: the paper's three plus the
    /// post-paper TAGE pair (with and without the H2P allocator).
    pub const ALL: [ProphetKind; 5] = [
        ProphetKind::Gshare,
        ProphetKind::BcGskew,
        ProphetKind::Perceptron,
        ProphetKind::Tage,
        ProphetKind::TageH2p,
    ];

    /// The paper's prophet trio — exactly the configurations Figures 7
    /// and 9 sweep. The figure-reproduction experiments iterate this so
    /// the post-paper TAGE entrants (which join the wider grids via
    /// [`Self::ALL`]) cannot change the reproduced tables.
    pub const PAPER: [ProphetKind; 3] = [
        ProphetKind::Gshare,
        ProphetKind::BcGskew,
        ProphetKind::Perceptron,
    ];

    /// The paper's display name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProphetKind::Gshare => "gshare",
            ProphetKind::BcGskew => "2Bc-gskew",
            ProphetKind::Perceptron => "perceptron",
            ProphetKind::Tage => "tage",
            ProphetKind::TageH2p => "tage+h2p",
        }
    }

    /// Builds the prophet at `budget` per Table 3, statically dispatched.
    #[must_use]
    pub fn build(self, budget: Budget) -> AnyProphet {
        match self {
            ProphetKind::Gshare => AnyProphet::Gshare(configs::gshare(budget)),
            ProphetKind::BcGskew => AnyProphet::BcGskew(configs::bc_gskew(budget)),
            ProphetKind::Perceptron => AnyProphet::Perceptron(configs::perceptron(budget)),
            ProphetKind::Tage => AnyProphet::Tage(configs::tage(budget)),
            ProphetKind::TageH2p => AnyProphet::Tage(configs::tage_h2p(budget)),
        }
    }

    /// Builds the prophet as a heap-allocated trait object (the pre-engine
    /// path, kept for open-set compositions and equivalence testing).
    /// Construction is shared with [`build`](Self::build) so the two
    /// paths cannot drift apart.
    #[must_use]
    pub fn build_boxed(self, budget: Budget) -> Box<dyn DirectionPredictor> {
        self.build(budget).into()
    }
}

impl std::fmt::Display for ProphetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The critic component of a [`HybridSpec`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CriticKind {
    /// No critic: the prophet-alone baseline.
    None,
    /// Unfiltered perceptron critic (Figure 6a).
    UnfilteredPerceptron,
    /// Tagged gshare critic (Figures 5, 6c, 7, 8, 9, 10; “t.gshare”).
    TaggedGshare,
    /// Filtered perceptron critic (Figures 6b, 7; “f.perceptron”).
    FilteredPerceptron,
    /// Self-filtering TAGE critic (post-paper entrant; “t.tage”).
    Tage,
}

impl CriticKind {
    /// All critic kinds in the evaluation grid: the paper's four plus the
    /// post-paper TAGE critic.
    pub const ALL: [CriticKind; 5] = [
        CriticKind::None,
        CriticKind::UnfilteredPerceptron,
        CriticKind::TaggedGshare,
        CriticKind::FilteredPerceptron,
        CriticKind::Tage,
    ];

    /// The paper's display name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CriticKind::None => "none",
            CriticKind::UnfilteredPerceptron => "perceptron",
            CriticKind::TaggedGshare => "t.gshare",
            CriticKind::FilteredPerceptron => "f.perceptron",
            CriticKind::Tage => "t.tage",
        }
    }

    /// Builds the critic at `budget` per Table 3, statically dispatched.
    #[must_use]
    pub fn build(self, budget: Budget) -> AnyCritic {
        match self {
            CriticKind::None => AnyCritic::Null(NullCritic::new()),
            CriticKind::UnfilteredPerceptron => AnyCritic::Unfiltered(UnfilteredCritic::new(
                AnyProphet::Perceptron(configs::perceptron(budget)),
            )),
            CriticKind::TaggedGshare => {
                AnyCritic::TaggedGshare(TaggedGshareCritic::new(configs::tagged_gshare(budget)))
            }
            CriticKind::FilteredPerceptron => {
                let (sets, filter_hist, _) = configs::perceptron_filter_params(budget);
                AnyCritic::FilteredPerceptron(FilteredPerceptronCritic::new(
                    configs::filtered_perceptron_core(budget),
                    sets,
                    configs::PERCEPTRON_FILTER_WAYS,
                    configs::TAG_BITS,
                    filter_hist,
                ))
            }
            CriticKind::Tage => AnyCritic::Tage(TageCritic::new(configs::tage(budget))),
        }
    }

    /// Builds the critic as a heap-allocated trait object (the pre-engine
    /// path, kept for open-set compositions and equivalence testing).
    /// Construction is shared with [`build`](Self::build) so the two
    /// paths cannot drift apart.
    #[must_use]
    pub fn build_boxed(self, budget: Budget) -> Box<dyn Critic> {
        self.build(budget).into()
    }
}

impl std::fmt::Display for CriticKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully-specified prophet/critic configuration.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct HybridSpec {
    /// Which predictor plays the prophet.
    pub prophet: ProphetKind,
    /// The prophet's hardware budget.
    pub prophet_budget: Budget,
    /// Which predictor plays the critic.
    pub critic: CriticKind,
    /// The critic's hardware budget (ignored for [`CriticKind::None`]).
    pub critic_budget: Budget,
    /// Number of future bits the critic waits for.
    pub future_bits: usize,
    /// Override-confidence threshold: when `true`, a critic kind that
    /// carries a confidence signal (the tagged gshare's two-bit counters)
    /// only overrides the prophet from a *saturated* counter; weak
    /// disagreements concur instead. `false` is the paper's behaviour.
    /// One of the `sim::tune` search dimensions.
    pub confident_override: bool,
}

/// The monomorphized hybrid engine built from a [`HybridSpec`]: enum-based
/// static dispatch end to end, no vtables on the per-branch hot path.
pub type Hybrid = ProphetCritic<AnyProphet, AnyCritic>;

/// Compatibility alias for the engine [`HybridSpec::build`] returns.
///
/// Historically this named the boxed trait-object engine; the experiment
/// engine now monomorphizes the hot path, so the alias points at
/// [`Hybrid`]. Code that needs genuine trait objects should use
/// [`BoxedHybrid`] via [`HybridSpec::build_boxed`].
pub type DynHybrid = Hybrid;

/// The heap-allocated trait-object engine, for compositions outside the
/// closed [`AnyProphet`]/[`AnyCritic`] set.
pub type BoxedHybrid = ProphetCritic<Box<dyn DirectionPredictor>, Box<dyn Critic>>;

impl HybridSpec {
    /// A prophet-alone baseline at `budget`.
    #[must_use]
    pub fn alone(prophet: ProphetKind, budget: Budget) -> Self {
        Self {
            prophet,
            prophet_budget: budget,
            critic: CriticKind::None,
            critic_budget: budget,
            future_bits: 0,
            confident_override: false,
        }
    }

    /// A full prophet/critic pairing.
    #[must_use]
    pub fn paired(
        prophet: ProphetKind,
        prophet_budget: Budget,
        critic: CriticKind,
        critic_budget: Budget,
        future_bits: usize,
    ) -> Self {
        Self {
            prophet,
            prophet_budget,
            critic,
            critic_budget,
            future_bits,
            confident_override: false,
        }
    }

    /// This spec with the override-confidence threshold switched on or
    /// off (see [`Self::confident_override`]).
    #[must_use]
    pub fn with_confident_override(mut self, on: bool) -> Self {
        self.confident_override = on;
        self
    }

    /// The tuned headline configuration: the winner of the deterministic
    /// parameter search in `sim::tune` (`experiments tune`, preset
    /// `headline`) over the pooled fast set at `SCALE=1`.
    ///
    /// A 16 KB 2Bc-gskew prophet with a small (2 KB) tagged-gshare critic
    /// at **one** future bit and the **override-confidence threshold on**
    /// (only saturated critic counters override). Total storage ≈18.5 KB —
    /// the same 16 KB class as the baseline under the workspace's ±15 %
    /// sizing convention. Compared to the untuned 8+8/8-fb default this
    /// flips the headline from *losing* to the 16 KB 2Bc-gskew baseline
    /// (~−12 % misp/Kuops) to *beating* it (~+2 % pooled, winning or
    /// tying 10 of 14 fast-set benchmarks): on the synthetic corpus the
    /// critique signal is only worth a pipeline redirect when the critic
    /// is both engaged *and* confident, and one future bit captures most
    /// of the exploitable wrong-path correlation (cf. Figure 5's
    /// premiere/flash behaviour). The `headline` experiment builds its
    /// hybrid from this preset; the tune report flags drift if a fresh
    /// search stops agreeing with it.
    #[must_use]
    pub fn tuned_headline() -> Self {
        Self::paired(
            ProphetKind::BcGskew,
            Budget::K16,
            CriticKind::TaggedGshare,
            Budget::K2,
            1,
        )
        .with_confident_override(true)
    }

    /// Builds this spec's critic with the override-confidence flag
    /// applied — shared by [`build`](Self::build) and
    /// [`build_boxed`](Self::build_boxed) so the two engines cannot
    /// drift.
    fn build_critic(&self) -> AnyCritic {
        let mut critic = self.critic.build(self.critic_budget);
        critic.set_confident_override(self.confident_override);
        critic
    }

    /// Builds the monomorphized hybrid engine.
    ///
    /// # Examples
    ///
    /// ```
    /// use predictors::Pc;
    /// use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};
    ///
    /// let spec = HybridSpec::paired(
    ///     ProphetKind::BcGskew,
    ///     Budget::K8,
    ///     CriticKind::TaggedGshare,
    ///     Budget::K8,
    ///     8,
    /// );
    /// let mut hybrid = spec.build();
    ///
    /// // The engine enforces the fetch-order protocol: predict, drain
    /// // critiques, resolve oldest-first.
    /// let ev = hybrid.predict(Pc::new(0x400_100));
    /// assert_eq!(ev.id.seq(), 0);
    /// while let Some(critique) = hybrid.critique_next() {
    ///     let _ = critique; // an override would redirect fetch here
    /// }
    /// // 8+8 KB: total storage lands near the 16 KB baseline budget.
    /// let kb = hybrid.storage_bytes() / 1024;
    /// assert!((14..=19).contains(&kb));
    /// ```
    #[must_use]
    pub fn build(&self) -> Hybrid {
        ProphetCritic::new(
            self.prophet.build(self.prophet_budget),
            self.build_critic(),
            self.future_bits,
        )
    }

    /// Builds the trait-object engine (the pre-monomorphization path; the
    /// equivalence tests pin `build` to it prediction-for-prediction).
    #[must_use]
    pub fn build_boxed(&self) -> BoxedHybrid {
        ProphetCritic::new(
            self.prophet.build_boxed(self.prophet_budget),
            self.build_critic().into(),
            self.future_bits,
        )
    }

    /// A display label like `8KB perceptron + 8KB t.gshare (8 fb)` (with
    /// a `, conf` marker when the override-confidence threshold is on).
    #[must_use]
    pub fn label(&self) -> String {
        match self.critic {
            CriticKind::None => format!("{} {} alone", self.prophet_budget, self.prophet),
            _ => format!(
                "{} {} + {} {} ({} fb{})",
                self.prophet_budget,
                self.prophet,
                self.critic_budget,
                self.critic,
                self.future_bits,
                if self.confident_override {
                    ", conf"
                } else {
                    ""
                }
            ),
        }
    }
}

impl std::fmt::Display for HybridSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictors::Pc;

    #[test]
    fn every_combination_builds_and_runs() {
        for prophet in ProphetKind::ALL {
            for critic in CriticKind::ALL {
                let fb = if critic == CriticKind::None { 0 } else { 4 };
                let spec = HybridSpec::paired(prophet, Budget::K4, critic, Budget::K2, fb);
                let mut h = spec.build();
                for i in 0..32u64 {
                    h.predict(Pc::new(0x1000 + i * 4));
                }
                while let Some(ev) = h.critique_next() {
                    let _ = ev;
                }
                while h.in_flight() > 0 {
                    if h.force_critique_next().is_none() {
                        let _ = h.resolve_oldest(true).unwrap();
                    }
                }
            }
        }
    }

    #[test]
    fn alone_spec_has_null_critic_and_zero_future_bits() {
        let spec = HybridSpec::alone(ProphetKind::BcGskew, Budget::K16);
        assert_eq!(spec.critic, CriticKind::None);
        assert_eq!(spec.future_bits, 0);
        let h = spec.build();
        // Prophet-alone storage equals the prophet's Table 3 budget.
        assert_eq!(h.storage_bytes(), Budget::K16.bytes());
    }

    #[test]
    fn paired_storage_is_sum_of_halves() {
        let spec = HybridSpec::paired(
            ProphetKind::Gshare,
            Budget::K8,
            CriticKind::TaggedGshare,
            Budget::K8,
            8,
        );
        let h = spec.build();
        // 8 KB gshare + ~8 KB tagged gshare: within 15% of 16 KB.
        let total = h.storage_bytes();
        assert!(
            (14 * 1024..=19 * 1024).contains(&total),
            "8+8 hybrid storage {total} out of range"
        );
    }

    #[test]
    fn tuned_headline_is_a_16kb_class_hybrid() {
        let spec = HybridSpec::tuned_headline();
        assert_ne!(spec.critic, CriticKind::None, "headline needs a critic");
        assert!(spec.future_bits >= 1);
        let total = spec.build().storage_bytes();
        assert!(
            (14 * 1024..=19 * 1024).contains(&total),
            "tuned preset must stay storage-comparable to the 16KB baseline, got {total}"
        );
    }

    #[test]
    fn labels_match_paper_vocabulary() {
        let spec = HybridSpec::paired(
            ProphetKind::Perceptron,
            Budget::K8,
            CriticKind::TaggedGshare,
            Budget::K8,
            8,
        );
        assert_eq!(spec.label(), "8KB perceptron + 8KB t.gshare (8 fb)");
        let alone = HybridSpec::alone(ProphetKind::Gshare, Budget::K16);
        assert_eq!(alone.label(), "16KB gshare alone");
    }
}
