//! The critic role: predictors that judge the prophet using history *and*
//! future bits from the branch outcome register.

use predictors::index::mix2;
use predictors::{
    DirectionPredictor, HistoryBits, Pc, Perceptron, TagLookup, Tage, TaggedGshare, TaggedTable,
};

use crate::critique::CriticDecision;

/// One element of a batched critic training pass: the branch, the BOR value
/// its critique consumed, its resolved outcome, and the prophet's original
/// prediction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CriticTrainInput {
    /// Branch address.
    pub pc: Pc,
    /// The BOR value used by the critique — including wrong-path future bits.
    pub bor: HistoryBits,
    /// The branch's resolved outcome.
    pub outcome: bool,
    /// The prophet's original prediction (drives filtered allocation).
    pub prophet_pred: bool,
}

/// A critic: given a branch, the BOR value (history + future bits) and the
/// prophet's prediction, it renders a [`CriticDecision`].
///
/// Training happens at commit time with the *same BOR value the critique
/// consumed* — including any wrong-path future bits (§3.3): “If the BOR
/// value did not contain the future bits for the wrong path, the critic
/// would never be trained to recognize when the prophet has mispredicted a
/// branch and gone down the wrong path.”
pub trait Critic {
    /// Critiques the prophet's prediction for the branch at `pc`.
    fn critique(&self, pc: Pc, bor: HistoryBits, prophet_pred: bool) -> CriticDecision;

    /// Commit-time training with the branch's resolved outcome.
    ///
    /// `bor` must be the value used by [`critique`](Self::critique);
    /// `prophet_pred` the prophet's original prediction (needed by filtered
    /// critics, which only allocate on prophet mispredicts).
    fn train(&mut self, pc: Pc, bor: HistoryBits, outcome: bool, prophet_pred: bool);

    /// The BOR length this critic consumes.
    fn bor_len(&self) -> usize;

    /// Storage budget in bits (prediction structures + filter tags).
    fn storage_bits(&self) -> usize;

    /// Short human-readable name.
    fn name(&self) -> &'static str;

    /// Storage budget in bytes, rounded up.
    fn storage_bytes(&self) -> usize {
        self.storage_bits().div_ceil(8)
    }

    /// Batched commit-time training: [`train`](Self::train) per element, in
    /// commit order. The hybrid engine defers trainings and flushes them in
    /// blocks; the default loop is semantically identical to eager
    /// per-branch training because training never reads state that a
    /// critique between two commits could have changed.
    fn train_block(&mut self, inputs: &[CriticTrainInput]) {
        for input in inputs {
            self.train(input.pc, input.bor, input.outcome, input.prophet_pred);
        }
    }
}

impl<C: Critic + ?Sized> Critic for Box<C> {
    fn critique(&self, pc: Pc, bor: HistoryBits, prophet_pred: bool) -> CriticDecision {
        (**self).critique(pc, bor, prophet_pred)
    }

    fn train(&mut self, pc: Pc, bor: HistoryBits, outcome: bool, prophet_pred: bool) {
        (**self).train(pc, bor, outcome, prophet_pred);
    }

    fn bor_len(&self) -> usize {
        (**self).bor_len()
    }

    fn storage_bits(&self) -> usize {
        (**self).storage_bits()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn train_block(&mut self, inputs: &[CriticTrainInput]) {
        (**self).train_block(inputs);
    }
}

/// The no-op critic: always implicitly agrees and never trains.
///
/// A hybrid with a `NullCritic` *is* the conventional “prophet alone”
/// baseline of Figures 6, 7 and 9.
#[derive(Copy, Clone, Debug, Default)]
pub struct NullCritic;

impl NullCritic {
    /// Creates the no-op critic.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Critic for NullCritic {
    fn critique(&self, _pc: Pc, _bor: HistoryBits, prophet_pred: bool) -> CriticDecision {
        CriticDecision::implicit_agree(prophet_pred)
    }

    fn train(&mut self, _pc: Pc, _bor: HistoryBits, _outcome: bool, _prophet_pred: bool) {}

    fn bor_len(&self) -> usize {
        0
    }

    fn storage_bits(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// An unfiltered critic wrapping any [`DirectionPredictor`].
///
/// It engages on *every* branch and trains on every commit — the
/// configuration of Figure 6(a), whose accuracy degrades beyond 8 future
/// bits exactly because critiques for easy branches crowd out the hard ones.
#[derive(Clone, Debug)]
pub struct UnfilteredCritic<P> {
    inner: P,
}

impl<P: DirectionPredictor> UnfilteredCritic<P> {
    /// Wraps a predictor as an always-engaged critic.
    #[must_use]
    pub fn new(inner: P) -> Self {
        Self { inner }
    }

    /// The wrapped predictor.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: DirectionPredictor> Critic for UnfilteredCritic<P> {
    fn critique(&self, pc: Pc, bor: HistoryBits, _prophet_pred: bool) -> CriticDecision {
        CriticDecision::explicit(self.inner.predict(pc, bor).taken())
    }

    fn train(&mut self, pc: Pc, bor: HistoryBits, outcome: bool, _prophet_pred: bool) {
        self.inner.update(pc, bor, outcome);
    }

    fn bor_len(&self) -> usize {
        self.inner.history_len()
    }

    fn storage_bits(&self) -> usize {
        self.inner.storage_bits()
    }

    fn name(&self) -> &'static str {
        "unfiltered"
    }
}

/// When a filtered critic allocates new entries (§4 ablation).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum AllocationPolicy {
    /// The paper's policy: allocate only when the branch missed the filter
    /// *and* the prophet mispredicted it, so the critic's capacity is spent
    /// exclusively on hard branches.
    #[default]
    OnProphetMispredict,
    /// The naive alternative: allocate on every filter miss. Used by the
    /// ablation experiment to quantify what §4's policy buys.
    OnEveryMiss,
}

/// The tagged gshare critic (§6): a set-associative tagged table of two-bit
/// counters where the tag table *is* the filter.
///
/// * Tag hit → the counter's direction is the critique (engaged).
/// * Tag miss → implicit agree.
/// * Training (§4): a hit trains the counter; a miss allocates a new entry
///   **only when the prophet mispredicted**, seeding the counter toward the
///   branch's outcome.
#[derive(Clone, Debug)]
pub struct TaggedGshareCritic {
    table: TaggedGshare,
    policy: AllocationPolicy,
    confident_only: bool,
}

impl TaggedGshareCritic {
    /// Wraps a [`TaggedGshare`] structure as a critic with the paper's
    /// allocation policy.
    #[must_use]
    pub fn new(table: TaggedGshare) -> Self {
        Self::with_policy(table, AllocationPolicy::OnProphetMispredict)
    }

    /// Wraps a [`TaggedGshare`] structure with an explicit allocation
    /// policy (for the §4 ablation).
    #[must_use]
    pub fn with_policy(table: TaggedGshare, policy: AllocationPolicy) -> Self {
        Self {
            table,
            policy,
            confident_only: false,
        }
    }

    /// Sets the override-confidence threshold: when enabled, a critique
    /// that *disagrees* with the prophet is only issued from a saturated
    /// (strong) counter; a weak disagreement is downgraded to an explicit
    /// agree. Training is unchanged, so a weak counter still strengthens
    /// toward an override on the next occurrence. This is the
    /// `sim::tune` "override threshold" search dimension.
    pub fn set_confident_override(&mut self, on: bool) {
        self.confident_only = on;
    }

    /// Fraction of table entries currently valid, for occupancy studies.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.table.occupancy() as f64 / self.table.capacity() as f64
    }
}

impl Critic for TaggedGshareCritic {
    fn critique(&self, pc: Pc, bor: HistoryBits, prophet_pred: bool) -> CriticDecision {
        match self.table.lookup(pc, bor) {
            Some(pred) => {
                let disagrees = pred.taken() != prophet_pred;
                if disagrees && self.confident_only && pred.confidence() == 0 {
                    // Weak counter: not confident enough to flush the
                    // pipeline over; concur explicitly.
                    CriticDecision::explicit(prophet_pred)
                } else {
                    CriticDecision::explicit(pred.taken())
                }
            }
            None => CriticDecision::implicit_agree(prophet_pred),
        }
    }

    fn train(&mut self, pc: Pc, bor: HistoryBits, outcome: bool, prophet_pred: bool) {
        if !self.table.train_existing(pc, bor, outcome) {
            let allocate = match self.policy {
                AllocationPolicy::OnProphetMispredict => prophet_pred != outcome,
                AllocationPolicy::OnEveryMiss => true,
            };
            if allocate {
                self.table.allocate(pc, bor, outcome);
            }
        }
    }

    fn bor_len(&self) -> usize {
        self.table.history_len()
    }

    fn storage_bits(&self) -> usize {
        self.table.storage_bits()
    }

    fn name(&self) -> &'static str {
        "tagged-gshare"
    }
}

/// A TAGE critic: the tagged banks double as the engagement filter.
///
/// TAGE is self-filtering in exactly the sense §4 builds a filter for — a
/// tagged bank only holds contexts allocated on a mispredict, so a tag hit
/// *means* “this context has been hard before”. The critique engages on a
/// tagged-bank hit and implicitly agrees when the lookup falls through to
/// the bimodal base; training is ordinary TAGE training over the BOR, whose
/// allocate-on-mispredict rule plays the role of the §4 allocation policy.
#[derive(Clone, Debug)]
pub struct TageCritic {
    inner: Tage,
    confident_only: bool,
}

impl TageCritic {
    /// Wraps a [`Tage`] predictor as a self-filtering critic.
    #[must_use]
    pub fn new(inner: Tage) -> Self {
        Self {
            inner,
            confident_only: false,
        }
    }

    /// Sets the override-confidence threshold: when enabled, a disagreeing
    /// critique from a provider counter at the flip boundary (confidence 0)
    /// is downgraded to an explicit agree, mirroring
    /// [`TaggedGshareCritic::set_confident_override`].
    pub fn set_confident_override(&mut self, on: bool) {
        self.confident_only = on;
    }

    /// The wrapped TAGE predictor.
    #[must_use]
    pub fn inner(&self) -> &Tage {
        &self.inner
    }
}

impl Critic for TageCritic {
    fn critique(&self, pc: Pc, bor: HistoryBits, prophet_pred: bool) -> CriticDecision {
        match self.inner.predict_tagged(pc, bor) {
            Some(pred) => {
                let disagrees = pred.taken() != prophet_pred;
                if disagrees && self.confident_only && pred.confidence() == 0 {
                    CriticDecision::explicit(prophet_pred)
                } else {
                    CriticDecision::explicit(pred.taken())
                }
            }
            None => CriticDecision::implicit_agree(prophet_pred),
        }
    }

    fn train(&mut self, pc: Pc, bor: HistoryBits, outcome: bool, _prophet_pred: bool) {
        self.inner.update(pc, bor, outcome);
    }

    fn bor_len(&self) -> usize {
        self.inner.history_len()
    }

    fn storage_bits(&self) -> usize {
        self.inner.storage_bits()
    }

    fn name(&self) -> &'static str {
        "tage"
    }
}

/// The filtered perceptron critic (§4, Figure 3): an ordinary perceptron
/// plus an N-way associative table of tags.
///
/// The perceptron and the tag table are accessed in parallel; the
/// perceptron's prediction is only *used* on a tag hit. The filter hashes a
/// fixed slice of the BOR (18 bits in Table 3) while the perceptron sees its
/// own, usually longer, slice.
#[derive(Clone, Debug)]
pub struct FilteredPerceptronCritic {
    perceptron: Perceptron,
    filter: TaggedTable<()>,
    filter_hist_len: usize,
}

impl FilteredPerceptronCritic {
    /// Creates a filtered perceptron critic.
    ///
    /// `filter_sets`×`filter_ways` tag-only filter entries with
    /// `tag_bits`-wide tags hashed from `filter_hist_len` BOR bits.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two `filter_sets` or out-of-range widths.
    #[must_use]
    pub fn new(
        perceptron: Perceptron,
        filter_sets: usize,
        filter_ways: usize,
        tag_bits: usize,
        filter_hist_len: usize,
    ) -> Self {
        Self {
            perceptron,
            filter: TaggedTable::new(filter_sets, filter_ways, tag_bits, ()),
            filter_hist_len,
        }
    }

    fn filter_hash(&self, pc: Pc, bor: HistoryBits) -> (u64, u64) {
        mix2(
            pc.addr(),
            bor.recent(self.filter_hist_len),
            self.filter_hist_len,
            self.filter.index_bits(),
            self.filter.tag_bits(),
        )
    }

    /// Whether the filter currently holds the context `(pc, bor)`.
    #[must_use]
    pub fn filter_hit(&self, pc: Pc, bor: HistoryBits) -> bool {
        let (idx, tag) = self.filter_hash(pc, bor);
        self.filter.peek(idx, tag).is_some()
    }
}

impl Critic for FilteredPerceptronCritic {
    fn critique(&self, pc: Pc, bor: HistoryBits, prophet_pred: bool) -> CriticDecision {
        if self.filter_hit(pc, bor) {
            CriticDecision::explicit(self.perceptron.predict(pc, bor).taken())
        } else {
            CriticDecision::implicit_agree(prophet_pred)
        }
    }

    fn train(&mut self, pc: Pc, bor: HistoryBits, outcome: bool, prophet_pred: bool) {
        let (idx, tag) = self.filter_hash(pc, bor);
        if self.filter.lookup(idx, tag).is_some() {
            // “The critic is only trained for branches that have hits” (§4).
            self.perceptron.update(pc, bor, outcome);
        } else if prophet_pred != outcome {
            // “New entries are inserted into the table when a branch has a
            // tag miss and it is mispredicted” (§4); the prediction
            // structures are initialized according to the branch's outcome.
            let existed = self.filter.insert(idx, tag, ());
            debug_assert_eq!(existed, TagLookup::Miss);
            self.perceptron.update(pc, bor, outcome);
        }
    }

    fn bor_len(&self) -> usize {
        self.perceptron.history_len().max(self.filter_hist_len)
    }

    fn storage_bits(&self) -> usize {
        self.perceptron.storage_bits() + self.filter.capacity() * self.filter.tag_bits()
    }

    fn name(&self) -> &'static str {
        "filtered-perceptron"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictors::Gshare;

    fn bor(bits: u64, len: usize) -> HistoryBits {
        HistoryBits::from_raw(bits, len)
    }

    #[test]
    fn null_critic_always_implicitly_agrees() {
        let c = NullCritic::new();
        for pred in [true, false] {
            let d = c.critique(Pc::new(0x10), bor(0b1010, 8), pred);
            assert!(!d.engaged);
            assert_eq!(d.direction, pred);
        }
        assert_eq!(c.storage_bits(), 0);
    }

    #[test]
    fn unfiltered_critic_always_engages() {
        let c = UnfilteredCritic::new(Gshare::new(256, 8));
        let d = c.critique(Pc::new(0x20), bor(0, 8), true);
        assert!(d.engaged);
    }

    #[test]
    fn unfiltered_critic_learns_to_disagree() {
        // Context 0b11 (two taken futures) means the branch was actually
        // not-taken; the critic should learn to output not-taken there.
        let mut c = UnfilteredCritic::new(Gshare::new(256, 8));
        let pc = Pc::new(0x30);
        let ctx = bor(0b11, 8);
        for _ in 0..4 {
            c.train(pc, ctx, false, true);
        }
        let d = c.critique(pc, ctx, true);
        assert!(d.engaged);
        assert!(!d.direction, "critic should disagree with taken prophecy");
        assert!(!d.agrees_with(true));
    }

    #[test]
    fn tagged_gshare_critic_misses_until_prophet_mispredicts() {
        let mut c = TaggedGshareCritic::new(TaggedGshare::new(256, 6, 9, 18));
        let pc = Pc::new(0x40);
        let ctx = bor(0x2_aaaa, 18);
        // Correctly predicted branch at a miss: no allocation.
        c.train(pc, ctx, true, true);
        assert!(!c.critique(pc, ctx, true).engaged);
        // Prophet mispredict at a miss: allocate.
        c.train(pc, ctx, false, true);
        let d = c.critique(pc, ctx, true);
        assert!(d.engaged);
        assert!(!d.direction, "seeded toward actual outcome (not-taken)");
    }

    #[test]
    fn tagged_gshare_critic_trains_existing_even_when_prophet_correct() {
        let mut c = TaggedGshareCritic::new(TaggedGshare::new(256, 6, 9, 18));
        let pc = Pc::new(0x44);
        let ctx = bor(0x1_5555, 18);
        c.train(pc, ctx, false, true); // allocate, weakly not-taken
        c.train(pc, ctx, true, true); // hit: moves toward taken
        c.train(pc, ctx, true, true); // hit: now taken
        assert!(c.critique(pc, ctx, true).direction);
    }

    #[test]
    fn tage_critic_implicitly_agrees_until_tage_allocates() {
        let mut c = TageCritic::new(Tage::new(256, 64, 4, 8, 18));
        let pc = Pc::new(0x48);
        let ctx = bor(0x2_aaaa, 18);
        // Cold: no tagged bank holds this context → implicit agree.
        assert!(!c.critique(pc, ctx, true).engaged);
        // TAGE mispredicts (base defaults weakly not-taken, outcome alternates
        // around it): training allocates a tagged entry, after which the
        // critique engages.
        for _ in 0..4 {
            c.train(pc, ctx, true, false);
            c.train(pc, ctx, false, false);
        }
        assert!(c.critique(pc, ctx, true).engaged);
    }

    #[test]
    fn tage_critic_confident_override_downgrades_weak_disagreement() {
        let mut c = TageCritic::new(Tage::new(256, 64, 4, 8, 18));
        let pc = Pc::new(0x4c);
        let ctx = bor(0x1_5555, 18);
        // Allocate a tagged entry seeded weakly not-taken.
        c.train(pc, ctx, false, true);
        let d = c.critique(pc, ctx, true);
        if d.engaged && !d.direction {
            // The disagreeing counter is freshly allocated (weak). With the
            // confidence gate on, the same critique must concur instead.
            c.set_confident_override(true);
            let gated = c.critique(pc, ctx, true);
            assert!(gated.engaged);
            assert!(gated.direction, "weak disagreement must be downgraded");
        }
    }

    #[test]
    fn filtered_perceptron_implicitly_agrees_on_filter_miss() {
        let c = FilteredPerceptronCritic::new(Perceptron::new(73, 13), 128, 3, 9, 18);
        let d = c.critique(Pc::new(0x50), bor(0x5a5a, 18), true);
        assert!(!d.engaged);
        assert!(d.direction);
    }

    #[test]
    fn filtered_perceptron_allocates_only_on_prophet_mispredict() {
        let mut c = FilteredPerceptronCritic::new(Perceptron::new(73, 13), 128, 3, 9, 18);
        let pc = Pc::new(0x60);
        let ctx = bor(0x00ff, 18);
        c.train(pc, ctx, true, true); // prophet correct: no allocation
        assert!(!c.filter_hit(pc, ctx));
        c.train(pc, ctx, false, true); // prophet wrong: allocate
        assert!(c.filter_hit(pc, ctx));
    }

    #[test]
    fn filtered_perceptron_learns_after_allocation() {
        let mut c = FilteredPerceptronCritic::new(Perceptron::new(73, 13), 128, 3, 9, 18);
        let pc = Pc::new(0x70);
        let ctx = bor(0x00ff, 18);
        for _ in 0..6 {
            c.train(pc, ctx, false, true);
        }
        let d = c.critique(pc, ctx, true);
        assert!(d.engaged);
        assert!(!d.direction);
    }

    #[test]
    fn storage_accounts_filter_tags() {
        let c = FilteredPerceptronCritic::new(Perceptron::new(73, 13), 128, 3, 9, 18);
        assert_eq!(
            c.storage_bits(),
            Perceptron::new(73, 13).storage_bits() + 128 * 3 * 9
        );
    }

    #[test]
    fn boxed_critic_is_object_safe() {
        let c: Box<dyn Critic> = Box::new(NullCritic::new());
        assert_eq!(c.name(), "none");
        let d = c.critique(Pc::new(0), bor(0, 0), false);
        assert!(!d.engaged);
    }
}
