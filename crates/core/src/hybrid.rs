//! The prophet/critic hybrid engine.
//!
//! This module implements the predictor-side machinery of §3 and §5:
//!
//! * the prophet predicts branches in fetch order, speculatively pushing its
//!   predictions into its BHR *and* into the critic's BOR as future bits;
//! * once a branch has accumulated the configured number of future bits, the
//!   critic critiques it — strictly in order, oldest first, mirroring the
//!   critic's walk of the FTQ;
//! * a disagreement overrides the prophet: the engine reports that younger,
//!   uncriticized predictions must be flushed and rewinds its BHR/BOR to the
//!   disputed branch, re-seeding them with the critic's direction;
//! * branches resolve and commit in order; commits train both components
//!   non-speculatively with the exact context each prediction consumed
//!   (including wrong-path future bits, §3.3). Trainings are queued in
//!   commit order and drained through the components' batched
//!   `train_block` kernels just before the next table read — bit-identical
//!   to eager training, because resolving touches no table state;
//! * a final mispredict repairs BHR and BOR via checkpoint restore.

use std::collections::VecDeque;

use predictors::{DirectionPredictor, HistoryBits, Pc, PredictInput};

use crate::critic::{Critic, CriticTrainInput};
use crate::critique::{CriticDecision, CritiqueKind, CritiqueStats};

/// A monotonically increasing identifier for an in-flight branch.
///
/// Identifiers are assigned in prediction (fetch) order and never reused
/// within one engine's lifetime, so they double as sequence numbers.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BranchId(u64);

impl BranchId {
    /// The raw sequence number.
    #[must_use]
    pub fn seq(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for BranchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// The outcome of asking the prophet for a new prediction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct PredictEvent {
    /// The new branch's identifier.
    pub id: BranchId,
    /// The prophet's predicted direction — the direction fetch should follow
    /// until (and unless) the critic overrides it.
    pub taken: bool,
}

/// The outcome of a critique.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CritiqueEvent {
    /// The critiqued branch.
    pub id: BranchId,
    /// The critic's decision (direction + engaged).
    pub decision: CriticDecision,
    /// The final direction for the branch (the critic's direction).
    pub final_taken: bool,
    /// Whether the critique disagreed with the prophet. When `true`, the
    /// engine has already discarded all younger in-flight branches and
    /// redirected its BHR/BOR; the caller must flush its uncriticized FTQ
    /// tail and redirect fetch down `final_taken` at this branch.
    pub overridden: bool,
    /// Number of younger in-flight branches discarded by an override.
    pub flushed: usize,
    /// How many future bits the critique consumed (can be fewer than
    /// configured for a forced critique).
    pub future_bits_used: usize,
}

/// The outcome of resolving and committing the oldest in-flight branch.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ResolveEvent {
    /// The committed branch.
    pub id: BranchId,
    /// The branch's program counter.
    pub pc: Pc,
    /// The architectural outcome.
    pub outcome: bool,
    /// The final (critic) prediction.
    pub final_taken: bool,
    /// Whether the final prediction was wrong. When `true`, the engine has
    /// discarded all younger in-flight branches and repaired its BHR/BOR;
    /// the caller must flush its pipeline and restart fetch down `outcome`
    /// at this branch.
    pub mispredict: bool,
    /// Whether the *prophet's* prediction was wrong (the critic may have
    /// repaired it).
    pub prophet_mispredict: bool,
    /// The critique classification for this branch.
    pub kind: CritiqueKind,
    /// Number of younger in-flight branches discarded by a mispredict.
    pub flushed: usize,
}

/// Errors from driving the engine out of protocol.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum HybridError {
    /// `resolve_oldest` was called with no in-flight branches.
    NothingInFlight,
    /// `resolve_oldest` was called while the oldest branch is still
    /// uncritiqued; critique it (or force-critique it) first.
    HeadNotCritiqued,
}

impl std::fmt::Display for HybridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NothingInFlight => f.write_str("no branch is in flight"),
            Self::HeadNotCritiqued => {
                f.write_str("oldest in-flight branch has not been critiqued yet")
            }
        }
    }
}

impl std::error::Error for HybridError {}

/// Initial capacity of the in-flight ring buffer: one more than the
/// deepest speculation window the simulators drive (their cap is 48), so
/// steady-state prediction never grows the allocation.
const INFLIGHT_CAPACITY: usize = 64;

/// Deferred commit-time trainings are handed to the components' batched
/// kernels in chunks of at most this many branches — the same chunk size
/// the replay engine feeds `predict_block`.
const TRAIN_CHUNK: usize = 64;

/// One in-flight (predicted, not yet committed) branch.
#[derive(Copy, Clone, Debug)]
struct InFlight {
    id: BranchId,
    pc: Pc,
    prophet_pred: bool,
    /// BHR value the prophet predicted with (checkpoint, pre-push).
    bhr_at_predict: HistoryBits,
    /// BOR value before this branch's own future bit was pushed
    /// (checkpoint for repair; also the critique input when `f == 0`).
    bor_before: HistoryBits,
    /// BOR value captured once the configured number of future bits had
    /// been gathered — the critique's input and the commit-time training
    /// context (§3.3).
    bor_stamped: Option<HistoryBits>,
    /// The critique, once rendered.
    critique: Option<CritiqueRecord>,
}

#[derive(Copy, Clone, Debug)]
struct CritiqueRecord {
    decision: CriticDecision,
    bor_used: HistoryBits,
}

/// The prophet/critic hybrid branch predictor engine.
///
/// Generic over the prophet (any [`DirectionPredictor`]) and the critic
/// (any [`Critic`]); “the components of the prophet/critic hybrid can be any
/// existing predictors” (§3.1). Composing a prophet with
/// [`NullCritic`](crate::NullCritic) yields the conventional
/// “prophet alone” baseline.
///
/// # Protocol
///
/// The caller (a fetch engine or simulator) drives the engine through three
/// operations, all in program/fetch order:
///
/// 1. [`predict`](Self::predict) — one call per conditional branch fetched.
/// 2. [`critique_next`](Self::critique_next) — after each prediction, drain
///    ready critiques. On `overridden`, redirect fetch.
/// 3. [`resolve_oldest`](Self::resolve_oldest) — when the oldest branch
///    resolves, commit it. On `mispredict`, flush and restart fetch.
///
/// # Examples
///
/// ```
/// use predictors::{configs, Pc};
/// use prophet_critic::{ProphetCritic, TaggedGshareCritic};
///
/// let prophet = configs::perceptron(configs::Budget::K8);
/// let critic = TaggedGshareCritic::new(configs::tagged_gshare(configs::Budget::K8));
/// let mut hybrid = ProphetCritic::new(prophet, critic, 8);
///
/// let ev = hybrid.predict(Pc::new(0x400_000));
/// // ... after 7 more predictions the critique for `ev.id` becomes ready.
/// # let _ = ev;
/// ```
#[derive(Clone, Debug)]
pub struct ProphetCritic<P, C> {
    prophet: P,
    critic: C,
    future_bits: usize,
    bhr: HistoryBits,
    bor: HistoryBits,
    inflight: VecDeque<InFlight>,
    next_seq: u64,
    stats: CritiqueStats,
    /// Commit-time prophet trainings queued since the last prophet read,
    /// in commit order (drained via `DirectionPredictor::train_block`).
    pending_prophet: Vec<PredictInput>,
    /// Commit-time critic trainings queued since the last critic read, in
    /// commit order (drained via `Critic::train_block`).
    pending_critic: Vec<CriticTrainInput>,
}

impl<P: DirectionPredictor, C: Critic> ProphetCritic<P, C> {
    /// Creates a hybrid from a prophet, a critic and the number of future
    /// bits the critic waits for.
    ///
    /// `future_bits == 0` reproduces a conventional hybrid/overriding
    /// predictor (both components see only history); `future_bits >= 1`
    /// includes the branch's own prophecy as the first future bit (§7.1).
    ///
    /// # Panics
    ///
    /// Panics if `future_bits` exceeds the critic's BOR length (the future
    /// would displace *all* history) unless the critic consumes no history
    /// at all.
    #[must_use]
    pub fn new(prophet: P, critic: C, future_bits: usize) -> Self {
        let bor_len = critic.bor_len();
        assert!(
            bor_len == 0 || future_bits <= bor_len,
            "future bits {future_bits} exceed the critic's BOR length {bor_len}"
        );
        let bhr = HistoryBits::new(prophet.history_len());
        let bor = HistoryBits::new(bor_len);
        Self {
            prophet,
            critic,
            future_bits,
            bhr,
            bor,
            // Pre-size for the deepest speculation any driver sustains
            // (the simulators cap in-flight branches at 48): the hot loop
            // then never reallocates the ring buffer.
            inflight: VecDeque::with_capacity(INFLIGHT_CAPACITY),
            next_seq: 0,
            stats: CritiqueStats::new(),
            pending_prophet: Vec::with_capacity(TRAIN_CHUNK),
            pending_critic: Vec::with_capacity(TRAIN_CHUNK),
        }
    }

    /// Drains queued commit-time prophet trainings through the batched
    /// kernel, in commit order.
    fn flush_prophet_training(&mut self) {
        if !self.pending_prophet.is_empty() {
            self.prophet.train_block(&self.pending_prophet);
            self.pending_prophet.clear();
        }
    }

    /// Drains queued commit-time critic trainings through the batched
    /// kernel, in commit order.
    fn flush_critic_training(&mut self) {
        if !self.pending_critic.is_empty() {
            self.critic.train_block(&self.pending_critic);
            self.pending_critic.clear();
        }
    }

    /// Applies all queued commit-time trainings immediately.
    ///
    /// The engine defers commit-time training and drains it in chunks
    /// through the components' batched `train_block` kernels, always before
    /// the next prediction or critique reads table state — so driving the
    /// normal protocol never observes a difference. Call this only when
    /// inspecting a component through [`prophet`](Self::prophet) or
    /// [`critic`](Self::critic) and the latest resolutions must be visible.
    pub fn flush_training(&mut self) {
        self.flush_prophet_training();
        self.flush_critic_training();
    }

    /// The configured number of future bits.
    #[must_use]
    pub fn future_bits(&self) -> usize {
        self.future_bits
    }

    /// The prophet component.
    ///
    /// Commit-time trainings are deferred; call
    /// [`flush_training`](Self::flush_training) first to observe the very
    /// latest resolutions in the tables.
    #[must_use]
    pub fn prophet(&self) -> &P {
        &self.prophet
    }

    /// The critic component.
    ///
    /// Commit-time trainings are deferred; call
    /// [`flush_training`](Self::flush_training) first to observe the very
    /// latest resolutions in the tables.
    #[must_use]
    pub fn critic(&self) -> &C {
        &self.critic
    }

    /// Number of predicted-but-uncommitted branches.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Aggregate critique statistics over committed branches.
    #[must_use]
    pub fn stats(&self) -> &CritiqueStats {
        &self.stats
    }

    /// Combined storage budget of prophet and critic, in bits.
    #[must_use]
    pub fn storage_bits(&self) -> usize {
        self.prophet.storage_bits() + self.critic.storage_bits()
    }

    /// Combined storage budget in bytes, rounded up.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.storage_bits().div_ceil(8)
    }

    /// A short `prophet+critic` label.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{}+{}", self.prophet.name(), self.critic.name())
    }

    /// Records the outcome of a conditional branch the engine never
    /// predicted (a BTB miss: the front end discovers the branch at decode
    /// and repairs its history with the resolved direction).
    ///
    /// The outcome is pushed into both the BHR and the BOR so that the
    /// history windows the predictors see stay aligned with the program's
    /// real outcome stream; without this, every BTB miss would silently
    /// shift every learned correlation offset.
    pub fn note_external_outcome(&mut self, taken: bool) {
        self.bhr.push(taken);
        self.bor.push(taken);
    }

    /// Predicts the conditional branch at `pc` and advances the speculative
    /// BHR/BOR state.
    ///
    /// The returned direction is the prophet's; fetch should follow it until
    /// a critique possibly overrides it.
    pub fn predict(&mut self, pc: Pc) -> PredictEvent {
        // Commits queued since the last prediction must be visible to this
        // table read — identical timing to eager training, since resolving
        // itself never reads the tables.
        self.flush_prophet_training();

        let id = BranchId(self.next_seq);
        self.next_seq += 1;

        let pred = self.prophet.predict(pc, self.bhr).taken();
        let rec = InFlight {
            id,
            pc,
            prophet_pred: pred,
            bhr_at_predict: self.bhr,
            bor_before: self.bor,
            bor_stamped: if self.future_bits == 0 {
                Some(self.bor)
            } else {
                None
            },
            critique: None,
        };

        // Speculative update of both registers with the *predicted* outcome
        // (§3.2): the BHR feeds the prophet's next prediction, the BOR gains
        // this prophecy as a future bit for every older in-flight branch.
        self.bhr.push(pred);
        self.bor.push(pred);
        self.inflight.push_back(rec);

        // Exactly one branch can have just gathered its f-th future bit: the
        // one f positions from the tail.
        if self.future_bits >= 1 && self.inflight.len() >= self.future_bits {
            let idx = self.inflight.len() - self.future_bits;
            let bor_now = self.bor;
            let slot = &mut self.inflight[idx];
            if slot.bor_stamped.is_none() {
                slot.bor_stamped = Some(bor_now);
            }
        }

        PredictEvent { id, taken: pred }
    }

    fn oldest_uncritiqued(&self) -> Option<usize> {
        self.inflight.iter().position(|b| b.critique.is_none())
    }

    /// Whether the oldest uncritiqued branch has gathered enough future bits
    /// for a full critique.
    #[must_use]
    pub fn critique_ready(&self) -> bool {
        self.oldest_uncritiqued()
            .is_some_and(|i| self.inflight[i].bor_stamped.is_some())
    }

    /// Critiques the oldest uncritiqued branch if it has gathered its future
    /// bits; returns `None` otherwise.
    ///
    /// On a disagreement the engine rewinds its own speculative state; see
    /// [`CritiqueEvent::overridden`] for the caller's obligations.
    pub fn critique_next(&mut self) -> Option<CritiqueEvent> {
        let idx = self.oldest_uncritiqued()?;
        self.inflight[idx].bor_stamped?;
        Some(self.do_critique(idx))
    }

    /// Critiques the oldest uncritiqued branch with however many future bits
    /// are currently available (§5: when the consumer needs a prediction
    /// before the critic is ready, “we obtained the best results by
    /// generating a critique using the future bits that were available”).
    pub fn force_critique_next(&mut self) -> Option<CritiqueEvent> {
        let idx = self.oldest_uncritiqued()?;
        if self.inflight[idx].bor_stamped.is_none() {
            let bor_now = self.bor;
            self.inflight[idx].bor_stamped = Some(bor_now);
        }
        Some(self.do_critique(idx))
    }

    fn do_critique(&mut self, idx: usize) -> CritiqueEvent {
        // The critic's tables are about to be read: apply queued commits.
        self.flush_critic_training();

        let (id, pc, prophet_pred, bor_used, bor_before, bhr_at_predict) = {
            let b = &self.inflight[idx];
            (
                b.id,
                b.pc,
                b.prophet_pred,
                b.bor_stamped.expect("critique requires a stamped BOR"),
                b.bor_before,
                b.bhr_at_predict,
            )
        };
        // Future bits actually present: predictions issued after (and
        // including) this branch, bounded by the configured count.
        let issued = (self.next_seq - id.seq()) as usize;
        let future_bits_used = self.future_bits.min(issued);

        let decision = self.critic.critique(pc, bor_used, prophet_pred);
        let overridden = !decision.agrees_with(prophet_pred);
        let mut flushed = 0;

        if overridden {
            // Discard younger in-flight branches (the uncriticized FTQ tail)
            // and redirect the prophet down the critic's path: BHR and BOR
            // rewind to this branch and take the final direction.
            flushed = self.inflight.len() - idx - 1;
            self.inflight.truncate(idx + 1);
            self.bhr = bhr_at_predict;
            self.bhr.push(decision.direction);
            self.bor = bor_before;
            self.bor.push(decision.direction);
        }

        self.inflight[idx].critique = Some(CritiqueRecord { decision, bor_used });

        CritiqueEvent {
            id,
            decision,
            final_taken: decision.direction,
            overridden,
            flushed,
            future_bits_used,
        }
    }

    /// Resolves and commits the oldest in-flight branch with its
    /// architectural `outcome`.
    ///
    /// Commit trains the prophet with the BHR the prediction consumed and
    /// the critic with the BOR the critique consumed (§3.2–3.3). On a final
    /// mispredict the engine repairs its speculative state; see
    /// [`ResolveEvent::mispredict`] for the caller's obligations.
    ///
    /// # Errors
    ///
    /// [`HybridError::NothingInFlight`] if no branch is in flight;
    /// [`HybridError::HeadNotCritiqued`] if the oldest branch has no
    /// critique yet (drive [`critique_next`](Self::critique_next) or
    /// [`force_critique_next`](Self::force_critique_next) first).
    pub fn resolve_oldest(&mut self, outcome: bool) -> Result<ResolveEvent, HybridError> {
        let head = self.inflight.front().ok_or(HybridError::NothingInFlight)?;
        let critique = head.critique.ok_or(HybridError::HeadNotCritiqued)?;
        let head = *head;

        let final_taken = critique.decision.direction;
        let mispredict = final_taken != outcome;
        let prophet_mispredict = head.prophet_pred != outcome;
        let kind = CritiqueKind::classify(head.prophet_pred, critique.decision, outcome);

        let mut flushed = 0;
        if mispredict {
            // Squash everything younger and repair BHR/BOR from this
            // branch's checkpoints, inserting the now-known outcome (§3.3).
            flushed = self.inflight.len() - 1;
            self.inflight.clear();
            self.bhr = head.bhr_at_predict;
            self.bhr.push(outcome);
            self.bor = head.bor_before;
            self.bor.push(outcome);
        } else {
            self.inflight.pop_front();
        }

        // Non-speculative, commit-time training (§3.2). The critic sees the
        // same BOR value that generated its critique — on a prophet
        // mispredict that value contains the wrong-path future bits, which
        // is precisely what lets it recognize the situation next time.
        // Trainings queue here and drain through the batched kernels right
        // before the next table read, so commit bursts (several critiqued
        // branches resolving back-to-back) amortize the dispatch.
        self.pending_prophet.push(PredictInput {
            pc: head.pc,
            hist: head.bhr_at_predict,
            taken: outcome,
        });
        if self.pending_prophet.len() >= TRAIN_CHUNK {
            self.flush_prophet_training();
        }
        self.pending_critic.push(CriticTrainInput {
            pc: head.pc,
            bor: critique.bor_used,
            outcome,
            prophet_pred: head.prophet_pred,
        });
        if self.pending_critic.len() >= TRAIN_CHUNK {
            self.flush_critic_training();
        }
        self.stats.record(kind);

        Ok(ResolveEvent {
            id: head.id,
            pc: head.pc,
            outcome,
            final_taken,
            mispredict,
            prophet_mispredict,
            kind,
            flushed,
        })
    }

    /// The current speculative BHR value (for inspection/tests).
    #[must_use]
    pub fn bhr(&self) -> HistoryBits {
        self.bhr
    }

    /// The current speculative BOR value (for inspection/tests).
    #[must_use]
    pub fn bor(&self) -> HistoryBits {
        self.bor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critic::{NullCritic, TaggedGshareCritic, UnfilteredCritic};
    use predictors::{Bimodal, Gshare, TaggedGshare};

    fn null_hybrid() -> ProphetCritic<Bimodal, NullCritic> {
        ProphetCritic::new(Bimodal::new(256), NullCritic::new(), 0)
    }

    #[test]
    fn predict_assigns_monotonic_ids() {
        let mut h = null_hybrid();
        let a = h.predict(Pc::new(0x10));
        let b = h.predict(Pc::new(0x20));
        assert!(a.id < b.id);
        assert_eq!(h.in_flight(), 2);
    }

    #[test]
    fn null_critic_critiques_immediately_and_agrees() {
        let mut h = null_hybrid();
        let p = h.predict(Pc::new(0x10));
        let c = h.critique_next().expect("f=0 critique is immediate");
        assert_eq!(c.id, p.id);
        assert!(!c.overridden);
        assert_eq!(c.final_taken, p.taken);
        assert_eq!(c.future_bits_used, 0);
    }

    #[test]
    fn resolve_requires_critique_first() {
        let mut h = ProphetCritic::new(
            Bimodal::new(256),
            UnfilteredCritic::new(Gshare::new(256, 8)),
            4,
        );
        h.predict(Pc::new(0x10));
        assert_eq!(h.resolve_oldest(true), Err(HybridError::HeadNotCritiqued));
        assert_eq!(
            null_hybrid().resolve_oldest(true),
            Err(HybridError::NothingInFlight)
        );
    }

    #[test]
    fn critique_waits_for_future_bits() {
        let mut h = ProphetCritic::new(
            Bimodal::new(256),
            UnfilteredCritic::new(Gshare::new(256, 8)),
            3,
        );
        h.predict(Pc::new(0x10));
        assert!(!h.critique_ready());
        assert!(h.critique_next().is_none());
        h.predict(Pc::new(0x20));
        assert!(h.critique_next().is_none());
        h.predict(Pc::new(0x30));
        // Three predictions issued: the first branch now has 3 future bits
        // (its own + two successors).
        let c = h.critique_next().expect("3 future bits gathered");
        assert_eq!(c.id.seq(), 0);
        assert_eq!(c.future_bits_used, 3);
        // The next one still waits.
        assert!(h.critique_next().is_none());
    }

    #[test]
    fn forced_critique_uses_available_bits() {
        let mut h = ProphetCritic::new(
            Bimodal::new(256),
            UnfilteredCritic::new(Gshare::new(256, 8)),
            8,
        );
        h.predict(Pc::new(0x10));
        h.predict(Pc::new(0x20));
        let c = h.force_critique_next().expect("forced critique");
        assert_eq!(c.id.seq(), 0);
        assert_eq!(c.future_bits_used, 2);
    }

    #[test]
    fn mispredict_repairs_bhr_with_outcome() {
        let mut h = null_hybrid();
        // Bimodal cold state predicts not-taken; feed an actually-taken
        // branch.
        let p = h.predict(Pc::new(0x10));
        assert!(!p.taken);
        let bhr_before = HistoryBits::new(0); // bimodal keeps no history
        let _ = bhr_before;
        h.critique_next().unwrap();
        let r = h.resolve_oldest(true).unwrap();
        assert!(r.mispredict);
        assert!(r.prophet_mispredict);
        assert_eq!(r.kind, CritiqueKind::IncorrectNone);
        assert_eq!(h.in_flight(), 0);
    }

    #[test]
    fn mispredict_flushes_younger_branches() {
        let mut h = null_hybrid();
        h.predict(Pc::new(0x10));
        h.predict(Pc::new(0x20));
        h.predict(Pc::new(0x30));
        h.critique_next().unwrap();
        let r = h.resolve_oldest(true).unwrap(); // cold bimodal says NT
        assert!(r.mispredict);
        assert_eq!(r.flushed, 2);
        assert_eq!(h.in_flight(), 0);
    }

    #[test]
    fn bhr_tracks_speculative_path_and_repairs() {
        let mut h = ProphetCritic::new(Gshare::new(256, 8), NullCritic::new(), 0);
        let p1 = h.predict(Pc::new(0x10));
        assert_eq!(h.bhr().recent(1), u64::from(p1.taken));
        h.critique_next().unwrap();
        // Resolve with the opposite outcome: BHR must now hold the outcome.
        let r = h.resolve_oldest(!p1.taken).unwrap();
        assert!(r.mispredict);
        assert_eq!(h.bhr().recent(1), u64::from(!p1.taken));
    }

    #[test]
    fn commit_trains_prophet() {
        let mut h = null_hybrid();
        let pc = Pc::new(0x40);
        for _ in 0..3 {
            h.predict(pc);
            h.critique_next().unwrap();
            let _ = h.resolve_oldest(true).unwrap();
        }
        let p = h.predict(pc);
        assert!(p.taken, "bimodal prophet learned the taken bias at commit");
    }

    #[test]
    fn critic_override_flushes_tail_and_redirects() {
        // Train a tagged-gshare critic to disagree, then observe override.
        let prophet = Bimodal::new(4); // tiny: stays wrong under hysteresis
        let critic = TaggedGshareCritic::new(TaggedGshare::new(64, 4, 9, 8));
        let mut h = ProphetCritic::new(prophet, critic, 1);
        let pc = Pc::new(0x50);

        // Phase 1: let the prophet mispredict the always-taken branch twice;
        // commit trains the critic (allocation on prophet mispredict).
        for _ in 0..2 {
            let p = h.predict(pc);
            h.critique_next().unwrap();
            let r = h.resolve_oldest(true).unwrap();
            let _ = (p, r);
            // Keep the prophet wrong: retrain its counter toward not-taken
            // is impossible here (commit trains toward taken); instead use a
            // fresh hybrid state check below.
        }
        // After two taken commits the bimodal now predicts taken; force it
        // wrong again by resolving not-taken branches at a *different*
        // context is overkill for this unit test — instead verify the
        // critic now holds an entry and that a disagreeing critique
        // overrides: craft the situation directly.
        let p = h.predict(pc);
        h.predict(Pc::new(0x60));
        h.predict(Pc::new(0x70));
        let c = h.critique_next().unwrap();
        assert_eq!(c.id, p.id);
        if c.overridden {
            // Tail (two younger predictions) must be flushed.
            assert_eq!(c.flushed, 2);
            assert_eq!(h.in_flight(), 1);
            assert_eq!(h.bhr().recent(1), u64::from(c.final_taken));
        }
    }

    #[test]
    fn critic_fixes_prophet_mispredict_end_to_end() {
        // A branch whose outcome alternates T,N,T,N...: a bimodal prophet
        // with hysteresis settles into predicting one direction and
        // mispredicts half the time. A critic keyed by the branch's own
        // future bit (the prophet's prediction) plus history learns the
        // mapping exactly.
        let prophet = Bimodal::new(64);
        let critic = UnfilteredCritic::new(Gshare::new(1024, 10));
        let mut h = ProphetCritic::new(prophet, critic, 1);
        let pc = Pc::new(0x80);

        let mut outcome = true;
        let mut last_100_misp = 0;
        for i in 0..400 {
            h.predict(pc);
            let c = h.critique_next().unwrap();
            let _ = c;
            let r = h.resolve_oldest(outcome).unwrap();
            if i >= 300 && r.mispredict {
                last_100_misp += 1;
            }
            outcome = !outcome;
        }
        assert!(
            last_100_misp <= 2,
            "critic should repair the alternating branch, got {last_100_misp} mispredicts"
        );
        // And the repairs show up as incorrect_disagree in the stats.
        assert!(h.stats().count(CritiqueKind::IncorrectDisagree) > 0);
    }

    #[test]
    fn stats_track_final_and_prophet_mispredicts() {
        let mut h = null_hybrid();
        let pc = Pc::new(0x90);
        for i in 0..10 {
            h.predict(pc);
            h.critique_next().unwrap();
            let _ = h.resolve_oldest(i % 2 == 0).unwrap();
        }
        assert_eq!(h.stats().total(), 10);
        assert_eq!(
            h.stats().final_mispredicts(),
            h.stats().prophet_mispredicts()
        );
    }

    #[test]
    fn storage_combines_components() {
        let h = ProphetCritic::new(
            Gshare::new(8192, 13),
            UnfilteredCritic::new(Gshare::new(8192, 13)),
            4,
        );
        assert_eq!(h.storage_bytes(), 4096);
        assert_eq!(h.name(), "gshare+unfiltered");
    }

    #[test]
    #[should_panic(expected = "future bits")]
    fn rejects_future_bits_beyond_bor() {
        let _ = ProphetCritic::new(
            Bimodal::new(64),
            UnfilteredCritic::new(Gshare::new(256, 8)),
            9,
        );
    }

    #[test]
    fn bor_receives_prophecy_bits_in_order() {
        let mut h = ProphetCritic::new(
            Bimodal::new(64),
            UnfilteredCritic::new(Gshare::new(256, 8)),
            2,
        );
        let p1 = h.predict(Pc::new(0x10));
        let p2 = h.predict(Pc::new(0x20));
        let expect = (u64::from(p1.taken) << 1) | u64::from(p2.taken);
        assert_eq!(h.bor().recent(2), expect);
    }
}
