//! Equivalence tests: the enum-dispatch engine ([`HybridSpec::build`])
//! must match the boxed trait-object engine ([`HybridSpec::build_boxed`])
//! prediction-for-prediction on a shared branch trace.

use predictors::Pc;
use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};
use workloads::rng::SmallRng;

/// Every prophet × critic pairing the experiments build.
fn all_specs() -> Vec<HybridSpec> {
    let mut out = Vec::new();
    for prophet in ProphetKind::ALL {
        out.push(HybridSpec::alone(prophet, Budget::K4));
        for critic in [
            CriticKind::UnfilteredPerceptron,
            CriticKind::TaggedGshare,
            CriticKind::FilteredPerceptron,
        ] {
            out.push(HybridSpec::paired(
                prophet,
                Budget::K4,
                critic,
                Budget::K2,
                4,
            ));
        }
    }
    out
}

/// A shared pseudo-random branch trace: (pc, outcome) pairs.
fn trace(seed: u64, len: usize) -> Vec<(Pc, bool)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let pc = Pc::new(0x40_0000 + rng.gen_range(0u64..96) * 4);
            (pc, rng.gen::<bool>())
        })
        .collect()
}

#[test]
fn enum_and_boxed_engines_agree_prediction_for_prediction() {
    for spec in all_specs() {
        let mut fast = spec.build();
        let mut boxed = spec.build_boxed();
        assert_eq!(
            fast.storage_bits(),
            boxed.storage_bits(),
            "{}",
            spec.label()
        );

        let mut outcomes: std::collections::VecDeque<bool> = Default::default();
        for (step, (pc, outcome)) in trace(0xD15C_0000 + spec.future_bits as u64, 600)
            .into_iter()
            .enumerate()
        {
            let pf = fast.predict(pc);
            let pb = boxed.predict(pc);
            assert_eq!(
                pf.taken,
                pb.taken,
                "{}: prophecy diverged at {step}",
                spec.label()
            );
            assert_eq!(pf.id, pb.id);
            outcomes.push_back(outcome);

            loop {
                let cf = fast.critique_next();
                let cb = boxed.critique_next();
                match (cf, cb) {
                    (None, None) => break,
                    (Some(a), Some(b)) => {
                        assert_eq!(a, b, "{}: critique diverged at {step}", spec.label());
                        if a.overridden {
                            outcomes.truncate(outcomes.len() - a.flushed.min(outcomes.len()));
                        }
                    }
                    (a, b) => panic!(
                        "{}: critique readiness diverged at {step}: {a:?} vs {b:?}",
                        spec.label()
                    ),
                }
            }

            while fast.in_flight() > 12 {
                if !fast.critique_ready() {
                    let a = fast.force_critique_next();
                    let b = boxed.force_critique_next();
                    assert_eq!(a, b, "{}: forced critique diverged", spec.label());
                    if let Some(cr) = a {
                        if cr.overridden {
                            outcomes.truncate(outcomes.len() - cr.flushed.min(outcomes.len()));
                        }
                    }
                }
                let o = outcomes.pop_front().expect("outcome per in-flight branch");
                let ra = fast.resolve_oldest(o).expect("head critiqued");
                let rb = boxed.resolve_oldest(o).expect("head critiqued");
                assert_eq!(ra, rb, "{}: resolve diverged at {step}", spec.label());
                if ra.mispredict {
                    outcomes.clear();
                }
            }
        }

        assert_eq!(
            fast.stats(),
            boxed.stats(),
            "{}: final stats diverged",
            spec.label()
        );
        assert_eq!(fast.bhr(), boxed.bhr(), "{}", spec.label());
        assert_eq!(fast.bor(), boxed.bor(), "{}", spec.label());
    }
}

#[test]
fn component_names_and_budgets_survive_the_enum_wrapping() {
    for spec in all_specs() {
        let fast = spec.build();
        let boxed = spec.build_boxed();
        assert_eq!(fast.name(), boxed.name(), "{}", spec.label());
        assert_eq!(fast.future_bits(), boxed.future_bits());
        assert_eq!(fast.storage_bytes(), boxed.storage_bytes());
    }
}
