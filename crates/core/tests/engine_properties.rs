//! Randomized tests of the hybrid engine's protocol invariants under
//! seeded drive sequences (offline stand-in for proptest).

use workloads::rng::SmallRng;

use predictors::{Bimodal, Gshare, Pc};
use prophet_critic::{
    Critic, CritiqueKind, NullCritic, ProphetCritic, TaggedGshareCritic, UnfilteredCritic,
};

/// A seeded random branch stream of `(pc index, outcome)` pairs.
fn stream(rng: &mut SmallRng) -> Vec<(u16, bool)> {
    let len = rng.gen_range(1usize..300);
    (0..len)
        .map(|_| (rng.gen_range(0u16..64), rng.gen::<bool>()))
        .collect()
}

/// Drives a hybrid through a branch stream with the proper fetch-order
/// protocol and returns its final stats.
fn drive<C: Critic>(
    mut hybrid: ProphetCritic<Bimodal, C>,
    stream: &[(u16, bool)],
    depth: usize,
) -> (u64, u64) {
    let mut outcomes: std::collections::VecDeque<bool> = std::collections::VecDeque::new();
    for (pc_raw, outcome) in stream {
        let pc = Pc::new(0x1000 + u64::from(*pc_raw) * 4);
        hybrid.predict(pc);
        outcomes.push_back(*outcome);
        while hybrid.critique_next().is_some() {}
        // Keep the in-flight window bounded like the simulator does.
        while hybrid.in_flight() > depth {
            if !hybrid.critique_ready() {
                let _ = hybrid.force_critique_next();
            }
            let outcome = outcomes.pop_front().expect("outcome per in-flight branch");
            let ev = hybrid.resolve_oldest(outcome).expect("head critiqued");
            if ev.mispredict {
                // Flushed branches' outcomes are discarded with them.
                outcomes.drain(..ev.flushed.min(outcomes.len()));
            }
        }
    }
    // Drain.
    while hybrid.in_flight() > 0 {
        if !hybrid.critique_ready() {
            let _ = hybrid.force_critique_next();
        }
        let outcome = outcomes.pop_front().unwrap_or(false);
        let ev = hybrid.resolve_oldest(outcome).expect("drains cleanly");
        if ev.mispredict {
            outcomes.drain(..ev.flushed.min(outcomes.len()));
        }
    }
    (hybrid.stats().total(), hybrid.stats().final_mispredicts())
}

#[test]
fn engine_commits_every_branch_exactly_once_null() {
    let mut rng = SmallRng::seed_from_u64(0xB001);
    for _ in 0..40 {
        let s = stream(&mut rng);
        let hybrid = ProphetCritic::new(Bimodal::new(128), NullCritic::new(), 0);
        // Resolve each branch before predicting the next (depth 0): with
        // f=0 nothing is speculated past a branch, so every stream entry
        // commits exactly once.
        let (committed, misp) = drive(hybrid, &s, 0);
        assert_eq!(committed, s.len() as u64);
        assert!(misp <= committed);
    }
}

#[test]
fn engine_never_wedges_with_future_bits() {
    let mut rng = SmallRng::seed_from_u64(0xB002);
    for _ in 0..40 {
        let s = stream(&mut rng);
        let fb = rng.gen_range(1usize..=8);
        let critic = UnfilteredCritic::new(Gshare::new(256, 8));
        let hybrid = ProphetCritic::new(Bimodal::new(128), critic, fb);
        // Lazy resolution: speculated branches flushed by a mispredict are
        // not re-fetched by this driver, so commits can be fewer than the
        // stream length — but the engine must never wedge or over-commit.
        let (committed, misp) = drive(hybrid, &s, 12);
        assert!(committed >= 1);
        assert!(committed <= s.len() as u64);
        assert!(misp <= committed);
    }
}

#[test]
fn stats_taxonomy_is_conserved() {
    let mut rng = SmallRng::seed_from_u64(0xB003);
    for _ in 0..40 {
        let s = stream(&mut rng);
        let fb = rng.gen_range(1usize..=6);
        let critic = TaggedGshareCritic::new(predictors::TaggedGshare::new(64, 4, 9, 12));
        let mut hybrid = ProphetCritic::new(Bimodal::new(128), critic, fb);
        // Drive inline to keep access to stats.
        let mut outcomes: std::collections::VecDeque<bool> = Default::default();
        for (pc_raw, outcome) in &s {
            hybrid.predict(Pc::new(0x1000 + u64::from(*pc_raw) * 4));
            outcomes.push_back(*outcome);
            while hybrid.critique_next().is_some() {}
            while hybrid.in_flight() > 10 {
                if !hybrid.critique_ready() {
                    let _ = hybrid.force_critique_next();
                }
                let o = outcomes.pop_front().unwrap();
                let ev = hybrid.resolve_oldest(o).unwrap();
                if ev.mispredict {
                    outcomes.drain(..ev.flushed.min(outcomes.len()));
                }
            }
        }
        let stats = hybrid.stats();
        let sum: u64 = CritiqueKind::ALL.iter().map(|k| stats.count(*k)).sum();
        assert_eq!(sum, stats.total());
        assert_eq!(
            stats.final_mispredicts(),
            stats.count(CritiqueKind::IncorrectAgree)
                + stats.count(CritiqueKind::IncorrectNone)
                + stats.count(CritiqueKind::CorrectDisagree)
        );
    }
}

#[test]
fn bhr_always_reflects_committed_outcomes_for_null_critic() {
    let mut rng = SmallRng::seed_from_u64(0xB004);
    for _ in 0..40 {
        let len = rng.gen_range(1usize..64);
        let outcomes: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
        // With a NullCritic and immediate resolution, after each commit the
        // BHR's newest bit must equal the committed outcome (speculative
        // push repaired on mispredict).
        let mut hybrid = ProphetCritic::new(Gshare::new(256, 8), NullCritic::new(), 0);
        for (i, outcome) in outcomes.iter().enumerate() {
            hybrid.predict(Pc::new(0x2000 + (i as u64 % 16) * 4));
            while hybrid.critique_next().is_some() {}
            let _ = hybrid.resolve_oldest(*outcome).unwrap();
            assert_eq!(hybrid.bhr().outcome(0), *outcome);
        }
    }
}
