//! Machine parameters — Table 2 of the paper, encoded verbatim.

/// Geometry and latency of one cache level.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheParams {
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_cycles: u64,
}

impl CacheParams {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into a power-of-two set count.
    #[must_use]
    pub fn sets(&self) -> usize {
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(
            sets.is_power_of_two(),
            "cache sets {sets} not a power of two"
        );
        sets
    }
}

/// The simulated machine (Table 2): a superscalar out-of-order
/// microarchitecture derived from the Intel Pentium 4 processor — twice as
/// wide, with a 16× instruction window and a decoupled front end.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct MachineParams {
    /// Processor frequency in GHz (3.8).
    pub frequency_ghz: f64,
    /// Fetch/issue/retire width in uops (6).
    pub width: u64,
    /// Branch mispredict penalty in cycles (30).
    pub mispredict_penalty: u64,
    /// BTB entries (4096) and associativity (4).
    pub btb_entries: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// FTQ size in entries (32).
    pub ftq_entries: usize,
    /// Instruction window size in uops (2048).
    pub window_uops: u64,
    /// Prophet throughput in predictions per cycle (§5: 2).
    pub prophet_per_cycle: u64,
    /// Critic throughput in critiques per cycle (§5: 1).
    pub critic_per_cycle: u64,
    /// I-cache fetch ports: cache lines the front end can read per cycle
    /// (2, matching the dual prediction ports of §5 — fetch of a chunk
    /// spanning more lines serializes on the ports).
    pub fetch_ports: u64,
    /// Front-end redirect latency in cycles (8, roughly decode depth):
    /// charged when fetch restarts at a target discovered *behind* the
    /// front end — BTB-miss discovery at decode, or the restart after a
    /// mispredict flush.
    pub redirect_cycles: u64,
    /// Critic-override redirect latency in cycles (2): the critic sits
    /// inside the front end, walking the FTQ (Figure 4), so redirecting
    /// fetch on a disagreement is far cheaper than a back-end redirect.
    pub override_redirect_cycles: u64,
    /// Instruction cache (64 KB, 8-way, 64-byte lines).
    pub icache: CacheParams,
    /// L1 data cache (32 KB, 16-way, 64-byte lines, 3-cycle hit).
    pub l1d: CacheParams,
    /// Unified L2 (2 MB, 16-way, 64-byte lines, 16-cycle hit).
    pub l2: CacheParams,
    /// Memory latency in nanoseconds (100).
    pub memory_ns: f64,
    /// Hardware prefetcher stream count (16).
    pub prefetch_streams: usize,
}

impl MachineParams {
    /// The exact Table 2 configuration.
    #[must_use]
    pub fn isca04() -> Self {
        Self {
            frequency_ghz: 3.8,
            width: 6,
            mispredict_penalty: 30,
            btb_entries: 4096,
            btb_ways: 4,
            ftq_entries: 32,
            window_uops: 2048,
            prophet_per_cycle: 2,
            critic_per_cycle: 1,
            fetch_ports: 2,
            redirect_cycles: 8,
            override_redirect_cycles: 2,
            icache: CacheParams {
                size_bytes: 64 << 10,
                ways: 8,
                line_bytes: 64,
                hit_cycles: 1,
            },
            l1d: CacheParams {
                size_bytes: 32 << 10,
                ways: 16,
                line_bytes: 64,
                hit_cycles: 3,
            },
            l2: CacheParams {
                size_bytes: 2 << 20,
                ways: 16,
                line_bytes: 64,
                hit_cycles: 16,
            },
            memory_ns: 100.0,
            prefetch_streams: 16,
        }
    }

    /// Memory latency converted to cycles at the machine frequency
    /// (100 ns × 3.8 GHz = 380 cycles).
    #[must_use]
    pub fn memory_cycles(&self) -> u64 {
        (self.memory_ns * self.frequency_ghz).round() as u64
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        Self::isca04()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let m = MachineParams::isca04();
        assert_eq!(m.width, 6);
        assert_eq!(m.mispredict_penalty, 30);
        assert_eq!(m.btb_entries, 4096);
        assert_eq!(m.ftq_entries, 32);
        assert_eq!(m.window_uops, 2048);
        assert_eq!(m.memory_cycles(), 380);
    }

    #[test]
    fn cache_geometries() {
        let m = MachineParams::isca04();
        assert_eq!(m.icache.sets(), 128);
        assert_eq!(m.l1d.sets(), 32);
        assert_eq!(m.l2.sets(), 2048);
        assert_eq!(m.l1d.hit_cycles, 3);
        assert_eq!(m.l2.hit_cycles, 16);
    }

    #[test]
    fn front_end_rates_match_section5() {
        let m = MachineParams::isca04();
        assert_eq!(m.prophet_per_cycle, 2);
        assert_eq!(m.critic_per_cycle, 1);
        assert_eq!(m.fetch_ports, 2);
        assert_eq!(m.redirect_cycles, 8);
        assert_eq!(m.override_redirect_cycles, 2);
    }
}
