//! A set-associative cache hierarchy with a stream prefetcher.
//!
//! Table 2's memory system: 64 KB I-cache, 32 KB L1D (3-cycle), 2 MB L2
//! (16-cycle), 100 ns memory, and a 16-stream hardware data prefetcher.

use crate::params::{CacheParams, MachineParams};

/// One set-associative cache level with true-LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    /// tag storage: sets × ways of (valid, tag, lru)
    sets: Vec<Vec<(bool, u64, u64)>>,
    line_shift: u32,
    set_mask: u64,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds a cache from its parameters.
    #[must_use]
    pub fn new(p: &CacheParams) -> Self {
        let sets = p.sets();
        Self {
            sets: vec![vec![(false, 0, 0); p.ways]; sets],
            line_shift: p.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.sets.len().trailing_zeros(),
        )
    }

    /// Accesses `addr`; returns whether it hit. Misses allocate the line.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (set, tag) = self.locate(addr);
        let ways = &mut self.sets[set];
        if let Some(w) = ways.iter_mut().find(|(v, t, _)| *v && *t == tag) {
            w.2 = self.clock;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        let victim = ways
            .iter_mut()
            .min_by_key(|(v, _, lru)| (*v, *lru))
            .expect("cache has ways");
        *victim = (true, tag, self.clock);
        false
    }

    /// Installs a line without counting an access (prefetch fill).
    pub fn fill(&mut self, addr: u64) {
        self.clock += 1;
        let (set, tag) = self.locate(addr);
        let ways = &mut self.sets[set];
        if ways.iter().any(|(v, t, _)| *v && *t == tag) {
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|(v, _, lru)| (*v, *lru))
            .expect("cache has ways");
        *victim = (true, tag, self.clock);
    }

    /// Whether `addr` is resident (no state change).
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.locate(addr);
        self.sets[set].iter().any(|(v, t, _)| *v && *t == tag)
    }

    /// Demand hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Demand miss rate.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A simple stream-based hardware prefetcher (Table 2: 16 streams).
///
/// Detects ascending line-granularity streams on L2 accesses and prefetches
/// the next lines into L2.
#[derive(Clone, Debug)]
struct StreamPrefetcher {
    /// (last line, confidence) per stream, LRU by slot age.
    streams: Vec<(u64, u32, u64)>,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    fn new(n: usize) -> Self {
        Self {
            streams: vec![(u64::MAX, 0, 0); n],
            clock: 0,
            issued: 0,
        }
    }

    /// Observes a demand line address; returns lines to prefetch.
    fn observe(&mut self, line: u64) -> Vec<u64> {
        self.clock += 1;
        // Existing stream one line behind?
        if let Some(s) = self
            .streams
            .iter_mut()
            .find(|(last, _, _)| last.wrapping_add(1) == line)
        {
            s.0 = line;
            s.1 = (s.1 + 1).min(8);
            s.2 = self.clock;
            if s.1 >= 2 {
                let depth = u64::from(s.1.min(4));
                self.issued += depth;
                return (1..=depth).map(|d| line + d).collect();
            }
            return Vec::new();
        }
        // Allocate a new stream over the LRU slot.
        let slot = self
            .streams
            .iter_mut()
            .min_by_key(|(_, _, age)| *age)
            .expect("prefetcher has streams");
        *slot = (line, 0, self.clock);
        Vec::new()
    }
}

/// Latency classification of one data access.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AccessLevel {
    /// L1D hit.
    L1,
    /// L2 hit.
    L2,
    /// Memory access.
    Memory,
}

/// The full data-side hierarchy: L1D + L2 + memory latency + prefetcher.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    prefetcher: StreamPrefetcher,
    l1_hit: u64,
    l2_hit: u64,
    mem_lat: u64,
    pub_l1_hits: u64,
    pub_l2_hits: u64,
    pub_mem: u64,
    stall_cycles: u64,
}

impl Hierarchy {
    /// Builds the Table 2 data hierarchy.
    #[must_use]
    pub fn new(m: &MachineParams) -> Self {
        Self {
            l1: Cache::new(&m.l1d),
            l2: Cache::new(&m.l2),
            prefetcher: StreamPrefetcher::new(m.prefetch_streams),
            l1_hit: m.l1d.hit_cycles,
            l2_hit: m.l2.hit_cycles,
            mem_lat: m.memory_cycles(),
            pub_l1_hits: 0,
            pub_l2_hits: 0,
            pub_mem: 0,
            stall_cycles: 0,
        }
    }

    /// Performs a demand data access; returns `(latency_cycles, level)`.
    pub fn access(&mut self, addr: u64) -> (u64, AccessLevel) {
        if self.l1.access(addr) {
            self.pub_l1_hits += 1;
            return (self.l1_hit, AccessLevel::L1);
        }
        // The prefetcher observes the full L2 access stream (hits included,
        // so a stream keeps training once its own prefetches start hitting).
        for line in self.prefetcher.observe(addr >> 6) {
            self.l2.fill(line << 6);
        }
        if self.l2.access(addr) {
            self.pub_l2_hits += 1;
            self.stall_cycles += self.l2_hit - self.l1_hit;
            return (self.l2_hit, AccessLevel::L2);
        }
        self.pub_mem += 1;
        self.stall_cycles += self.mem_lat - self.l1_hit;
        (self.mem_lat, AccessLevel::Memory)
    }

    /// `(l1_hits, l2_hits, memory_accesses)` so far.
    #[must_use]
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.pub_l1_hits, self.pub_l2_hits, self.pub_mem)
    }

    /// Bubble bookkeeping: total latency cycles beyond an L1 hit incurred
    /// by demand accesses so far — the raw (un-overlapped) data-stall
    /// exposure the pipeline model divides by its memory-level-parallelism
    /// factor.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Prefetch lines issued so far.
    #[must_use]
    pub fn prefetches(&self) -> u64 {
        self.prefetcher.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheParams {
        CacheParams {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            hit_cycles: 1,
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(&tiny());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1030), "same 64-byte line");
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1024B / 2 ways / 64B lines = 8 sets. Same set every 8 lines.
        let mut c = Cache::new(&tiny());
        let a = 0x0000u64;
        let b = a + 8 * 64;
        let d = a + 16 * 64;
        c.access(a);
        c.access(b);
        c.access(a); // a most recent; b is LRU
        c.access(d); // evicts b
        assert!(c.contains(a));
        assert!(!c.contains(b));
        assert!(c.contains(d));
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = Cache::new(&tiny());
        c.fill(0x2000);
        assert_eq!(c.misses() + c.hits(), 0);
        assert!(c.access(0x2000), "prefilled line hits");
    }

    #[test]
    fn hierarchy_latencies_are_ordered() {
        let m = MachineParams::isca04();
        let mut h = Hierarchy::new(&m);
        let (mem, lvl) = h.access(0x10_0000);
        assert_eq!(lvl, AccessLevel::Memory);
        assert_eq!(mem, 380);
        let (l1, lvl) = h.access(0x10_0000);
        assert_eq!(lvl, AccessLevel::L1);
        assert_eq!(l1, 3);
        // Bubble bookkeeping: one memory access beyond L1, one free hit.
        assert_eq!(h.stall_cycles(), 380 - 3);
    }

    #[test]
    fn streaming_pattern_trains_prefetcher() {
        let m = MachineParams::isca04();
        let mut h = Hierarchy::new(&m);
        let mut mem_accesses_late = 0;
        for i in 0..64u64 {
            let addr = 0x800_0000 + i * 64;
            let (_, lvl) = h.access(addr);
            if i >= 16 && lvl == AccessLevel::Memory {
                mem_accesses_late += 1;
            }
        }
        assert!(
            mem_accesses_late < 24,
            "prefetcher should cover a linear stream, {mem_accesses_late} late misses"
        );
        assert!(h.prefetches() > 0);
    }

    #[test]
    fn random_pattern_defeats_prefetcher() {
        let m = MachineParams::isca04();
        let mut h = Hierarchy::new(&m);
        let mut x = 12345u64;
        let mut mem = 0;
        for _ in 0..200 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // 64 MB working set: far beyond L2.
            let addr = (x >> 10) % (64 << 20);
            if matches!(h.access(addr).1, AccessLevel::Memory) {
                mem += 1;
            }
        }
        assert!(
            mem > 150,
            "random far accesses should mostly miss, got {mem}"
        );
    }
}
