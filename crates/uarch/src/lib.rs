//! The cycle-level machine substrate for the prophet/critic reproduction:
//! Table 2's microarchitecture parameters, a set-associative cache
//! hierarchy with a stream prefetcher, and synthetic data-access streams.
//!
//! The timing *orchestration* (fetch/critique/resolve cursors, uPC
//! accounting) lives in the `sim` crate; this crate owns the reusable
//! hardware models.
//!
//! ```
//! use uarch::{Hierarchy, MachineParams};
//!
//! let m = MachineParams::isca04();
//! assert_eq!(m.mispredict_penalty, 30);
//! let mut mem = Hierarchy::new(&m);
//! let (latency, _) = mem.access(0xdead_b000);
//! assert_eq!(latency, m.memory_cycles()); // cold: full memory latency
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod datagen;
mod params;

pub use cache::{AccessLevel, Cache, Hierarchy};
pub use datagen::{DataProfile, DataStream};
pub use params::{CacheParams, MachineParams};
