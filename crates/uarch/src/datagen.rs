//! Synthetic data-access streams.
//!
//! The paper's LITs contain full memory images; our programs have no data
//! side, so the cycle model synthesizes one: each basic block owns a
//! deterministic access generator — streaming (array walk, prefetchable) or
//! pointer-chasing (hash-scattered over the working set) — so the cache
//! hierarchy and prefetcher see realistic locality structure that differs
//! by benchmark.

/// Per-program data-side character.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DataProfile {
    /// Working-set bytes (drives L2 residency).
    pub working_set: u64,
    /// Permille of blocks whose accesses stream sequentially.
    pub streaming_permille: u16,
    /// Data accesses per `access_every` uops (1 access per N uops).
    pub uops_per_access: u32,
}

impl DataProfile {
    /// A cache-friendly profile (FP-like: streaming over big arrays).
    #[must_use]
    pub fn streaming() -> Self {
        Self {
            working_set: 32 << 20,
            streaming_permille: 850,
            uops_per_access: 3,
        }
    }

    /// A pointer-chasing profile (server-like: scattered over a big set).
    #[must_use]
    pub fn scattered() -> Self {
        Self {
            working_set: 48 << 20,
            streaming_permille: 200,
            uops_per_access: 3,
        }
    }

    /// A mostly-resident profile (integer codes: modest working set).
    #[must_use]
    pub fn resident() -> Self {
        Self {
            working_set: 1 << 20,
            streaming_permille: 500,
            uops_per_access: 3,
        }
    }
}

fn mix(x: u64) -> u64 {
    // splitmix64 finalizer: cheap, well-distributed.
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-block data-address generator.
#[derive(Clone, Debug)]
pub struct DataStream {
    profile: DataProfile,
    /// Per-block iteration counters (position in the block's array walk).
    counters: std::collections::HashMap<u64, u64>,
    base: u64,
}

impl DataStream {
    /// Creates a stream generator for one program run.
    #[must_use]
    pub fn new(profile: DataProfile, seed: u64) -> Self {
        Self {
            profile,
            counters: std::collections::HashMap::new(),
            base: 0x1000_0000 ^ (seed << 12),
        }
    }

    /// Yields the data addresses a block of `uops` uops issues on this
    /// visit. `block_key` identifies the static block (e.g. its terminator
    /// pc).
    pub fn accesses(&mut self, block_key: u64, uops: u64) -> Vec<u64> {
        let n = uops / u64::from(self.profile.uops_per_access.max(1));
        if n == 0 {
            return Vec::new();
        }
        let h = mix(block_key);
        let streaming = (h % 1000) < u64::from(self.profile.streaming_permille);
        let iter = self.counters.entry(block_key).or_insert(0);
        let ws = self.profile.working_set.max(4096);
        let mut out = Vec::with_capacity(n as usize);
        for k in 0..n {
            let addr = if streaming {
                // Sequential walk over a per-block array region.
                let region = (h >> 10) % 64;
                self.base + region * (ws / 64) + ((*iter * n + k) * 8) % (ws / 64)
            } else {
                // Hash-scattered over the working set (pointer chase).
                self.base + mix(h ^ (*iter * n + k)) % ws
            };
            out.push(addr);
        }
        *iter += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_count_scales_with_uops() {
        let mut d = DataStream::new(DataProfile::resident(), 1);
        assert_eq!(d.accesses(0x100, 9).len(), 3);
        assert_eq!(d.accesses(0x100, 2).len(), 0);
    }

    #[test]
    fn streaming_blocks_emit_sequential_addresses() {
        let profile = DataProfile {
            working_set: 1 << 20,
            streaming_permille: 1000,
            uops_per_access: 3,
        };
        let mut d = DataStream::new(profile, 1);
        let a = d.accesses(0x40, 30);
        let b = d.accesses(0x40, 30);
        // Consecutive visits continue the walk: first address of b follows
        // the last address of a by one stride.
        assert_eq!(b[0], a.last().unwrap() + 8);
        assert!(a.windows(2).all(|w| w[1] == w[0] + 8));
    }

    #[test]
    fn scattered_blocks_jump_around() {
        let profile = DataProfile {
            working_set: 32 << 20,
            streaming_permille: 0,
            uops_per_access: 3,
        };
        let mut d = DataStream::new(profile, 1);
        let a = d.accesses(0x40, 30);
        let far = a.windows(2).filter(|w| w[0].abs_diff(w[1]) > 4096).count();
        assert!(far >= a.len() / 2, "scattered accesses should be far apart");
    }

    #[test]
    fn generator_is_deterministic() {
        let mut d1 = DataStream::new(DataProfile::scattered(), 9);
        let mut d2 = DataStream::new(DataProfile::scattered(), 9);
        assert_eq!(d1.accesses(0x77, 24), d2.accesses(0x77, 24));
    }
}
