//! The parallel experiment engine: deterministic fan-out of simulation
//! cells across OS threads.
//!
//! The paper's evaluation is a large grid — benchmark suites × dozens of
//! prophet/critic configurations (Figure 6 alone sweeps 78 combinations) —
//! and every cell is an independent simulation: own program walker, own
//! hybrid, own BTB. That makes the grid embarrassingly parallel, and this
//! module exploits it with plain scoped threads (the container builds
//! offline, so no rayon):
//!
//! * [`par_map`] — applies a closure to every item of a slice, fanning the
//!   items out over a bounded worker pool via an atomic work-stealing
//!   cursor, and returns the results **in input order** regardless of
//!   which thread finished when. Simulations are deterministic, so the
//!   parallel results are bit-identical to a sequential run.
//! * [`default_threads`] — the worker count used when the caller does not
//!   pin one (`--threads` on the `experiments` binary, `THREADS` in the
//!   environment).
//!
//! The higher-level grid entry points
//! ([`run_matrix`](crate::experiments::common::run_matrix),
//! [`run_grid`](crate::experiments::common::run_grid),
//! [`pooled_accuracy_par`](crate::experiments::common::pooled_accuracy_par))
//! live in [`experiments::common`](crate::experiments::common), next to
//! the sequential reference implementations they must match bit-for-bit.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads to use when none are requested explicitly: the `THREADS`
/// environment variable if set, otherwise every available core.
#[must_use]
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Applies `f` to every item of `items` on up to `threads` worker threads
/// and returns the results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so long cells —
/// e.g. a 32 KB perceptron on a server benchmark — don't serialize behind
/// a static partition. Result order is by input index, never by completion
/// time: with a deterministic `f`, the output is identical for any thread
/// count, which the determinism tests pin down.
///
/// `threads <= 1` (or a single item) runs inline with no thread overhead.
///
/// # Examples
///
/// ```
/// use sim::par_map;
///
/// let items: Vec<u64> = (0..100).collect();
/// let squares = par_map(&items, 4, |_, x| x * x);
/// // Input order is preserved regardless of which worker ran what …
/// assert_eq!(squares[10], 100);
/// // … so any thread count produces the identical result vector.
/// assert_eq!(squares, par_map(&items, 1, |_, x| x * x));
/// ```
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let worker = || {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(i) else { break };
            local.push((i, f(i, item)));
        }
        local
    };

    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads).map(|_| scope.spawn(worker)).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("experiment worker panicked"))
            .collect()
    });

    let mut indexed: Vec<(usize, R)> = per_worker.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let doubled = par_map(&items, 8, |_, x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_thread_count_agrees() {
        let items: Vec<u64> = (0..57).collect();
        // A mildly uneven workload: later items spin longer.
        let work = |i: usize, x: &u64| -> u64 {
            let mut acc = *x;
            for k in 0..(i as u64 % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        let reference = par_map(&items, 1, work);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                par_map(&items, threads, work),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(par_map(&[41u32], 4, |_, x| x + 1), vec![42]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c"];
        let idx = par_map(&items, 2, |i, _| i);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
