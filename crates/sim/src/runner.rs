//! The parallel experiment engine: deterministic fan-out of simulation
//! cells across OS threads.
//!
//! The paper's evaluation is a large grid — benchmark suites × dozens of
//! prophet/critic configurations (Figure 6 alone sweeps 78 combinations) —
//! and every cell is an independent simulation: own program walker, own
//! hybrid, own BTB. That makes the grid embarrassingly parallel, and this
//! module exploits it with plain scoped threads (the container builds
//! offline, so no rayon):
//!
//! * [`try_par_map`] — the fault-isolating primitive: applies a closure to
//!   every item of a slice over a bounded worker pool, wrapping **each
//!   cell** in [`std::panic::catch_unwind`] so one panicking simulation
//!   becomes a recorded [`CellFailure`] (label, worker, panic payload)
//!   while every other cell still completes. Results come back **in input
//!   order** regardless of which thread finished when.
//! * [`par_map`] — the all-or-nothing wrapper: same engine, but any failed
//!   cell aborts the grid with a panic *naming the cell that died* instead
//!   of the old anonymous `expect("experiment worker panicked")`.
//! * [`default_threads`] — the worker count used when the caller does not
//!   pin one (`--threads` on the `experiments` binary, `THREADS` in the
//!   environment).
//!
//! Simulations are deterministic, so the surviving results are
//! bit-identical to a sequential run for any thread count — including
//! under injected faults (the set of failed cells depends only on the
//! fault plan, never on scheduling).
//!
//! The higher-level grid entry points
//! ([`run_matrix`](crate::experiments::common::run_matrix),
//! [`run_grid`](crate::experiments::common::run_grid),
//! [`pooled_accuracy_par`](crate::experiments::common::pooled_accuracy_par))
//! live in [`experiments::common`](crate::experiments::common), next to
//! the sequential reference implementations they must match bit-for-bit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker threads to use when none are requested explicitly: the `THREADS`
/// environment variable if set, otherwise every available core.
#[must_use]
pub fn default_threads() -> usize {
    if let Some(n) = std::env::var("THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One grid cell that panicked instead of producing a result.
///
/// `index` and `label` are deterministic for a given grid + fault plan;
/// `worker` is whichever thread happened to pick the cell up, so reports
/// that must be bit-identical across `--threads` settings include the
/// label but not the worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellFailure {
    /// Input-order index of the failed cell.
    pub index: usize,
    /// Human-readable cell label (e.g. `"16KB perceptron × gcc"`).
    pub label: String,
    /// Worker thread that ran the cell (0 for the inline path).
    pub worker: usize,
    /// The panic payload, downcast to a string where possible.
    pub reason: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell #{} '{}' (worker {}) panicked: {}",
            self.index, self.label, self.worker, self.reason
        )
    }
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    payload.downcast_ref::<&str>().map_or_else(
        || {
            payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic payload".to_string())
        },
        |s| (*s).to_string(),
    )
}

/// Applies `f` to every item of `items` on up to `threads` worker threads,
/// isolating per-cell panics: each call runs under
/// [`catch_unwind`], a panicking cell yields `None` in the result vector
/// plus a [`CellFailure`] naming it (via `label`), and every other cell
/// still runs to completion.
///
/// Results are in input order; failures are sorted by cell index. With a
/// deterministic `f`, both vectors are identical for any thread count
/// (failure `worker` fields aside).
///
/// `threads <= 1` (or a single item) runs inline with no thread overhead —
/// still under `catch_unwind`, so fault semantics don't change with the
/// thread count.
///
/// # Examples
///
/// ```
/// use sim::try_par_map;
///
/// let items: Vec<u64> = (0..10).collect();
/// let (results, failures) = try_par_map(
///     &items,
///     4,
///     |_, x| format!("cell {x}"),
///     |_, x| if *x == 3 { panic!("boom") } else { x * x },
/// );
/// assert_eq!(results[2], Some(4));
/// assert_eq!(results[3], None);
/// assert_eq!(failures.len(), 1);
/// assert_eq!(failures[0].label, "cell 3");
/// assert_eq!(failures[0].reason, "boom");
/// ```
pub fn try_par_map<T, R, L, F>(
    items: &[T],
    threads: usize,
    label: L,
    f: F,
) -> (Vec<Option<R>>, Vec<CellFailure>)
where
    T: Sync,
    R: Send,
    L: Fn(usize, &T) -> String + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let run_cell = |worker: usize, i: usize, item: &T| -> Result<R, CellFailure> {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| CellFailure {
            index: i,
            label: label(i, item),
            worker,
            reason: panic_reason(payload.as_ref()),
        })
    };

    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        let mut results = Vec::with_capacity(items.len());
        let mut failures = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match run_cell(0, i, item) {
                Ok(r) => results.push(Some(r)),
                Err(fail) => {
                    results.push(None);
                    failures.push(fail);
                }
            }
        }
        return (results, failures);
    }

    let cursor = AtomicUsize::new(0);
    let worker = |worker_id: usize| {
        let mut local: Vec<(usize, Result<R, CellFailure>)> = Vec::new();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(item) = items.get(i) else { break };
            local.push((i, run_cell(worker_id, i, item)));
        }
        local
    };

    let per_worker: Vec<Vec<(usize, Result<R, CellFailure>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| scope.spawn(move || worker(w)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // Cells can no longer unwind out of a worker; a join error
                // here would be a bug in the runner itself.
                h.join().expect("runner worker thread died outside a cell")
            })
            .collect()
    });

    let mut indexed: Vec<(usize, Result<R, CellFailure>)> =
        per_worker.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|(i, _)| *i);
    let mut results = Vec::with_capacity(items.len());
    let mut failures = Vec::new();
    for (_, outcome) in indexed {
        match outcome {
            Ok(r) => results.push(Some(r)),
            Err(fail) => {
                results.push(None);
                failures.push(fail);
            }
        }
    }
    (results, failures)
}

/// Applies `f` to every item of `items` on up to `threads` worker threads
/// and returns the results in input order.
///
/// Work is distributed dynamically (an atomic cursor), so long cells —
/// e.g. a 32 KB perceptron on a server benchmark — don't serialize behind
/// a static partition. Result order is by input index, never by completion
/// time: with a deterministic `f`, the output is identical for any thread
/// count, which the determinism tests pin down.
///
/// `threads <= 1` (or a single item) runs inline with no thread overhead.
///
/// # Examples
///
/// ```
/// use sim::par_map;
///
/// let items: Vec<u64> = (0..100).collect();
/// let squares = par_map(&items, 4, |_, x| x * x);
/// // Input order is preserved regardless of which worker ran what …
/// assert_eq!(squares[10], 100);
/// // … so any thread count produces the identical result vector.
/// assert_eq!(squares, par_map(&items, 1, |_, x| x * x));
/// ```
///
/// # Panics
///
/// A panic in any cell aborts the whole map with a message naming the
/// failed cell (input index, worker thread, panic payload). Callers that
/// need to survive failed cells use [`try_par_map`] with real labels.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let (results, failures) = try_par_map(items, threads, |i, _| format!("index {i}"), f);
    if let Some(first) = failures.first() {
        panic!(
            "{} of {} experiment cells failed; first failure: {first}",
            failures.len(),
            results.len()
        );
    }
    results.into_iter().map(Option::unwrap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let doubled = par_map(&items, 8, |_, x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_thread_count_agrees() {
        let items: Vec<u64> = (0..57).collect();
        // A mildly uneven workload: later items spin longer.
        let work = |i: usize, x: &u64| -> u64 {
            let mut acc = *x;
            for k in 0..(i as u64 % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        let reference = par_map(&items, 1, work);
        for threads in [2, 3, 8, 64] {
            assert_eq!(
                par_map(&items, threads, work),
                reference,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, x| *x).is_empty());
        assert_eq!(par_map(&[41u32], 4, |_, x| x + 1), vec![42]);
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c"];
        let idx = par_map(&items, 2, |i, _| i);
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn failed_cells_are_isolated_and_labeled() {
        let items: Vec<u32> = (0..40).collect();
        for threads in [1, 3, 8] {
            let (results, failures) = try_par_map(
                &items,
                threads,
                |_, x| format!("spec × bench{x}"),
                |_, x| {
                    assert!(x % 13 != 5, "unlucky cell {x}");
                    x * 10
                },
            );
            assert_eq!(results.len(), items.len());
            // Cells 5, 18, 31 fail; all others survive with real values.
            let failed: Vec<usize> = failures.iter().map(|f| f.index).collect();
            assert_eq!(failed, vec![5, 18, 31], "threads={threads}");
            for (i, r) in results.iter().enumerate() {
                if failed.contains(&i) {
                    assert!(r.is_none());
                } else {
                    assert_eq!(*r, Some(items[i] * 10));
                }
            }
            assert_eq!(failures[0].label, "spec × bench5");
            assert!(
                failures[0].reason.contains("unlucky cell 5"),
                "payload text"
            );
        }
    }

    #[test]
    fn par_map_panic_names_the_cell() {
        let items: Vec<u32> = (0..10).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, 4, |_, x| {
                assert!(*x != 7, "cell exploded");
                *x
            })
        }))
        .unwrap_err();
        let msg = panic_reason(err.as_ref());
        assert!(msg.contains("index 7"), "{msg}");
        assert!(msg.contains("cell exploded"), "{msg}");
    }

    #[test]
    fn all_cells_failing_still_returns() {
        let items = [1u8, 2, 3];
        let (results, failures) = try_par_map(
            &items,
            2,
            |i, _| format!("c{i}"),
            |_, _| -> u8 { panic!("nope") },
        );
        assert!(results.iter().all(Option::is_none));
        assert_eq!(failures.len(), 3);
    }
}
