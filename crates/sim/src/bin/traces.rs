//! The trace-corpus CLI: record, list, inspect, verify, migrate and
//! replay `.bt` corpora.
//!
//! ```text
//! traces record  --dir DIR [--bench fast|all|NAME[,NAME...]] [--format v1|v2] [--threads N]
//! traces list    --dir DIR
//! traces inspect --dir DIR --trace NAME [--top N]
//! traces replay  --dir DIR [--threads N] [--top N]
//! traces verify  --dir DIR [--threads N]
//! traces migrate --dir DIR [--threads N]
//!
//!   SCALE=2          double the per-benchmark uop budget when recording
//!   CORPUS_TRACES=N  expand the bench set to N synthetic variants when recording
//! ```
//!
//! `record` writes one `.bt` trace + one `.pcl` snapshot per benchmark
//! plus the `corpus.manifest` index (block-compressed v2 traces by
//! default; `--format v1` keeps the legacy record stream as a migration
//! baseline); `replay` streams every trace through the conventional
//! tournament lineup — v2 traces through the chunked block decoder —
//! and prints the ranked misp/Kuops report with per-trace H2P flags;
//! `verify` re-hashes every artifact and cross-checks each snapshot walk
//! against its trace; `migrate` rewrites v1 traces to v2 in place, each
//! rewrite gated by a record-for-record comparison before it replaces
//! the original. Recording, replay, verification and migration all fan
//! out through the deterministic parallel grid runner, so results are
//! identical for any `--threads` value.
//!
//! `CORPUS_TRACES=N` synthesizes variants of the selected benchmarks
//! (derived names and seeds) until the corpus holds `N` traces — the
//! bounded-memory soak knob: every stage streams, so memory stays flat
//! no matter how large the corpus grows.
//!
//! `replay` and `verify` degrade gracefully: a corrupt or truncated
//! trace is *quarantined* — listed with its failure reason under the
//! report — while every healthy trace still replays and pools. Only a
//! corpus with zero readable traces exits non-zero.

use std::path::{Path, PathBuf};

use bptrace::{BranchProfile, H2P_MAX_BIAS, H2P_MIN_OCCURRENCES};
use predictors::DirectionPredictor;
use replay::{
    migrate_entry, open_trace, record_benchmark_with, replay_entry, verify_entry, Manifest,
    QuarantineEntry, ReplayConfig, ReplayResult, TraceEntry,
};
use sim::experiments::common::{expand_benchmarks, select_benchmarks};
use sim::experiments::tracecmp::conventional_lineup;
use sim::experiments::{BenchSet, ExpEnv};
use sim::par_map;
use sim::table::{f2, pct, Table};
use workloads::Benchmark;

fn usage() -> ! {
    eprintln!(
        "usage:\n  traces record  --dir DIR [--bench fast|all|NAME[,NAME...]] [--format v1|v2] [--threads N]\n  \
         traces list    --dir DIR\n  \
         traces inspect --dir DIR --trace NAME [--top N]\n  \
         traces replay  --dir DIR [--threads N] [--top N]\n  \
         traces verify  --dir DIR [--threads N]\n  \
         traces migrate --dir DIR [--threads N]\n\n  \
         SCALE=2 doubles the per-benchmark uop budget when recording\n  \
         CORPUS_TRACES=N expands the bench set to N synthetic variants when recording"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("traces: {msg}");
    std::process::exit(1);
}

/// Extracts the value of `--flag VALUE` from `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        usage();
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn require_dir(args: &mut Vec<String>) -> PathBuf {
    take_flag(args, "--dir").map_or_else(|| usage(), PathBuf::from)
}

fn threads_flag(args: &mut Vec<String>) -> usize {
    take_flag(args, "--threads")
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| usage()).max(1))
        .unwrap_or_else(sim::default_threads)
}

fn top_flag(args: &mut Vec<String>, default: usize) -> usize {
    take_flag(args, "--top")
        .map(|v| v.parse::<usize>().unwrap_or_else(|_| usage()))
        .unwrap_or(default)
}

/// Resolves `--bench`: `fast` (the experiment grid's fast set), `all`
/// (every Table 1 benchmark), or a comma-separated name list. The named
/// sets share their definition with `ExpEnv`, so a recorded corpus covers
/// exactly what the experiments sweep.
fn resolve_benchmarks(spec: &str) -> Vec<Benchmark> {
    match spec {
        "fast" => select_benchmarks(BenchSet::Fast),
        "all" => select_benchmarks(BenchSet::All),
        names => names
            .split(',')
            .map(|n| {
                workloads::benchmark(n.trim())
                    .unwrap_or_else(|| fail(&format!("unknown benchmark {n:?}")))
            })
            .collect(),
    }
}

fn load_manifest(dir: &Path) -> Manifest {
    Manifest::load(dir).unwrap_or_else(|e| fail(&format!("cannot load manifest: {e}")))
}

fn cmd_record(mut args: Vec<String>) {
    let dir = require_dir(&mut args);
    let bench_spec = take_flag(&mut args, "--bench").unwrap_or_else(|| "fast".to_string());
    let bt_version = match take_flag(&mut args, "--format").as_deref() {
        None | Some("v2") => bptrace::BT_VERSION,
        Some("v1") => bptrace::BT_VERSION_V1,
        Some(_) => usage(),
    };
    let threads = threads_flag(&mut args);
    if !args.is_empty() {
        usage();
    }
    let mut benches = resolve_benchmarks(&bench_spec);
    if let Ok(spec) = std::env::var("CORPUS_TRACES") {
        let target: usize = spec
            .parse()
            .unwrap_or_else(|_| fail(&format!("bad CORPUS_TRACES value {spec:?}")));
        benches = expand_benchmarks(benches, target);
    }
    let budget = ExpEnv::from_env().uop_budget();
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| fail(&format!("cannot create dir: {e}")));
    eprintln!(
        "# recording {} benchmark(s) at {budget} uops each (format v{bt_version}), {threads} thread(s)",
        benches.len()
    );

    let entries: Vec<TraceEntry> = par_map(&benches, threads, |_, bench| {
        record_benchmark_with(&dir, bench, budget, bt_version)
            .unwrap_or_else(|e| fail(&format!("recording {}: {e}", bench.name)))
    });
    let mut total_bytes = 0u64;
    for e in &entries {
        total_bytes += e.bt_bytes + e.pcl_bytes;
        println!(
            "{:<10} {:>9} records  {:>9} B trace  {:>8} B snapshot  {}",
            e.name, e.records, e.bt_bytes, e.pcl_bytes, e.stats
        );
    }
    let manifest = Manifest { entries };
    manifest
        .save(&dir)
        .unwrap_or_else(|e| fail(&format!("writing manifest: {e}")));
    eprintln!(
        "# wrote {} traces ({total_bytes} bytes) + {} to {}",
        manifest.entries.len(),
        replay::MANIFEST_FILE,
        dir.display()
    );
}

fn cmd_list(mut args: Vec<String>) {
    let dir = require_dir(&mut args);
    if !args.is_empty() {
        usage();
    }
    let manifest = load_manifest(&dir);
    let mut t = Table::new(
        format!("Corpus {}", dir.display()),
        &[
            "trace",
            "records",
            "uop budget",
            "taken %",
            "uops/cond",
            "static",
            "bt bytes",
        ],
    );
    for e in &manifest.entries {
        t.row(vec![
            e.name.clone(),
            e.records.to_string(),
            e.uop_budget.to_string(),
            pct(e.stats.taken_rate() * 100.0),
            f2(e.stats.uops_per_conditional()),
            e.stats.static_branches.to_string(),
            e.bt_bytes.to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn cmd_inspect(mut args: Vec<String>) {
    let dir = require_dir(&mut args);
    let name = take_flag(&mut args, "--trace").unwrap_or_else(|| usage());
    let top = top_flag(&mut args, 10);
    if !args.is_empty() {
        usage();
    }
    let manifest = load_manifest(&dir);
    let entry = manifest
        .entry(&name)
        .unwrap_or_else(|| fail(&format!("trace {name:?} not in manifest")));
    let mut reader =
        open_trace(&dir, entry).unwrap_or_else(|e| fail(&format!("opening trace: {e}")));
    let mut profile = BranchProfile::new();
    loop {
        match reader.next_record() {
            Ok(Some(rec)) => profile.observe(&rec),
            Ok(None) => break,
            Err(e) => fail(&format!("reading trace: {e}")),
        }
    }
    println!("{name}: {}", profile.stats());
    let candidates = profile.h2p_candidates(H2P_MIN_OCCURRENCES, H2P_MAX_BIAS);
    println!(
        "{} low-bias (H2P candidate) static branches; hardest {}:",
        candidates.len(),
        top.min(candidates.len())
    );
    for b in candidates.iter().take(top) {
        println!(
            "  {:#012x}  {:>7} execs  taken {:>5.1}%  bias {:.2}",
            b.pc,
            b.occurrences,
            b.taken_rate() * 100.0,
            b.bias()
        );
    }
}

fn cmd_replay(mut args: Vec<String>) {
    let dir = require_dir(&mut args);
    let threads = threads_flag(&mut args);
    let top = top_flag(&mut args, 3);
    if !args.is_empty() {
        usage();
    }
    let manifest = load_manifest(&dir);
    if manifest.entries.is_empty() {
        fail("corpus is empty");
    }
    let lineup = conventional_lineup();
    let cells: Vec<(usize, usize)> = (0..lineup.len())
        .flat_map(|p| (0..manifest.entries.len()).map(move |t| (p, t)))
        .collect();
    eprintln!(
        "# replaying {} trace(s) through {} predictor(s), {threads} thread(s)",
        manifest.entries.len(),
        lineup.len()
    );
    let results: Vec<Result<ReplayResult, String>> = par_map(&cells, threads, |_, &(p, t)| {
        let entry = &manifest.entries[t];
        let mut predictor = lineup[p].clone();
        let cfg = ReplayConfig::with_budget(entry.uop_budget);
        // Streams straight off disk, negotiating the trace format from
        // the file header (v2 → chunked block decode) — memory stays
        // bounded regardless of corpus or trace size.
        replay_entry(&dir, entry, &mut predictor, &cfg).map_err(|e| format!("replaying: {e}"))
    });

    // A trace whose replay failed under *any* predictor is quarantined:
    // the remaining traces still pool, so one rotten `.bt` degrades the
    // report instead of aborting it.
    let traces = manifest.entries.len();
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    let mut alive: Vec<usize> = Vec::new();
    for (t, entry) in manifest.entries.iter().enumerate() {
        match (0..lineup.len()).find_map(|p| results[p * traces + t].as_ref().err()) {
            Some(e) => quarantine.push(QuarantineEntry {
                trace: entry.name.clone(),
                reason: e.clone(),
            }),
            None => alive.push(t),
        }
    }
    if alive.is_empty() {
        fail("every trace failed to replay (corpus unreadable?)");
    }

    let cell = |p: usize, t: usize| -> &ReplayResult {
        results[p * traces + t]
            .as_ref()
            .expect("quarantined traces were filtered out")
    };
    let mut pooled: Vec<(usize, f64, f64)> = lineup
        .iter()
        .enumerate()
        .map(|(p, _)| {
            let row: Vec<&ReplayResult> = alive.iter().map(|&t| cell(p, t)).collect();
            let uops: u64 = row.iter().map(|r| r.measured_uops).sum();
            let conds: u64 = row.iter().map(|r| r.measured_conditionals).sum();
            let misp: u64 = row.iter().map(|r| r.mispredicts).sum();
            let kuops = if uops == 0 {
                0.0
            } else {
                misp as f64 * 1000.0 / uops as f64
            };
            let percent = if conds == 0 {
                0.0
            } else {
                misp as f64 * 100.0 / conds as f64
            };
            (p, kuops, percent)
        })
        .collect();
    pooled.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut t = Table::new(
        "Corpus replay — conventional predictors, ranked",
        &["rank", "predictor", "misp/Kuops", "mispred %"],
    );
    for (rank, (p, kuops, percent)) in pooled.iter().enumerate() {
        let predictor = &lineup[*p];
        t.row(vec![
            (rank + 1).to_string(),
            format!(
                "{}KB {}",
                predictor.storage_bytes().div_ceil(1024),
                predictor.name()
            ),
            f2(*kuops),
            pct(*percent),
        ]);
    }
    t.note("hybrids need snapshot re-execution (paper §6): run `experiments tracecmp`");
    if !quarantine.is_empty() {
        t.note(format!(
            "{} of {} trace(s) quarantined and excluded from pooling",
            quarantine.len(),
            traces
        ));
    }
    println!("{}", t.render());

    if !quarantine.is_empty() {
        println!("quarantined traces:");
        for q in &quarantine {
            println!("  {:<10} {}", q.trace, q.reason);
        }
        println!();
    }

    // Per-trace H2P flags under the winning predictor.
    let winner = pooled.first().map_or(0, |(p, _, _)| *p);
    println!(
        "hardest branches per trace under {} (top {top}):",
        lineup[winner].name()
    );
    for &ti in &alive {
        let entry = &manifest.entries[ti];
        let r = cell(winner, ti);
        let hard = r.h2p_branches(top);
        let summary: Vec<String> = hard
            .iter()
            .map(|b| format!("{:#x} ({} misp, bias {:.2})", b.pc, b.mispredicts, b.bias()))
            .collect();
        println!(
            "  {:<10} {}",
            entry.name,
            if summary.is_empty() {
                "-".to_string()
            } else {
                summary.join(", ")
            }
        );
    }
}

fn cmd_verify(mut args: Vec<String>) {
    let dir = require_dir(&mut args);
    let threads = threads_flag(&mut args);
    if !args.is_empty() {
        usage();
    }
    let manifest = load_manifest(&dir);
    let outcomes: Vec<Option<String>> = par_map(&manifest.entries, threads, |_, entry| {
        verify_entry(&dir, entry).err().map(|e| e.to_string())
    });
    let quarantine: Vec<QuarantineEntry> = manifest
        .entries
        .iter()
        .zip(&outcomes)
        .filter_map(|(entry, outcome)| {
            outcome.as_ref().map(|e| QuarantineEntry {
                trace: entry.name.clone(),
                reason: e.clone(),
            })
        })
        .collect();
    for (entry, outcome) in manifest.entries.iter().zip(&outcomes) {
        match outcome {
            None => println!("{:<10} ok", entry.name),
            Some(e) => println!("{:<10} QUARANTINE: {e}", entry.name),
        }
    }
    if !quarantine.is_empty() {
        println!("\nquarantined traces:");
        for q in &quarantine {
            println!("  {:<10} {}", q.trace, q.reason);
        }
        fail(&format!(
            "{} of {} corpus entr(ies) quarantined",
            quarantine.len(),
            manifest.entries.len()
        ));
    }
    eprintln!("# {} entries verified", manifest.entries.len());
}

fn cmd_migrate(mut args: Vec<String>) {
    let dir = require_dir(&mut args);
    let threads = threads_flag(&mut args);
    if !args.is_empty() {
        usage();
    }
    let manifest = load_manifest(&dir);
    let v1_count = manifest
        .entries
        .iter()
        .filter(|e| e.bt_version != bptrace::BT_VERSION)
        .count();
    eprintln!(
        "# migrating {v1_count} of {} trace(s) to .bt v{}, {threads} thread(s)",
        manifest.entries.len(),
        bptrace::BT_VERSION
    );
    let migrated: Vec<TraceEntry> = par_map(&manifest.entries, threads, |_, entry| {
        migrate_entry(&dir, entry)
            .unwrap_or_else(|e| fail(&format!("migrating {}: {e}", entry.name)))
    });
    let (mut before, mut after) = (0u64, 0u64);
    for (old, new) in manifest.entries.iter().zip(&migrated) {
        before += old.bt_bytes;
        after += new.bt_bytes;
        if old.bt_version != new.bt_version {
            println!(
                "{:<10} {:>9} B -> {:>9} B  ({:.2}x smaller)",
                new.name,
                old.bt_bytes,
                new.bt_bytes,
                old.bt_bytes as f64 / new.bt_bytes.max(1) as f64
            );
        } else {
            println!("{:<10} already v{}", new.name, new.bt_version);
        }
    }
    let manifest = Manifest { entries: migrated };
    manifest
        .save(&dir)
        .unwrap_or_else(|e| fail(&format!("writing manifest: {e}")));
    eprintln!(
        "# corpus traces: {before} B -> {after} B ({:.2}x smaller)",
        before as f64 / after.max(1) as f64
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args.remove(0);
    match command.as_str() {
        "record" => cmd_record(args),
        "list" => cmd_list(args),
        "inspect" => cmd_inspect(args),
        "replay" => cmd_replay(args),
        "verify" => cmd_verify(args),
        "migrate" => cmd_migrate(args),
        _ => usage(),
    }
}
