//! Regression diff for `BENCH_*.json` artifacts and cell stores.
//!
//! ```text
//! bench_diff OLD.json NEW.json [--tolerance PCT]
//! bench_diff --store OLD_DIR NEW_DIR [--tolerance PCT]
//! ```
//!
//! Compares the accuracy/performance metrics of two benchmark reports —
//! every numeric field whose key contains `misp_per_kuops`, `upc` or
//! `misp` — and exits non-zero when any metric drifted by more than the
//! tolerance (default 1 %). Wall-clock, thread-count and scale fields
//! are ignored: they are environment, not results.
//!
//! Exit codes are distinct so CI can tell *what kind* of failure it saw:
//! `0` no drift, `1` drift beyond tolerance, `2` usage error, `3` bad
//! input (missing, empty, or unparseable report / store). A missing or
//! truncated artifact gets a one-line diagnostic naming the file and the
//! problem, never a panic.
//!
//! `--store` diffs two incremental cell stores (see `sim::store`)
//! field-by-field instead of two JSON reports: cells are matched by
//! their canonical key, every numeric payload field is compared, and
//! cells present on only one side are warnings (grids legitimately grow
//! across commits).
//!
//! Array-of-object entries are matched by their `configuration`/`bench`
//! label when one is present (so a re-ranked tournament still diffs the
//! right rows), by position otherwise. Metrics present on only one side
//! are reported as warnings, not failures — lineups legitimately change
//! across commits; drift in a *shared* metric is the regression signal.
//!
//! CI's nightly `grid-soak` job downloads the previous run's artifacts
//! and fails on drift (see `.github/workflows/ci.yml`).

use std::path::Path;
use std::process::ExitCode;

use sim::{decode_numeric, CellStore};

/// Exit code for inputs that could not be read or parsed (distinct from
/// drift = 1 and usage = 2, so CI can distinguish "results regressed"
/// from "artifact never materialised").
const EXIT_BAD_INPUT: u8 = 3;

/// A minimal JSON value — the reports are written by this workspace, so
/// the parser favours clarity over completeness (no escapes beyond
/// `\"`/`\\`, which is all the writers emit).
#[derive(Debug)]
enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool),
            b'f' => self.literal("false", Json::Bool),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escaped = self
                        .bytes
                        .get(self.pos + 1)
                        .copied()
                        .ok_or("dangling escape")?;
                    out.push(char::from(escaped));
                    self.pos += 2;
                }
                Some(b) => {
                    out.push(char::from(b));
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

/// Whether a numeric field is a result metric worth diffing.
fn is_metric(key: &str) -> bool {
    key.contains("misp_per_kuops") || key.contains("upc") || key.contains("misp")
}

/// Whether a field is run environment, never diffed.
fn is_environment(key: &str) -> bool {
    key.contains("wall_clock")
        || key.contains("seconds")
        || key.contains("threads")
        || key == "scale"
        || key == "rank"
}

/// The label key that identifies an object inside an array, if any.
fn label_of(obj: &[(String, Json)]) -> Option<String> {
    for want in ["configuration", "bench", "id"] {
        if let Some((_, Json::Str(s))) = obj.iter().find(|(k, _)| k == want) {
            return Some(format!("{want}={s}"));
        }
    }
    None
}

/// Flattens a report to `path -> value` for every metric leaf.
fn metrics(value: &Json, path: &str, out: &mut Vec<(String, f64)>) {
    match value {
        Json::Obj(fields) => {
            for (key, v) in fields {
                if is_environment(key) {
                    continue;
                }
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                match v {
                    Json::Num(n) if is_metric(key) => out.push((child, *n)),
                    _ => metrics(v, &child, out),
                }
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                let label = match v {
                    Json::Obj(fields) => label_of(fields).unwrap_or_else(|| i.to_string()),
                    _ => i.to_string(),
                };
                metrics(v, &format!("{path}[{label}]"), out);
            }
        }
        _ => {}
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_diff OLD.json NEW.json [--tolerance PCT]\n       \
         bench_diff --store OLD_DIR NEW_DIR [--tolerance PCT]"
    );
    ExitCode::from(2)
}

/// Loads one JSON report side as `path -> value` metric leaves, with a
/// one-line diagnostic (and no panic) for every way the artifact can be
/// bad: missing, unreadable, empty, or unparseable.
fn load_report(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|err| format!("bench_diff: cannot read {path}: {err}"))?;
    if text.trim().is_empty() {
        return Err(format!(
            "bench_diff: {path} is empty (interrupted run or truncated write?)"
        ));
    }
    let v = parse(&text).map_err(|err| format!("bench_diff: {path}: {err}"))?;
    let mut m = Vec::new();
    metrics(&v, "", &mut m);
    Ok(m)
}

/// Loads one cell-store side as `key.field -> value` numeric leaves.
fn load_store(dir: &str) -> Result<Vec<(String, f64)>, String> {
    let path = Path::new(dir);
    if !path.is_dir() {
        return Err(format!("bench_diff: store {dir} does not exist"));
    }
    let store = CellStore::open(path)
        .map_err(|err| format!("bench_diff: cannot open store {dir}: {err}"))?;
    let entries = store
        .entries()
        .map_err(|err| format!("bench_diff: cannot scan store {dir}: {err}"))?;
    if entries.is_empty() {
        return Err(format!("bench_diff: store {dir} contains no cells"));
    }
    let mut out = Vec::new();
    for entry in entries {
        for (field, value) in &entry.fields {
            if let Some(n) = decode_numeric(value) {
                out.push((format!("{}.{field}", entry.key), n));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Compares two flattened metric sides and prints the drift report.
fn diff_sides(
    old_side: &[(String, f64)],
    new_side: &[(String, f64)],
    old_path: &str,
    new_path: &str,
    tolerance: f64,
) -> ExitCode {
    let mut drifted = 0usize;
    let mut compared = 0usize;
    for (key, old) in old_side {
        let Some((_, new)) = new_side.iter().find(|(k, _)| k == key) else {
            eprintln!("warning: {key} only in {old_path}");
            continue;
        };
        compared += 1;
        let base = old.abs().max(1e-9);
        let drift = (new - old).abs() / base * 100.0;
        if drift > tolerance {
            drifted += 1;
            println!("DRIFT {key}: {old:.4} -> {new:.4} ({drift:+.2}%)");
        }
    }
    for (key, _) in new_side {
        if !old_side.iter().any(|(k, _)| k == key) {
            eprintln!("warning: {key} only in {new_path}");
        }
    }

    println!(
        "bench_diff: {compared} metric(s) compared, {drifted} drifted beyond {tolerance}% \
         ({old_path} -> {new_path})"
    );
    if drifted > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 1.0f64;
    if let Some(pos) = args.iter().position(|a| a == "--tolerance") {
        if pos + 1 >= args.len() {
            return usage();
        }
        match args.remove(pos + 1).parse::<f64>() {
            Ok(t) if t >= 0.0 => tolerance = t,
            _ => return usage(),
        }
        args.remove(pos);
    }
    let store_mode = args
        .iter()
        .position(|a| a == "--store")
        .map(|pos| args.remove(pos))
        .is_some();
    let [old_path, new_path] = args.as_slice() else {
        return usage();
    };

    let load = if store_mode { load_store } else { load_report };
    let mut sides = Vec::new();
    for path in [old_path, new_path] {
        match load(path) {
            Ok(m) => sides.push(m),
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::from(EXIT_BAD_INPUT);
            }
        }
    }
    let new_side = sides.pop().expect("two sides parsed");
    let old_side = sides.pop().expect("two sides parsed");
    diff_sides(&old_side, &new_side, old_path, new_path, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_report_shape() {
        let v = parse(
            r#"{"schema": "x", "ranking": [{"configuration": "a", "misp_per_kuops": 1.5, "upc": 2.0}], "headline": null}"#,
        )
        .unwrap();
        let mut m = Vec::new();
        metrics(&v, "", &mut m);
        assert_eq!(m.len(), 2);
        assert!(m.iter().any(
            |(k, v)| k == "ranking[configuration=a].misp_per_kuops" && (*v - 1.5).abs() < 1e-12
        ));
    }

    #[test]
    fn environment_fields_are_ignored() {
        let v = parse(r#"{"threads": 8, "total_wall_clock_seconds": 3.2, "upc": 1.0}"#).unwrap();
        let mut m = Vec::new();
        metrics(&v, "", &mut m);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].0, "upc");
    }

    #[test]
    fn label_matching_survives_reordering() {
        let a =
            parse(r#"{"r": [{"bench": "x", "misp": 1.0}, {"bench": "y", "misp": 2.0}]}"#).unwrap();
        let b =
            parse(r#"{"r": [{"bench": "y", "misp": 2.0}, {"bench": "x", "misp": 1.0}]}"#).unwrap();
        let (mut ma, mut mb) = (Vec::new(), Vec::new());
        metrics(&a, "", &mut ma);
        metrics(&b, "", &mut mb);
        for (k, v) in &ma {
            let (_, w) = mb.iter().find(|(kb, _)| kb == k).expect("matched by label");
            assert!((v - w).abs() < 1e-12);
        }
    }
}
