//! The experiment runner.
//!
//! ```text
//! experiments [--csv DIR] [--threads N] [--json FILE]
//!             [--store DIR | --resume] <id>... | all | list
//! experiments --list
//! experiments serve [serve args...]
//!
//!   SCALE=2              double the per-benchmark uop budget
//!   EXP_BENCH=all        sweep all 110 benchmarks instead of 2 per suite
//!   THREADS=8            default worker count (--threads overrides)
//!   TUNE_PRESET=quick    search space for the `tune` experiment
//!                        (headline | quick | wide; default headline)
//!   CELL_STORE=DIR       same as --store DIR
//!   FAULT_PLAN=SPEC      deterministic fault injection (testing only;
//!                        see `replay::fault`)
//! ```
//!
//! `--list` (or the `list` subcommand) enumerates every runnable
//! experiment *and* every available benchmark per suite, so neither needs
//! discovering by reading source.
//!
//! Every run reports per-experiment wall-clock on stderr. Runs that
//! include `headline` (or pass an explicit `--json FILE`) also write a
//! machine-readable report — wall-clock per experiment plus the headline
//! misp/Kuops and uPC — so the perf trajectory is tracked across commits;
//! the default `BENCH_headline.json` is never clobbered by runs without
//! headline metrics. The `tracecmp` and `tune` experiments additionally
//! write their own thread-count-independent reports
//! (`BENCH_tracecmp.json`, `BENCH_tune.json`).
//!
//! `--store DIR` (or `--resume`, which defaults the directory to
//! `.cellstore`) backs the run with a crash-safe incremental cell store:
//! every (spec × benchmark × config) cell persists its result to disk
//! under a content hash, so a killed run picks up where it left off —
//! re-runs recompute only the missing cells and produce byte-identical
//! artifacts.
//!
//! `experiments serve ...` hands off to the `serve` binary (built from
//! `crates/serve`, expected next to this executable): the long-running
//! prediction service whose result cache is the same cell store — see
//! `docs/SERVING.md`.

use std::io::Write;
use std::sync::Arc;
use std::time::Instant;

use sim::experiments::headline::HeadlineMetrics;
use sim::experiments::{all, by_id, ExpEnv, Experiment};
use sim::CellStore;

const DEFAULT_JSON_PATH: &str = "BENCH_headline.json";
const DEFAULT_STORE_DIR: &str = ".cellstore";

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--csv DIR] [--threads N] [--json FILE] [--store DIR | --resume] \
         <id>... | all | list"
    );
    eprintln!("       experiments --list   (enumerate experiments and benchmarks)");
    eprintln!("       experiments serve [args...]   (prediction service; see docs/SERVING.md)");
    eprintln!("experiments:");
    for e in all() {
        eprintln!("  {:<8} {}", e.id, e.title);
    }
    std::process::exit(2);
}

/// Enumerates every runnable experiment and every available benchmark.
fn print_inventory() {
    println!("experiments:");
    for e in all() {
        println!("  {:<9} {}", e.id, e.title);
    }
    println!("\nbenchmarks (EXP_BENCH=all sweeps every one; fast set takes 2 per suite):");
    let benchmarks = workloads::all_benchmarks();
    for suite in workloads::Suite::ALL {
        let names: Vec<&str> = benchmarks
            .iter()
            .filter(|b| b.suite == suite)
            .map(|b| b.name.as_str())
            .collect();
        println!(
            "  {:<6} ({:>3}): {}",
            suite.label(),
            names.len(),
            names.join(" ")
        );
    }
}

/// Extracts the value of `--flag VALUE` from `args`, removing both tokens.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        usage();
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Removes a bare `--flag` switch from `args`, reporting its presence.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    match args.iter().position(|a| a == flag) {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    }
}

struct Timing {
    id: &'static str,
    seconds: f64,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_report(
    path: &str,
    env: &ExpEnv,
    timings: &[Timing],
    headline: Option<&HeadlineMetrics>,
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_headline_v1\",\n");
    out.push_str(&format!("  \"threads\": {},\n", env.threads));
    out.push_str(&format!("  \"scale\": {},\n", env.scale));
    out.push_str(&format!("  \"bench_set\": \"{:?}\",\n", env.bench_set));
    out.push_str("  \"experiments\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"wall_clock_seconds\": {:.3}}}{comma}\n",
            json_escape(t.id),
            t.seconds
        ));
    }
    out.push_str("  ],\n");
    let total: f64 = timings.iter().map(|t| t.seconds).sum();
    out.push_str(&format!("  \"total_wall_clock_seconds\": {total:.3},\n"));
    match headline {
        Some(m) => {
            out.push_str("  \"headline\": {\n");
            out.push_str(&format!(
                "    \"baseline_misp_per_kuops\": {:.4},\n",
                m.baseline_misp_per_kuops
            ));
            out.push_str(&format!(
                "    \"hybrid_misp_per_kuops\": {:.4},\n",
                m.hybrid_misp_per_kuops
            ));
            out.push_str(&format!(
                "    \"misp_reduction_percent\": {:.2},\n",
                m.misp_reduction_percent
            ));
            out.push_str(&format!(
                "    \"baseline_uops_per_flush\": {:.2},\n",
                m.baseline_uops_per_flush
            ));
            out.push_str(&format!(
                "    \"hybrid_uops_per_flush\": {:.2},\n",
                m.hybrid_uops_per_flush
            ));
            out.push_str(&format!("    \"baseline_upc\": {:.4},\n", m.baseline_upc));
            out.push_str(&format!("    \"hybrid_upc\": {:.4}\n", m.hybrid_upc));
            out.push_str("  }\n");
        }
        None => out.push_str("  \"headline\": null\n"),
    }
    out.push_str("}\n");
    std::fs::write(path, out)
}

/// Hands `experiments serve ...` off to the sibling `serve` binary.
///
/// `serve` lives in `crates/serve`, which depends on `sim` — linking it
/// in here would be a dependency cycle, so the subcommand runs the
/// binary that cargo placed next to this one instead. On Unix it
/// `exec`s, replacing this process: signals (`SIGTERM` for the graceful
/// drain) and the exit code then belong to the server itself, with no
/// wrapper process left to orphan it.
fn delegate_serve(args: &[String]) -> ! {
    let serve_bin = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("serve")))
        .filter(|p| p.exists());
    let Some(serve_bin) = serve_bin else {
        eprintln!(
            "experiments serve: no `serve` binary next to this executable; \
             build it with `cargo build -p serve`"
        );
        std::process::exit(2);
    };
    let mut cmd = std::process::Command::new(&serve_bin);
    cmd.args(args);
    #[cfg(unix)]
    {
        use std::os::unix::process::CommandExt;
        let err = cmd.exec();
        eprintln!("experiments serve: exec {}: {err}", serve_bin.display());
        std::process::exit(2);
    }
    #[cfg(not(unix))]
    {
        let status = cmd.status().unwrap_or_else(|e| {
            eprintln!("experiments serve: running {}: {e}", serve_bin.display());
            std::process::exit(2);
        });
        std::process::exit(status.code().unwrap_or(1));
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "serve") {
        delegate_serve(&args[1..]);
    }
    if args.iter().any(|a| a == "--list") {
        print_inventory();
        return;
    }
    let csv_dir = take_flag(&mut args, "--csv");
    let explicit_json = take_flag(&mut args, "--json");
    let json_path = explicit_json
        .clone()
        .unwrap_or_else(|| DEFAULT_JSON_PATH.to_string());
    let threads =
        take_flag(&mut args, "--threads").map(|v| v.parse::<usize>().unwrap_or_else(|_| usage()));
    let resume = take_switch(&mut args, "--resume");
    let store_dir =
        take_flag(&mut args, "--store").or_else(|| resume.then(|| DEFAULT_STORE_DIR.to_string()));
    if args.is_empty() {
        usage();
    }
    if args[0] == "list" {
        print_inventory();
        return;
    }

    let selected: Vec<Experiment> = if args.iter().any(|a| a == "all") {
        all()
    } else {
        args.iter()
            .map(|id| by_id(id).unwrap_or_else(|| usage()))
            .collect()
    };

    let mut env = ExpEnv::from_env();
    if let Some(t) = threads {
        env = env.with_threads(t);
    }
    let store: Option<Arc<CellStore>> = store_dir.map(|dir| {
        let store = CellStore::open(dir.as_ref()).unwrap_or_else(|e| {
            eprintln!("experiments: cannot open cell store {dir}: {e}");
            std::process::exit(2);
        });
        Arc::new(store)
    });
    if let Some(s) = &store {
        env = env.with_store(Arc::clone(s));
        eprintln!("# cell store: {}", s.dir().display());
    }
    eprintln!(
        "# running {} experiment(s), scale {}, bench set {:?}, {} thread(s)",
        selected.len(),
        env.scale,
        env.bench_set,
        env.threads
    );

    let mut timings: Vec<Timing> = Vec::with_capacity(selected.len());
    let mut headline_metrics: Option<HeadlineMetrics> = None;
    for e in selected {
        let start = Instant::now();
        // The headline experiment also yields machine-readable metrics;
        // run it through the metrics entry point so they land in the
        // JSON report without a second (expensive) run.
        let tables = if e.id == "headline" {
            let (tables, metrics) = sim::experiments::headline::run_with_metrics(&env);
            headline_metrics = Some(metrics);
            tables
        } else {
            (e.run)(&env)
        };
        let elapsed = start.elapsed();
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let suffix = if tables.len() > 1 {
                    format!("_{}", (b'a' + i as u8) as char)
                } else {
                    String::new()
                };
                let path = format!("{dir}/{}{suffix}.csv", e.id);
                let mut f = std::fs::File::create(&path).expect("create csv file");
                f.write_all(t.to_csv().as_bytes()).expect("write csv");
                eprintln!("# wrote {path}");
            }
        }
        eprintln!("# {} finished in {:.1}s\n", e.id, elapsed.as_secs_f64());
        timings.push(Timing {
            id: e.id,
            seconds: elapsed.as_secs_f64(),
        });
    }

    // The default-path file is the headline perf tracker: only overwrite
    // it when this run produced headline metrics, so `experiments fig5`
    // doesn't clobber a previously recorded headline block with null.
    // An explicit `--json PATH` always writes.
    if explicit_json.is_some() || headline_metrics.is_some() {
        match write_report(&json_path, &env, &timings, headline_metrics.as_ref()) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(err) => eprintln!("# could not write {json_path}: {err}"),
        }
    }

    if let Some(s) = &store {
        eprintln!(
            "# cell store: {} hit(s), {} computed ({})",
            s.hits(),
            s.misses(),
            s.dir().display()
        );
    }
}
