//! The experiment runner.
//!
//! ```text
//! experiments [--csv DIR] <id>... | all | list
//!
//!   SCALE=2        double the per-benchmark uop budget
//!   EXP_BENCH=all  sweep all 110 benchmarks instead of 2 per suite
//! ```

use std::io::Write;
use std::time::Instant;

use sim::experiments::{all, by_id, Experiment, ExpEnv};

fn usage() -> ! {
    eprintln!("usage: experiments [--csv DIR] <id>... | all | list");
    eprintln!("experiments:");
    for e in all() {
        eprintln!("  {:<8} {}", e.id, e.title);
    }
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut csv_dir: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        if pos + 1 >= args.len() {
            usage();
        }
        csv_dir = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    if args.is_empty() {
        usage();
    }
    if args[0] == "list" {
        for e in all() {
            println!("{:<8} {}", e.id, e.title);
        }
        return;
    }

    let selected: Vec<Experiment> = if args.iter().any(|a| a == "all") {
        all()
    } else {
        args.iter()
            .map(|id| by_id(id).unwrap_or_else(|| usage()))
            .collect()
    };

    let env = ExpEnv::from_env();
    eprintln!(
        "# running {} experiment(s), scale {}, bench set {:?}",
        selected.len(),
        env.scale,
        env.bench_set
    );

    for e in selected {
        let start = Instant::now();
        let tables = (e.run)(&env);
        let elapsed = start.elapsed();
        for (i, t) in tables.iter().enumerate() {
            println!("{}", t.render());
            if let Some(dir) = &csv_dir {
                std::fs::create_dir_all(dir).expect("create csv dir");
                let suffix = if tables.len() > 1 { format!("_{}", (b'a' + i as u8) as char) } else { String::new() };
                let path = format!("{dir}/{}{suffix}.csv", e.id);
                let mut f = std::fs::File::create(&path).expect("create csv file");
                f.write_all(t.to_csv().as_bytes()).expect("write csv");
                eprintln!("# wrote {path}");
            }
        }
        eprintln!("# {} finished in {:.1}s\n", e.id, elapsed.as_secs_f64());
    }
}
