//! Plain-text and CSV rendering of experiment results.

/// Escapes a string for embedding in a JSON string literal (backslashes,
/// quotes, newlines — the characters our labels and panic payloads can
/// actually contain).
#[must_use]
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A rectangular results table with a title and footnotes.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (e.g. `Figure 5 — ...`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells; each row should match `headers` in length.
    pub rows: Vec<Vec<String>>,
    /// Footnotes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders an aligned ASCII table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                if i == 0 {
                    line.push_str(&format!("{cell:<w$}"));
                } else {
                    line.push_str(&format!("  {cell:>w$}"));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimal places (the paper's usual precision).
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float as a percentage with 1 decimal place.
#[must_use]
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["alpha".into(), "1.50".into()]);
        t.row(vec!["beta,x".into(), "2.25".into()]);
        t.note("a footnote");
        t
    }

    #[test]
    fn render_contains_all_cells() {
        let s = sample().render();
        assert!(s.contains("Demo"));
        assert!(s.contains("alpha"));
        assert!(s.contains("2.25"));
        assert!(s.contains("footnote"));
    }

    #[test]
    fn csv_escapes_commas() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("\"beta,x\""));
    }

    #[test]
    fn columns_align() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        // Header and first data line end at the same column.
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(pct(39.01), "39.0%");
    }
}
