//! Execution-driven simulation and the experiment harness reproducing every
//! table and figure of the prophet/critic paper (ISCA 2004).
//!
//! Two simulators:
//!
//! * [`run_accuracy`] — the fast accuracy model with full wrong-path fetch
//!   (the paper's §6 requirement), producing misp/Kuops, critique
//!   distributions and filter rates.
//! * [`run_cycles`] — the cycle-level model on the Table 2 machine,
//!   producing uPC, flush distances and fetched-uop counts.
//!
//! The [`experiments`] module defines one entry point per paper artifact
//! (`fig5` … `fig10`, `table1` … `table4`, `headline`); the `experiments`
//! binary runs them from the command line:
//!
//! ```text
//! cargo run -p sim --release --bin experiments -- fig5
//! SCALE=4 cargo run -p sim --release --bin experiments -- all
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
pub mod cycle;
pub mod experiments;
mod metrics;
pub mod table;

pub use accuracy::{run_accuracy, SimConfig};
pub use cycle::{run_cycles, CycleConfig, CycleResult};
pub use metrics::{percent_reduction, AccuracyResult};
