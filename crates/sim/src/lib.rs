//! Execution-driven simulation and the parallel experiment engine
//! reproducing every table and figure of the prophet/critic paper
//! (ISCA 2004).
//!
//! # Simulators
//!
//! * [`run_accuracy`] — the fast accuracy model with full wrong-path fetch
//!   (the paper's §6 requirement), producing misp/Kuops, critique
//!   distributions and filter rates.
//! * [`run_cycles`] — the cycle-level model on the Table 2 machine,
//!   producing uPC, flush distances and fetched-uop counts.
//!
//! # The experiment engine
//!
//! The paper's evaluation is a grid: benchmark suites × dozens of
//! prophet/critic configurations (Figure 6 alone sweeps 78 combinations).
//! Two layers make that grid fast here:
//!
//! * **Static dispatch on the hot path.** Experiment specs build
//!   [`prophet_critic::Hybrid`] — the engine monomorphized over the
//!   [`prophet_critic::AnyProphet`]/[`prophet_critic::AnyCritic`] enums —
//!   so the per-branch `predict`/`update`/`critique` calls compile to
//!   direct, inlinable code instead of `Box<dyn ...>` virtual calls.
//! * **Deterministic parallel fan-out.** Every grid cell (one spec on one
//!   benchmark) is an independent seeded simulation, so
//!   [`runner::par_map`] spreads cells over OS threads with an atomic
//!   work-stealing cursor and collects results **by input index**. The
//!   outcome is bit-identical for any thread count, which the determinism
//!   tests pin against the sequential reference
//!   ([`experiments::common::pooled_accuracy_seq`]).
//!
//! The grid entry points are [`experiments::common::run_matrix`] (per-cell
//! results), [`experiments::common::run_grid`] (pooled per spec) and
//! [`experiments::common::pooled_accuracy`]; every figure/table module
//! routes through them, so `THREADS=1` vs `THREADS=32` changes wall-clock
//! only, never numbers.
//!
//! # Running experiments
//!
//! The [`experiments`] module defines one entry point per paper artifact
//! (`fig5` … `fig10`, `table1` … `table4`, `headline`); the `experiments`
//! binary runs them from the command line and reports per-experiment
//! wall-clock plus a machine-readable `BENCH_headline.json`:
//!
//! ```text
//! cargo run -p sim --release --bin experiments -- headline
//! cargo run -p sim --release --bin experiments -- --threads 8 fig6
//! SCALE=4 cargo run -p sim --release --bin experiments -- all
//! ```
//!
//! # Calibration
//!
//! The [`tune`] module is the deterministic configuration search behind
//! `experiments tune`: a staged sweep (coarse grid → local refinement)
//! of hybrid parameters against the 16 KB 2Bc-gskew baseline, scored
//! over warm-up × workload-mix scenarios with corpus-backed H2P slices.
//! Its winner is promoted into `HybridSpec::tuned_headline`, which the
//! `headline` experiment builds by default. See `docs/EXPERIMENTS.md`
//! for the catalog and `BENCH_*.json` schemas.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
pub mod cycle;
pub mod experiments;
mod metrics;
pub mod runner;
pub mod store;
pub mod table;
pub mod tune;

pub use accuracy::{run_accuracy, run_accuracy_observed, SimConfig};
pub use cycle::{
    run_cycles, run_cycles_trace, run_pipeline, CycleConfig, CycleResult, ExecModel, PipelineModel,
    TraceModel,
};
pub use metrics::{percent_reduction, AccuracyResult};
pub use runner::{default_threads, par_map, try_par_map, CellFailure};
pub use store::{decode_numeric, CellEntry, CellKey, CellPayload, CellStore, ENGINE_VERSION};
