//! The crash-safe incremental cell store: checkpoint/resume for the
//! experiment grid.
//!
//! Every grid cell — one `(spec × benchmark × config)` simulation — is
//! deterministic in its inputs, so its result can be cached on disk and
//! reused by any later run of the same cell. The store turns that into
//! checkpoint/resume for free: kill a grid mid-run, rerun the same
//! command with the same store, and only the missing cells recompute;
//! the final artifacts are byte-identical to an uninterrupted run.
//!
//! Three properties carry the design:
//!
//! * **Content-addressed keys.** A [`CellKey`] hashes the experiment
//!   name, the cell's spec fingerprint (`HybridSpec`'s `Debug` output —
//!   every field, so any spec change changes the key), the workload
//!   seed, the uop budget and [`ENGINE_VERSION`]. Changing *anything*
//!   that could change the numbers changes the key, so a stale store
//!   can only ever cause recomputation, never wrong results.
//! * **Checksummed records.** A cell file carries its payload length and
//!   FNV-1a checksum plus the full canonical key; [`CellStore::get`]
//!   re-verifies all three, so a torn write, truncation or bit flip at
//!   *any* byte offset degrades to a cache miss (the sweep tests pin
//!   this), and an fnv64 filename collision degrades to recomputation
//!   rather than cross-cell contamination.
//! * **Atomic writes.** [`CellStore::put`] writes to a `.tmp-*` file in
//!   the store directory and `rename`s it into place — on the same
//!   filesystem, so a crash leaves either the old state or the new
//!   state, never a half-written record. Stale temp files from killed
//!   runs are swept on [`CellStore::open`].
//!
//! Failed (panicked) cells are deliberately **not** stored: a resume
//! retries them, which is what lets a run killed by a fault plan heal on
//! the next invocation.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use replay::checksum::fnv1a;

use crate::cycle::CycleResult;
use crate::metrics::AccuracyResult;

/// Version of the simulation numerics baked into every cell key.
///
/// Bump this whenever any change could alter a cell's counters — new
/// pipeline behaviour, changed warm-up policy, different RNG — so stale
/// stores silently become cold instead of silently becoming wrong.
pub const ENGINE_VERSION: u32 = 1;

/// The identity of one grid cell, hashed into the store filename.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellKey {
    /// Experiment family (e.g. `"h2p"`, `"matrix"`, `"cycle"`).
    pub experiment: String,
    /// Cell fingerprint: the spec's `Debug` form plus the benchmark name
    /// (every spec field participates, so any config change misses).
    pub cell: String,
    /// The workload seed driving the cell's simulation.
    pub seed: u64,
    /// The committed-uop budget (scale changes must miss).
    pub budget: u64,
}

impl CellKey {
    /// Builds a key; newlines in the free-text parts are flattened so the
    /// canonical form stays line-oriented.
    #[must_use]
    pub fn new(experiment: &str, cell: &str, seed: u64, budget: u64) -> Self {
        Self {
            experiment: experiment.replace('\n', " "),
            cell: cell.replace('\n', " "),
            seed,
            budget,
        }
    }

    /// The canonical single-line form stored inside the record and
    /// compared on every read.
    #[must_use]
    pub fn canonical(&self) -> String {
        format!(
            "exp={} cell={} seed={:#x} budget={} engine={}",
            self.experiment, self.cell, self.seed, self.budget, ENGINE_VERSION
        )
    }

    /// The 64-bit content hash of the canonical form.
    #[must_use]
    pub fn hash(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// The record filename inside the store directory.
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{:016x}.cell", self.hash())
    }
}

/// A result type that round-trips losslessly through a cell record.
///
/// Implementations must be **exact**: integers as decimal, floats via
/// [`f64::to_bits`], so a cached cell is bit-identical to a recomputed
/// one (the resume tests compare final JSON artifacts byte-for-byte).
pub trait CellPayload: Sized {
    /// Serializes the result into the record payload.
    fn to_cell_bytes(&self) -> Vec<u8>;
    /// Decodes a payload; `None` on any structural mismatch.
    fn from_cell_bytes(bytes: &[u8]) -> Option<Self>;
}

const CELL_MAGIC: &str = "pcr-cell v1";

/// An on-disk store of finished cell results with hit/miss accounting.
#[derive(Debug)]
pub struct CellStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    nonce: AtomicU64,
}

impl CellStore {
    /// Opens (creating if needed) a store directory and sweeps temp files
    /// left behind by killed runs.
    ///
    /// # Errors
    ///
    /// I/O errors creating or scanning the directory.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().starts_with(".tmp-") {
                // Best-effort: a stale temp file is garbage, not state.
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(Self {
            dir: dir.to_path_buf(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            nonce: AtomicU64::new(0),
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Cells resolved from disk so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cells that had to be (re)computed so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Looks `key` up and decodes its payload. Any failure along the way
    /// — missing file, torn header, checksum or key mismatch, undecodable
    /// payload — is a cache miss, never an error: the cell simply
    /// recomputes.
    pub fn get<R: CellPayload>(&self, key: &CellKey) -> Option<R> {
        let decoded = self
            .read_verified(key)
            .and_then(|payload| R::from_cell_bytes(&payload));
        if decoded.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        decoded
    }

    fn read_verified(&self, key: &CellKey) -> Option<Vec<u8>> {
        let bytes = std::fs::read(self.dir.join(key.file_name())).ok()?;
        let (key_line, sum_line, payload) = split_record(&bytes)?;
        if key_line != format!("key={}", key.canonical()) {
            return None;
        }
        let rest = sum_line.strip_prefix("len=")?;
        let (len_s, fnv_s) = rest.split_once(" fnv1a=0x")?;
        let len: usize = len_s.parse().ok()?;
        let fnv = u64::from_str_radix(fnv_s, 16).ok()?;
        if payload.len() != len || fnv1a(payload) != fnv {
            return None;
        }
        Some(payload.to_vec())
    }

    /// Persists one finished cell atomically (tmp file + rename). Safe to
    /// call concurrently from grid workers: last rename wins, and every
    /// candidate record for the same key is identical anyway.
    ///
    /// # Errors
    ///
    /// I/O errors writing or renaming the record.
    pub fn put<R: CellPayload>(&self, key: &CellKey, value: &R) -> std::io::Result<()> {
        let payload = value.to_cell_bytes();
        let mut record = format!(
            "{CELL_MAGIC}\nkey={}\nlen={} fnv1a={:#x}\n---\n",
            key.canonical(),
            payload.len(),
            fnv1a(&payload)
        )
        .into_bytes();
        record.extend_from_slice(&payload);

        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(
            ".tmp-{:016x}-{}-{nonce}",
            key.hash(),
            std::process::id()
        ));
        std::fs::write(&tmp, &record)?;
        std::fs::rename(&tmp, self.dir.join(key.file_name()))
    }

    /// Reads every valid record in the store — the `bench_diff --store`
    /// path. Corrupt or foreign files are skipped (they are misses, not
    /// errors); entries come back sorted by canonical key.
    ///
    /// # Errors
    ///
    /// I/O errors scanning the directory.
    pub fn entries(&self) -> std::io::Result<Vec<CellEntry>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("cell") {
                continue;
            }
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            let Some(parsed) = CellEntry::parse(&bytes) else {
                continue;
            };
            out.push(parsed);
        }
        out.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(out)
    }
}

/// One decoded store record: canonical key plus raw `field=value` pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellEntry {
    /// The canonical [`CellKey`] line the record was stored under.
    pub key: String,
    /// Payload fields in record order, undecoded.
    pub fields: Vec<(String, String)>,
}

impl CellEntry {
    fn parse(bytes: &[u8]) -> Option<Self> {
        let (key_line, sum_line, payload) = split_record(bytes)?;
        let key = key_line.strip_prefix("key=")?.to_string();
        let rest = sum_line.strip_prefix("len=")?;
        let (len_s, fnv_s) = rest.split_once(" fnv1a=0x")?;
        if payload.len() != len_s.parse::<usize>().ok()?
            || fnv1a(payload) != u64::from_str_radix(fnv_s, 16).ok()?
        {
            return None;
        }
        let text = std::str::from_utf8(payload).ok()?;
        let mut fields = Vec::new();
        for line in text.lines() {
            let (k, v) = line.split_once('=')?;
            fields.push((k.to_string(), v.to_string()));
        }
        Some(Self { key, fields })
    }

    /// The value of one payload field, if present.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Decodes a payload field value as a number: plain decimal `u64` or an
/// `f:`-prefixed [`f64::to_bits`] hex float (list-valued fields decode as
/// `None`). `bench_diff --store` uses this to treat counters and rates
/// uniformly.
#[must_use]
pub fn decode_numeric(value: &str) -> Option<f64> {
    if let Some(hex) = value.strip_prefix("f:") {
        return u64::from_str_radix(hex, 16).ok().map(f64::from_bits);
    }
    value.parse::<u64>().ok().map(|v| v as f64)
}

/// Splits a record into `(key line, checksum line, payload)`, validating
/// the magic and separator lines.
fn split_record(bytes: &[u8]) -> Option<(&str, &str, &[u8])> {
    let mut rest = bytes;
    let mut lines: [&str; 4] = [""; 4];
    for slot in &mut lines {
        let pos = rest.iter().position(|&b| b == b'\n')?;
        *slot = std::str::from_utf8(&rest[..pos]).ok()?;
        rest = &rest[pos + 1..];
    }
    if lines[0] != CELL_MAGIC || lines[3] != "---" {
        return None;
    }
    Some((lines[1], lines[2], rest))
}

// ---- exact (lossless) field codecs ----------------------------------------

/// Formats an `f64` losslessly (`f:` + 16 hex digits of the bit pattern).
fn fmt_f64(x: f64) -> String {
    format!("f:{:016x}", x.to_bits())
}

fn parse_f64(s: &str) -> Option<f64> {
    u64::from_str_radix(s.strip_prefix("f:")?, 16)
        .ok()
        .map(f64::from_bits)
}

fn parse_u64_list<const N: usize>(s: &str) -> Option<[u64; N]> {
    let mut out = [0u64; N];
    let mut parts = s.split(',');
    for slot in &mut out {
        *slot = parts.next()?.parse().ok()?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

fn parse_f64_list<const N: usize>(s: &str) -> Option<[f64; N]> {
    let mut out = [0f64; N];
    let mut parts = s.split(',');
    for slot in &mut out {
        *slot = parse_f64(parts.next()?)?;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

struct FieldMap<'a>(Vec<(&'a str, &'a str)>);

impl<'a> FieldMap<'a> {
    fn parse(bytes: &'a [u8]) -> Option<Self> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut fields = Vec::new();
        for line in text.lines() {
            fields.push(line.split_once('=')?);
        }
        Some(Self(fields))
    }

    fn get(&self, name: &str) -> Option<&'a str> {
        self.0.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }

    fn u64(&self, name: &str) -> Option<u64> {
        self.get(name)?.parse().ok()
    }

    fn f64(&self, name: &str) -> Option<f64> {
        parse_f64(self.get(name)?)
    }
}

impl CellPayload for AccuracyResult {
    fn to_cell_bytes(&self) -> Vec<u8> {
        let c = self.critiques.counts();
        format!(
            "benchmark={}\n\
             committed_uops={}\n\
             committed_branches={}\n\
             final_mispredicts={}\n\
             prophet_mispredicts={}\n\
             fetched_uops={}\n\
             btb_redirects={}\n\
             critic_overrides={}\n\
             ftq_entries_flushed={}\n\
             btb_miss_rate={}\n\
             critiques={},{},{},{},{},{}\n",
            self.benchmark,
            self.committed_uops,
            self.committed_branches,
            self.final_mispredicts,
            self.prophet_mispredicts,
            self.fetched_uops,
            self.btb_redirects,
            self.critic_overrides,
            self.ftq_entries_flushed,
            fmt_f64(self.btb_miss_rate),
            c[0],
            c[1],
            c[2],
            c[3],
            c[4],
            c[5],
        )
        .into_bytes()
    }

    fn from_cell_bytes(bytes: &[u8]) -> Option<Self> {
        let f = FieldMap::parse(bytes)?;
        Some(Self {
            benchmark: f.get("benchmark")?.to_string(),
            committed_uops: f.u64("committed_uops")?,
            committed_branches: f.u64("committed_branches")?,
            final_mispredicts: f.u64("final_mispredicts")?,
            prophet_mispredicts: f.u64("prophet_mispredicts")?,
            fetched_uops: f.u64("fetched_uops")?,
            btb_redirects: f.u64("btb_redirects")?,
            critic_overrides: f.u64("critic_overrides")?,
            ftq_entries_flushed: f.u64("ftq_entries_flushed")?,
            btb_miss_rate: f.f64("btb_miss_rate")?,
            critiques: prophet_critic::CritiqueStats::from_counts(parse_u64_list::<6>(
                f.get("critiques")?,
            )?),
        })
    }
}

impl CellPayload for CycleResult {
    fn to_cell_bytes(&self) -> Vec<u8> {
        let b = &self.bubbles;
        format!(
            "benchmark={}\n\
             cycles={}\n\
             committed_uops={}\n\
             final_mispredicts={}\n\
             overrides={}\n\
             fetched_uops={}\n\
             forced_critiques={}\n\
             critiques={}\n\
             data_counts={},{},{}\n\
             bubbles={},{},{},{},{},{}\n",
            self.benchmark,
            fmt_f64(self.cycles),
            self.committed_uops,
            self.final_mispredicts,
            self.overrides,
            self.fetched_uops,
            self.forced_critiques,
            self.critiques,
            self.data_counts.0,
            self.data_counts.1,
            self.data_counts.2,
            fmt_f64(b.icache),
            fmt_f64(b.ftq_full),
            fmt_f64(b.ftq_empty),
            fmt_f64(b.window_full),
            fmt_f64(b.redirect),
            fmt_f64(b.flush_restart),
        )
        .into_bytes()
    }

    fn from_cell_bytes(bytes: &[u8]) -> Option<Self> {
        let f = FieldMap::parse(bytes)?;
        let dc = parse_u64_list::<3>(f.get("data_counts")?)?;
        let bb = parse_f64_list::<6>(f.get("bubbles")?)?;
        Some(Self {
            benchmark: f.get("benchmark")?.to_string(),
            cycles: f.f64("cycles")?,
            committed_uops: f.u64("committed_uops")?,
            final_mispredicts: f.u64("final_mispredicts")?,
            overrides: f.u64("overrides")?,
            fetched_uops: f.u64("fetched_uops")?,
            forced_critiques: f.u64("forced_critiques")?,
            critiques: f.u64("critiques")?,
            data_counts: (dc[0], dc[1], dc[2]),
            bubbles: frontend::pipeline::BubbleProfile {
                icache: bb[0],
                ftq_full: bb[1],
                ftq_empty: bb[2],
                window_full: bb[3],
                redirect: bb[4],
                flush_restart: bb[5],
            },
        })
    }
}

/// Maps a stored predictor name back to the `&'static str` the
/// [`predictors::DirectionPredictor`] implementations return. An unknown
/// name fails the decode (a cache miss, so the cell just recomputes) —
/// the alternative, leaking a fresh allocation per decode, is wrong for
/// a long-running server.
fn intern_predictor_name(name: &str) -> Option<&'static str> {
    const KNOWN: [&str; 10] = [
        "bimodal",
        "gas",
        "gshare",
        "tagged-gshare",
        "tage",
        "tage+h2p",
        "2bc-gskew",
        "local",
        "perceptron",
        "yags",
    ];
    KNOWN.iter().find(|k| **k == name).copied()
}

impl CellPayload for replay::ReplayResult {
    fn to_cell_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "trace={}\n\
             predictor={}\n\
             measured_uops={}\n\
             measured_conditionals={}\n\
             mispredicts={}\n\
             replayed_records={}\n\
             branches={}\n",
            self.trace,
            self.predictor,
            self.measured_uops,
            self.measured_conditionals,
            self.mispredicts,
            self.replayed_records,
            self.per_branch.len(),
        );
        for b in &self.per_branch {
            out.push_str(&format!(
                "branch={:#x},{},{},{}\n",
                b.pc, b.occurrences, b.taken, b.mispredicts
            ));
        }
        out.into_bytes()
    }

    fn from_cell_bytes(bytes: &[u8]) -> Option<Self> {
        // Decoded sequentially (not via `FieldMap`): `per_branch` can run
        // to thousands of lines and a linear-scan map would be quadratic.
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.lines();
        let mut field = |name: &str| -> Option<String> {
            lines
                .next()?
                .strip_prefix(name)?
                .strip_prefix('=')
                .map(String::from)
        };
        let trace = field("trace")?;
        let predictor = intern_predictor_name(&field("predictor")?)?;
        let measured_uops = field("measured_uops")?.parse().ok()?;
        let measured_conditionals = field("measured_conditionals")?.parse().ok()?;
        let mispredicts = field("mispredicts")?.parse().ok()?;
        let replayed_records = field("replayed_records")?.parse().ok()?;
        let branches: usize = field("branches")?.parse().ok()?;
        let mut per_branch = Vec::with_capacity(branches.min(1 << 20));
        for _ in 0..branches {
            let line = lines.next()?.strip_prefix("branch=")?;
            let mut parts = line.split(',');
            let pc = u64::from_str_radix(parts.next()?.strip_prefix("0x")?, 16).ok()?;
            let occurrences = parts.next()?.parse().ok()?;
            let taken = parts.next()?.parse().ok()?;
            let mispredicts = parts.next()?.parse().ok()?;
            if parts.next().is_some() {
                return None;
            }
            per_branch.push(replay::BranchReplay {
                pc,
                occurrences,
                taken,
                mispredicts,
            });
        }
        if lines.next().is_some() {
            return None;
        }
        Some(Self {
            trace,
            predictor,
            measured_uops,
            measured_conditionals,
            mispredicts,
            replayed_records,
            per_branch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_critic::CritiqueStats;

    fn temp_store(tag: &str) -> (PathBuf, CellStore) {
        let dir = std::env::temp_dir().join(format!("sim-store-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CellStore::open(&dir).unwrap();
        (dir, store)
    }

    fn sample_accuracy() -> AccuracyResult {
        AccuracyResult {
            benchmark: "gcc".into(),
            committed_uops: 123_456,
            committed_branches: 9_876,
            final_mispredicts: 321,
            prophet_mispredicts: 400,
            fetched_uops: 150_000,
            btb_redirects: 17,
            critic_overrides: 55,
            ftq_entries_flushed: 60,
            btb_miss_rate: 0.012_345_678_9,
            critiques: CritiqueStats::from_counts([1, 2, 3, 4, 5, 6]),
        }
    }

    #[test]
    fn replay_result_round_trips_exactly() {
        let original = replay::ReplayResult {
            trace: "gzip".into(),
            predictor: "2bc-gskew",
            measured_uops: 960_000,
            measured_conditionals: 71_000,
            mispredicts: 3_456,
            replayed_records: 88_000,
            per_branch: vec![
                replay::BranchReplay {
                    pc: 0x40_1000,
                    occurrences: 500,
                    taken: 300,
                    mispredicts: 40,
                },
                replay::BranchReplay {
                    pc: 0x40_2040,
                    occurrences: 120,
                    taken: 7,
                    mispredicts: 2,
                },
            ],
        };
        let bytes = original.to_cell_bytes();
        let back = replay::ReplayResult::from_cell_bytes(&bytes).unwrap();
        assert_eq!(back, original);
        // Same static pointer class: the name was interned, not leaked.
        assert_eq!(back.predictor, "2bc-gskew");
        // Unknown predictor names fail the decode (a miss, never a leak).
        let tampered = String::from_utf8(bytes)
            .unwrap()
            .replace("2bc-gskew", "mystery");
        assert!(replay::ReplayResult::from_cell_bytes(tampered.as_bytes()).is_none());
        // Truncated branch list fails structurally.
        let mut short = original.clone();
        short.per_branch.clear();
        let mut bytes = short.to_cell_bytes();
        bytes.extend_from_slice(b"branch=0x1,2,3\n");
        assert!(replay::ReplayResult::from_cell_bytes(&bytes).is_none());
    }

    #[test]
    fn key_changes_with_every_component() {
        let base = CellKey::new("h2p", "spec × gcc", 0x1234, 96_000);
        let variants = [
            CellKey::new("upc", "spec × gcc", 0x1234, 96_000),
            CellKey::new("h2p", "spec × swim", 0x1234, 96_000),
            CellKey::new("h2p", "spec × gcc", 0x1235, 96_000),
            CellKey::new("h2p", "spec × gcc", 0x1234, 96_001),
        ];
        for v in &variants {
            assert_ne!(base.hash(), v.hash(), "{}", v.canonical());
        }
        assert!(base
            .canonical()
            .contains(&format!("engine={ENGINE_VERSION}")));
    }

    #[test]
    fn round_trip_is_exact() {
        let (dir, store) = temp_store("roundtrip");
        let key = CellKey::new("test", "spec × gcc", 7, 1000);
        let original = sample_accuracy();
        assert!(store.get::<AccuracyResult>(&key).is_none());
        store.put(&key, &original).unwrap();
        let back: AccuracyResult = store.get(&key).unwrap();
        assert_eq!(back, original);
        assert_eq!(
            back.btb_miss_rate.to_bits(),
            original.btb_miss_rate.to_bits()
        );
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_key_is_a_miss_not_a_collision() {
        let (dir, store) = temp_store("wrongkey");
        let key = CellKey::new("test", "a", 1, 10);
        store.put(&key, &sample_accuracy()).unwrap();
        // Simulate an fnv collision: another key's lookup lands on the
        // same file. The stored canonical key must reject it.
        let other = CellKey::new("test", "b", 2, 20);
        let collided = dir.join(other.file_name());
        std::fs::rename(dir.join(key.file_name()), collided).unwrap();
        assert!(store.get::<AccuracyResult>(&other).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let (dir, store) = temp_store("sweep");
        drop(store);
        let stale = dir.join(".tmp-deadbeef-1-0");
        std::fs::write(&stale, b"half a record").unwrap();
        let _store = CellStore::open(&dir).unwrap();
        assert!(!stale.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_lists_valid_records_sorted() {
        let (dir, store) = temp_store("entries");
        let k1 = CellKey::new("test", "b-spec", 2, 20);
        let k2 = CellKey::new("test", "a-spec", 1, 10);
        store.put(&k1, &sample_accuracy()).unwrap();
        store.put(&k2, &sample_accuracy()).unwrap();
        std::fs::write(dir.join("junk.cell"), b"not a record").unwrap();
        let entries = store.entries().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].key < entries[1].key);
        assert_eq!(entries[0].field("benchmark"), Some("gcc"));
        assert_eq!(
            decode_numeric(entries[0].field("committed_uops").unwrap()),
            Some(123_456.0)
        );
        assert!(decode_numeric(entries[0].field("btb_miss_rate").unwrap()).is_some());
        assert!(decode_numeric(entries[0].field("critiques").unwrap()).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
