//! The [`PipelineModel`] trait and the thin driver loop that feeds any
//! model through the stage-accurate pipeline engine.
//!
//! The driver owns orchestration only: it moves fetched chunks into the
//! engine, drains ready critiques, forces the oldest critique when the
//! speculation buffer fills, and retires branches in order. All *timing*
//! lives in [`frontend::pipeline::FrontendPipeline`]; all *semantics*
//! (paths, predictions, outcomes) live in the model.

use frontend::pipeline::FrontendPipeline;
use uarch::{DataStream, Hierarchy};

use super::{CycleConfig, CycleResult};

/// One fetched chunk, ending at a branch.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FetchChunk {
    /// The branch instruction's address (the chunk spans the uops up to
    /// and including it).
    pub pc: u64,
    /// Uops in the chunk.
    pub uops: u64,
    /// Whether the chunk needs no later critique (a BTB miss the hybrid
    /// never predicted, or a conventional/zero-future-bit prediction
    /// critiqued in the same cycle).
    pub critiqued_at_fetch: bool,
    /// Whether fetch discovered a taken branch it had not identified
    /// (BTB miss) and must redirect at decode depth.
    pub btb_redirect: bool,
}

/// One critique rendered by the model.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Critique {
    /// Index of the critiqued branch among the in-flight slots
    /// (0 = oldest). The model has already flushed everything younger on
    /// an override.
    pub index: usize,
    /// Whether the critique disagreed with the prophet (FTQ-tail flush +
    /// fetch redirect).
    pub overridden: bool,
}

/// The resolution of the oldest in-flight branch.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Resolution {
    /// Whether the final prediction was wrong (full pipeline flush). The
    /// model has already repaired its own state and redirected its fetch
    /// path.
    pub mispredict: bool,
}

/// A semantic feed for the pipeline engine: something that fetches
/// chunks, renders critiques and resolves branches, while the engine
/// keeps the clocks.
///
/// The model and the engine hold mirrored in-flight queues — one entry
/// per [`FetchChunk`] — and must mutate them in lockstep: a critique's
/// `index` addresses both, an override truncates both to `index + 1`, a
/// mispredict clears both.
pub trait PipelineModel {
    /// Advances fetch past the next branch (down the *predicted* path
    /// where the model has one). `None` when the stream is exhausted
    /// (trace feeds; execution feeds never end).
    fn fetch_next(&mut self) -> Option<FetchChunk>;

    /// Renders the oldest ready critique, if any, applying any override
    /// redirect to the model's own fetch state.
    fn critique_next(&mut self) -> Option<Critique>;

    /// Forces the oldest uncritiqued branch's critique with the future
    /// bits available (§5).
    fn force_critique(&mut self) -> Option<Critique>;

    /// Resolves and commits the oldest in-flight branch, repairing the
    /// model's state on a mispredict.
    fn resolve_head(&mut self) -> Resolution;
}

/// Speculation bound: how many in-flight branches the driver tolerates
/// before forcing the oldest critique, as a multiple of the FTQ size
/// (matching the accuracy model's cap of FTQ + pipeline slack).
const INFLIGHT_FTQ_MULTIPLE: usize = 2;

/// Drives `model` through the stage-accurate pipeline engine until the
/// committed-uop budget is spent (or the model's stream ends), returning
/// the measured-region result.
#[must_use]
pub fn run_pipeline<M: PipelineModel>(
    model: &mut M,
    name: &str,
    config: &CycleConfig,
) -> CycleResult {
    let m = &config.machine;
    let mut engine = FrontendPipeline::new(config.pipeline_params());
    let mut data = Hierarchy::new(m);
    let mut stream = DataStream::new(config.data, config.seed);
    let cap = INFLIGHT_FTQ_MULTIPLE * m.ftq_entries;
    let mut committed: u64 = 0;
    let mut result = CycleResult {
        benchmark: name.to_string(),
        ..CycleResult::default()
    };
    let mut mark_cycles = 0.0f64;
    let mut marked = false;
    // A flush drains the instruction window, so the first chunk fetched
    // after the restart finds no other misses to overlap with: its data
    // stalls are charged un-overlapped (MLP = 1).
    let mut window_drained = true;

    'run: while committed < config.max_uops {
        let measuring = committed >= config.warmup_uops;
        if measuring && !marked {
            marked = true;
            mark_cycles = engine.commit_clock();
        }

        // ---- Fetch the next chunk (front-end time). A dry stream with
        // branches still in flight falls through to drain them — a flush
        // there refills the model's refetch queue, so the stream is
        // re-probed every iteration until both run out.
        let mut stream_dry = false;
        match model.fetch_next() {
            Some(chunk) => {
                // Data-side stalls attributable to this chunk, overlapped
                // by MLP (none available right after a flush drained the
                // window).
                let mlp = if window_drained { 1 } else { config.mlp };
                window_drained = false;
                let mut stall = 0.0;
                for addr in stream.accesses(chunk.pc, chunk.uops) {
                    let (lat, _) = data.access(addr);
                    let beyond_l1 = lat.saturating_sub(m.l1d.hit_cycles) as f64;
                    stall += beyond_l1 / mlp as f64;
                }
                let _ = engine.fetch(chunk.pc, chunk.uops, stall, chunk.critiqued_at_fetch);
                if chunk.btb_redirect {
                    engine.btb_redirect();
                }
                if measuring {
                    result.fetched_uops += chunk.uops;
                }
            }
            None if engine.is_empty() => break 'run,
            None => stream_dry = true,
        }

        // ---- Critique stage: drain ready critiques (1 per cycle).
        while let Some(cr) = model.critique_next() {
            let issue = engine.critique(cr.index, false);
            result.critiques += 1;
            result.forced_critiques += u64::from(issue.late);
            if cr.overridden {
                engine.override_redirect(cr.index);
                if measuring {
                    result.overrides += 1;
                }
            }
        }

        // ---- Resolve & commit in order. A branch resolves only when its
        // execution completes (fetch + pipe depth + data stalls), so fetch
        // keeps running — down the wrong path after an uncaught mispredict
        // — until the head's resolve time passes or the speculation buffer
        // fills (the instruction-window bound). Once the stream is dry
        // there is nothing left to fetch: heads retire unconditionally.
        while let Some(head_critiqued) = engine.head_critiqued() {
            if !head_critiqued {
                // Finite buffering: when fetch runs a full window ahead of
                // the oldest uncritiqued prediction, its critique is forced
                // with the future bits available (§5).
                if engine.len() >= cap || stream_dry {
                    if let Some(cr) = model.force_critique() {
                        let _ = engine.critique(cr.index, true);
                        result.critiques += 1;
                        result.forced_critiques += 1;
                        if cr.overridden {
                            engine.override_redirect(cr.index);
                            if measuring {
                                result.overrides += 1;
                            }
                        }
                        continue;
                    }
                }
                break;
            }
            let resolve_time = engine.head_resolve_time().expect("head exists");
            if !stream_dry && engine.fetch_clock() < resolve_time && engine.len() < cap {
                // The branch is still executing: keep fetching (possibly
                // down its wrong path) until it resolves.
                break;
            }
            let res = model.resolve_head();
            let info = engine.commit();
            committed += info.uops;
            if measuring {
                result.committed_uops += info.uops;
            }
            if res.mispredict {
                if measuring {
                    result.final_mispredicts += 1;
                }
                engine.flush_all(info.resolve_time);
                window_drained = true;
                if stream_dry {
                    // The flush may have refilled the model's refetch
                    // queue: go back to the fetch stage for it.
                    break;
                }
            }
        }
    }

    result.cycles = (engine.commit_clock() - mark_cycles).max(1.0);
    result.data_counts = data.counts();
    result.bubbles = *engine.bubbles();
    result
}
