//! The cycle-level performance model (uPC results, §7.4), built on the
//! stage-accurate [`frontend::pipeline`] engine.
//!
//! Three layers, strictly separated:
//!
//! * **Timing** — [`frontend::pipeline::FrontendPipeline`]: the decoupled
//!   fetch stage (prophet ≤2 predictions/cycle, port-limited I-cache line
//!   reads, FTQ occupancy and backpressure from the instruction window),
//!   the critique stage (1/cycle, forced-critique accounting) and the
//!   commit stage (width-bound, resolve-time-bound retirement). Override
//!   redirects and mispredict flushes produce genuinely different bubble
//!   profiles: an override restarts only fetch while the criticized FTQ
//!   prefix keeps the consumer fed (§5); a final mispredict drains every
//!   stage and pays the full 30-cycle pipe plus the fetch restart.
//! * **Semantics** — a [`PipelineModel`]: who fetches what down which
//!   path, which critiques override, which branches mispredict. Two
//!   implementations feed the same engine: [`ExecModel`] drives the
//!   execution-driven core (wrong-path fetch via `workloads::Walker`
//!   checkpoints — the §6 requirement for hybrids) and [`TraceModel`]
//!   replays a recorded `.bt` corpus stream through a conventional
//!   predictor (the CBP-style path, giving `experiments tracecmp` its uPC
//!   column).
//! * **Orchestration** — [`run_pipeline`]: the thin driver loop that
//!   moves chunks from the model into the engine, drains critiques,
//!   forces late ones at the buffer bound, and retires in order.
//!
//! Everything is a deterministic function of `(model, config)`: no
//! wall-clock, no OS randomness, so grid runs are bit-identical for any
//! worker-thread count (pinned by `crates/sim/tests/pipeline.rs`).

mod exec;
mod model;
mod trace;

pub use exec::ExecModel;
pub use model::{run_pipeline, Critique, FetchChunk, PipelineModel, Resolution};
pub use trace::{run_cycles_trace, TraceModel};

use frontend::pipeline::{BubbleProfile, PipelineParams};
use predictors::DirectionPredictor;
use prophet_critic::{Critic, ProphetCritic};
use uarch::{DataProfile, MachineParams};
use workloads::Program;

/// Configuration of one cycle-simulation run.
///
/// Built with the fluent constructor so new pipeline knobs don't churn
/// every call site:
///
/// ```
/// use sim::CycleConfig;
///
/// let config = CycleConfig::isca04().budget(200_000).seed(7).mlp(8);
/// assert_eq!(config.max_uops, 200_000);
/// assert_eq!(config.warmup_uops, 40_000); // 20% of the budget
/// ```
#[derive(Copy, Clone, Debug)]
pub struct CycleConfig {
    /// Stop after this many committed uops.
    pub max_uops: u64,
    /// Committed uops before measurement starts.
    pub warmup_uops: u64,
    /// Program seed.
    pub seed: u64,
    /// The machine (defaults to Table 2).
    pub machine: MachineParams,
    /// The synthetic data-side character.
    pub data: DataProfile,
    /// Memory-level parallelism: how many outstanding misses overlap.
    pub mlp: u64,
}

impl CycleConfig {
    /// The standard Table 2 configuration at the default budget; chain
    /// the builder methods to adjust.
    #[must_use]
    pub fn isca04() -> Self {
        Self {
            max_uops: 1_200_000,
            warmup_uops: 240_000,
            seed: 0x15CA_2004,
            machine: MachineParams::isca04(),
            data: DataProfile::resident(),
            mlp: 4,
        }
    }

    /// Sets the committed-uop budget (and the standard 20 % warm-up).
    #[must_use]
    pub fn budget(mut self, max_uops: u64) -> Self {
        self.max_uops = max_uops;
        self.warmup_uops = max_uops / 5;
        self
    }

    /// Overrides the warm-up region (after [`budget`](Self::budget)).
    #[must_use]
    pub fn warmup(mut self, warmup_uops: u64) -> Self {
        self.warmup_uops = warmup_uops;
        self
    }

    /// Sets the program seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the whole machine description.
    #[must_use]
    pub fn machine(mut self, machine: MachineParams) -> Self {
        self.machine = machine;
        self
    }

    /// Sets the data-side character.
    #[must_use]
    pub fn data(mut self, data: DataProfile) -> Self {
        self.data = data;
        self
    }

    /// Sets the memory-level-parallelism overlap factor.
    #[must_use]
    pub fn mlp(mut self, mlp: u64) -> Self {
        self.mlp = mlp.max(1);
        self
    }

    /// Sets the I-cache fetch-port count on the machine.
    #[must_use]
    pub fn fetch_ports(mut self, ports: u64) -> Self {
        self.machine.fetch_ports = ports.max(1);
        self
    }

    /// Sets the front-end redirect latency on the machine.
    #[must_use]
    pub fn redirect_cycles(mut self, cycles: u64) -> Self {
        self.machine.redirect_cycles = cycles;
        self
    }

    /// The engine parameters this machine implies.
    #[must_use]
    pub fn pipeline_params(&self) -> PipelineParams {
        let m = &self.machine;
        PipelineParams {
            width: m.width,
            prophet_per_cycle: m.prophet_per_cycle,
            critic_per_cycle: m.critic_per_cycle,
            ftq_entries: m.ftq_entries,
            pipe_depth: m.mispredict_penalty,
            window_uops: m.window_uops,
            redirect_cycles: m.redirect_cycles,
            override_redirect_cycles: m.override_redirect_cycles,
            fetch_ports: m.fetch_ports,
            icache: m.icache,
            icache_miss_cycles: m.l2.hit_cycles,
        }
    }
}

impl Default for CycleConfig {
    fn default() -> Self {
        Self::isca04()
    }
}

/// The outcome of one cycle-simulation run (measured region).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CycleResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Cycles elapsed in the measured region.
    pub cycles: f64,
    /// Committed uops in the measured region.
    pub committed_uops: u64,
    /// Final mispredicts (pipeline flushes).
    pub final_mispredicts: u64,
    /// Critic overrides (FTQ-tail flush + fetch redirect).
    pub overrides: u64,
    /// Estimated uops fetched along correct and wrong paths.
    pub fetched_uops: u64,
    /// Critiques issued before their full future bits were available.
    pub forced_critiques: u64,
    /// Total critiques issued.
    pub critiques: u64,
    /// `(l1_hits, l2_hits, memory_accesses)` on the data side.
    pub data_counts: (u64, u64, u64),
    /// Whole-run bubble bookkeeping from the pipeline engine.
    pub bubbles: BubbleProfile,
}

impl CycleResult {
    /// Uops per cycle — the paper's performance metric.
    #[must_use]
    pub fn upc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles
        }
    }

    /// Committed uops between pipeline flushes.
    #[must_use]
    pub fn uops_per_flush(&self) -> f64 {
        if self.final_mispredicts == 0 {
            self.committed_uops as f64
        } else {
            self.committed_uops as f64 / self.final_mispredicts as f64
        }
    }

    /// Fraction of critiques that had to be forced early.
    #[must_use]
    pub fn forced_critique_rate(&self) -> f64 {
        if self.critiques == 0 {
            0.0
        } else {
            self.forced_critiques as f64 / self.critiques as f64
        }
    }
}

/// Runs the cycle-level model for one program and hybrid: the
/// execution-driven feed over the stage-accurate pipeline engine.
pub fn run_cycles<P, C>(
    program: &Program,
    hybrid: &mut ProphetCritic<P, C>,
    config: &CycleConfig,
) -> CycleResult
where
    P: DirectionPredictor,
    C: Critic,
{
    let name = program.name().to_string();
    let mut model = ExecModel::new(program, hybrid, config);
    run_pipeline(&mut model, &name, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictors::configs::{self, Budget};
    use prophet_critic::{NullCritic, ProphetCritic, TaggedGshareCritic};

    fn cfg(uops: u64) -> CycleConfig {
        CycleConfig::isca04().budget(uops).seed(11)
    }

    #[test]
    fn upc_is_in_a_plausible_band() {
        let program = workloads::benchmark("gzip").unwrap().program();
        let mut h = ProphetCritic::new(configs::bc_gskew(Budget::K16), NullCritic::new(), 0);
        let r = run_cycles(&program, &mut h, &cfg(120_000));
        let upc = r.upc();
        assert!(upc > 0.3 && upc < 6.0, "uPC {upc} out of band");
    }

    #[test]
    fn better_predictor_gives_higher_upc() {
        let program = workloads::benchmark("gcc").unwrap().program();
        let c = cfg(200_000);

        let mut weak = ProphetCritic::new(configs::gshare(Budget::K2), NullCritic::new(), 0);
        let weak_r = run_cycles(&program, &mut weak, &c);

        let mut strong = ProphetCritic::new(
            configs::bc_gskew(Budget::K8),
            TaggedGshareCritic::new(configs::tagged_gshare(Budget::K8)),
            8,
        );
        let strong_r = run_cycles(&program, &mut strong, &c);

        assert!(
            strong_r.final_mispredicts < weak_r.final_mispredicts,
            "hybrid should mispredict less"
        );
        assert!(
            strong_r.upc() > weak_r.upc(),
            "fewer mispredicts should mean higher uPC: {} vs {}",
            strong_r.upc(),
            weak_r.upc()
        );
    }

    #[test]
    fn forced_critiques_are_rare() {
        let program = workloads::benchmark("vpr").unwrap().program();
        let mut h = ProphetCritic::new(
            configs::perceptron(Budget::K8),
            TaggedGshareCritic::new(configs::tagged_gshare(Budget::K8)),
            8,
        );
        let r = run_cycles(&program, &mut h, &cfg(120_000));
        // The paper reports <0.1%; allow generous slack for the simplified
        // consumer model and the synthetic workloads.
        assert!(
            r.forced_critique_rate() < 0.08,
            "forced critiques too common: {}",
            r.forced_critique_rate()
        );
    }

    #[test]
    fn cycle_model_is_deterministic() {
        let program = workloads::benchmark("mcf").unwrap().program();
        let run = || {
            let mut h = ProphetCritic::new(configs::gshare(Budget::K8), NullCritic::new(), 0);
            run_cycles(&program, &mut h, &cfg(80_000))
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b, "identical runs must be bit-identical");
    }

    #[test]
    fn override_recovery_is_cheaper_than_flush_recovery() {
        // A hybrid whose critic repairs mispredicts turns full flushes
        // into overrides; its bubble profile must show redirect cycles
        // instead of flush restarts growing without bound.
        let program = workloads::benchmark("gcc").unwrap().program();
        let mut h = ProphetCritic::new(
            configs::gshare(Budget::K4),
            TaggedGshareCritic::new(configs::tagged_gshare(Budget::K8)),
            8,
        );
        let r = run_cycles(&program, &mut h, &cfg(150_000));
        assert!(r.overrides > 0, "the critic must override sometimes");
        assert!(r.bubbles.redirect > 0.0);
        assert!(r.bubbles.flush_restart > 0.0);
    }

    #[test]
    fn builder_knobs_change_the_machine() {
        let c = CycleConfig::isca04()
            .budget(50_000)
            .fetch_ports(2)
            .redirect_cycles(4);
        assert_eq!(c.machine.fetch_ports, 2);
        assert_eq!(c.machine.redirect_cycles, 4);
        assert_eq!(c.warmup_uops, 10_000);
        let p = c.pipeline_params();
        assert_eq!(p.fetch_ports, 2);
        assert_eq!(p.redirect_cycles, 4);
        assert_eq!(p.window_uops, c.machine.window_uops);
    }
}
