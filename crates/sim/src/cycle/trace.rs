//! The trace-driven feed: a recorded `.bt` correct-path stream replayed
//! through a conventional predictor over the pipeline engine.
//!
//! This gives the CBP-style replay path a uPC column. It is strictly for
//! **conventional** predictors — a prophet/critic hybrid must never be
//! evaluated from a correct-path trace (its future bits would be oracle
//! information, paper §6); hybrids re-execute from `.pcl` snapshots
//! through [`super::ExecModel`] instead.
//!
//! The feed predicts and trains on **every** conditional record,
//! in-order and non-speculatively — exactly the
//! [`replay::replay_reader`] discipline — so the tournament's uPC and
//! misp/Kuops columns describe the same prediction stream (pinned by
//! `crates/sim/tests/pipeline.rs`). The BTB affects *timing only*: a
//! taken branch it has not yet learned charges the decode-depth
//! redirect.
//!
//! A trace has no wrong path to walk, so a mispredict costs the full
//! flush-and-restart *time* (and the correct-path refetch of its
//! squashed tail) but fetches no wrong-path uops — trace-driven
//! `fetched_uops` is structurally lower than the execution-driven
//! model's, which really walks wrong paths.

use std::collections::VecDeque;
use std::io::Read;

use bptrace::BtReader;
use frontend::Btb;
use predictors::{DirectionPredictor, HistoryBits, Pc};

use super::model::{Critique, FetchChunk, PipelineModel, Resolution};
use super::{run_pipeline, CycleConfig, CycleResult};

#[derive(Copy, Clone, Debug)]
struct TraceInflight {
    pc: u64,
    target: u64,
    uops: u64,
    predicted: bool,
    taken: bool,
}

/// The trace-replay [`PipelineModel`] for conventional predictors.
pub struct TraceModel<'r, 'p, R: Read, P> {
    reader: &'r mut BtReader<R>,
    predictor: &'p mut P,
    hist: HistoryBits,
    btb: Btb,
    inflight: VecDeque<TraceInflight>,
    /// Flushed-but-correct-path records awaiting refetch: a mispredict
    /// squashes the in-flight tail, and the machine refetches exactly
    /// these records after the restart. Each record was predicted and
    /// trained once, at first fetch — the refetch re-serves it for
    /// timing only, so accuracy stays record-for-record equal to the
    /// streaming replay engine.
    refetch: VecDeque<TraceInflight>,
}

impl<'r, 'p, R: Read, P: DirectionPredictor> TraceModel<'r, 'p, R, P> {
    /// Creates the feed over an open trace reader.
    #[must_use]
    pub fn new(reader: &'r mut BtReader<R>, predictor: &'p mut P, config: &CycleConfig) -> Self {
        let m = &config.machine;
        let hist = HistoryBits::new(predictor.history_len().min(predictors::MAX_HISTORY_BITS));
        Self {
            reader,
            predictor,
            hist,
            btb: Btb::new(m.btb_entries, m.btb_ways),
            inflight: VecDeque::with_capacity(2 * m.ftq_entries + 1),
            refetch: VecDeque::with_capacity(2 * m.ftq_entries + 1),
        }
    }
}

impl<R: Read, P: DirectionPredictor> PipelineModel for TraceModel<'_, '_, R, P> {
    fn fetch_next(&mut self) -> Option<FetchChunk> {
        // Post-flush refetch of squashed correct-path records first.
        if let Some(r) = self.refetch.pop_front() {
            self.inflight.push_back(r);
            return Some(FetchChunk {
                pc: r.pc,
                uops: r.uops,
                critiqued_at_fetch: true,
                // The BTB learned the branch on the first fetch.
                btb_redirect: false,
            });
        }
        // Fold unconditional records' uops into the next conditional
        // chunk (our recorder emits conditionals only; be robust anyway).
        let mut carried: u64 = 0;
        loop {
            let rec = self
                .reader
                .next_record()
                .expect("trace stream is well-formed (run `traces verify` first)")?;
            let uops = carried + u64::from(rec.uops_since_prev);
            if !rec.kind.is_conditional() {
                carried = uops;
                continue;
            }
            let pc = Pc::new(rec.pc);
            // Timing-only BTB: an unidentified taken branch redirects at
            // decode depth; allocate at discovery, as the execution-driven
            // model does.
            let identified = self.btb.lookup(pc).is_some();
            let btb_redirect = !identified && rec.taken;
            if !identified {
                self.btb.allocate(pc, rec.target, true);
            }
            // Predict and train on every conditional, in order — the
            // exact `replay_reader` discipline, so accuracy stays
            // record-for-record equal to the streaming replay engine.
            let predicted = self.predictor.predict(pc, self.hist).taken();
            self.predictor.update(pc, self.hist, rec.taken);
            self.hist.push(rec.taken);
            self.inflight.push_back(TraceInflight {
                pc: rec.pc,
                target: rec.target,
                uops,
                predicted,
                taken: rec.taken,
            });
            return Some(FetchChunk {
                pc: rec.pc,
                uops,
                critiqued_at_fetch: true,
                btb_redirect,
            });
        }
    }

    fn critique_next(&mut self) -> Option<Critique> {
        // Conventional predictors have no critic: every prediction is
        // final at fetch.
        None
    }

    fn force_critique(&mut self) -> Option<Critique> {
        None
    }

    fn resolve_head(&mut self) -> Resolution {
        let head = self
            .inflight
            .pop_front()
            .expect("resolve with a branch in flight");
        self.btb.allocate(Pc::new(head.pc), head.target, true);
        let mispredict = head.predicted != head.taken;
        if mispredict {
            // The squashed tail is correct-path work: queue it (oldest
            // first) for refetch after the restart.
            while let Some(young) = self.inflight.pop_back() {
                self.refetch.push_front(young);
            }
        }
        Resolution { mispredict }
    }
}

/// Replays a `.bt` stream through `predictor` on the cycle-level
/// pipeline engine, returning the measured-region uPC result.
///
/// # Panics
///
/// Panics on a malformed trace stream; verify corpora before timing
/// them.
#[must_use]
pub fn run_cycles_trace<R: Read, P: DirectionPredictor>(
    reader: &mut BtReader<R>,
    predictor: &mut P,
    config: &CycleConfig,
) -> CycleResult {
    let name = reader.name().to_string();
    let mut model = TraceModel::new(reader, predictor, config);
    run_pipeline(&mut model, &name, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictors::configs::{self, Budget};

    fn recorded(name: &str, max_uops: u64) -> Vec<u8> {
        let bench = workloads::benchmark(name).unwrap();
        let mut buf = Vec::new();
        replay::record_trace(&bench.program(), bench.seed, max_uops, &mut buf).unwrap();
        buf
    }

    #[test]
    fn trace_upc_is_in_band_and_deterministic() {
        let bytes = recorded("gzip", 80_000);
        let run = || {
            let mut reader = BtReader::new(bytes.as_slice()).unwrap();
            let mut p = configs::gshare(Budget::K16);
            run_cycles_trace(
                &mut reader,
                &mut p,
                &CycleConfig::isca04().budget(80_000).seed(3),
            )
        };
        let r = run();
        assert_eq!(r.benchmark, "gzip");
        assert!(r.committed_uops > 0);
        let upc = r.upc();
        assert!(upc > 0.2 && upc < 6.0, "uPC {upc} out of band");
        assert_eq!(r.critiques, 0, "conventional feed issues no critiques");
        assert_eq!(run(), r);
    }

    #[test]
    fn stronger_predictor_wins_on_the_same_trace() {
        let bytes = recorded("unzip", 200_000);
        let cfg = CycleConfig::isca04().budget(200_000).seed(9);
        let mut reader = BtReader::new(bytes.as_slice()).unwrap();
        let mut weak = predictors::Bimodal::new(256);
        let weak_r = run_cycles_trace(&mut reader, &mut weak, &cfg);
        let mut reader = BtReader::new(bytes.as_slice()).unwrap();
        let mut strong = configs::bc_gskew(Budget::K16);
        let strong_r = run_cycles_trace(&mut reader, &mut strong, &cfg);
        assert!(
            strong_r.final_mispredicts < weak_r.final_mispredicts,
            "2Bc-gskew should beat a tiny bimodal on unzip"
        );
        assert!(
            strong_r.upc() > weak_r.upc(),
            "fewer flushes must yield higher trace-driven uPC: {} vs {}",
            strong_r.upc(),
            weak_r.upc()
        );
    }
}
