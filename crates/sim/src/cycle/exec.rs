//! The execution-driven feed: walker + hybrid + BTB over the pipeline
//! engine.
//!
//! This is the §6-faithful path: fetch follows the *prophecy*, wrong or
//! not, so the critic's future bits really come from wrong-path fetch;
//! override and mispredict recovery rewind the walker through its
//! checkpoint journal exactly as the accuracy simulator does.

use std::collections::VecDeque;

use frontend::Btb;
use predictors::{DirectionPredictor, Pc};
use prophet_critic::{BranchId, Critic, ProphetCritic};
use workloads::{Checkpoint, Program, Walker};

use super::model::{Critique, FetchChunk, PipelineModel, Resolution};
use super::CycleConfig;

#[derive(Copy, Clone, Debug)]
struct ExecInflight {
    id: Option<BranchId>, // None: BTB miss, unpredicted
    pc: u64,
    outcome: bool,
    taken_target: u64,
    checkpoint: Checkpoint,
}

/// The execution-driven [`PipelineModel`]: drives a prophet/critic
/// hybrid down the predicted path of a synthetic program.
pub struct ExecModel<'p, 'h, P, C> {
    walker: Walker<'p>,
    hybrid: &'h mut ProphetCritic<P, C>,
    btb: Btb,
    inflight: VecDeque<ExecInflight>,
}

impl<'p, 'h, P, C> ExecModel<'p, 'h, P, C>
where
    P: DirectionPredictor,
    C: Critic,
{
    /// Creates the feed for one program/hybrid pair.
    #[must_use]
    pub fn new(
        program: &'p Program,
        hybrid: &'h mut ProphetCritic<P, C>,
        config: &CycleConfig,
    ) -> Self {
        let m = &config.machine;
        Self {
            walker: Walker::with_seed(program, config.seed),
            hybrid,
            btb: Btb::new(m.btb_entries, m.btb_ways),
            inflight: VecDeque::with_capacity(2 * m.ftq_entries + 1),
        }
    }

    fn index_of(&self, id: BranchId) -> usize {
        self.inflight
            .iter()
            .position(|r| r.id == Some(id))
            .expect("critiqued branch is in flight")
    }

    fn apply_override(&mut self, idx: usize, final_taken: bool) {
        self.inflight.truncate(idx + 1);
        self.walker.restore(&self.inflight[idx].checkpoint);
        self.walker.follow(final_taken);
    }
}

impl<P, C> PipelineModel for ExecModel<'_, '_, P, C>
where
    P: DirectionPredictor,
    C: Critic,
{
    fn fetch_next(&mut self) -> Option<FetchChunk> {
        let ev = self.walker.next_branch();
        let cp = self.walker.checkpoint();
        let identified = self.btb.lookup(Pc::new(ev.pc)).is_some();
        if identified {
            let pe = self.hybrid.predict(Pc::new(ev.pc));
            self.inflight.push_back(ExecInflight {
                id: Some(pe.id),
                pc: ev.pc,
                outcome: ev.outcome,
                taken_target: ev.taken_target,
                checkpoint: cp,
            });
            // Fetch proceeds down the prophecy — possibly the wrong path.
            self.walker.follow(pe.taken);
            Some(FetchChunk {
                pc: ev.pc,
                uops: ev.uops,
                critiqued_at_fetch: false,
                btb_redirect: false,
            })
        } else {
            self.inflight.push_back(ExecInflight {
                id: None,
                pc: ev.pc,
                outcome: ev.outcome,
                taken_target: ev.taken_target,
                checkpoint: cp,
            });
            // Decode-time BTB allocation (see the accuracy model); the
            // discovered outcome repairs the predictor's history windows.
            self.btb.allocate(Pc::new(ev.pc), ev.taken_target, true);
            self.hybrid.note_external_outcome(ev.outcome);
            self.walker.follow(ev.outcome);
            Some(FetchChunk {
                pc: ev.pc,
                uops: ev.uops,
                critiqued_at_fetch: true,
                btb_redirect: ev.outcome,
            })
        }
    }

    fn critique_next(&mut self) -> Option<Critique> {
        let cr = self.hybrid.critique_next()?;
        let idx = self.index_of(cr.id);
        if cr.overridden {
            self.apply_override(idx, cr.final_taken);
        }
        Some(Critique {
            index: idx,
            overridden: cr.overridden,
        })
    }

    fn force_critique(&mut self) -> Option<Critique> {
        let cr = self.hybrid.force_critique_next()?;
        let idx = self.index_of(cr.id);
        if cr.overridden {
            self.apply_override(idx, cr.final_taken);
        }
        Some(Critique {
            index: idx,
            overridden: cr.overridden,
        })
    }

    fn resolve_head(&mut self) -> Resolution {
        let head = *self
            .inflight
            .front()
            .expect("resolve with a branch in flight");
        let mispredict = match head.id {
            None => {
                self.inflight.pop_front();
                false
            }
            Some(_) => {
                let res = self
                    .hybrid
                    .resolve_oldest(head.outcome)
                    .expect("critiqued head resolves");
                if res.mispredict {
                    // Squash everything younger and restart fetch down the
                    // resolved outcome.
                    self.inflight.clear();
                    self.walker.restore(&head.checkpoint);
                    self.walker.follow(head.outcome);
                } else {
                    self.inflight.pop_front();
                }
                res.mispredict
            }
        };
        self.btb.allocate(Pc::new(head.pc), head.taken_target, true);
        self.walker.release(&head.checkpoint);
        Resolution { mispredict }
    }
}
