//! Deterministic configuration search over the prophet/critic parameter
//! space (`experiments tune`).
//!
//! ROADMAP's worst open item is the headline gap: the paper's 8 KB + 8 KB
//! hybrid cuts mispredicts by ~39 % against the 16 KB 2Bc-gskew, while
//! the untuned 8+8 default *loses* to it on the pooled fast set. The gap
//! is configuration debt, not a correctness bug — and "Branch Prediction
//! Is Not a Solved Problem" (arXiv:1906.08170) and the Bullseye study
//! (arXiv:2506.06773) both show predictor quality is dominated by a small
//! configuration-sensitive branch population. This module turns that from
//! a mystery into a reproducible calibration pipeline:
//!
//! * [`TuneSpace`] — the search-space description: per-parameter value
//!   lists (prophet/critic kind + budget pairs, future-bit counts), the
//!   scoring scenarios (warm-up fractions × [`MixProfile`] workload
//!   mixes), and a total-storage fairness cap. Named presets
//!   ([`TuneSpace::headline`], [`TuneSpace::quick`], [`TuneSpace::wide`])
//!   keep runs reproducible by name.
//! * [`run_search`] — the staged strategy: a **coarse grid** over the
//!   space (strided future bits), then **local refinement** rounds that
//!   expand the frontier's neighbours one step per dimension. Every
//!   candidate batch fans through [`par_map`] with input-ordered
//!   collection — each scoring cell resolving through the environment's
//!   incremental cell store when one is configured (`--store`/`--resume`),
//!   so a killed search resumes and nightly soaks reuse warm cells —
//!   every simulation is seeded, and the only randomness is
//!   [`workloads::rng`] under a fixed seed (used to cap oversized
//!   neighbour sets) — so the outcome is **bit-identical for any thread
//!   count**, pinned by `crates/sim/tests/tune.rs`.
//! * **Scoring** — each candidate is scored against the paper's 16 KB
//!   2Bc-gskew baseline under every scenario: weighted pooled misp/Kuops
//!   (suite weights from the scenario's mix profile), per-benchmark
//!   deltas, and the mean reduction across scenarios as the ranking key.
//! * [`h2p_slices`] — corpus-backed hard-branch scoring: each benchmark
//!   is recorded to an in-memory `.bt` trace, its
//!   [`bptrace::BranchProfile`] flags the H2P statics, the baseline
//!   replays the trace ([`replay::replay_bytes`]) and the hybrids
//!   re-execute with a per-commit observer
//!   ([`run_accuracy_observed`])
//!   — so the report shows *where* (which hard branches) a winning
//!   configuration earns its reduction.
//!
//! The winning configuration is promoted by hand into
//! [`HybridSpec::tuned_headline`] (the `headline` experiment's default);
//! [`TuneOutcome::winner_matches_promoted`] flags drift between the
//! shipped preset and what the current search actually finds.

use std::collections::{HashMap, HashSet};

use bptrace::{BranchProfile, BtReader, H2P_MAX_BIAS, H2P_MIN_OCCURRENCES};
use predictors::configs::{self, Budget};
use prophet_critic::{CriticKind, HybridSpec, ProphetKind};
use replay::{record_trace, replay_bytes, ReplayConfig};
use workloads::rng::SmallRng;
use workloads::{Benchmark, MixProfile, Program};

use crate::accuracy::{run_accuracy, run_accuracy_observed, SimConfig};
use crate::experiments::common::{cached, tune_cell_key, ExpEnv};
use crate::metrics::AccuracyResult;
use crate::runner::par_map;

/// Fixed seed for the search's only random choice (capping oversized
/// refinement neighbour sets). Never derived from wall-clock or OS state.
const SEARCH_SEED: u64 = 0x7E57_15CA_2004_0001;

/// The paper's baseline: a 16 KB 2Bc-gskew prophet alone.
#[must_use]
pub fn baseline_spec() -> HybridSpec {
    HybridSpec::alone(ProphetKind::BcGskew, Budget::K16)
}

/// The pre-tuning 8 KB + 8 KB default (2Bc-gskew + t.gshare, 8 future
/// bits) — the configuration the headline experiment shipped before the
/// tuner existed, kept as the reference the tuned preset must beat.
#[must_use]
pub fn untuned_default() -> HybridSpec {
    HybridSpec::paired(
        ProphetKind::BcGskew,
        Budget::K8,
        CriticKind::TaggedGshare,
        Budget::K8,
        8,
    )
}

/// The carried-over H2P weighted objective: per-benchmark weights derived
/// from `BENCH_h2p.json` deltas (each benchmark's baseline mispredict mass
/// on its flagged hard-to-predict statics), blended into the ranking key.
///
/// With an objective attached, a candidate's ranking key becomes
/// `(1 − weight) · standard + weight · h2p`, where `h2p` is the pooled
/// reduction re-weighted by each benchmark's H2P mispredict share — so the
/// search optimizes the branches that actually cost cycles instead of the
/// uniform pooled rate. Per-scenario payloads (and therefore every stored
/// cell) are unchanged: the objective is applied at scoring time only.
#[derive(Clone, PartialEq, Debug)]
pub struct H2pObjective {
    /// Blend factor in `[0, 1]`: 0 = standard scoring, 1 = pure
    /// H2P-weighted scoring.
    pub weight: f64,
    /// Per-benchmark H2P mispredict mass `(bench name, weight ≥ 0)`;
    /// benchmarks absent from the list score with weight 0.
    pub per_bench: Vec<(String, f64)>,
}

impl H2pObjective {
    /// Builds an objective, clamping `weight` into `[0, 1]` and dropping
    /// negative per-benchmark masses.
    #[must_use]
    pub fn new(weight: f64, per_bench: Vec<(String, f64)>) -> Self {
        Self {
            weight: weight.clamp(0.0, 1.0),
            per_bench: per_bench
                .into_iter()
                .map(|(n, w)| (n, w.max(0.0)))
                .collect(),
        }
    }

    /// The weight assigned to `bench` (0 when the benchmark carries no
    /// H2P mispredict mass in the source report).
    #[must_use]
    pub fn share(&self, bench: &str) -> f64 {
        self.per_bench
            .iter()
            .find(|(n, _)| n == bench)
            .map_or(0.0, |(_, w)| *w)
    }
}

/// A scoring scenario: one warm-up fraction paired with one workload-mix
/// weight profile.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Scenario {
    /// Warm-up fraction of the uop budget, in permille (200 = the
    /// workspace-standard 20 %).
    pub warmup_permille: u32,
    /// The suite-weight profile used to pool per-benchmark results.
    pub mix: MixProfile,
}

/// The search-space description: per-parameter value lists plus scoring
/// scenarios.
///
/// The candidate set is the cartesian product `prophets × critics ×
/// future_bits`, filtered by [`max_total_bytes`](Self::max_total_bytes)
/// (nominal prophet + critic budget) so every candidate stays
/// storage-comparable to the 16 KB baseline. Scenarios (`warmups ×
/// mixes`) are *scoring* dimensions: they change how a candidate is
/// measured, not what hardware it describes, so a candidate's ranking
/// key is its mean reduction across all scenarios.
#[derive(Clone, PartialEq, Debug)]
pub struct TuneSpace {
    /// Preset name (appears in reports; `"custom"` for hand-built spaces).
    pub name: &'static str,
    /// Candidate prophet kind + budget pairs.
    pub prophets: Vec<(ProphetKind, Budget)>,
    /// Candidate critic kind + budget pairs ([`CriticKind::None`] is
    /// allowed and yields prophet-alone candidates).
    pub critics: Vec<(CriticKind, Budget)>,
    /// Candidate future-bit counts.
    pub future_bits: Vec<usize>,
    /// Override-confidence threshold values to sweep (`false` = the
    /// paper's always-override behaviour; `true` = only saturated
    /// counters override). Collapses to `false` for critic kinds with no
    /// confidence signal.
    pub confident: Vec<bool>,
    /// Warm-up fractions (permille of the uop budget) to score under.
    pub warmup_permille: Vec<u32>,
    /// Workload mixes to score under.
    pub mixes: Vec<MixProfile>,
    /// Nominal storage cap (prophet budget + critic budget bytes); `None`
    /// disables the fairness filter.
    pub max_total_bytes: Option<usize>,
    /// Optional H2P weighted objective ([`H2pObjective`]): blends the
    /// per-benchmark `BENCH_h2p.json` mispredict mass into the ranking
    /// key. `None` (every preset's default) keeps standard scoring.
    pub h2p: Option<H2pObjective>,
}

impl TuneSpace {
    /// The default space behind `experiments tune`: every paper-shaped
    /// prophet/critic pairing that fits the 16 KB fairness cap, future
    /// bits 1–12, scored at 20 %/30 % warm-up under the paper and
    /// desktop mixes.
    #[must_use]
    pub fn headline() -> Self {
        Self {
            name: "headline",
            prophets: vec![
                (ProphetKind::BcGskew, Budget::K4),
                (ProphetKind::BcGskew, Budget::K8),
                (ProphetKind::BcGskew, Budget::K16),
                (ProphetKind::Perceptron, Budget::K4),
                (ProphetKind::Perceptron, Budget::K8),
                (ProphetKind::Tage, Budget::K8),
                (ProphetKind::TageH2p, Budget::K8),
            ],
            critics: vec![
                (CriticKind::TaggedGshare, Budget::K2),
                (CriticKind::TaggedGshare, Budget::K4),
                (CriticKind::TaggedGshare, Budget::K8),
                (CriticKind::FilteredPerceptron, Budget::K8),
                (CriticKind::Tage, Budget::K4),
            ],
            future_bits: vec![1, 2, 3, 4, 6, 8, 10, 12],
            confident: vec![false, true],
            warmup_permille: vec![200, 300],
            mixes: vec![MixProfile::paper(), MixProfile::desktop()],
            // 8 KB + 8 KB plus the tagged critic's tag overhead.
            max_total_bytes: Some(18 * 1024),
            h2p: None,
        }
    }

    /// A minimal space for smoke tests and CI: one prophet, one critic,
    /// three future-bit values, one scenario.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            name: "quick",
            prophets: vec![(ProphetKind::BcGskew, Budget::K8)],
            critics: vec![(CriticKind::TaggedGshare, Budget::K8)],
            future_bits: vec![1, 4, 8],
            confident: vec![false],
            warmup_permille: vec![200],
            mixes: vec![MixProfile::paper()],
            max_total_bytes: Some(18 * 1024),
            h2p: None,
        }
    }

    /// A broader exploration space: adds gshare and TAGE prophets,
    /// smaller critics, every built-in mix and a 10 % warm-up scenario.
    #[must_use]
    pub fn wide() -> Self {
        Self {
            name: "wide",
            prophets: vec![
                (ProphetKind::Gshare, Budget::K8),
                (ProphetKind::BcGskew, Budget::K4),
                (ProphetKind::BcGskew, Budget::K8),
                (ProphetKind::Perceptron, Budget::K4),
                (ProphetKind::Perceptron, Budget::K8),
                (ProphetKind::Tage, Budget::K4),
                (ProphetKind::Tage, Budget::K8),
                (ProphetKind::TageH2p, Budget::K8),
            ],
            critics: vec![
                (CriticKind::TaggedGshare, Budget::K2),
                (CriticKind::TaggedGshare, Budget::K4),
                (CriticKind::TaggedGshare, Budget::K8),
                (CriticKind::FilteredPerceptron, Budget::K4),
                (CriticKind::FilteredPerceptron, Budget::K8),
                (CriticKind::Tage, Budget::K2),
                (CriticKind::Tage, Budget::K4),
            ],
            future_bits: vec![1, 2, 3, 4, 6, 8, 10, 12],
            confident: vec![false, true],
            warmup_permille: vec![100, 200, 300],
            mixes: MixProfile::presets(),
            max_total_bytes: Some(18 * 1024),
            h2p: None,
        }
    }

    /// Looks a preset up by name (`"headline"`, `"quick"`, `"wide"`).
    #[must_use]
    pub fn by_name(name: &str) -> Option<TuneSpace> {
        match name {
            "headline" => Some(Self::headline()),
            "quick" => Some(Self::quick()),
            "wide" => Some(Self::wide()),
            _ => None,
        }
    }

    /// Nominal storage of a candidate (prophet + critic budget bytes;
    /// a [`CriticKind::None`] critic costs nothing).
    fn nominal_bytes(spec: &HybridSpec) -> usize {
        let critic = if spec.critic == CriticKind::None {
            0
        } else {
            spec.critic_budget.bytes()
        };
        spec.prophet_budget.bytes() + critic
    }

    /// Whether `spec` passes the storage fairness cap.
    fn fits(&self, spec: &HybridSpec) -> bool {
        self.max_total_bytes
            .is_none_or(|cap| Self::nominal_bytes(spec) <= cap)
    }

    /// Every candidate in the space: the full cartesian product, in
    /// deterministic (prophet-major) order, filtered by the storage cap.
    ///
    /// Any empty parameter list yields an empty candidate set — an empty
    /// dimension means "nothing to sweep", not "sweep a default".
    #[must_use]
    pub fn enumerate(&self) -> Vec<HybridSpec> {
        let mut out = Vec::new();
        for &(prophet, pb) in &self.prophets {
            for &(critic, cb) in &self.critics {
                for &fb in &self.future_bits {
                    for &conf in &self.confident {
                        let fb = if critic == CriticKind::None { 0 } else { fb };
                        // Only the tagged gshare and TAGE critics carry a
                        // confidence signal; collapse the axis elsewhere.
                        let conf =
                            conf && matches!(critic, CriticKind::TaggedGshare | CriticKind::Tage);
                        let spec = HybridSpec::paired(prophet, pb, critic, cb, fb)
                            .with_confident_override(conf);
                        if self.fits(&spec) && !out.contains(&spec) {
                            out.push(spec);
                        }
                    }
                }
            }
        }
        out
    }

    /// The coarse stage-1 grid: every prophet × critic pairing, but the
    /// future-bit axis strided (first, every second, and last value), so
    /// refinement has room to move.
    #[must_use]
    pub fn coarse(&self) -> Vec<HybridSpec> {
        let coarse_fb: Vec<usize> = self
            .future_bits
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0 || *i == self.future_bits.len() - 1)
            .map(|(_, fb)| *fb)
            .collect();
        let sub = TuneSpace {
            future_bits: coarse_fb,
            ..self.clone()
        };
        sub.enumerate()
    }

    /// One-step neighbours of `spec` along every parameter axis (adjacent
    /// entries in each value list), filtered by the storage cap.
    #[must_use]
    pub fn neighbors(&self, spec: &HybridSpec) -> Vec<HybridSpec> {
        let mut out = Vec::new();
        let mut push = |s: HybridSpec| {
            if self.fits(&s) && s != *spec && !out.contains(&s) {
                out.push(s);
            }
        };
        if let Some(i) = self
            .prophets
            .iter()
            .position(|&(k, b)| k == spec.prophet && b == spec.prophet_budget)
        {
            for j in [i.wrapping_sub(1), i + 1] {
                if let Some(&(k, b)) = self.prophets.get(j) {
                    let mut s = *spec;
                    s.prophet = k;
                    s.prophet_budget = b;
                    push(s);
                }
            }
        }
        if let Some(i) = self
            .critics
            .iter()
            .position(|&(k, b)| k == spec.critic && b == spec.critic_budget)
        {
            for j in [i.wrapping_sub(1), i + 1] {
                if let Some(&(k, b)) = self.critics.get(j) {
                    let mut s = *spec;
                    s.critic = k;
                    s.critic_budget = b;
                    if k == CriticKind::None {
                        s.future_bits = 0;
                    }
                    // Keep the candidate inside the enumerated space:
                    // the confidence axis collapses for critic kinds
                    // without a confidence signal (as in `enumerate`),
                    // otherwise a critic-axis move could produce a
                    // phantom duplicate of an already-seen spec.
                    s.confident_override = s.confident_override
                        && matches!(k, CriticKind::TaggedGshare | CriticKind::Tage);
                    push(s);
                }
            }
        }
        if let Some(i) = self
            .future_bits
            .iter()
            .position(|&fb| fb == spec.future_bits)
        {
            for j in [i.wrapping_sub(1), i + 1] {
                if let Some(&fb) = self.future_bits.get(j) {
                    let mut s = *spec;
                    s.future_bits = fb;
                    push(s);
                }
            }
        }
        if matches!(spec.critic, CriticKind::TaggedGshare | CriticKind::Tage)
            && self.confident.contains(&!spec.confident_override)
        {
            push(spec.with_confident_override(!spec.confident_override));
        }
        out
    }

    /// The scoring scenarios, warm-up-major: `warmups × mixes`. The first
    /// scenario is the *standard* one the per-benchmark report tables use.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for &w in &self.warmup_permille {
            for &mix in &self.mixes {
                out.push(Scenario {
                    warmup_permille: w,
                    mix,
                });
            }
        }
        out
    }
}

/// Search-strategy knobs (all deterministic).
#[derive(Copy, Clone, Debug)]
pub struct TuneOptions {
    /// Frontier size carried into each refinement round.
    pub frontier: usize,
    /// Refinement rounds after the coarse grid.
    pub rounds: usize,
    /// Cap on new candidates per refinement round; oversized neighbour
    /// sets are subsampled with [`workloads::rng`] under the fixed
    /// search seed.
    pub round_cap: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        Self {
            frontier: 3,
            rounds: 2,
            round_cap: 24,
        }
    }
}

/// How one candidate scored under one scenario.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioScore {
    /// The scenario's warm-up fraction (permille).
    pub warmup_permille: u32,
    /// The scenario's mix-profile name.
    pub mix: &'static str,
    /// Weighted pooled misp/Kuops of the 16 KB 2Bc-gskew baseline.
    pub baseline_misp_per_kuops: f64,
    /// Weighted pooled misp/Kuops of the candidate.
    pub misp_per_kuops: f64,
    /// Percent reduction vs. the baseline (positive = candidate wins).
    pub reduction_percent: f64,
}

/// One evaluated candidate: its spec, per-`(warmup, benchmark)` raw runs
/// and per-scenario scores.
#[derive(Clone, Debug)]
pub struct TuneCell {
    /// The candidate configuration.
    pub spec: HybridSpec,
    /// Which search stage produced it (0 = coarse, 1.. = refinement).
    pub stage: usize,
    /// Raw results: `runs[warmup index][benchmark index]`.
    pub runs: Vec<Vec<AccuracyResult>>,
    /// Per-scenario scores, in [`TuneSpace::scenarios`] order.
    pub scenarios: Vec<ScenarioScore>,
    /// The H2P-weighted pooled reduction (mean over warm-up fractions),
    /// present only when the space carries an [`H2pObjective`].
    pub h2p_reduction_percent: Option<f64>,
    /// Mean reduction across scenarios, blended with the H2P-weighted
    /// reduction when an objective is attached — the ranking key.
    pub mean_reduction_percent: f64,
}

/// The full outcome of a search.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The space searched.
    pub space: TuneSpace,
    /// The scenarios scored under.
    pub scenarios: Vec<Scenario>,
    /// Baseline raw runs: `[warmup index][benchmark index]`.
    pub baseline_runs: Vec<Vec<AccuracyResult>>,
    /// Every evaluated candidate, ranked best (highest mean reduction)
    /// first; ties break on the spec label for stability.
    pub ranked: Vec<TuneCell>,
    /// Candidates evaluated per stage (coarse, then each refinement
    /// round).
    pub stage_sizes: Vec<usize>,
    /// The benchmarks scored (fast set under the usual environment).
    pub benchmarks: Vec<Benchmark>,
}

impl TuneOutcome {
    /// The winning candidate, if the space was non-empty.
    #[must_use]
    pub fn winner(&self) -> Option<&TuneCell> {
        self.ranked.first()
    }

    /// The evaluated cell for `spec`, if the search visited it.
    #[must_use]
    pub fn cell(&self, spec: &HybridSpec) -> Option<&TuneCell> {
        self.ranked.iter().find(|c| c.spec == *spec)
    }

    /// Whether the shipped [`HybridSpec::tuned_headline`] preset is still
    /// what this search promotes — the drift detector for the report.
    #[must_use]
    pub fn winner_matches_promoted(&self) -> bool {
        self.winner()
            .is_some_and(|w| w.spec == HybridSpec::tuned_headline())
    }
}

/// Weighted pooled misp/Kuops over per-benchmark results: suite weights
/// come from `mix`, pooling is `Σ w·misp · 1000 / Σ w·uops` (the
/// workspace's counter pooling, weighted).
#[must_use]
pub fn weighted_misp_per_kuops(
    benches: &[Benchmark],
    runs: &[AccuracyResult],
    mix: &MixProfile,
) -> f64 {
    debug_assert_eq!(benches.len(), runs.len());
    let mut misp = 0.0;
    let mut uops = 0.0;
    for (b, r) in benches.iter().zip(runs) {
        let w = mix.normalized(b.suite);
        misp += w * r.final_mispredicts as f64;
        uops += w * r.committed_uops as f64;
    }
    if uops == 0.0 {
        0.0
    } else {
        misp * 1000.0 / uops
    }
}

/// [`weighted_misp_per_kuops`] with per-benchmark weights taken from an
/// [`H2pObjective`] instead of a suite mix: each benchmark contributes in
/// proportion to its H2P mispredict mass in the source `BENCH_h2p.json`
/// report. Falls back to uniform pooling when no benchmark matches the
/// objective (a degenerate objective must not zero every score).
#[must_use]
pub fn h2p_weighted_misp_per_kuops(
    benches: &[Benchmark],
    runs: &[AccuracyResult],
    objective: &H2pObjective,
) -> f64 {
    debug_assert_eq!(benches.len(), runs.len());
    let mut misp = 0.0;
    let mut uops = 0.0;
    for (b, r) in benches.iter().zip(runs) {
        let w = objective.share(&b.name);
        misp += w * r.final_mispredicts as f64;
        uops += w * r.committed_uops as f64;
    }
    if uops > 0.0 {
        return misp * 1000.0 / uops;
    }
    let (misp, uops) = runs.iter().fold((0u64, 0u64), |(m, u), r| {
        (m + r.final_mispredicts, u + r.committed_uops)
    });
    if uops == 0 {
        0.0
    } else {
        misp as f64 * 1000.0 / uops as f64
    }
}

fn sim_config(env: &ExpEnv, warmup_permille: u32, seed: u64) -> SimConfig {
    let max_uops = env.uop_budget();
    SimConfig {
        max_uops,
        warmup_uops: max_uops * u64::from(warmup_permille) / 1000,
        seed,
    }
}

/// Runs `specs × warmups × benchmarks` through the parallel runner and
/// returns `[spec][warmup][benchmark]` results in input order.
fn evaluate(
    specs: &[HybridSpec],
    programs: &[(Benchmark, Program)],
    warmups: &[u32],
    env: &ExpEnv,
) -> Vec<Vec<Vec<AccuracyResult>>> {
    let cells: Vec<(usize, usize, usize)> = (0..specs.len())
        .flat_map(|s| {
            (0..warmups.len()).flat_map(move |w| (0..programs.len()).map(move |p| (s, w, p)))
        })
        .collect();
    let flat = par_map(&cells, env.threads, |_, &(s, w, p)| {
        let (bench, program) = &programs[p];
        let cfg = sim_config(env, warmups[w], bench.seed);
        let key = tune_cell_key(&specs[s], bench, cfg.max_uops, cfg.warmup_uops);
        cached(env, &key, || {
            let mut hybrid = specs[s].build();
            run_accuracy(program, &mut hybrid, &cfg)
        })
    });
    let mut it = flat.into_iter();
    (0..specs.len())
        .map(|_| {
            (0..warmups.len())
                .map(|_| it.by_ref().take(programs.len()).collect())
                .collect()
        })
        .collect()
}

/// Scores one candidate's raw runs against the baseline under every
/// scenario of `space`, producing its [`TuneCell`].
///
/// The per-scenario payloads are objective-independent; when the space
/// carries an [`H2pObjective`] the ranking key blends in the H2P-weighted
/// pooled reduction at scoring time. Public so the weighted objective's
/// ranking behaviour can be pinned against synthetic runs without driving
/// a full search.
#[must_use]
pub fn score(
    spec: HybridSpec,
    stage: usize,
    runs: Vec<Vec<AccuracyResult>>,
    baseline_runs: &[Vec<AccuracyResult>],
    benches: &[Benchmark],
    space: &TuneSpace,
) -> TuneCell {
    let mut scenarios = Vec::new();
    let mut sum = 0.0;
    for (w, &warmup) in space.warmup_permille.iter().enumerate() {
        for mix in &space.mixes {
            let base = weighted_misp_per_kuops(benches, &baseline_runs[w], mix);
            let hyb = weighted_misp_per_kuops(benches, &runs[w], mix);
            let reduction = crate::metrics::percent_reduction(base, hyb);
            sum += reduction;
            scenarios.push(ScenarioScore {
                warmup_permille: warmup,
                mix: mix.name,
                baseline_misp_per_kuops: base,
                misp_per_kuops: hyb,
                reduction_percent: reduction,
            });
        }
    }
    let n = scenarios.len().max(1) as f64;
    let standard = sum / n;
    let objective = space.h2p.as_ref().filter(|o| o.weight > 0.0);
    let h2p_reduction_percent = objective.map(|obj| {
        let mut sum = 0.0;
        for w in 0..space.warmup_permille.len() {
            let base = h2p_weighted_misp_per_kuops(benches, &baseline_runs[w], obj);
            let hyb = h2p_weighted_misp_per_kuops(benches, &runs[w], obj);
            sum += crate::metrics::percent_reduction(base, hyb);
        }
        sum / space.warmup_permille.len().max(1) as f64
    });
    let mean_reduction_percent = match (objective, h2p_reduction_percent) {
        (Some(obj), Some(h2p)) => (1.0 - obj.weight) * standard + obj.weight * h2p,
        _ => standard,
    };
    TuneCell {
        spec,
        stage,
        runs,
        scenarios,
        h2p_reduction_percent,
        mean_reduction_percent,
    }
}

/// Runs the staged search over `space` under `env`.
///
/// Stage 0 evaluates the coarse grid (plus the untuned default, so the
/// report always has its reference row); each refinement round expands
/// the current frontier's one-step neighbours, skipping anything already
/// evaluated, until the round budget or the neighbour supply runs out.
/// Deterministic for any `env.threads`.
#[must_use]
pub fn run_search(space: &TuneSpace, env: &ExpEnv, opts: &TuneOptions) -> TuneOutcome {
    run_search_on(space, env, opts, &env.programs())
}

/// [`run_search`] over an already-synthesized program set, so callers
/// that need the programs again afterwards (the H2P slice pass) don't
/// pay for benchmark synthesis twice.
#[must_use]
pub fn run_search_on(
    space: &TuneSpace,
    env: &ExpEnv,
    opts: &TuneOptions,
    programs: &[(Benchmark, Program)],
) -> TuneOutcome {
    let benches: Vec<Benchmark> = programs.iter().map(|(b, _)| b.clone()).collect();
    let warmups = &space.warmup_permille;

    // A space with no scoring scenarios (or no candidates) has nothing
    // to evaluate; return an empty outcome rather than bookkeeping
    // stages that never ran.
    if warmups.is_empty() || space.mixes.is_empty() || space.enumerate().is_empty() {
        return TuneOutcome {
            space: space.clone(),
            scenarios: space.scenarios(),
            baseline_runs: Vec::new(),
            ranked: Vec::new(),
            stage_sizes: Vec::new(),
            benchmarks: benches,
        };
    }

    // Baseline runs, one row per warm-up fraction.
    let baseline_runs: Vec<Vec<AccuracyResult>> =
        evaluate(&[baseline_spec()], programs, warmups, env)
            .pop()
            .expect("one spec in, one row out");

    let mut evaluated: Vec<TuneCell> = Vec::new();
    let mut seen: HashSet<HybridSpec> = HashSet::new();
    let mut stage_sizes = Vec::new();

    // ---- Stage 0: coarse grid (+ the untuned default reference).
    let mut batch = space.coarse();
    let default = untuned_default();
    if space.fits(&default) && !batch.contains(&default) {
        batch.push(default);
    }
    batch.retain(|s| seen.insert(*s));
    let results = evaluate(&batch, programs, warmups, env);
    for (spec, runs) in batch.iter().zip(results) {
        evaluated.push(score(*spec, 0, runs, &baseline_runs, &benches, space));
    }
    stage_sizes.push(batch.len());

    // ---- Stages 1..: local refinement around the frontier.
    let mut rng = SmallRng::seed_from_u64(SEARCH_SEED);
    for round in 1..=opts.rounds {
        let mut frontier: Vec<HybridSpec> = {
            let mut ranked: Vec<&TuneCell> = evaluated.iter().collect();
            ranked.sort_by(|a, b| rank_order(a, b));
            ranked
                .into_iter()
                .take(opts.frontier)
                .map(|c| c.spec)
                .collect()
        };
        frontier.sort_unstable_by_key(HybridSpec::label);
        let mut batch: Vec<HybridSpec> = Vec::new();
        for spec in &frontier {
            for n in space.neighbors(spec) {
                if !seen.contains(&n) && !batch.contains(&n) {
                    batch.push(n);
                }
            }
        }
        // Deterministically subsample an oversized round: the only
        // randomness in the search, under a fixed seed.
        while batch.len() > opts.round_cap {
            let drop = rng.gen_range(0..batch.len());
            batch.remove(drop);
        }
        if batch.is_empty() {
            break;
        }
        for s in &batch {
            seen.insert(*s);
        }
        let results = evaluate(&batch, programs, warmups, env);
        for (spec, runs) in batch.iter().zip(results) {
            evaluated.push(score(*spec, round, runs, &baseline_runs, &benches, space));
        }
        stage_sizes.push(batch.len());
    }

    let mut ranked = evaluated;
    ranked.sort_by(rank_order);
    TuneOutcome {
        space: space.clone(),
        scenarios: space.scenarios(),
        baseline_runs,
        ranked,
        stage_sizes,
        benchmarks: benches,
    }
}

/// The single ranking order used by both the refinement frontier and the
/// final outcome: descending mean reduction, spec label as the tie-break.
fn rank_order(a: &TuneCell, b: &TuneCell) -> std::cmp::Ordering {
    b.mean_reduction_percent
        .partial_cmp(&a.mean_reduction_percent)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.spec.label().cmp(&b.spec.label()))
}

/// One benchmark's hard-to-predict slice: the H2P statics flagged by the
/// corpus [`BranchProfile`], with mispredicts on exactly that branch
/// population under the baseline (trace replay) and the two hybrids
/// (snapshot-style re-execution with a per-commit observer).
#[derive(Clone, PartialEq, Debug)]
pub struct H2pSlice {
    /// Benchmark name.
    pub bench: String,
    /// H2P statics flagged by the corpus profile.
    pub h2p_statics: usize,
    /// Measured dynamic executions of the H2P population (baseline
    /// replay).
    pub h2p_occurrences: u64,
    /// Baseline (16 KB 2Bc-gskew, trace replay) mispredicts on the slice.
    pub baseline_misp: u64,
    /// Untuned-default hybrid mispredicts on the slice (re-execution).
    pub default_misp: u64,
    /// Winner hybrid mispredicts on the slice (re-execution).
    pub winner_misp: u64,
}

/// Computes per-benchmark H2P slices for `winner` vs. the untuned
/// default vs. the baseline, over an in-memory recorded corpus.
///
/// One cell per benchmark through [`par_map`]: record the correct-path
/// trace, flag H2P statics from its [`BranchProfile`]
/// ([`H2P_MIN_OCCURRENCES`]/[`H2P_MAX_BIAS`]), replay the baseline over
/// the trace, and re-execute both hybrids with the per-PC observer.
/// Deterministic for any thread count.
#[must_use]
pub fn h2p_slices(
    winner: &HybridSpec,
    programs: &[(Benchmark, Program)],
    env: &ExpEnv,
    warmup_permille: u32,
) -> Vec<H2pSlice> {
    let budget = env.uop_budget();
    let default = untuned_default();
    par_map(programs, env.threads, |_, (bench, program)| {
        let mut bt = Vec::new();
        record_trace(program, bench.seed, budget, &mut bt)
            .expect("in-memory recording cannot fail");

        // H2P population from the corpus profile (predictor-independent).
        let mut profile = BranchProfile::new();
        let mut reader = BtReader::new(bt.as_slice()).expect("in-memory trace is well-formed");
        while let Some(rec) = reader
            .next_record()
            .expect("in-memory trace is well-formed")
        {
            profile.observe(&rec);
        }
        let h2p: HashSet<u64> = profile
            .h2p_candidates(H2P_MIN_OCCURRENCES, H2P_MAX_BIAS)
            .iter()
            .map(|b| b.pc)
            .collect();

        // Baseline: conventional predictor, trace replay (§6 split).
        let replay_cfg = ReplayConfig {
            max_uops: budget,
            warmup_uops: budget * u64::from(warmup_permille) / 1000,
        };
        let mut base = configs::bc_gskew(Budget::K16);
        let base_replay =
            replay_bytes(&bt, &mut base, &replay_cfg).expect("in-memory trace is well-formed");
        let baseline_misp: u64 = base_replay
            .per_branch
            .iter()
            .filter(|b| h2p.contains(&b.pc))
            .map(|b| b.mispredicts)
            .sum();
        let h2p_occurrences: u64 = base_replay
            .per_branch
            .iter()
            .filter(|b| h2p.contains(&b.pc))
            .map(|b| b.occurrences)
            .sum();

        // Hybrids: re-execution with the per-commit observer.
        let cfg = sim_config(env, warmup_permille, bench.seed);
        let slice_misp = |spec: &HybridSpec| -> u64 {
            let mut per_pc: HashMap<u64, u64> = HashMap::new();
            let mut hybrid = spec.build();
            let _ = run_accuracy_observed(program, &mut hybrid, &cfg, |pc, _, misp| {
                if misp {
                    *per_pc.entry(pc).or_insert(0) += 1;
                }
            });
            per_pc
                .iter()
                .filter(|(pc, _)| h2p.contains(*pc))
                .map(|(_, m)| *m)
                .sum()
        };
        H2pSlice {
            bench: bench.name.clone(),
            h2p_statics: h2p.len(),
            h2p_occurrences,
            baseline_misp,
            default_misp: slice_misp(&default),
            winner_misp: slice_misp(winner),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_is_the_filtered_cartesian_product() {
        let space = TuneSpace::quick();
        let specs = space.enumerate();
        assert_eq!(specs.len(), 3); // 1 prophet × 1 critic × 3 fb
        assert!(specs.iter().all(|s| space.fits(s)));
    }

    #[test]
    fn empty_dimension_enumerates_nothing() {
        for dim in 0..3 {
            let mut space = TuneSpace::quick();
            match dim {
                0 => space.prophets.clear(),
                1 => space.critics.clear(),
                _ => space.future_bits.clear(),
            }
            assert!(space.enumerate().is_empty(), "dim {dim}");
            assert!(space.coarse().is_empty(), "dim {dim}");
        }
    }

    #[test]
    fn single_point_space_enumerates_one_cell() {
        let space = TuneSpace {
            name: "custom",
            prophets: vec![(ProphetKind::BcGskew, Budget::K8)],
            critics: vec![(CriticKind::TaggedGshare, Budget::K8)],
            future_bits: vec![2],
            confident: vec![false],
            warmup_permille: vec![200],
            mixes: vec![MixProfile::paper()],
            max_total_bytes: Some(18 * 1024),
            h2p: None,
        };
        assert_eq!(space.enumerate().len(), 1);
        assert_eq!(space.coarse().len(), 1);
        // A single point has no neighbours to refine toward.
        assert!(space.neighbors(&space.enumerate()[0]).is_empty());
    }

    #[test]
    fn storage_cap_filters_oversized_pairs() {
        let mut space = TuneSpace::quick();
        space.critics = vec![(CriticKind::TaggedGshare, Budget::K32)];
        assert!(space.enumerate().is_empty(), "8KB + 32KB must not fit");
        space.max_total_bytes = None;
        assert_eq!(space.enumerate().len(), 3, "uncapped space sweeps all");
    }

    #[test]
    fn none_critic_candidates_collapse_future_bits() {
        let mut space = TuneSpace::quick();
        space.critics = vec![(CriticKind::None, Budget::K8)];
        let specs = space.enumerate();
        // All three future-bit values collapse onto the same alone-spec.
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].future_bits, 0);
    }

    #[test]
    fn coarse_is_a_subset_of_enumerate() {
        let space = TuneSpace::headline();
        let full = space.enumerate();
        let coarse = space.coarse();
        assert!(coarse.len() < full.len());
        assert!(coarse.iter().all(|s| full.contains(s)));
    }

    #[test]
    fn neighbors_stay_in_space_and_differ_by_one_axis() {
        let space = TuneSpace::headline();
        let full = space.enumerate();
        let spec = untuned_default();
        let ns = space.neighbors(&spec);
        assert!(!ns.is_empty());
        for n in &ns {
            assert!(full.contains(n), "{} not in space", n.label());
            let mut diffs = 0;
            if (n.prophet, n.prophet_budget) != (spec.prophet, spec.prophet_budget) {
                diffs += 1;
            }
            if (n.critic, n.critic_budget) != (spec.critic, spec.critic_budget) {
                diffs += 1;
            }
            if n.future_bits != spec.future_bits {
                diffs += 1;
            }
            if n.confident_override != spec.confident_override {
                diffs += 1;
            }
            assert_eq!(diffs, 1, "{} differs on {diffs} axes", n.label());
        }
    }

    #[test]
    fn critic_axis_neighbors_collapse_the_confidence_axis() {
        // A confident t.gshare spec stepping to a critic kind without a
        // confidence signal must land on the canonical (conf=false) spec
        // from `enumerate`, not a phantom duplicate outside the space.
        let space = TuneSpace::headline();
        let full = space.enumerate();
        let spec = HybridSpec::paired(
            ProphetKind::BcGskew,
            Budget::K8,
            CriticKind::TaggedGshare,
            Budget::K8,
            1,
        )
        .with_confident_override(true);
        assert!(full.contains(&spec));
        for n in space.neighbors(&spec) {
            assert!(full.contains(&n), "{} escaped the space", n.label());
            if !matches!(n.critic, CriticKind::TaggedGshare | CriticKind::Tage) {
                assert!(!n.confident_override, "{}", n.label());
            }
        }
    }

    #[test]
    fn headline_space_sweeps_tage_prophets_and_critics() {
        let space = TuneSpace::headline();
        let full = space.enumerate();
        for kind in [ProphetKind::Tage, ProphetKind::TageH2p] {
            assert!(
                full.iter().any(|s| s.prophet == kind),
                "{kind:?} missing from the headline search space"
            );
        }
        assert!(
            full.iter().any(|s| s.critic == CriticKind::Tage),
            "TAGE critic missing from the headline search space"
        );
        // The TAGE critic carries a confidence signal: both override
        // policies must survive enumeration (no axis collapse).
        assert!(full
            .iter()
            .any(|s| s.critic == CriticKind::Tage && s.confident_override));
    }

    #[test]
    fn h2p_objective_blends_the_ranking_key_without_touching_scenarios() {
        let space = TuneSpace::quick();
        let mut weighted = space.clone();
        weighted.h2p = Some(H2pObjective::new(0.5, vec![("gzip".into(), 9.0)]));
        let benches: Vec<Benchmark> = workloads::all_benchmarks()
            .into_iter()
            .filter(|b| b.name == "gzip" || b.name == "vpr")
            .collect();
        let run = |g: u64, v: u64| {
            vec![vec![
                AccuracyResult {
                    benchmark: "gzip".into(),
                    committed_uops: 1000,
                    final_mispredicts: g,
                    ..AccuracyResult::default()
                },
                AccuracyResult {
                    benchmark: "vpr".into(),
                    committed_uops: 1000,
                    final_mispredicts: v,
                    ..AccuracyResult::default()
                },
            ]]
        };
        let baseline = run(20, 20);
        let spec = untuned_default();
        let plain = score(spec, 0, run(10, 20), &baseline, &benches, &space);
        assert_eq!(plain.h2p_reduction_percent, None);
        let blended = score(spec, 0, run(10, 20), &baseline, &benches, &weighted);
        // Scenario payloads are objective-independent (cell stability).
        assert_eq!(plain.scenarios, blended.scenarios);
        // gzip-only mass: h2p reduction = 50 %, standard = 25 %, blend 0.5.
        let h2p = blended.h2p_reduction_percent.expect("objective attached");
        assert!((h2p - 50.0).abs() < 1e-9, "{h2p}");
        let expect = 0.5 * plain.mean_reduction_percent + 0.5 * 50.0;
        assert!(
            (blended.mean_reduction_percent - expect).abs() < 1e-9,
            "{} vs {expect}",
            blended.mean_reduction_percent
        );
    }

    #[test]
    fn scenarios_are_warmup_major() {
        let space = TuneSpace::headline();
        let sc = space.scenarios();
        assert_eq!(sc.len(), space.warmup_permille.len() * space.mixes.len());
        assert_eq!(sc[0].warmup_permille, space.warmup_permille[0]);
        assert_eq!(sc[0].mix.name, space.mixes[0].name);
    }

    #[test]
    fn weighted_pooling_matches_plain_pooling_under_uniform_counts() {
        // Two benchmarks from the same suite: weighting cannot change the
        // pooled rate.
        let benches: Vec<Benchmark> = workloads::all_benchmarks()
            .into_iter()
            .filter(|b| b.name == "gzip" || b.name == "vpr")
            .collect();
        let runs = vec![
            AccuracyResult {
                benchmark: "gzip".into(),
                committed_uops: 1000,
                final_mispredicts: 10,
                ..AccuracyResult::default()
            },
            AccuracyResult {
                benchmark: "vpr".into(),
                committed_uops: 3000,
                final_mispredicts: 6,
                ..AccuracyResult::default()
            },
        ];
        let weighted = weighted_misp_per_kuops(&benches, &runs, &MixProfile::paper());
        assert!((weighted - 4.0).abs() < 1e-12, "{weighted}");
    }
}
