//! The H2P-targeted experiment (`experiments h2p`): per-hard-branch
//! accuracy deltas between the 16 KB 2Bc-gskew baseline and the tuned
//! prophet/critic hybrid, in the style of the Bullseye study
//! (arXiv:2506.06773) — predictor quality is dominated by a small
//! population of hard-to-predict static branches, so this experiment
//! reports *where* the hybrid wins or loses, static by static.
//!
//! Per benchmark, one `par_map` cell:
//!
//! 1. record the correct-path trace in memory (identical bytes to
//!    `traces record`);
//! 2. flag the H2P statics from the trace's [`BranchProfile`]
//!    (low-bias conditionals with enough dynamic executions —
//!    predictor-independent);
//! 3. replay the **baseline** over the trace (§6: conventional
//!    predictors replay) and collect its per-static mispredicts;
//! 4. re-execute the **hybrid** from the program (§6: hybrids must walk
//!    real wrong paths) with the per-commit observer and collect its
//!    per-static mispredicts;
//! 5. emit the per-static deltas on exactly the flagged population.
//!
//! The report (`BENCH_h2p.json`) carries no thread count and no
//! wall-clock: it is byte-identical for any `--threads`, pinned by
//! `crates/sim/tests/h2p.rs`.

use std::collections::HashMap;

use bptrace::{BranchProfile, BtReader, H2P_MAX_BIAS, H2P_MIN_OCCURRENCES};
use predictors::configs::{self, Budget};
use prophet_critic::HybridSpec;
use replay::{record_trace, replay_bytes, ReplayConfig};
use workloads::{Benchmark, Program};

use crate::accuracy::run_accuracy_observed;
use crate::experiments::common::{cached, ExpEnv};
use crate::runner::{try_par_map, CellFailure};
use crate::store::{CellKey, CellPayload};
use crate::table::{f2, pct, Table};

/// Default path of the machine-readable report.
pub const JSON_PATH: &str = "BENCH_h2p.json";

/// Per-benchmark H2P rows kept in the report (the hardest statics,
/// by baseline mispredicts).
const ROWS_PER_BENCH: usize = 8;

/// One hard static branch, with both sides' mispredicts on it.
#[derive(Clone, PartialEq, Debug)]
pub struct H2pStatic {
    /// The branch instruction's address.
    pub pc: u64,
    /// Measured dynamic executions under the baseline replay.
    pub occurrences: u64,
    /// Fraction of executions taken (baseline replay, measured region).
    pub taken_rate: f64,
    /// Baseline (trace-replay) mispredicts on this static.
    pub baseline_misp: u64,
    /// Hybrid (re-execution) mispredicts on this static.
    pub hybrid_misp: u64,
}

impl H2pStatic {
    /// Percent mispredict reduction on this static (positive = the
    /// hybrid wins).
    #[must_use]
    pub fn reduction_percent(&self) -> f64 {
        crate::metrics::percent_reduction(self.baseline_misp as f64, self.hybrid_misp as f64)
    }
}

/// One benchmark's H2P slice.
#[derive(Clone, PartialEq, Debug)]
pub struct H2pBench {
    /// Benchmark name.
    pub bench: String,
    /// H2P statics flagged by the corpus profile.
    pub h2p_statics: usize,
    /// Dynamic executions of the flagged population (baseline replay).
    pub h2p_occurrences: u64,
    /// Baseline mispredicts summed over the population.
    pub baseline_misp: u64,
    /// Hybrid mispredicts summed over the population.
    pub hybrid_misp: u64,
    /// 16 KB TAGE (no allocator) mispredicts summed over the population
    /// (re-execution) — the allocator ablation's control arm.
    pub tage_misp: u64,
    /// The same 16 KB TAGE with the Bullseye-style [`DynamicAllocator`]
    /// attached and seeded from this trace's [`BranchProfile`] H2P flags
    /// — mispredicts summed over the population (re-execution).
    ///
    /// [`DynamicAllocator`]: predictors::DynamicAllocator
    pub tage_h2p_misp: u64,
    /// The hardest statics, descending baseline mispredicts (ties by
    /// PC), capped at `ROWS_PER_BENCH` (8).
    pub worst: Vec<H2pStatic>,
}

/// The baseline side: the paper's 16 KB 2Bc-gskew, replayed over the
/// trace.
#[must_use]
pub fn baseline_label() -> String {
    crate::tune::baseline_spec().label()
}

/// The hybrid side: the tuned headline preset, re-executed.
#[must_use]
pub fn hybrid_spec() -> HybridSpec {
    HybridSpec::tuned_headline()
}

/// Computes every benchmark's H2P slice with fault isolation: one cell
/// per benchmark, resolved through the environment's cell store, panics
/// recorded as [`CellFailure`]s (`None` in the result vector). Both
/// vectors are deterministic for any thread count.
#[must_use]
pub fn h2p_benches_checked(env: &ExpEnv) -> (Vec<Option<H2pBench>>, Vec<CellFailure>) {
    let programs = env.programs();
    let budget = env.uop_budget();
    let spec = hybrid_spec();
    let baseline = crate::tune::baseline_spec();
    let label = |_: usize, (bench, _): &(Benchmark, Program)| format!("h2p × {}", bench.name);
    try_par_map(&programs, env.threads, label, |i, cell| {
        let (bench, program) = cell;
        env.fault.panic_if_scheduled(&label(i, cell));
        let key = CellKey::new(
            "h2p",
            &format!("{baseline:?} vs {spec:?} × {}", bench.name),
            bench.seed,
            budget,
        );
        cached(env, &key, || {
            h2p_one_bench(env, bench, program, &spec, budget)
        })
    })
}

/// Computes every benchmark's H2P slice, one grid cell each.
///
/// # Panics
///
/// If any cell panics, naming the failed cell; see
/// [`h2p_benches_checked`] for the tolerant form.
#[must_use]
pub fn h2p_benches(env: &ExpEnv) -> Vec<H2pBench> {
    let (cells, failures) = h2p_benches_checked(env);
    if let Some(first) = failures.first() {
        panic!(
            "{} of the h2p grid's cells failed; first failure: {first}",
            failures.len()
        );
    }
    cells.into_iter().map(Option::unwrap).collect()
}

/// One benchmark's full H2P pipeline (record → flag → replay baseline →
/// re-execute hybrid → per-static deltas).
fn h2p_one_bench(
    env: &ExpEnv,
    bench: &Benchmark,
    program: &Program,
    spec: &HybridSpec,
    budget: u64,
) -> H2pBench {
    {
        let mut bt = Vec::new();
        record_trace(program, bench.seed, budget, &mut bt)
            .expect("in-memory recording cannot fail");

        // H2P population from the corpus profile (predictor-independent).
        let mut profile = BranchProfile::new();
        let mut reader = BtReader::new(bt.as_slice()).expect("in-memory trace is well-formed");
        while let Some(rec) = reader
            .next_record()
            .expect("in-memory trace is well-formed")
        {
            profile.observe(&rec);
        }
        let h2p: Vec<u64> = profile
            .h2p_candidates(H2P_MIN_OCCURRENCES, H2P_MAX_BIAS)
            .iter()
            .map(|b| b.pc)
            .collect();

        // Baseline: conventional predictor, trace replay (§6 split).
        let mut base = configs::bc_gskew(Budget::K16);
        let base_replay = replay_bytes(&bt, &mut base, &ReplayConfig::with_budget(budget))
            .expect("in-memory trace is well-formed");
        let base_by_pc: HashMap<u64, (u64, u64, f64)> = base_replay
            .per_branch
            .iter()
            .map(|b| (b.pc, (b.occurrences, b.mispredicts, b.taken_rate())))
            .collect();

        // Hybrid: re-execution with the per-commit observer.
        let mut hyb_by_pc: HashMap<u64, u64> = HashMap::new();
        let mut hybrid = spec.build();
        let _ = run_accuracy_observed(
            program,
            &mut hybrid,
            &env.sim_config(bench.seed),
            |pc, _, misp| {
                if misp {
                    *hyb_by_pc.entry(pc).or_insert(0) += 1;
                }
            },
        );

        // Allocator ablation: the same 16 KB TAGE with and without the
        // Bullseye-style H2P allocator, the allocator seeded from the
        // trace profile's flags (capacity-capped; the online tracker
        // keeps flagging beyond the seed set during the run).
        let h2p_set: std::collections::HashSet<u64> = h2p.iter().copied().collect();
        let slice_misp_on = |tage: predictors::Tage| -> u64 {
            let mut misp_sum = 0u64;
            let mut alone = prophet_critic::ProphetCritic::new(
                prophet_critic::AnyProphet::Tage(tage),
                prophet_critic::NullCritic::new(),
                0,
            );
            let _ = run_accuracy_observed(
                program,
                &mut alone,
                &env.sim_config(bench.seed),
                |pc, _, misp| {
                    if misp && h2p_set.contains(&pc) {
                        misp_sum += 1;
                    }
                },
            );
            misp_sum
        };
        let tage_misp = slice_misp_on(configs::tage(Budget::K16));
        let tage_h2p_misp = {
            let mut tage = configs::tage_h2p(Budget::K16);
            if let Some(alloc) = tage.allocator_mut() {
                for pc in &h2p {
                    alloc.flag(predictors::Pc::new(*pc));
                }
            }
            slice_misp_on(tage)
        };

        let mut statics: Vec<H2pStatic> = h2p
            .iter()
            .filter_map(|pc| {
                let &(occurrences, baseline_misp, taken_rate) = base_by_pc.get(pc)?;
                Some(H2pStatic {
                    pc: *pc,
                    occurrences,
                    taken_rate,
                    baseline_misp,
                    hybrid_misp: hyb_by_pc.get(pc).copied().unwrap_or(0),
                })
            })
            .collect();
        statics
            .sort_unstable_by(|a, b| b.baseline_misp.cmp(&a.baseline_misp).then(a.pc.cmp(&b.pc)));
        let h2p_occurrences = statics.iter().map(|s| s.occurrences).sum();
        let baseline_misp = statics.iter().map(|s| s.baseline_misp).sum();
        let hybrid_misp = statics.iter().map(|s| s.hybrid_misp).sum();
        statics.truncate(ROWS_PER_BENCH);
        H2pBench {
            bench: bench.name.clone(),
            h2p_statics: h2p.len(),
            h2p_occurrences,
            baseline_misp,
            hybrid_misp,
            tage_misp,
            tage_h2p_misp,
            worst: statics,
        }
    }
}

impl CellPayload for H2pBench {
    fn to_cell_bytes(&self) -> Vec<u8> {
        let mut out = format!(
            "bench={}\nh2p_statics={}\nh2p_occurrences={}\nbaseline_misp={}\nhybrid_misp={}\n\
             tage_misp={}\ntage_h2p_misp={}\n",
            self.bench,
            self.h2p_statics,
            self.h2p_occurrences,
            self.baseline_misp,
            self.hybrid_misp,
            self.tage_misp,
            self.tage_h2p_misp
        );
        for s in &self.worst {
            out.push_str(&format!(
                "worst={},{},f:{:016x},{},{}\n",
                s.pc,
                s.occurrences,
                s.taken_rate.to_bits(),
                s.baseline_misp,
                s.hybrid_misp
            ));
        }
        out.into_bytes()
    }

    fn from_cell_bytes(bytes: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut fields: HashMap<&str, &str> = HashMap::new();
        let mut worst = Vec::new();
        for line in text.lines() {
            let (k, v) = line.split_once('=')?;
            if k == "worst" {
                let mut parts = v.split(',');
                let pc = parts.next()?.parse().ok()?;
                let occurrences = parts.next()?.parse().ok()?;
                let taken_bits = u64::from_str_radix(parts.next()?.strip_prefix("f:")?, 16).ok()?;
                let baseline_misp = parts.next()?.parse().ok()?;
                let hybrid_misp = parts.next()?.parse().ok()?;
                if parts.next().is_some() {
                    return None;
                }
                worst.push(H2pStatic {
                    pc,
                    occurrences,
                    taken_rate: f64::from_bits(taken_bits),
                    baseline_misp,
                    hybrid_misp,
                });
            } else {
                fields.insert(k, v);
            }
        }
        Some(Self {
            bench: (*fields.get("bench")?).to_string(),
            h2p_statics: fields.get("h2p_statics")?.parse().ok()?,
            h2p_occurrences: fields.get("h2p_occurrences")?.parse().ok()?,
            baseline_misp: fields.get("baseline_misp")?.parse().ok()?,
            hybrid_misp: fields.get("hybrid_misp")?.parse().ok()?,
            tage_misp: fields.get("tage_misp")?.parse().ok()?,
            tage_h2p_misp: fields.get("tage_h2p_misp")?.parse().ok()?,
            worst,
        })
    }
}

/// Runs the experiment and also returns the machine-readable JSON
/// report (thread-count independent by construction).
///
/// Failed cells (e.g. under fault injection) drop out of the tables and
/// are listed in a `failed_cells` JSON section — which is emitted only
/// when non-empty, so clean runs stay byte-identical to earlier builds.
#[must_use]
pub fn run_with_report(env: &ExpEnv) -> (Vec<Table>, String) {
    let (cells, failures) = h2p_benches_checked(env);
    let benches: Vec<H2pBench> = cells.into_iter().flatten().collect();
    let spec = hybrid_spec();

    let mut per_bench = Table::new(
        format!(
            "H2P slices — {} (replay) vs {} (re-execution)",
            baseline_label(),
            spec.label()
        ),
        &[
            "benchmark",
            "h2p statics",
            "h2p execs",
            "baseline misp",
            "hybrid misp",
            "reduction",
        ],
    );
    for b in &benches {
        per_bench.row(vec![
            b.bench.clone(),
            b.h2p_statics.to_string(),
            b.h2p_occurrences.to_string(),
            b.baseline_misp.to_string(),
            b.hybrid_misp.to_string(),
            pct(crate::metrics::percent_reduction(
                b.baseline_misp as f64,
                b.hybrid_misp as f64,
            )),
        ]);
    }
    per_bench.note(format!(
        "h2p: conditionals with \u{2265}{H2P_MIN_OCCURRENCES} recorded executions and bias \
         \u{2264}{H2P_MAX_BIAS} (trace BranchProfile; predictor-independent)"
    ));
    per_bench.note(
        "positive reduction: the critic repairs that benchmark's hard statics \
         (Bullseye-style slice, arXiv:2506.06773)",
    );
    for f in &failures {
        per_bench.note(format!("FAILED CELL '{}': {}", f.label, f.reason));
    }

    // Allocator ablation: same TAGE, with vs without the H2P allocator.
    let mut ablation = Table::new(
        "TAGE H2P allocator ablation — 16KB tage vs 16KB tage+h2p on the flagged statics",
        &[
            "benchmark",
            "h2p statics",
            "tage misp",
            "tage+h2p misp",
            "allocator delta",
        ],
    );
    let (mut tage_total, mut tage_h2p_total) = (0u64, 0u64);
    for b in &benches {
        tage_total += b.tage_misp;
        tage_h2p_total += b.tage_h2p_misp;
        ablation.row(vec![
            b.bench.clone(),
            b.h2p_statics.to_string(),
            b.tage_misp.to_string(),
            b.tage_h2p_misp.to_string(),
            pct(crate::metrics::percent_reduction(
                b.tage_misp as f64,
                b.tage_h2p_misp as f64,
            )),
        ]);
    }
    ablation.note(format!(
        "corpus total: {tage_total} misp without the allocator vs {tage_h2p_total} with it \
         ({} on the flagged population)",
        pct(crate::metrics::percent_reduction(
            tage_total as f64,
            tage_h2p_total as f64
        ))
    ));
    ablation.note(
        "the allocator is seeded from the trace profile's H2P flags (capacity-capped) and \
         steals dedicated per-context capacity for exactly those statics",
    );

    // The hardest statics across the whole corpus.
    let mut worst: Vec<(&str, &H2pStatic)> = benches
        .iter()
        .flat_map(|b| b.worst.iter().map(move |s| (b.bench.as_str(), s)))
        .collect();
    worst.sort_by(|a, b| {
        b.1.baseline_misp
            .cmp(&a.1.baseline_misp)
            .then(a.1.pc.cmp(&b.1.pc))
            .then(a.0.cmp(b.0))
    });
    worst.truncate(12);
    let mut worst_t = Table::new(
        "Hardest statics corpus-wide (by baseline mispredicts)",
        &[
            "benchmark",
            "pc",
            "execs",
            "taken rate",
            "baseline misp",
            "hybrid misp",
            "reduction",
        ],
    );
    for (bench, s) in &worst {
        worst_t.row(vec![
            (*bench).to_string(),
            format!("{:#x}", s.pc),
            s.occurrences.to_string(),
            f2(s.taken_rate),
            s.baseline_misp.to_string(),
            s.hybrid_misp.to_string(),
            pct(s.reduction_percent()),
        ]);
    }

    // Machine-readable report (no threads, no wall-clock — byte-identical
    // across `--threads`).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_h2p_v2\",\n");
    json.push_str(&format!("  \"scale\": {},\n", env.scale));
    json.push_str(&format!("  \"bench_set\": \"{:?}\",\n", env.bench_set));
    json.push_str(&format!("  \"uop_budget\": {},\n", env.uop_budget()));
    json.push_str(&format!("  \"baseline\": \"{}\",\n", baseline_label()));
    json.push_str(&format!("  \"hybrid\": \"{}\",\n", spec.label()));
    json.push_str("  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        let comma = if i + 1 < benches.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"h2p_statics\": {}, \"h2p_occurrences\": {}, \
             \"baseline_misp\": {}, \"hybrid_misp\": {}, \"tage_misp\": {}, \
             \"tage_h2p_misp\": {}, \"worst\": [",
            b.bench,
            b.h2p_statics,
            b.h2p_occurrences,
            b.baseline_misp,
            b.hybrid_misp,
            b.tage_misp,
            b.tage_h2p_misp
        ));
        for (j, s) in b.worst.iter().enumerate() {
            let wcomma = if j + 1 < b.worst.len() { ", " } else { "" };
            json.push_str(&format!(
                "{{\"pc\": {}, \"occurrences\": {}, \"taken_rate\": {:.4}, \
                 \"baseline_misp\": {}, \"hybrid_misp\": {}}}{wcomma}",
                s.pc, s.occurrences, s.taken_rate, s.baseline_misp, s.hybrid_misp
            ));
        }
        json.push_str(&format!("]}}{comma}\n"));
    }
    json.push_str("  ]");
    if failures.is_empty() {
        json.push('\n');
    } else {
        // Deterministic across `--threads`: sorted by cell index, worker
        // IDs deliberately excluded.
        json.push_str(",\n  \"failed_cells\": [\n");
        for (i, f) in failures.iter().enumerate() {
            let comma = if i + 1 < failures.len() { "," } else { "" };
            json.push_str(&format!(
                "    {{\"label\": \"{}\", \"reason\": \"{}\"}}{comma}\n",
                crate::table::json_escape(&f.label),
                crate::table::json_escape(&f.reason)
            ));
        }
        json.push_str("  ]\n");
    }
    json.push_str("}\n");

    (vec![per_bench, ablation, worst_t], json)
}

/// Runs the experiment and writes [`JSON_PATH`].
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let (tables, json) = run_with_report(env);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => eprintln!("# wrote {JSON_PATH}"),
        Err(err) => eprintln!("# could not write {JSON_PATH}: {err}"),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2p_covers_the_fast_set_and_reconciles() {
        let env = ExpEnv {
            scale: 0.05,
            ..ExpEnv::tiny()
        };
        let (tables, json) = run_with_report(&env);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 14, "one row per fast-set bench");
        assert_eq!(tables[1].rows.len(), 14, "one ablation row per bench");
        assert!(json.contains("\"schema\": \"bench_h2p_v2\""));
        assert!(json.contains("\"tage_h2p_misp\""));
        // The per-bench totals cover the flagged population: every listed
        // worst static's counts are bounded by its bench totals.
        let benches = h2p_benches(&env);
        for b in &benches {
            assert!(b.worst.len() <= ROWS_PER_BENCH);
            for s in &b.worst {
                assert!(s.baseline_misp <= b.baseline_misp);
                assert!(s.hybrid_misp <= b.hybrid_misp);
                assert!(s.taken_rate >= 0.0 && s.taken_rate <= 1.0);
            }
        }
        // At least one benchmark must flag hard branches at this scale.
        assert!(benches.iter().any(|b| b.h2p_statics > 0));
        // The allocator ablation must show the seeded allocator improving
        // the flagged population corpus-wide (the Bullseye claim).
        let tage: u64 = benches.iter().map(|b| b.tage_misp).sum();
        let tage_h2p: u64 = benches.iter().map(|b| b.tage_h2p_misp).sum();
        eprintln!("# ablation corpus totals: tage={tage} tage+h2p={tage_h2p}");
        assert!(
            tage_h2p < tage,
            "allocator must improve the H2P slice: {tage_h2p} vs {tage}"
        );
    }
}
