//! The H2P-targeted experiment (`experiments h2p`): per-hard-branch
//! accuracy deltas between the 16 KB 2Bc-gskew baseline and the tuned
//! prophet/critic hybrid, in the style of the Bullseye study
//! (arXiv:2506.06773) — predictor quality is dominated by a small
//! population of hard-to-predict static branches, so this experiment
//! reports *where* the hybrid wins or loses, static by static.
//!
//! Per benchmark, one `par_map` cell:
//!
//! 1. record the correct-path trace in memory (identical bytes to
//!    `traces record`);
//! 2. flag the H2P statics from the trace's [`BranchProfile`]
//!    (low-bias conditionals with enough dynamic executions —
//!    predictor-independent);
//! 3. replay the **baseline** over the trace (§6: conventional
//!    predictors replay) and collect its per-static mispredicts;
//! 4. re-execute the **hybrid** from the program (§6: hybrids must walk
//!    real wrong paths) with the per-commit observer and collect its
//!    per-static mispredicts;
//! 5. emit the per-static deltas on exactly the flagged population.
//!
//! The report (`BENCH_h2p.json`) carries no thread count and no
//! wall-clock: it is byte-identical for any `--threads`, pinned by
//! `crates/sim/tests/h2p.rs`.

use std::collections::HashMap;

use bptrace::{BranchProfile, BtReader, H2P_MAX_BIAS, H2P_MIN_OCCURRENCES};
use predictors::configs::{self, Budget};
use prophet_critic::HybridSpec;
use replay::{record_trace, replay_bytes, ReplayConfig};

use crate::accuracy::run_accuracy_observed;
use crate::experiments::common::ExpEnv;
use crate::runner::par_map;
use crate::table::{f2, pct, Table};

/// Default path of the machine-readable report.
pub const JSON_PATH: &str = "BENCH_h2p.json";

/// Per-benchmark H2P rows kept in the report (the hardest statics,
/// by baseline mispredicts).
const ROWS_PER_BENCH: usize = 8;

/// One hard static branch, with both sides' mispredicts on it.
#[derive(Clone, PartialEq, Debug)]
pub struct H2pStatic {
    /// The branch instruction's address.
    pub pc: u64,
    /// Measured dynamic executions under the baseline replay.
    pub occurrences: u64,
    /// Fraction of executions taken (baseline replay, measured region).
    pub taken_rate: f64,
    /// Baseline (trace-replay) mispredicts on this static.
    pub baseline_misp: u64,
    /// Hybrid (re-execution) mispredicts on this static.
    pub hybrid_misp: u64,
}

impl H2pStatic {
    /// Percent mispredict reduction on this static (positive = the
    /// hybrid wins).
    #[must_use]
    pub fn reduction_percent(&self) -> f64 {
        crate::metrics::percent_reduction(self.baseline_misp as f64, self.hybrid_misp as f64)
    }
}

/// One benchmark's H2P slice.
#[derive(Clone, PartialEq, Debug)]
pub struct H2pBench {
    /// Benchmark name.
    pub bench: String,
    /// H2P statics flagged by the corpus profile.
    pub h2p_statics: usize,
    /// Dynamic executions of the flagged population (baseline replay).
    pub h2p_occurrences: u64,
    /// Baseline mispredicts summed over the population.
    pub baseline_misp: u64,
    /// Hybrid mispredicts summed over the population.
    pub hybrid_misp: u64,
    /// The hardest statics, descending baseline mispredicts (ties by
    /// PC), capped at `ROWS_PER_BENCH` (8).
    pub worst: Vec<H2pStatic>,
}

/// The baseline side: the paper's 16 KB 2Bc-gskew, replayed over the
/// trace.
#[must_use]
pub fn baseline_label() -> String {
    crate::tune::baseline_spec().label()
}

/// The hybrid side: the tuned headline preset, re-executed.
#[must_use]
pub fn hybrid_spec() -> HybridSpec {
    HybridSpec::tuned_headline()
}

/// Computes every benchmark's H2P slice, one `par_map` cell each.
#[must_use]
pub fn h2p_benches(env: &ExpEnv) -> Vec<H2pBench> {
    let programs = env.programs();
    let budget = env.uop_budget();
    let spec = hybrid_spec();
    par_map(&programs, env.threads, |_, (bench, program)| {
        let mut bt = Vec::new();
        record_trace(program, bench.seed, budget, &mut bt)
            .expect("in-memory recording cannot fail");

        // H2P population from the corpus profile (predictor-independent).
        let mut profile = BranchProfile::new();
        let mut reader = BtReader::new(bt.as_slice()).expect("in-memory trace is well-formed");
        while let Some(rec) = reader
            .next_record()
            .expect("in-memory trace is well-formed")
        {
            profile.observe(&rec);
        }
        let h2p: Vec<u64> = profile
            .h2p_candidates(H2P_MIN_OCCURRENCES, H2P_MAX_BIAS)
            .iter()
            .map(|b| b.pc)
            .collect();

        // Baseline: conventional predictor, trace replay (§6 split).
        let mut base = configs::bc_gskew(Budget::K16);
        let base_replay = replay_bytes(&bt, &mut base, &ReplayConfig::with_budget(budget))
            .expect("in-memory trace is well-formed");
        let base_by_pc: HashMap<u64, (u64, u64, f64)> = base_replay
            .per_branch
            .iter()
            .map(|b| (b.pc, (b.occurrences, b.mispredicts, b.taken_rate())))
            .collect();

        // Hybrid: re-execution with the per-commit observer.
        let mut hyb_by_pc: HashMap<u64, u64> = HashMap::new();
        let mut hybrid = spec.build();
        let _ = run_accuracy_observed(
            program,
            &mut hybrid,
            &env.sim_config(bench.seed),
            |pc, _, misp| {
                if misp {
                    *hyb_by_pc.entry(pc).or_insert(0) += 1;
                }
            },
        );

        let mut statics: Vec<H2pStatic> = h2p
            .iter()
            .filter_map(|pc| {
                let &(occurrences, baseline_misp, taken_rate) = base_by_pc.get(pc)?;
                Some(H2pStatic {
                    pc: *pc,
                    occurrences,
                    taken_rate,
                    baseline_misp,
                    hybrid_misp: hyb_by_pc.get(pc).copied().unwrap_or(0),
                })
            })
            .collect();
        statics
            .sort_unstable_by(|a, b| b.baseline_misp.cmp(&a.baseline_misp).then(a.pc.cmp(&b.pc)));
        let h2p_occurrences = statics.iter().map(|s| s.occurrences).sum();
        let baseline_misp = statics.iter().map(|s| s.baseline_misp).sum();
        let hybrid_misp = statics.iter().map(|s| s.hybrid_misp).sum();
        statics.truncate(ROWS_PER_BENCH);
        H2pBench {
            bench: bench.name.clone(),
            h2p_statics: h2p.len(),
            h2p_occurrences,
            baseline_misp,
            hybrid_misp,
            worst: statics,
        }
    })
}

/// Runs the experiment and also returns the machine-readable JSON
/// report (thread-count independent by construction).
#[must_use]
pub fn run_with_report(env: &ExpEnv) -> (Vec<Table>, String) {
    let benches = h2p_benches(env);
    let spec = hybrid_spec();

    let mut per_bench = Table::new(
        format!(
            "H2P slices — {} (replay) vs {} (re-execution)",
            baseline_label(),
            spec.label()
        ),
        &[
            "benchmark",
            "h2p statics",
            "h2p execs",
            "baseline misp",
            "hybrid misp",
            "reduction",
        ],
    );
    for b in &benches {
        per_bench.row(vec![
            b.bench.clone(),
            b.h2p_statics.to_string(),
            b.h2p_occurrences.to_string(),
            b.baseline_misp.to_string(),
            b.hybrid_misp.to_string(),
            pct(crate::metrics::percent_reduction(
                b.baseline_misp as f64,
                b.hybrid_misp as f64,
            )),
        ]);
    }
    per_bench.note(format!(
        "h2p: conditionals with \u{2265}{H2P_MIN_OCCURRENCES} recorded executions and bias \
         \u{2264}{H2P_MAX_BIAS} (trace BranchProfile; predictor-independent)"
    ));
    per_bench.note(
        "positive reduction: the critic repairs that benchmark's hard statics \
         (Bullseye-style slice, arXiv:2506.06773)",
    );

    // The hardest statics across the whole corpus.
    let mut worst: Vec<(&str, &H2pStatic)> = benches
        .iter()
        .flat_map(|b| b.worst.iter().map(move |s| (b.bench.as_str(), s)))
        .collect();
    worst.sort_by(|a, b| {
        b.1.baseline_misp
            .cmp(&a.1.baseline_misp)
            .then(a.1.pc.cmp(&b.1.pc))
            .then(a.0.cmp(b.0))
    });
    worst.truncate(12);
    let mut worst_t = Table::new(
        "Hardest statics corpus-wide (by baseline mispredicts)",
        &[
            "benchmark",
            "pc",
            "execs",
            "taken rate",
            "baseline misp",
            "hybrid misp",
            "reduction",
        ],
    );
    for (bench, s) in &worst {
        worst_t.row(vec![
            (*bench).to_string(),
            format!("{:#x}", s.pc),
            s.occurrences.to_string(),
            f2(s.taken_rate),
            s.baseline_misp.to_string(),
            s.hybrid_misp.to_string(),
            pct(s.reduction_percent()),
        ]);
    }

    // Machine-readable report (no threads, no wall-clock — byte-identical
    // across `--threads`).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_h2p_v1\",\n");
    json.push_str(&format!("  \"scale\": {},\n", env.scale));
    json.push_str(&format!("  \"bench_set\": \"{:?}\",\n", env.bench_set));
    json.push_str(&format!("  \"uop_budget\": {},\n", env.uop_budget()));
    json.push_str(&format!("  \"baseline\": \"{}\",\n", baseline_label()));
    json.push_str(&format!("  \"hybrid\": \"{}\",\n", spec.label()));
    json.push_str("  \"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        let comma = if i + 1 < benches.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"h2p_statics\": {}, \"h2p_occurrences\": {}, \
             \"baseline_misp\": {}, \"hybrid_misp\": {}, \"worst\": [",
            b.bench, b.h2p_statics, b.h2p_occurrences, b.baseline_misp, b.hybrid_misp
        ));
        for (j, s) in b.worst.iter().enumerate() {
            let wcomma = if j + 1 < b.worst.len() { ", " } else { "" };
            json.push_str(&format!(
                "{{\"pc\": {}, \"occurrences\": {}, \"taken_rate\": {:.4}, \
                 \"baseline_misp\": {}, \"hybrid_misp\": {}}}{wcomma}",
                s.pc, s.occurrences, s.taken_rate, s.baseline_misp, s.hybrid_misp
            ));
        }
        json.push_str(&format!("]}}{comma}\n"));
    }
    json.push_str("  ]\n}\n");

    (vec![per_bench, worst_t], json)
}

/// Runs the experiment and writes [`JSON_PATH`].
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let (tables, json) = run_with_report(env);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => eprintln!("# wrote {JSON_PATH}"),
        Err(err) => eprintln!("# could not write {JSON_PATH}: {err}"),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h2p_covers_the_fast_set_and_reconciles() {
        let env = ExpEnv {
            scale: 0.05,
            ..ExpEnv::tiny()
        };
        let (tables, json) = run_with_report(&env);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 14, "one row per fast-set bench");
        assert!(json.contains("\"schema\": \"bench_h2p_v1\""));
        // The per-bench totals cover the flagged population: every listed
        // worst static's counts are bounded by its bench totals.
        let benches = h2p_benches(&env);
        for b in &benches {
            assert!(b.worst.len() <= ROWS_PER_BENCH);
            for s in &b.worst {
                assert!(s.baseline_misp <= b.baseline_misp);
                assert!(s.hybrid_misp <= b.hybrid_misp);
                assert!(s.taken_rate >= 0.0 && s.taken_rate <= 1.0);
            }
        }
        // At least one benchmark must flag hard branches at this scale.
        assert!(benches.iter().any(|b| b.h2p_statics > 0));
    }
}
