//! The abstract's headline numbers: the 8 KB + 8 KB prophet/critic hybrid
//! vs. the 16 KB 2Bc-gskew (“a predictor similar to that of the proposed
//! Compaq Alpha EV8 processor”).
//!
//! Paper values: 39 % fewer mispredicts; flush distance 418 → 680 uops;
//! gcc mispredict rate 3.11 % → 1.23 %; uPC +7.8 %; fetched uops −8.6 %.

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};

use crate::cycle::run_cycles;
use crate::experiments::common::{pooled_accuracy, single_accuracy, ExpEnv};
use crate::experiments::upc::suite_data_profile;
use crate::metrics::percent_reduction;
use crate::table::{f2, pct, Table};

fn baseline() -> HybridSpec {
    HybridSpec::alone(ProphetKind::BcGskew, Budget::K16)
}

fn hybrid() -> HybridSpec {
    HybridSpec::paired(ProphetKind::BcGskew, Budget::K8, CriticKind::TaggedGshare, Budget::K8, 8)
}

/// Runs the headline comparison.
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let programs = env.programs();
    let base = pooled_accuracy(&baseline(), &programs, env);
    let hyb = pooled_accuracy(&hybrid(), &programs, env);

    let mut t = Table::new(
        "Headline — 8KB+8KB 2Bc-gskew + t.gshare vs 16KB 2Bc-gskew",
        &["metric", "16KB 2Bc-gskew", "8+8 prophet/critic", "change", "paper"],
    );
    t.row(vec![
        "misp/Kuops".into(),
        f2(base.misp_per_kuops()),
        f2(hyb.misp_per_kuops()),
        pct(percent_reduction(base.misp_per_kuops(), hyb.misp_per_kuops())),
        "39% fewer".into(),
    ]);
    t.row(vec![
        "uops per flush".into(),
        f2(base.uops_per_flush()),
        f2(hyb.uops_per_flush()),
        format!("x{:.2}", hyb.uops_per_flush() / base.uops_per_flush().max(1e-9)),
        "418 -> 680".into(),
    ]);

    // gcc's per-benchmark mispredict percentage.
    let gcc = env.named_programs(&["gcc"]);
    let (gb, gp) = &gcc[0];
    let gcc_base = single_accuracy(&baseline(), gb, gp, env);
    let gcc_hyb = single_accuracy(&hybrid(), gb, gp, env);
    t.row(vec![
        "gcc mispredicted branches".into(),
        pct(gcc_base.mispredict_percent()),
        pct(gcc_hyb.mispredict_percent()),
        pct(percent_reduction(gcc_base.mispredict_percent(), gcc_hyb.mispredict_percent())),
        "3.11% -> 1.23%".into(),
    ]);

    // Cycle-model uPC and fetched-uop comparison over the suite
    // representatives.
    let mut base_upc = 0.0;
    let mut hyb_upc = 0.0;
    let mut base_fetched = 0u64;
    let mut hyb_fetched = 0u64;
    let mut n = 0.0;
    for name in ["gcc", "swim", "specjbb", "premiere", "msvc7", "tpcc", "cad"] {
        let bench = workloads::benchmark(name).expect("representative");
        let program = bench.program();
        let mut cfg = crate::cycle::CycleConfig::with_budget(env.uop_budget(), bench.seed);
        cfg.data = suite_data_profile(bench.suite);
        let mut hb = baseline().build();
        let rb = run_cycles(&program, &mut hb, &cfg);
        let mut hh = hybrid().build();
        let rh = run_cycles(&program, &mut hh, &cfg);
        base_upc += rb.upc();
        hyb_upc += rh.upc();
        base_fetched += rb.fetched_uops;
        hyb_fetched += rh.fetched_uops;
        n += 1.0;
    }
    t.row(vec![
        "uPC (cycle model)".into(),
        f2(base_upc / n),
        f2(hyb_upc / n),
        pct((hyb_upc - base_upc) / base_upc * 100.0),
        "+7.8%".into(),
    ]);
    t.row(vec![
        "uops fetched (correct+wrong path)".into(),
        base_fetched.to_string(),
        hyb_fetched.to_string(),
        pct(-percent_reduction(base_fetched as f64, hyb_fetched as f64)),
        "-8.6%".into(),
    ]);
    t.note("absolute values differ (synthetic workloads); the comparison shape is the reproduction target");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_produces_five_metrics() {
        let t = &run(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 5);
        assert!(t.rows[0][0].contains("misp"));
    }
}
