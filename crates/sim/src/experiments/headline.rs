//! The abstract's headline numbers: a 16 KB-class prophet/critic hybrid
//! vs. the 16 KB 2Bc-gskew (“a predictor similar to that of the proposed
//! Compaq Alpha EV8 processor”).
//!
//! Paper values: 39 % fewer mispredicts; flush distance 418 → 680 uops;
//! gcc mispredict rate 3.11 % → 1.23 %; uPC +7.8 %; fetched uops −8.6 %.
//!
//! The hybrid side is [`HybridSpec::tuned_headline`] — the preset the
//! `tune` experiment promoted (see `sim::tune` and `docs/EXPERIMENTS.md`
//! for the calibration history and before/after numbers).

use prophet_critic::{Budget, HybridSpec, ProphetKind};

use crate::experiments::common::{run_grid, run_matrix, ExpEnv};
use crate::metrics::percent_reduction;
use crate::table::{f2, pct, Table};

fn baseline() -> HybridSpec {
    HybridSpec::alone(ProphetKind::BcGskew, Budget::K16)
}

/// The hybrid the headline runs: the 16 KB-class calibrated preset
/// promoted by `experiments tune` (see `sim::tune`); the untuned
/// 8+8/8-future-bit default it replaced is kept as
/// `tune::untuned_default` for comparison.
fn hybrid() -> HybridSpec {
    HybridSpec::tuned_headline()
}

/// The headline comparison in machine-readable form (what
/// `BENCH_headline.json` records alongside wall-clock).
#[derive(Copy, Clone, Debug)]
pub struct HeadlineMetrics {
    /// misp/Kuops of the 16 KB 2Bc-gskew baseline.
    pub baseline_misp_per_kuops: f64,
    /// misp/Kuops of the 8+8 KB prophet/critic hybrid.
    pub hybrid_misp_per_kuops: f64,
    /// Mispredict reduction, percent (paper: 39 %).
    pub misp_reduction_percent: f64,
    /// Committed uops between flushes, baseline.
    pub baseline_uops_per_flush: f64,
    /// Committed uops between flushes, hybrid (paper: 418 → 680).
    pub hybrid_uops_per_flush: f64,
    /// Average uPC over the suite representatives, baseline.
    pub baseline_upc: f64,
    /// Average uPC over the suite representatives, hybrid (paper: +7.8 %).
    pub hybrid_upc: f64,
}

/// Runs the headline comparison, returning both the rendered tables and
/// the raw metrics.
#[must_use]
pub fn run_with_metrics(env: &ExpEnv) -> (Vec<Table>, HeadlineMetrics) {
    let programs = env.programs();
    let specs = [baseline(), hybrid()];
    let pooled = run_grid(&specs, &programs, env);
    let (base, hyb) = (&pooled[0], &pooled[1]);

    let mut t = Table::new(
        format!("Headline — {} vs {}", specs[1].label(), specs[0].label()),
        &[
            "metric",
            "16KB 2Bc-gskew",
            "tuned prophet/critic",
            "change",
            "paper",
        ],
    );
    t.row(vec![
        "misp/Kuops".into(),
        f2(base.misp_per_kuops()),
        f2(hyb.misp_per_kuops()),
        pct(percent_reduction(
            base.misp_per_kuops(),
            hyb.misp_per_kuops(),
        )),
        "39% fewer".into(),
    ]);
    t.row(vec![
        "uops per flush".into(),
        f2(base.uops_per_flush()),
        f2(hyb.uops_per_flush()),
        format!(
            "x{:.2}",
            hyb.uops_per_flush() / base.uops_per_flush().max(1e-9)
        ),
        "418 -> 680".into(),
    ]);

    // gcc's per-benchmark mispredict percentage (one grid call, two cells).
    let gcc = env.named_programs(&["gcc"]);
    let gcc_matrix = run_matrix(&specs, &gcc, env);
    let (gcc_base, gcc_hyb) = (&gcc_matrix[0][0], &gcc_matrix[1][0]);
    t.row(vec![
        "gcc mispredicted branches".into(),
        pct(gcc_base.mispredict_percent()),
        pct(gcc_hyb.mispredict_percent()),
        pct(percent_reduction(
            gcc_base.mispredict_percent(),
            gcc_hyb.mispredict_percent(),
        )),
        "3.11% -> 1.23%".into(),
    ]);

    // Cycle-model uPC and fetched-uop comparison over the suite
    // representatives, on the shared spec × bench cycle grid.
    let benches = crate::experiments::common::representatives();
    let grid = crate::experiments::common::cycle_grid(env, &specs, &benches);
    let (base_runs, hyb_runs) = (&grid[0], &grid[1]);
    let n = benches.len() as f64;
    let base_upc: f64 = base_runs
        .iter()
        .map(crate::cycle::CycleResult::upc)
        .sum::<f64>()
        / n;
    let hyb_upc: f64 = hyb_runs
        .iter()
        .map(crate::cycle::CycleResult::upc)
        .sum::<f64>()
        / n;
    let base_fetched: u64 = base_runs.iter().map(|r| r.fetched_uops).sum();
    let hyb_fetched: u64 = hyb_runs.iter().map(|r| r.fetched_uops).sum();
    t.row(vec![
        "uPC (cycle model)".into(),
        f2(base_upc),
        f2(hyb_upc),
        pct((hyb_upc - base_upc) / base_upc * 100.0),
        "+7.8%".into(),
    ]);
    t.row(vec![
        "uops fetched (correct+wrong path)".into(),
        base_fetched.to_string(),
        hyb_fetched.to_string(),
        pct(-percent_reduction(base_fetched as f64, hyb_fetched as f64)),
        "-8.6%".into(),
    ]);
    t.note("absolute values differ (synthetic workloads); the comparison shape is the reproduction target");

    let metrics = HeadlineMetrics {
        baseline_misp_per_kuops: base.misp_per_kuops(),
        hybrid_misp_per_kuops: hyb.misp_per_kuops(),
        misp_reduction_percent: percent_reduction(base.misp_per_kuops(), hyb.misp_per_kuops()),
        baseline_uops_per_flush: base.uops_per_flush(),
        hybrid_uops_per_flush: hyb.uops_per_flush(),
        baseline_upc: base_upc,
        hybrid_upc: hyb_upc,
    };
    (vec![t], metrics)
}

/// Runs the headline comparison.
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    run_with_metrics(env).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_produces_five_metrics() {
        let (tables, metrics) = run_with_metrics(&ExpEnv::tiny());
        let t = &tables[0];
        assert_eq!(t.rows.len(), 5);
        assert!(t.rows[0][0].contains("misp"));
        assert!(metrics.baseline_misp_per_kuops > 0.0);
        assert!(metrics.hybrid_misp_per_kuops > 0.0);
        assert!(metrics.baseline_upc > 0.0);
    }
}
