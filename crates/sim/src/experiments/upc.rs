//! Figures 9 and 10 — processor performance (uPC) on the cycle model.
//!
//! Figure 9: average uPC of 16 KB conventional predictors vs. 8+8 KB
//! prophet/critic hybrids (tagged gshare critic) with 4, 8 and 12 future
//! bits, for all three prophets.
//!
//! Figure 10: the same comparison for the 2Bc-gskew prophet, broken out per
//! benchmark suite.
//!
//! Following §7.4, each suite is represented by single benchmarks (the
//! paper simulated one LIT per benchmark at reduced length for these
//! results).

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};
use uarch::DataProfile;
use workloads::{Benchmark, Suite};

use crate::cycle::{run_cycles, CycleConfig};
use crate::experiments::common::ExpEnv;
use crate::table::{f2, Table};

const FUTURE_BITS: [usize; 3] = [4, 8, 12];

/// The per-suite data-side character for the cycle model.
#[must_use]
pub fn suite_data_profile(suite: Suite) -> DataProfile {
    match suite {
        Suite::Fp00 | Suite::Mm => DataProfile::streaming(),
        Suite::Serv => DataProfile::scattered(),
        Suite::Int00 | Suite::Web | Suite::Prod | Suite::Ws => DataProfile::resident(),
    }
}

/// One representative benchmark per suite (cycle runs are slower).
fn representatives() -> Vec<Benchmark> {
    ["gcc", "swim", "specjbb", "premiere", "msvc7", "tpcc", "cad"]
        .iter()
        .map(|n| workloads::benchmark(n).expect("representative exists"))
        .collect()
}

fn cycle_cfg(env: &ExpEnv, bench: &Benchmark) -> CycleConfig {
    let mut c = CycleConfig::with_budget(env.uop_budget(), bench.seed);
    c.data = suite_data_profile(bench.suite);
    c
}

fn upc_of(env: &ExpEnv, bench: &Benchmark, spec: &HybridSpec) -> f64 {
    let program = bench.program();
    let mut hybrid = spec.build();
    run_cycles(&program, &mut hybrid, &cycle_cfg(env, bench)).upc()
}

/// Runs Figure 9.
#[must_use]
pub fn fig9(env: &ExpEnv) -> Vec<Table> {
    let benches = representatives();
    let mut t = Table::new(
        "Figure 9 — average uPC: 16KB prophet alone vs 8KB+8KB prophet/critic (tagged gshare)",
        &["prophet", "16KB alone", "4 fb", "8 fb", "12 fb"],
    );
    for prophet in ProphetKind::ALL {
        let avg = |spec: &HybridSpec| -> f64 {
            let sum: f64 = benches.iter().map(|b| upc_of(env, b, spec)).sum();
            sum / benches.len() as f64
        };
        let mut cells = vec![format!("{prophet} + tagged gshare")];
        cells.push(f2(avg(&HybridSpec::alone(prophet, Budget::K16))));
        for fb in FUTURE_BITS {
            let spec = HybridSpec::paired(
                prophet,
                Budget::K8,
                CriticKind::TaggedGshare,
                Budget::K8,
                fb,
            );
            cells.push(f2(avg(&spec)));
        }
        t.row(cells);
    }
    t.note("paper: 12-fb speedups of 8% (gshare), 7% (2Bc-gskew), 5.2% (perceptron) over the 16KB prophet alone");
    vec![t]
}

/// Runs Figure 10.
#[must_use]
pub fn fig10(env: &ExpEnv) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 10 — uPC per suite (prophet: 8KB 2Bc-gskew; critic: 8KB tagged gshare)",
        &["suite", "16KB alone", "4 fb", "8 fb", "12 fb"],
    );
    let by_suite: Vec<(Suite, Benchmark)> =
        representatives().into_iter().map(|b| (b.suite, b)).collect();
    for (suite, bench) in &by_suite {
        let mut cells = vec![suite.label().to_string()];
        cells.push(f2(upc_of(env, bench, &HybridSpec::alone(ProphetKind::BcGskew, Budget::K16))));
        for fb in FUTURE_BITS {
            let spec = HybridSpec::paired(
                ProphetKind::BcGskew,
                Budget::K8,
                CriticKind::TaggedGshare,
                Budget::K8,
                fb,
            );
            cells.push(f2(upc_of(env, bench, &spec)));
        }
        t.row(cells);
    }
    t.note("paper: hybrid beats the 16KB prophet in every suite; 12-fb speedups from 1.7% (FP00) to 10.7% (INT00)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_covers_three_prophets() {
        let t = &fig9(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0 && v < 6.0, "uPC {v} out of range");
            }
        }
    }

    #[test]
    fn fig10_covers_all_suites() {
        let t = &fig10(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 7);
    }

    #[test]
    fn suite_profiles_differ() {
        assert_ne!(suite_data_profile(Suite::Fp00), suite_data_profile(Suite::Serv));
    }
}
