//! Figures 9 and 10 — processor performance (uPC) on the cycle model.
//!
//! Figure 9: average uPC of 16 KB conventional predictors vs. 8+8 KB
//! prophet/critic hybrids (tagged gshare critic) with 4, 8 and 12 future
//! bits, for all three prophets.
//!
//! Figure 10: the same comparison for the 2Bc-gskew prophet, broken out per
//! benchmark suite.
//!
//! Following §7.4, each suite is represented by single benchmarks (the
//! paper simulated one LIT per benchmark at reduced length for these
//! results).

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};
use uarch::DataProfile;
use workloads::{Benchmark, Suite};

use crate::cycle::CycleResult;
use crate::experiments::common::{cycle_grid, representatives, ExpEnv};
use crate::table::{f2, Table};

const FUTURE_BITS: [usize; 3] = [4, 8, 12];

/// The per-suite data-side character for the cycle model.
#[must_use]
pub fn suite_data_profile(suite: Suite) -> DataProfile {
    match suite {
        Suite::Fp00 | Suite::Mm => DataProfile::streaming(),
        Suite::Serv => DataProfile::scattered(),
        Suite::Int00 | Suite::Web | Suite::Prod | Suite::Ws => DataProfile::resident(),
    }
}

/// [`cycle_grid`] reduced to uPC per cell.
fn upc_grid(env: &ExpEnv, specs: &[HybridSpec], benches: &[Benchmark]) -> Vec<Vec<f64>> {
    cycle_grid(env, specs, benches)
        .iter()
        .map(|row| row.iter().map(CycleResult::upc).collect())
        .collect()
}

/// Shared Figure 10 spec list: the 2Bc-gskew prophet alone, then each
/// future-bit pairing.
fn fig10_specs() -> Vec<HybridSpec> {
    let mut specs: Vec<HybridSpec> = vec![HybridSpec::alone(ProphetKind::BcGskew, Budget::K16)];
    for fb in FUTURE_BITS {
        specs.push(HybridSpec::paired(
            ProphetKind::BcGskew,
            Budget::K8,
            CriticKind::TaggedGshare,
            Budget::K8,
            fb,
        ));
    }
    specs
}

/// Runs Figure 9.
#[must_use]
pub fn fig9(env: &ExpEnv) -> Vec<Table> {
    let benches = representatives();
    let mut t = Table::new(
        "Figure 9 — average uPC: 16KB prophet alone vs 8KB+8KB prophet/critic (tagged gshare)",
        &["prophet", "16KB alone", "4 fb", "8 fb", "12 fb"],
    );
    // All 12 configurations × 7 representatives in one fan-out.
    let mut specs: Vec<HybridSpec> = Vec::new();
    for prophet in ProphetKind::PAPER {
        specs.push(HybridSpec::alone(prophet, Budget::K16));
        for fb in FUTURE_BITS {
            specs.push(HybridSpec::paired(
                prophet,
                Budget::K8,
                CriticKind::TaggedGshare,
                Budget::K8,
                fb,
            ));
        }
    }
    let grid = upc_grid(env, &specs, &benches);
    let avg = |row: &[f64]| -> f64 { row.iter().sum::<f64>() / row.len() as f64 };
    let per_prophet = 1 + FUTURE_BITS.len();
    for (pi, prophet) in ProphetKind::PAPER.iter().enumerate() {
        let mut cells = vec![format!("{prophet} + tagged gshare")];
        for si in 0..per_prophet {
            cells.push(f2(avg(&grid[pi * per_prophet + si])));
        }
        t.row(cells);
    }
    t.note("paper: 12-fb speedups of 8% (gshare), 7% (2Bc-gskew), 5.2% (perceptron) over the 16KB prophet alone");
    vec![t]
}

/// Runs Figure 10.
#[must_use]
pub fn fig10(env: &ExpEnv) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 10 — uPC per suite (prophet: 8KB 2Bc-gskew; critic: 8KB tagged gshare)",
        &["suite", "16KB alone", "4 fb", "8 fb", "12 fb"],
    );
    let benches = representatives();
    let specs = fig10_specs();
    let grid = cycle_grid(env, &specs, &benches);
    for (bi, bench) in benches.iter().enumerate() {
        let mut cells = vec![bench.suite.label().to_string()];
        for row in &grid {
            cells.push(f2(row[bi].upc()));
        }
        t.row(cells);
    }
    t.note("paper: hybrid beats the 16KB prophet in every suite; 12-fb speedups from 1.7% (FP00) to 10.7% (INT00)");

    // The pipeline engine's recovery bubble profile: where the cycles
    // went — full-flush restarts vs cheap override redirects (§5's
    // central timing claim, now separately visible per recovery kind).
    let mut b = Table::new(
        "Figure 10 (engine detail) — recovery bubbles per suite, 16KB alone vs 12 fb hybrid",
        &[
            "suite",
            "flush restart cyc (alone)",
            "flush restart cyc (12fb)",
            "redirect cyc (12fb)",
            "overrides (12fb)",
        ],
    );
    let (alone, twelve) = (&grid[0], &grid[FUTURE_BITS.len()]);
    for (bi, bench) in benches.iter().enumerate() {
        b.row(vec![
            bench.suite.label().to_string(),
            format!("{:.0}", alone[bi].bubbles.flush_restart),
            format!("{:.0}", twelve[bi].bubbles.flush_restart),
            format!("{:.0}", twelve[bi].bubbles.redirect),
            twelve[bi].overrides.to_string(),
        ]);
    }
    b.note("an override redirects only fetch (the criticized FTQ prefix keeps the consumer fed); a flush restarts every stage");
    vec![t, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_covers_three_prophets() {
        let t = &fig9(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0 && v < 6.0, "uPC {v} out of range");
            }
        }
    }

    #[test]
    fn fig10_covers_all_suites() {
        let tables = fig10(&ExpEnv::tiny());
        assert_eq!(tables[0].rows.len(), 7);
        // The engine-detail table covers the same suites.
        assert_eq!(tables[1].rows.len(), 7);
    }

    #[test]
    fn suite_profiles_differ() {
        assert_ne!(
            suite_data_profile(Suite::Fp00),
            suite_data_profile(Suite::Serv)
        );
    }
}
