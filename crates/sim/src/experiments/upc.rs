//! Figures 9 and 10 — processor performance (uPC) on the cycle model.
//!
//! Figure 9: average uPC of 16 KB conventional predictors vs. 8+8 KB
//! prophet/critic hybrids (tagged gshare critic) with 4, 8 and 12 future
//! bits, for all three prophets.
//!
//! Figure 10: the same comparison for the 2Bc-gskew prophet, broken out per
//! benchmark suite.
//!
//! Following §7.4, each suite is represented by single benchmarks (the
//! paper simulated one LIT per benchmark at reduced length for these
//! results).

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};
use uarch::DataProfile;
use workloads::{Benchmark, Suite};

use crate::cycle::{run_cycles, CycleConfig, CycleResult};
use crate::experiments::common::ExpEnv;
use crate::runner::par_map;
use crate::table::{f2, Table};

const FUTURE_BITS: [usize; 3] = [4, 8, 12];

/// The per-suite data-side character for the cycle model.
#[must_use]
pub fn suite_data_profile(suite: Suite) -> DataProfile {
    match suite {
        Suite::Fp00 | Suite::Mm => DataProfile::streaming(),
        Suite::Serv => DataProfile::scattered(),
        Suite::Int00 | Suite::Web | Suite::Prod | Suite::Ws => DataProfile::resident(),
    }
}

/// One representative benchmark per suite (cycle runs are slower).
pub(crate) fn representatives() -> Vec<Benchmark> {
    ["gcc", "swim", "specjbb", "premiere", "msvc7", "tpcc", "cad"]
        .iter()
        .map(|n| workloads::benchmark(n).expect("representative exists"))
        .collect()
}

fn cycle_cfg(env: &ExpEnv, bench: &Benchmark) -> CycleConfig {
    let mut c = CycleConfig::with_budget(env.uop_budget(), bench.seed);
    c.data = suite_data_profile(bench.suite);
    c
}

/// Runs every `spec × bench` cycle-model cell on the parallel engine and
/// returns the results as `[spec index][bench index]`, in input order.
/// Programs are synthesized once per benchmark and shared across spec
/// cells. (The headline experiment reuses this grid for its uPC and
/// fetched-uop comparison.)
pub(crate) fn cycle_grid(
    env: &ExpEnv,
    specs: &[HybridSpec],
    benches: &[Benchmark],
) -> Vec<Vec<CycleResult>> {
    let programs: Vec<_> = par_map(benches, env.threads, |_, b| b.program());
    let cells: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..benches.len()).map(move |b| (s, b)))
        .collect();
    let flat = par_map(&cells, env.threads, |_, &(s, b)| {
        let mut hybrid = specs[s].build();
        run_cycles(&programs[b], &mut hybrid, &cycle_cfg(env, &benches[b]))
    });
    let mut rows: Vec<Vec<CycleResult>> = Vec::with_capacity(specs.len());
    let mut it = flat.into_iter();
    for _ in 0..specs.len() {
        rows.push(it.by_ref().take(benches.len()).collect());
    }
    rows
}

/// [`cycle_grid`] reduced to uPC per cell.
fn upc_grid(env: &ExpEnv, specs: &[HybridSpec], benches: &[Benchmark]) -> Vec<Vec<f64>> {
    cycle_grid(env, specs, benches)
        .iter()
        .map(|row| row.iter().map(CycleResult::upc).collect())
        .collect()
}

/// Runs Figure 9.
#[must_use]
pub fn fig9(env: &ExpEnv) -> Vec<Table> {
    let benches = representatives();
    let mut t = Table::new(
        "Figure 9 — average uPC: 16KB prophet alone vs 8KB+8KB prophet/critic (tagged gshare)",
        &["prophet", "16KB alone", "4 fb", "8 fb", "12 fb"],
    );
    // All 12 configurations × 7 representatives in one fan-out.
    let mut specs: Vec<HybridSpec> = Vec::new();
    for prophet in ProphetKind::ALL {
        specs.push(HybridSpec::alone(prophet, Budget::K16));
        for fb in FUTURE_BITS {
            specs.push(HybridSpec::paired(
                prophet,
                Budget::K8,
                CriticKind::TaggedGshare,
                Budget::K8,
                fb,
            ));
        }
    }
    let grid = upc_grid(env, &specs, &benches);
    let avg = |row: &[f64]| -> f64 { row.iter().sum::<f64>() / row.len() as f64 };
    let per_prophet = 1 + FUTURE_BITS.len();
    for (pi, prophet) in ProphetKind::ALL.iter().enumerate() {
        let mut cells = vec![format!("{prophet} + tagged gshare")];
        for si in 0..per_prophet {
            cells.push(f2(avg(&grid[pi * per_prophet + si])));
        }
        t.row(cells);
    }
    t.note("paper: 12-fb speedups of 8% (gshare), 7% (2Bc-gskew), 5.2% (perceptron) over the 16KB prophet alone");
    vec![t]
}

/// Runs Figure 10.
#[must_use]
pub fn fig10(env: &ExpEnv) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 10 — uPC per suite (prophet: 8KB 2Bc-gskew; critic: 8KB tagged gshare)",
        &["suite", "16KB alone", "4 fb", "8 fb", "12 fb"],
    );
    let benches = representatives();
    let mut specs: Vec<HybridSpec> = vec![HybridSpec::alone(ProphetKind::BcGskew, Budget::K16)];
    for fb in FUTURE_BITS {
        specs.push(HybridSpec::paired(
            ProphetKind::BcGskew,
            Budget::K8,
            CriticKind::TaggedGshare,
            Budget::K8,
            fb,
        ));
    }
    let grid = upc_grid(env, &specs, &benches);
    for (bi, bench) in benches.iter().enumerate() {
        let mut cells = vec![bench.suite.label().to_string()];
        for row in &grid {
            cells.push(f2(row[bi]));
        }
        t.row(cells);
    }
    t.note("paper: hybrid beats the 16KB prophet in every suite; 12-fb speedups from 1.7% (FP00) to 10.7% (INT00)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_covers_three_prophets() {
        let t = &fig9(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0 && v < 6.0, "uPC {v} out of range");
            }
        }
    }

    #[test]
    fn fig10_covers_all_suites() {
        let t = &fig10(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 7);
    }

    #[test]
    fn suite_profiles_differ() {
        assert_ne!(
            suite_data_profile(Suite::Fp00),
            suite_data_profile(Suite::Serv)
        );
    }
}
