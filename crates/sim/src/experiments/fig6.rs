//! Figure 6 — accuracy of prophet/critic combinations across sizes.
//!
//! Three sub-figures, each a prophet/critic pairing, over prophet sizes
//! {4 KB, 16 KB} × critic sizes {2 KB, 8 KB, 32 KB} × future bits
//! {no critic, 1, 4, 8, 12}:
//!
//! * (a) 2Bc-gskew prophet + **unfiltered** perceptron critic — the
//!   configuration whose accuracy *degrades* past 8 future bits, motivating
//!   filtering (§7.2);
//! * (b) gshare + filtered perceptron;
//! * (c) perceptron + tagged gshare.

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};

use crate::experiments::common::{run_grid, ExpEnv};
use crate::table::{f2, Table};

const PROPHET_SIZES: [Budget; 2] = [Budget::K4, Budget::K16];
const CRITIC_SIZES: [Budget; 3] = [Budget::K2, Budget::K8, Budget::K32];
const FUTURE_BITS: [usize; 4] = [1, 4, 8, 12];

const COMBOS: [(&str, ProphetKind, CriticKind); 3] = [
    (
        "(a) prophet: 2Bc-gskew; critic: perceptron (unfiltered)",
        ProphetKind::BcGskew,
        CriticKind::UnfilteredPerceptron,
    ),
    (
        "(b) prophet: gshare; critic: filtered perceptron",
        ProphetKind::Gshare,
        CriticKind::FilteredPerceptron,
    ),
    (
        "(c) prophet: perceptron; critic: tagged gshare",
        ProphetKind::Perceptron,
        CriticKind::TaggedGshare,
    ),
];

/// Runs Figure 6 (all three sub-figures).
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let programs = env.programs();
    let mut out = Vec::new();
    for (title, prophet, critic) in COMBOS {
        // Assemble the sub-figure's whole grid — 2 baselines plus
        // 2 × 3 × 4 pairings — and hand it to the engine in one call so
        // the fan-out covers all 26 configurations at once.
        let mut specs: Vec<HybridSpec> = Vec::new();
        for pb in PROPHET_SIZES {
            specs.push(HybridSpec::alone(prophet, pb));
            for cb in CRITIC_SIZES {
                for fb in FUTURE_BITS {
                    specs.push(HybridSpec::paired(prophet, pb, critic, cb, fb));
                }
            }
        }
        let pooled = run_grid(&specs, &programs, env);

        let mut t = Table::new(
            format!("Figure 6{title} — misp/Kuops"),
            &[
                "prophet",
                "critic",
                "no critic",
                "1 fb",
                "4 fb",
                "8 fb",
                "12 fb",
            ],
        );
        let per_prophet = 1 + CRITIC_SIZES.len() * FUTURE_BITS.len();
        for (pi, pb) in PROPHET_SIZES.iter().enumerate() {
            let base = pi * per_prophet;
            let baseline = &pooled[base];
            for (ci, cb) in CRITIC_SIZES.iter().enumerate() {
                let mut cells = vec![
                    format!("{pb} {prophet}"),
                    format!("{cb} {critic}"),
                    f2(baseline.misp_per_kuops()),
                ];
                for fi in 0..FUTURE_BITS.len() {
                    let r = &pooled[base + 1 + ci * FUTURE_BITS.len() + fi];
                    cells.push(f2(r.misp_per_kuops()));
                }
                t.row(cells);
            }
        }
        t.note("paper shape: larger critics help; filtered critics keep improving with future bits, the unfiltered critic (a) peaks near 8");
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_emits_three_subtables_with_full_grids() {
        let tables = run(&ExpEnv::tiny());
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert_eq!(t.rows.len(), 6); // 2 prophet sizes × 3 critic sizes
            assert_eq!(t.headers.len(), 7);
        }
    }
}
