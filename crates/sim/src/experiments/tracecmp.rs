//! The CBP-style trace tournament: every conventional predictor replayed
//! over a recorded trace corpus, ranked against prophet/critic hybrids
//! re-executed from program snapshots.
//!
//! This is the trace-driven counterpart of the execution-driven figures —
//! the methodology of championship branch-prediction harnesses and of the
//! H2P literature. The experiment:
//!
//! 1. **records** an in-memory corpus: one `.bt` correct-path trace and
//!    one `.pcl` snapshot per benchmark (same bytes the `traces` CLI
//!    writes to disk), in parallel, one cell per benchmark;
//! 2. **cross-checks** every trace against its snapshot — the §6 split
//!    demands the two evaluation paths observe the identical correct-path
//!    branch stream;
//! 3. **replays** each conventional predictor over each trace
//!    (spec × trace cells through the parallel runner);
//! 4. **re-executes** each hybrid spec from each snapshot with the
//!    execution-driven simulator — a correct-path trace would hand the
//!    critic oracle future bits, so hybrids never touch the replay path;
//! 5. **times** every entrant on the stage-accurate pipeline engine —
//!    conventionals through [`TraceModel`](crate::cycle::TraceModel)
//!    over the recorded `.bt` stream, hybrids through the execution-driven
//!    [`run_cycles`] on the snapshot program —
//!    giving the tournament a uPC column;
//! 6. emits a ranked misp/Kuops + uPC report plus a per-trace H2P
//!    summary, and (from the `run` entry point) writes
//!    `BENCH_tracecmp.json`.
//!
//! Every stage fans through the deterministic grid runner with
//! input-ordered collection, so the report is bit-identical for any
//! thread count — pinned by `crates/sim/tests/tracecmp.rs`.
//!
//! **Graceful degradation.** Step 2 doubles as an integrity gate: a trace
//! whose `.bt` bytes fail decoding, diverge from the snapshot walk, or
//! come up short on record count (silent clean-boundary truncation — the
//! format has no trailer) is **quarantined** — dropped from the
//! tournament and listed in a `quarantine` report section — instead of
//! aborting the run. Steps 3–5 run under per-cell panic isolation
//! ([`try_par_map`]): a panicking cell becomes a `failed_cells` entry and
//! its pool skips it. Both sections are deterministic across thread
//! counts, and [`ExpEnv::fault`] can inject corruptions/panics to prove
//! it (`crates/sim/tests/faultinject.rs`).
//!
//! **Checkpoint/resume.** Every tournament cell resolves through the
//! environment's cell store when one is configured (`--store`/`--resume`):
//! hybrid cells under the same keys as the figure grids, trace-coupled
//! cells under keys carrying the trace's `bt_fnv1a` content checksum —
//! the same values a corpus manifest records, so the `serve` subsystem
//! answers `tracecmp-cell` requests from the identical cache.

use bptrace::{BtReader, H2P_MAX_BIAS, H2P_MIN_OCCURRENCES};
use predictors::configs::{self, Budget};
use predictors::{Bimodal, DirectionPredictor, GAs, Local, Yags};
use prophet_critic::{AnyProphet, CriticKind, HybridSpec, ProphetKind};
use replay::{
    cross_check_snapshot, record_trace, replay_bytes, QuarantineEntry, ReplayConfig, ReplayResult,
};
use workloads::{Benchmark, Snapshot};

use replay::checksum::fnv1a;

use crate::accuracy::run_accuracy;
use crate::cycle::{run_cycles, run_cycles_trace, CycleResult};
use crate::experiments::common::{
    accuracy_cell_key, cached, cycle_cell_key, cycle_cfg, replay_cell_key, trace_cycle_cell_key,
    ExpEnv,
};
use crate::metrics::AccuracyResult;
use crate::runner::{par_map, try_par_map, CellFailure};
use crate::table::{f2, json_escape, pct, Table};

/// Default path of the machine-readable tournament report.
pub const JSON_PATH: &str = "BENCH_tracecmp.json";

/// The conventional lineup: every component predictor at (approximately)
/// the paper's 16 KB baseline budget, Table 3 configurations where the
/// table defines one.
#[must_use]
pub fn conventional_lineup() -> Vec<AnyProphet> {
    vec![
        AnyProphet::Bimodal(Bimodal::new(64 * 1024)),
        AnyProphet::Gshare(configs::gshare(Budget::K16)),
        AnyProphet::GAs(GAs::new(64 * 1024, 10)),
        AnyProphet::Local(Local::new(4 * 1024, 12, 32 * 1024)),
        AnyProphet::BcGskew(configs::bc_gskew(Budget::K16)),
        AnyProphet::Perceptron(configs::perceptron(Budget::K16)),
        AnyProphet::Yags(Yags::new(32 * 1024, 1024, 2, 9, 13)),
        AnyProphet::Tage(configs::tage(Budget::K16)),
        AnyProphet::Tage(configs::tage_h2p(Budget::K16)),
    ]
}

/// The hybrid entrants: equal-total-budget 8 KB + 8 KB prophet/critic
/// pairs (the paper's headline shape).
#[must_use]
pub fn hybrid_lineup() -> Vec<HybridSpec> {
    vec![
        HybridSpec::paired(
            ProphetKind::Gshare,
            Budget::K8,
            CriticKind::TaggedGshare,
            Budget::K8,
            8,
        ),
        HybridSpec::paired(
            ProphetKind::Perceptron,
            Budget::K8,
            CriticKind::TaggedGshare,
            Budget::K8,
            8,
        ),
        HybridSpec::paired(
            ProphetKind::TageH2p,
            Budget::K8,
            CriticKind::TaggedGshare,
            Budget::K8,
            8,
        ),
        HybridSpec::paired(
            ProphetKind::BcGskew,
            Budget::K8,
            CriticKind::Tage,
            Budget::K8,
            8,
        ),
    ]
}

/// The tournament's display label for a conventional entrant
/// (`"16KB gshare"`). Public because trace-coupled store keys embed it:
/// the `serve` subsystem must build byte-identical labels to share cells
/// with a `--store` tournament run.
#[must_use]
pub fn size_label(p: &AnyProphet) -> String {
    format!("{}KB {}", p.storage_bytes().div_ceil(1024), p.name())
}

struct RecordedTrace {
    bench: Benchmark,
    bt: Vec<u8>,
    pcl: Vec<u8>,
    /// Record count captured at write time — the `.bt` format carries no
    /// trailer, so a truncation at a clean record boundary is only
    /// detectable by comparing against this.
    records: u64,
    /// Content checksum of `bt` — the same value a corpus manifest
    /// records as `bt_fnv1a` for this seed/budget, so trace-coupled
    /// store cells are shared with the serving layer.
    bt_fnv1a: u64,
}

/// Checks one recorded trace end-to-end: snapshot decode, trace decode,
/// snapshot-vs-trace cross-check, and the record count against the count
/// captured at write time.
fn check_trace(t: &RecordedTrace) -> Result<(), String> {
    let snap = Snapshot::read_from(t.pcl.as_slice()).map_err(|e| format!("snapshot: {e}"))?;
    let reader = BtReader::new(t.bt.as_slice()).map_err(|e| format!("trace header: {e}"))?;
    let records = cross_check_snapshot(reader, &snap).map_err(|e| e.to_string())?;
    if records != t.records {
        return Err(format!(
            "record count {records} != {} captured at record time (truncated?)",
            t.records
        ));
    }
    Ok(())
}

/// One ranked tournament row.
struct Entrant {
    label: String,
    path: &'static str,
    misp_per_kuops: f64,
    mispredict_percent: f64,
    upc: f64,
}

/// Pooled uPC over a row of cycle results (total uops / total cycles);
/// failed cells (`None`) drop out of the pool.
fn pooled_upc(row: &[Option<CycleResult>]) -> f64 {
    let uops: u64 = row.iter().flatten().map(|r| r.committed_uops).sum();
    let cycles: f64 = row.iter().flatten().map(|r| r.cycles).sum();
    if cycles == 0.0 {
        0.0
    } else {
        uops as f64 / cycles
    }
}

/// Runs the tournament and also returns the machine-readable JSON report
/// (which deliberately omits the thread count: the report is bit-identical
/// for any `--threads` value).
#[must_use]
pub fn run_with_report(env: &ExpEnv) -> (Vec<Table>, String) {
    let programs = env.programs();
    let budget = env.uop_budget();
    let replay_cfg = ReplayConfig::with_budget(budget);

    // ---- 1. Record the corpus, one cell per benchmark. The fault plan
    // corrupts targeted traces *after* recording, exactly as bit rot or a
    // torn write would on disk — the integrity gate below must catch it.
    let all_recorded: Vec<RecordedTrace> =
        par_map(&programs, env.threads, |_, (bench, program)| {
            let mut bt = Vec::new();
            let (records, _) = record_trace(program, bench.seed, budget, &mut bt)
                .expect("in-memory recording cannot fail");
            env.fault.corrupt_trace(&bench.name, &mut bt);
            let mut pcl = Vec::new();
            Snapshot::new(program.clone(), bench.seed)
                .write_to(&mut pcl)
                .expect("in-memory snapshot write cannot fail");
            let bt_fnv1a = fnv1a(&bt);
            RecordedTrace {
                bench: bench.clone(),
                bt,
                pcl,
                records,
                bt_fnv1a,
            }
        });

    // ---- 2. Integrity gate: cross-check every trace against its
    // snapshot and its record count; failures quarantine the trace
    // instead of aborting the tournament.
    let checks = par_map(&all_recorded, env.threads, |_, t| check_trace(t));
    let mut quarantine: Vec<QuarantineEntry> = Vec::new();
    let mut recorded: Vec<RecordedTrace> = Vec::with_capacity(all_recorded.len());
    for (t, check) in all_recorded.into_iter().zip(checks) {
        match check {
            Ok(()) => recorded.push(t),
            Err(reason) => quarantine.push(QuarantineEntry {
                trace: t.bench.name.clone(),
                reason,
            }),
        }
    }

    let mut failures: Vec<CellFailure> = Vec::new();

    // ---- 3. Conventional predictors replay the surviving traces.
    let lineup = conventional_lineup();
    let conv_cells: Vec<(usize, usize)> = (0..lineup.len())
        .flat_map(|p| (0..recorded.len()).map(move |t| (p, t)))
        .collect();
    let conv_label = |_: usize, &(p, t): &(usize, usize)| {
        format!(
            "replay {} × {}",
            size_label(&lineup[p]),
            recorded[t].bench.name
        )
    };
    let (conv, fails): (Vec<Option<ReplayResult>>, _) =
        try_par_map(&conv_cells, env.threads, conv_label, |i, &(p, t)| {
            env.fault.panic_if_scheduled(&conv_label(i, &(p, t)));
            let rec = &recorded[t];
            let key = replay_cell_key(
                &size_label(&lineup[p]),
                &rec.bench.name,
                rec.bt_fnv1a,
                rec.bench.seed,
                budget,
            );
            cached(env, &key, || {
                let mut predictor = lineup[p].clone();
                replay_bytes(&rec.bt, &mut predictor, &replay_cfg)
                    .expect("trace passed the integrity gate")
            })
        });
    failures.extend(fails);

    // ---- 4. Hybrids re-execute from the snapshots (§6: no trace replay).
    let hybrids = hybrid_lineup();
    let hyb_cells: Vec<(usize, usize)> = (0..hybrids.len())
        .flat_map(|s| (0..recorded.len()).map(move |t| (s, t)))
        .collect();
    let hyb_label = |_: usize, &(s, t): &(usize, usize)| {
        format!("exec {} × {}", hybrids[s].label(), recorded[t].bench.name)
    };
    let (hyb, fails): (Vec<Option<AccuracyResult>>, _) =
        try_par_map(&hyb_cells, env.threads, hyb_label, |i, &(s, t)| {
            env.fault.panic_if_scheduled(&hyb_label(i, &(s, t)));
            // Same key as the figure grids: the snapshot execution is the
            // benchmark program at the benchmark seed, which the
            // cross-check gate proves.
            let key = accuracy_cell_key(&hybrids[s], &recorded[t].bench, budget);
            cached(env, &key, || {
                let snap =
                    Snapshot::read_from(recorded[t].pcl.as_slice()).expect("snapshot round-trips");
                let mut hybrid = hybrids[s].build();
                run_accuracy(&snap.program, &mut hybrid, &env.sim_config(snap.seed))
            })
        });
    failures.extend(fails);

    // ---- 5. Cycle-level timing on the shared pipeline engine: trace
    // feed for conventionals, snapshot execution for hybrids.
    let conv_cycle_label = |_: usize, &(p, t): &(usize, usize)| {
        format!(
            "cycle {} × {}",
            size_label(&lineup[p]),
            recorded[t].bench.name
        )
    };
    let (conv_cycles, fails): (Vec<Option<CycleResult>>, _) =
        try_par_map(&conv_cells, env.threads, conv_cycle_label, |i, &(p, t)| {
            env.fault.panic_if_scheduled(&conv_cycle_label(i, &(p, t)));
            let rec = &recorded[t];
            let key = trace_cycle_cell_key(
                &size_label(&lineup[p]),
                &rec.bench.name,
                rec.bt_fnv1a,
                rec.bench.seed,
                budget,
            );
            cached(env, &key, || {
                let mut predictor = lineup[p].clone();
                let mut reader =
                    BtReader::new(rec.bt.as_slice()).expect("trace passed the integrity gate");
                run_cycles_trace(&mut reader, &mut predictor, &cycle_cfg(env, &rec.bench))
            })
        });
    failures.extend(fails);
    let hyb_cycle_label = |_: usize, &(s, t): &(usize, usize)| {
        format!("cycle {} × {}", hybrids[s].label(), recorded[t].bench.name)
    };
    let (hyb_cycles, fails): (Vec<Option<CycleResult>>, _) =
        try_par_map(&hyb_cells, env.threads, hyb_cycle_label, |i, &(s, t)| {
            env.fault.panic_if_scheduled(&hyb_cycle_label(i, &(s, t)));
            let key = cycle_cell_key(&hybrids[s], &recorded[t].bench, budget);
            cached(env, &key, || {
                let snap =
                    Snapshot::read_from(recorded[t].pcl.as_slice()).expect("snapshot round-trips");
                let mut hybrid = hybrids[s].build();
                run_cycles(
                    &snap.program,
                    &mut hybrid,
                    &cycle_cfg(env, &recorded[t].bench),
                )
            })
        });
    failures.extend(fails);

    // ---- 6. Pool, rank, report.
    let traces = recorded.len();
    let mut entrants: Vec<Entrant> = Vec::new();
    let mut conv_rates: Vec<f64> = Vec::with_capacity(lineup.len());
    for (p, predictor) in lineup.iter().enumerate() {
        let row = &conv[p * traces..(p + 1) * traces];
        let uops: u64 = row.iter().flatten().map(|r| r.measured_uops).sum();
        let conds: u64 = row.iter().flatten().map(|r| r.measured_conditionals).sum();
        let misp: u64 = row.iter().flatten().map(|r| r.mispredicts).sum();
        let misp_per_kuops = if uops == 0 {
            0.0
        } else {
            misp as f64 * 1000.0 / uops as f64
        };
        conv_rates.push(misp_per_kuops);
        entrants.push(Entrant {
            label: size_label(predictor),
            path: "trace replay",
            misp_per_kuops,
            mispredict_percent: if conds == 0 {
                0.0
            } else {
                misp as f64 * 100.0 / conds as f64
            },
            upc: pooled_upc(&conv_cycles[p * traces..(p + 1) * traces]),
        });
    }
    for (s, spec) in hybrids.iter().enumerate() {
        let runs: Vec<AccuracyResult> = hyb[s * traces..(s + 1) * traces]
            .iter()
            .flatten()
            .cloned()
            .collect();
        let pooled = AccuracyResult::pooled(&spec.label(), &runs);
        entrants.push(Entrant {
            label: spec.label(),
            path: "snapshot exec",
            misp_per_kuops: pooled.misp_per_kuops(),
            mispredict_percent: pooled.mispredict_percent(),
            upc: pooled_upc(&hyb_cycles[s * traces..(s + 1) * traces]),
        });
    }
    entrants.sort_by(|a, b| {
        a.misp_per_kuops
            .partial_cmp(&b.misp_per_kuops)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.label.cmp(&b.label))
    });

    let mut ranked = Table::new(
        "Trace tournament — ranked misp/Kuops over the recorded corpus",
        &[
            "rank",
            "configuration",
            "eval path",
            "misp/Kuops",
            "mispred %",
            "uPC",
        ],
    );
    for (i, e) in entrants.iter().enumerate() {
        ranked.row(vec![
            (i + 1).to_string(),
            e.label.clone(),
            e.path.to_string(),
            f2(e.misp_per_kuops),
            pct(e.mispredict_percent),
            f2(e.upc),
        ]);
    }
    ranked.note(format!(
        "{traces} traces, {budget} uops each (20% warm-up), corpus identical to `traces record`"
    ));
    ranked.note(
        "hybrids are re-executed from snapshots: a correct-path trace would hand \
         the critic oracle future bits (paper \u{a7}6)",
    );
    ranked.note(
        "uPC: the stage-accurate pipeline engine times both paths — conventionals \
         fed from the trace, hybrids from snapshot execution",
    );
    for q in &quarantine {
        ranked.note(format!("QUARANTINED trace '{}': {}", q.trace, q.reason));
    }
    for f in &failures {
        ranked.note(format!("FAILED CELL '{}': {}", f.label, f.reason));
    }

    // Per-trace H2P summary, measured under the best conventional entrant.
    let best_conv = conv_rates
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0, |(i, _)| i);
    let mut h2p = Table::new(
        format!(
            "H2P summary per trace (hard-to-predict branches under {})",
            size_label(&lineup[best_conv])
        ),
        &[
            "trace",
            "cond",
            "h2p",
            "worst pc",
            "worst misp",
            "worst bias",
        ],
    );
    for (t, rec) in recorded.iter().enumerate() {
        let Some(r) = &conv[best_conv * traces + t] else {
            // The best conventional's replay cell on this trace failed
            // (e.g. an injected panic): keep the row, dash the stats.
            h2p.row(vec![
                rec.bench.name.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        };
        let flagged = r
            .per_branch
            .iter()
            .filter(|b| {
                b.occurrences >= H2P_MIN_OCCURRENCES
                    && b.bias() <= H2P_MAX_BIAS
                    && b.mispredicts > 0
            })
            .count();
        let worst = r.h2p_branches(1).first();
        h2p.row(vec![
            rec.bench.name.clone(),
            r.measured_conditionals.to_string(),
            flagged.to_string(),
            worst.map_or("-".into(), |b| format!("{:#x}", b.pc)),
            worst.map_or("-".into(), |b| b.mispredicts.to_string()),
            worst.map_or("-".into(), |b| f2(b.bias())),
        ]);
    }
    h2p.note(format!(
        "h2p: low-bias (\u{2264}{H2P_MAX_BIAS}) conditionals with \u{2265}{H2P_MIN_OCCURRENCES} \
         measured executions and at least one mispredict"
    ));

    // Machine-readable report (threads-independent on purpose: failed
    // cells are sorted by input index, worker IDs excluded).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_tracecmp_v3\",\n");
    json.push_str(&format!("  \"scale\": {},\n", env.scale));
    json.push_str(&format!("  \"bench_set\": \"{:?}\",\n", env.bench_set));
    json.push_str(&format!("  \"uop_budget\": {budget},\n"));
    json.push_str(&format!("  \"traces\": {traces},\n"));
    json.push_str("  \"ranking\": [\n");
    for (i, e) in entrants.iter().enumerate() {
        let comma = if i + 1 < entrants.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"rank\": {}, \"configuration\": \"{}\", \"path\": \"{}\", \
             \"misp_per_kuops\": {:.4}, \"mispredict_percent\": {:.4}, \"upc\": {:.4}}}{comma}\n",
            i + 1,
            e.label.replace('"', "\\\""),
            e.path,
            e.misp_per_kuops,
            e.mispredict_percent,
            e.upc,
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"quarantine\": [");
    for (i, q) in quarantine.iter().enumerate() {
        let comma = if i + 1 < quarantine.len() { "," } else { "" };
        json.push_str(&format!(
            "\n    {{\"trace\": \"{}\", \"reason\": \"{}\"}}{comma}",
            json_escape(&q.trace),
            json_escape(&q.reason)
        ));
    }
    json.push_str(if quarantine.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    json.push_str("  \"failed_cells\": [");
    for (i, f) in failures.iter().enumerate() {
        let comma = if i + 1 < failures.len() { "," } else { "" };
        json.push_str(&format!(
            "\n    {{\"label\": \"{}\", \"reason\": \"{}\"}}{comma}",
            json_escape(&f.label),
            json_escape(&f.reason)
        ));
    }
    json.push_str(if failures.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    json.push_str("}\n");

    (vec![ranked, h2p], json)
}

/// Runs the tournament and writes [`JSON_PATH`].
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let (tables, json) = run_with_report(env);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => eprintln!("# wrote {JSON_PATH}"),
        Err(err) => eprintln!("# could not write {JSON_PATH}: {err}"),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineups_are_sized_sanely() {
        for p in conventional_lineup() {
            let bytes = p.storage_bytes();
            assert!(
                (12 * 1024..=20 * 1024).contains(&bytes),
                "{}: {} bytes is not ~16KB",
                p.name(),
                bytes
            );
        }
        for spec in hybrid_lineup() {
            assert_ne!(spec.critic, CriticKind::None);
        }
        // The TAGE entrants ride in both brackets: conventional (with and
        // without the H2P allocator) and hybrid (as prophet and critic).
        let conv = conventional_lineup();
        assert!(conv.iter().any(|p| p.name() == "tage"));
        assert!(conv.iter().any(|p| p.name() == "tage+h2p"));
        let hybrids = hybrid_lineup();
        assert!(hybrids.iter().any(|s| s.prophet == ProphetKind::TageH2p));
        assert!(hybrids.iter().any(|s| s.critic == CriticKind::Tage));
    }

    #[test]
    fn tournament_ranks_every_entrant() {
        let env = ExpEnv {
            scale: 0.02,
            ..ExpEnv::tiny()
        };
        let (tables, json) = run_with_report(&env);
        assert_eq!(tables.len(), 2);
        let expected = conventional_lineup().len() + hybrid_lineup().len();
        assert_eq!(tables[0].rows.len(), expected);
        // Ranked ascending by misp/Kuops.
        let rates: Vec<f64> = tables[0]
            .rows
            .iter()
            .map(|r| r[3].parse::<f64>().unwrap())
            .collect();
        assert!(rates.windows(2).all(|w| w[0] <= w[1]), "{rates:?}");
        // One H2P row per trace, and a parseable-looking report.
        assert_eq!(tables[1].rows.len(), 14);
        assert!(json.contains("\"schema\": \"bench_tracecmp_v3\""));
        // Clean run: both robustness sections present and empty.
        assert!(json.contains("\"quarantine\": []"));
        assert!(json.contains("\"failed_cells\": []"));
        assert!(json.contains("\"rank\": 1"));
        // Every entrant carries a positive uPC.
        for row in &tables[0].rows {
            let upc: f64 = row[5].parse().unwrap();
            assert!(upc > 0.0 && upc < 6.0, "uPC {upc} out of band");
        }
    }
}
