//! Figure 7 — conventional predictors vs. prophet/critic hybrids at equal
//! total budget.
//!
//! For each conventional predictor at 16 KB (and 32 KB), the hybrid gets
//! the *same* total budget split in half: an 8 KB (16 KB) prophet of the
//! same kind plus an 8 KB (16 KB) critic — filtered perceptron or tagged
//! gshare — using 8 future bits. The paper reports 15–31 % mispredict
//! reductions, largest for the tagged-gshare critic.

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};

use crate::experiments::common::{run_grid, ExpEnv};
use crate::metrics::percent_reduction;
use crate::table::{f2, pct, Table};

const FUTURE_BITS: usize = 8;
const CRITICS: [CriticKind; 2] = [CriticKind::FilteredPerceptron, CriticKind::TaggedGshare];

fn one_size(
    env: &ExpEnv,
    programs: &[(workloads::Benchmark, workloads::Program)],
    total: Budget,
    half: Budget,
) -> Table {
    // The table's 9 configurations (3 prophets × {conventional, 2 hybrids})
    // go to the engine as one grid.
    let mut specs: Vec<HybridSpec> = Vec::new();
    for prophet in ProphetKind::PAPER {
        specs.push(HybridSpec::alone(prophet, total));
        for critic in CRITICS {
            specs.push(HybridSpec::paired(prophet, half, critic, half, FUTURE_BITS));
        }
    }
    let pooled = run_grid(&specs, programs, env);

    let mut t = Table::new(
        format!("Figure 7 — {total} predictors: conventional vs. prophet/critic (8 future bits)"),
        &["configuration", "misp/Kuops", "reduction vs conventional"],
    );
    let per_prophet = 1 + CRITICS.len();
    for (pi, prophet) in ProphetKind::PAPER.iter().enumerate() {
        let conventional = &pooled[pi * per_prophet];
        t.row(vec![
            format!("{total} {prophet}"),
            f2(conventional.misp_per_kuops()),
            "-".to_string(),
        ]);
        for (ci, critic) in CRITICS.iter().enumerate() {
            let r = &pooled[pi * per_prophet + 1 + ci];
            t.row(vec![
                format!("{half} {prophet} + {half} {critic}"),
                f2(r.misp_per_kuops()),
                pct(percent_reduction(
                    conventional.misp_per_kuops(),
                    r.misp_per_kuops(),
                )),
            ]);
        }
    }
    t.note("paper: 15.2–30.7% reductions at 16KB, 17.5–31.2% at 32KB");
    t
}

/// Runs Figure 7 (both total budgets).
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    // Synthesize the benchmark set once; both budget tables reuse it.
    let programs = env.programs();
    vec![
        one_size(env, &programs, Budget::K16, Budget::K8),
        one_size(env, &programs, Budget::K32, Budget::K16),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_grids_have_nine_rows_each() {
        let tables = run(&ExpEnv::tiny());
        assert_eq!(tables.len(), 2);
        for t in &tables {
            // 3 prophets × (1 conventional + 2 hybrids)
            assert_eq!(t.rows.len(), 9);
        }
    }
}
