//! Figure 7 — conventional predictors vs. prophet/critic hybrids at equal
//! total budget.
//!
//! For each conventional predictor at 16 KB (and 32 KB), the hybrid gets
//! the *same* total budget split in half: an 8 KB (16 KB) prophet of the
//! same kind plus an 8 KB (16 KB) critic — filtered perceptron or tagged
//! gshare — using 8 future bits. The paper reports 15–31 % mispredict
//! reductions, largest for the tagged-gshare critic.

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};

use crate::experiments::common::{pooled_accuracy, ExpEnv};
use crate::metrics::percent_reduction;
use crate::table::{f2, pct, Table};

const FUTURE_BITS: usize = 8;

fn one_size(env: &ExpEnv, total: Budget, half: Budget) -> Table {
    let programs = env.programs();
    let mut t = Table::new(
        format!("Figure 7 — {total} predictors: conventional vs. prophet/critic (8 future bits)"),
        &["configuration", "misp/Kuops", "reduction vs conventional"],
    );
    for prophet in ProphetKind::ALL {
        let conventional = pooled_accuracy(&HybridSpec::alone(prophet, total), &programs, env);
        t.row(vec![
            format!("{total} {prophet}"),
            f2(conventional.misp_per_kuops()),
            "-".to_string(),
        ]);
        for critic in [CriticKind::FilteredPerceptron, CriticKind::TaggedGshare] {
            let spec = HybridSpec::paired(prophet, half, critic, half, FUTURE_BITS);
            let r = pooled_accuracy(&spec, &programs, env);
            t.row(vec![
                format!("{half} {prophet} + {half} {critic}"),
                f2(r.misp_per_kuops()),
                pct(percent_reduction(conventional.misp_per_kuops(), r.misp_per_kuops())),
            ]);
        }
    }
    t.note("paper: 15.2–30.7% reductions at 16KB, 17.5–31.2% at 32KB");
    t
}

/// Runs Figure 7 (both total budgets).
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    vec![one_size(env, Budget::K16, Budget::K8), one_size(env, Budget::K32, Budget::K16)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_grids_have_nine_rows_each() {
        let tables = run(&ExpEnv::tiny());
        assert_eq!(tables.len(), 2);
        for t in &tables {
            // 3 prophets × (1 conventional + 2 hybrids)
            assert_eq!(t.rows.len(), 9);
        }
    }
}
