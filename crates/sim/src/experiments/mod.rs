//! One entry point per paper artifact.
//!
//! | id | artifact | module |
//! |---|---|---|
//! | `table1`..`table3` | inventory tables | [`statics`] |
//! | `fig5` | future-bit sweep | [`fig5`] |
//! | `fig6` | combination grid | [`fig6`] |
//! | `fig7` | conventional vs hybrid | [`fig7`] |
//! | `fig8` | critique distribution | [`fig8`] |
//! | `table4` | filter rates | [`table4`] |
//! | `fig9`/`fig10` | uPC | [`upc`] |
//! | `headline` | the abstract's numbers | [`headline`] |
//! | `tracecmp` | trace tournament (corpus replay vs snapshot exec) | [`tracecmp`] |
//! | `tune` | hybrid-parameter calibration search | [`tune`] |
//! | `h2p` | per-hard-branch deltas (Bullseye-style) | [`h2p`] |
//! | `throughput` | batched SoA kernels vs scalar replay speed | [`throughput`] |

pub mod ablation;
pub mod common;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod h2p;
pub mod headline;
pub mod statics;
pub mod table4;
pub mod throughput;
pub mod tracecmp;
pub mod tune;
pub mod upc;

pub use common::{BenchSet, ExpEnv};

use crate::table::Table;

/// A runnable experiment reproducing one paper artifact.
#[derive(Copy, Clone)]
pub struct Experiment {
    /// Stable identifier (CLI argument).
    pub id: &'static str,
    /// Human-readable description.
    pub title: &'static str,
    /// The runner.
    pub run: fn(&ExpEnv) -> Vec<Table>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("id", &self.id)
            .field("title", &self.title)
            .finish()
    }
}

/// All experiments, in paper order.
#[must_use]
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table 1: benchmark suites",
            run: statics::table1,
        },
        Experiment {
            id: "table2",
            title: "Table 2: simulation parameters",
            run: statics::table2,
        },
        Experiment {
            id: "table3",
            title: "Table 3: predictor configurations",
            run: statics::table3,
        },
        Experiment {
            id: "fig5",
            title: "Figure 5: future bits vs accuracy",
            run: fig5::run,
        },
        Experiment {
            id: "fig6",
            title: "Figure 6: prophet/critic combinations",
            run: fig6::run,
        },
        Experiment {
            id: "fig7",
            title: "Figure 7: conventional vs hybrid",
            run: fig7::run,
        },
        Experiment {
            id: "fig8",
            title: "Figure 8: critique distribution",
            run: fig8::run,
        },
        Experiment {
            id: "table4",
            title: "Table 4: filter rates",
            run: table4::run,
        },
        Experiment {
            id: "fig9",
            title: "Figure 9: uPC, three prophets",
            run: upc::fig9,
        },
        Experiment {
            id: "fig10",
            title: "Figure 10: uPC per suite",
            run: upc::fig10,
        },
        Experiment {
            id: "headline",
            title: "Abstract: headline comparison",
            run: headline::run,
        },
        Experiment {
            id: "ablation",
            title: "Ablations: tag width + allocation policy (§4)",
            run: ablation::run,
        },
        Experiment {
            id: "tracecmp",
            title: "Trace tournament: corpus replay vs snapshot re-execution",
            run: tracecmp::run,
        },
        Experiment {
            id: "h2p",
            title: "H2P slices: per-hard-branch deltas, baseline vs tuned hybrid",
            run: h2p::run,
        },
        Experiment {
            id: "tune",
            title: "Calibration: deterministic hybrid-parameter search vs 2Bc-gskew",
            run: tune::run,
        },
        Experiment {
            id: "throughput",
            title: "Replay throughput: batched SoA kernels vs scalar reference",
            run: throughput::run,
        },
    ]
}

/// Looks an experiment up by id.
#[must_use]
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_artifact() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        for want in [
            "table1",
            "table2",
            "table3",
            "table4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "headline",
            "tracecmp",
            "tune",
            "h2p",
            "throughput",
        ] {
            assert!(ids.contains(&want), "{want} missing from registry");
        }
    }

    #[test]
    fn lookup_by_id() {
        assert!(by_id("fig5").is_some());
        assert!(by_id("fig99").is_none());
    }
}
