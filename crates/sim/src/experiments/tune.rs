//! The `tune` experiment: run the deterministic configuration search
//! ([`crate::tune`]) and report/persist its outcome.
//!
//! Reads `TUNE_PRESET` (`headline` default, `quick`, `wide`) to pick the
//! search space, runs the staged search against the 16 KB 2Bc-gskew
//! baseline, computes corpus-backed H2P slices for the winner, renders
//! the ranked tables and writes `BENCH_tune.json`.
//!
//! `TUNE_H2P_WEIGHT` (a float in `(0, 1]`) attaches the
//! [`H2pObjective`]: per-benchmark weights are derived from the `h2p`
//! experiment's per-static deltas (each benchmark's baseline mispredict
//! mass on its flagged H2P statics, the `BENCH_h2p.json` numbers, resolved
//! through the same cell store), and the ranking key becomes the blend
//! `(1 − w) · standard + w · h2p`. Scored cells are unchanged — the
//! objective only re-weights at scoring time, so warm stores stay valid.
//!
//! The JSON report deliberately contains **no thread count and no
//! wall-clock fields**: it must be byte-identical for any `--threads`
//! value, which `crates/sim/tests/tune.rs` pins.

use prophet_critic::HybridSpec;

use crate::experiments::common::ExpEnv;
use crate::table::{f2, pct, Table};
use crate::tune::{
    baseline_spec, h2p_slices, run_search_on, untuned_default, H2pObjective, H2pSlice, TuneCell,
    TuneOptions, TuneOutcome, TuneSpace,
};

/// Default path of the machine-readable tuning report.
pub const JSON_PATH: &str = "BENCH_tune.json";

/// Ranked candidates included in the tables and the JSON report.
const REPORT_TOP: usize = 12;

/// The search space `experiments tune` uses: the `TUNE_PRESET`
/// environment variable (`headline`, `quick`, `wide`), defaulting to
/// [`TuneSpace::headline`]. Unknown names fall back to the default so a
/// typo cannot silently run an empty search.
#[must_use]
pub fn space_from_env() -> TuneSpace {
    std::env::var("TUNE_PRESET")
        .ok()
        .and_then(|name| TuneSpace::by_name(&name))
        .unwrap_or_else(TuneSpace::headline)
}

/// The H2P weighted objective requested by the environment, if any:
/// `TUNE_H2P_WEIGHT` must parse to a float in `(0, 1]`. The per-benchmark
/// weights are the `h2p` experiment's baseline mispredict mass on each
/// benchmark's flagged statics — the same numbers `BENCH_h2p.json`
/// reports — resolved through the environment's cell store when one is
/// configured.
#[must_use]
pub fn h2p_objective_from_env(env: &ExpEnv) -> Option<H2pObjective> {
    let weight: f64 = std::env::var("TUNE_H2P_WEIGHT").ok()?.parse().ok()?;
    if !weight.is_finite() || weight <= 0.0 {
        return None;
    }
    let per_bench = crate::experiments::h2p::h2p_benches(env)
        .into_iter()
        .map(|b| (b.bench, b.baseline_misp as f64))
        .collect();
    Some(H2pObjective::new(weight, per_bench))
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn cell_json(cell: &TuneCell, rank: usize, indent: &str) -> String {
    let spec = &cell.spec;
    let mut out = String::new();
    out.push_str(&format!("{indent}{{\n"));
    out.push_str(&format!("{indent}  \"rank\": {rank},\n"));
    out.push_str(&format!(
        "{indent}  \"configuration\": \"{}\",\n",
        json_escape(&spec.label())
    ));
    out.push_str(&format!(
        "{indent}  \"prophet\": \"{}\", \"prophet_budget\": \"{}\",\n",
        spec.prophet, spec.prophet_budget
    ));
    out.push_str(&format!(
        "{indent}  \"critic\": \"{}\", \"critic_budget\": \"{}\",\n",
        spec.critic, spec.critic_budget
    ));
    out.push_str(&format!(
        "{indent}  \"future_bits\": {},\n",
        spec.future_bits
    ));
    out.push_str(&format!("{indent}  \"stage\": {},\n", cell.stage));
    out.push_str(&format!(
        "{indent}  \"mean_reduction_percent\": {:.4},\n",
        cell.mean_reduction_percent
    ));
    match cell.h2p_reduction_percent {
        Some(h2p) => out.push_str(&format!("{indent}  \"h2p_reduction_percent\": {h2p:.4},\n")),
        None => out.push_str(&format!("{indent}  \"h2p_reduction_percent\": null,\n")),
    }
    out.push_str(&format!("{indent}  \"scenarios\": [\n"));
    for (i, sc) in cell.scenarios.iter().enumerate() {
        let comma = if i + 1 < cell.scenarios.len() {
            ","
        } else {
            ""
        };
        out.push_str(&format!(
            "{indent}    {{\"warmup_permille\": {}, \"mix\": \"{}\", \
             \"baseline_misp_per_kuops\": {:.4}, \"misp_per_kuops\": {:.4}, \
             \"reduction_percent\": {:.4}}}{comma}\n",
            sc.warmup_permille,
            sc.mix,
            sc.baseline_misp_per_kuops,
            sc.misp_per_kuops,
            sc.reduction_percent
        ));
    }
    out.push_str(&format!("{indent}  ]\n"));
    out.push_str(&format!("{indent}}}"));
    out
}

/// Builds the machine-readable report. Contains no thread count and no
/// wall-clock values: byte-identical for any `--threads`.
#[must_use]
pub fn report_json(outcome: &TuneOutcome, slices: &[H2pSlice], env: &ExpEnv) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench_tune_v2\",\n");
    out.push_str(&format!("  \"preset\": \"{}\",\n", outcome.space.name));
    match &outcome.space.h2p {
        Some(obj) => {
            let per_bench = obj
                .per_bench
                .iter()
                .map(|(n, w)| format!("{{\"bench\": \"{}\", \"weight\": {w:.4}}}", json_escape(n)))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "  \"h2p_objective\": {{\"weight\": {:.4}, \"per_bench\": [{per_bench}]}},\n",
                obj.weight
            ));
        }
        None => out.push_str("  \"h2p_objective\": null,\n"),
    }
    out.push_str(&format!("  \"scale\": {},\n", env.scale));
    out.push_str(&format!("  \"bench_set\": \"{:?}\",\n", env.bench_set));
    out.push_str(&format!("  \"uop_budget\": {},\n", env.uop_budget()));
    out.push_str(&format!(
        "  \"baseline\": \"{}\",\n",
        json_escape(&baseline_spec().label())
    ));
    out.push_str(&format!(
        "  \"space\": {{\"candidates\": {}, \"coarse\": {}, \"scenarios\": {}}},\n",
        outcome.space.enumerate().len(),
        outcome.space.coarse().len(),
        outcome.scenarios.len()
    ));
    out.push_str(&format!(
        "  \"stage_sizes\": [{}],\n",
        outcome
            .stage_sizes
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!(
        "  \"cells_evaluated\": {},\n",
        outcome.ranked.len()
    ));

    out.push_str("  \"ranking\": [\n");
    let top = outcome.ranked.iter().take(REPORT_TOP).collect::<Vec<_>>();
    for (i, cell) in top.iter().enumerate() {
        let comma = if i + 1 < top.len() { "," } else { "" };
        out.push_str(&cell_json(cell, i + 1, "    "));
        out.push_str(comma);
        out.push('\n');
    }
    out.push_str("  ],\n");

    // The untuned default's row, wherever it ranked.
    let default = untuned_default();
    match outcome.ranked.iter().position(|c| c.spec == default) {
        Some(pos) => {
            out.push_str("  \"untuned_default\": \n");
            out.push_str(&cell_json(&outcome.ranked[pos], pos + 1, "  "));
            out.push_str(",\n");
        }
        None => out.push_str("  \"untuned_default\": null,\n"),
    }

    out.push_str(&format!(
        "  \"promoted_preset\": \"{}\",\n",
        json_escape(&HybridSpec::tuned_headline().label())
    ));
    out.push_str(&format!(
        "  \"promoted_matches_winner\": {},\n",
        outcome.winner_matches_promoted()
    ));

    out.push_str("  \"h2p_slices\": [\n");
    for (i, s) in slices.iter().enumerate() {
        let comma = if i + 1 < slices.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"bench\": \"{}\", \"h2p_statics\": {}, \"h2p_occurrences\": {}, \
             \"baseline_misp\": {}, \"default_misp\": {}, \"winner_misp\": {}}}{comma}\n",
            json_escape(&s.bench),
            s.h2p_statics,
            s.h2p_occurrences,
            s.baseline_misp,
            s.default_misp,
            s.winner_misp
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn ranking_table(outcome: &TuneOutcome) -> Table {
    let mut t = Table::new(
        format!(
            "Tune — ranked candidates vs {} (preset: {})",
            baseline_spec().label(),
            outcome.space.name
        ),
        &[
            "rank",
            "configuration",
            "stage",
            "mean reduction",
            "misp/Kuops",
            "baseline",
        ],
    );
    let default = untuned_default();
    for (i, cell) in outcome.ranked.iter().take(REPORT_TOP).enumerate() {
        let std = &cell.scenarios[0];
        let marker = if cell.spec == default {
            " (default)"
        } else {
            ""
        };
        t.row(vec![
            (i + 1).to_string(),
            format!("{}{marker}", cell.spec.label()),
            cell.stage.to_string(),
            pct(cell.mean_reduction_percent),
            f2(std.misp_per_kuops),
            f2(std.baseline_misp_per_kuops),
        ]);
    }
    t.note(format!(
        "{} cells evaluated over stages {:?}; reduction is the mean over {} warm-up × mix scenarios",
        outcome.ranked.len(),
        outcome.stage_sizes,
        outcome.scenarios.len()
    ));
    if let Some(sc) = outcome.scenarios.first() {
        t.note(format!(
            "misp/Kuops columns show the first (standard) scenario: {}% warm-up, {} mix",
            sc.warmup_permille / 10,
            sc.mix.name
        ));
    }
    if let Some(obj) = &outcome.space.h2p {
        t.note(format!(
            "H2P weighted objective active (weight {:.2}): the ranking key blends the \
             H2P-mass-weighted pooled reduction (TUNE_H2P_WEIGHT)",
            obj.weight
        ));
    }
    t
}

fn per_bench_table(outcome: &TuneOutcome) -> Option<Table> {
    let winner = outcome.winner()?;
    let default = outcome.cell(&untuned_default());
    let mut t = Table::new(
        "Tune — per-benchmark misp/Kuops at the standard warm-up",
        &[
            "benchmark",
            "baseline",
            "default 8+8",
            "winner",
            "winner vs baseline",
        ],
    );
    for (idx, (b, base)) in outcome
        .benchmarks
        .iter()
        .zip(outcome.baseline_runs.first()?)
        .enumerate()
    {
        let win = &winner.runs[0][idx];
        t.row(vec![
            b.name.clone(),
            f2(base.misp_per_kuops()),
            default.map_or("-".into(), |d| f2(d.runs[0][idx].misp_per_kuops())),
            f2(win.misp_per_kuops()),
            pct(crate::metrics::percent_reduction(
                base.misp_per_kuops(),
                win.misp_per_kuops(),
            )),
        ]);
    }
    Some(t)
}

fn h2p_table(slices: &[H2pSlice]) -> Table {
    let mut t = Table::new(
        "Tune — hard-to-predict slice (corpus BranchProfile H2P statics)",
        &[
            "benchmark",
            "h2p statics",
            "h2p execs",
            "baseline misp",
            "default misp",
            "winner misp",
        ],
    );
    for s in slices {
        t.row(vec![
            s.bench.clone(),
            s.h2p_statics.to_string(),
            s.h2p_occurrences.to_string(),
            s.baseline_misp.to_string(),
            s.default_misp.to_string(),
            s.winner_misp.to_string(),
        ]);
    }
    t.note(
        "baseline mispredicts come from trace replay, hybrid mispredicts from re-execution \
         (paper \u{a7}6 split); compare default vs winner on the same slice",
    );
    t
}

/// Runs the search and returns the tables plus the JSON report.
#[must_use]
pub fn run_with_report(env: &ExpEnv) -> (Vec<Table>, String) {
    let mut space = space_from_env();
    space.h2p = h2p_objective_from_env(env);
    // One program synthesis for both the search and the H2P slice pass.
    let programs = env.programs();
    let outcome = run_search_on(&space, env, &TuneOptions::default(), &programs);

    let slices = match outcome.winner() {
        Some(winner) => {
            let warmup = space.warmup_permille.first().copied().unwrap_or(200);
            h2p_slices(&winner.spec, &programs, env, warmup)
        }
        None => Vec::new(),
    };

    let json = report_json(&outcome, &slices, env);

    let mut tables = vec![ranking_table(&outcome)];
    if let Some(t) = per_bench_table(&outcome) {
        tables.push(t);
    }
    if !slices.is_empty() {
        tables.push(h2p_table(&slices));
    }
    if let Some(winner) = outcome.winner() {
        let promoted = HybridSpec::tuned_headline();
        let note = if outcome.winner_matches_promoted() {
            format!(
                "winner {} matches the promoted HybridSpec::tuned_headline preset",
                winner.spec.label()
            )
        } else {
            format!(
                "DRIFT: winner {} differs from promoted preset {} — re-promote if this persists \
                 at full scale",
                winner.spec.label(),
                promoted.label()
            )
        };
        tables[0].note(note);
    }
    (tables, json)
}

/// Runs the search and writes [`JSON_PATH`].
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let (tables, json) = run_with_report(env);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => eprintln!("# wrote {JSON_PATH}"),
        Err(err) => eprintln!("# could not write {JSON_PATH}: {err}"),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_preset_falls_back_to_headline() {
        // (Environment is process-global; only assert the fallback path.)
        assert_eq!(TuneSpace::by_name("no-such-preset"), None);
        assert_eq!(space_from_env().name, "headline");
    }
}
