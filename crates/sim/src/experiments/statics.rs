//! Tables 1–3: the paper's inventory tables, regenerated from the
//! workspace's own structures (so they are audits, not transcriptions).

use predictors::configs::{self, Budget};
use predictors::DirectionPredictor;
use prophet_critic::{Critic, CriticKind};
use uarch::MachineParams;
use workloads::Suite;

use crate::experiments::common::ExpEnv;
use crate::table::Table;

/// Table 1 — simulated benchmark suites.
#[must_use]
pub fn table1(_env: &ExpEnv) -> Vec<Table> {
    let mut t = Table::new(
        "Table 1 — Simulated benchmark suites",
        &[
            "suite",
            "#bench",
            "sample benchmarks",
            "static cond. branches (first member)",
        ],
    );
    for suite in Suite::ALL {
        let names = suite.benchmark_names();
        let sample = names.iter().take(4).cloned().collect::<Vec<_>>().join(" ");
        let first = workloads::benchmark(&names[0]).expect("suite member exists");
        let statics = first.program().static_conditionals();
        t.row(vec![
            suite.label().to_string(),
            suite.benchmark_count().to_string(),
            sample,
            statics.to_string(),
        ]);
    }
    t.note("per-suite counts as in the paper's Table 1 (their column sums to 110)");
    vec![t]
}

/// Table 2 — simulation parameters, read back from the machine model.
#[must_use]
pub fn table2(_env: &ExpEnv) -> Vec<Table> {
    let m = MachineParams::isca04();
    let mut t = Table::new("Table 2 — Simulation parameters", &["parameter", "value"]);
    let mut kv = |k: &str, v: String| t.row(vec![k.to_string(), v]);
    kv("Processor Frequency", format!("{} GHz", m.frequency_ghz));
    kv("Fetch/Issue/Retire Width", format!("{} uops", m.width));
    kv(
        "Branch Mispredict Penalty",
        format!("{} cycles", m.mispredict_penalty),
    );
    kv(
        "BTB",
        format!("{} entries, {}-way", m.btb_entries, m.btb_ways),
    );
    kv("FTQ Size", format!("{} entries", m.ftq_entries));
    kv("Instruction Window Size", format!("{} uops", m.window_uops));
    kv(
        "Instruction Cache",
        format!(
            "{} KB, {}-way, {}-byte line",
            m.icache.size_bytes / 1024,
            m.icache.ways,
            m.icache.line_bytes
        ),
    );
    kv(
        "L1 Data Cache",
        format!(
            "{} KB, {}-way, {}-byte line, {} cycle hit",
            m.l1d.size_bytes / 1024,
            m.l1d.ways,
            m.l1d.line_bytes,
            m.l1d.hit_cycles
        ),
    );
    kv(
        "L2 Unified Cache",
        format!(
            "{} MB, {}-way, {}-byte line, {} cycle hit",
            m.l2.size_bytes / (1024 * 1024),
            m.l2.ways,
            m.l2.line_bytes,
            m.l2.hit_cycles
        ),
    );
    kv(
        "Memory Latency",
        format!("{} ns ({} cycles)", m.memory_ns, m.memory_cycles()),
    );
    kv(
        "Hardware Data Prefetcher",
        format!("Stream-based ({} streams)", m.prefetch_streams),
    );
    kv(
        "Prophet Throughput",
        format!("{} predictions/cycle", m.prophet_per_cycle),
    );
    kv(
        "Critic Throughput",
        format!("{} critique/cycle", m.critic_per_cycle),
    );
    vec![t]
}

/// Table 3 — predictor configurations, with a storage audit per budget.
#[must_use]
pub fn table3(_env: &ExpEnv) -> Vec<Table> {
    let mut t = Table::new(
        "Table 3 — Prophet and critic configurations (with storage audit)",
        &["predictor", "budget", "configuration", "actual bytes"],
    );
    for b in Budget::ALL {
        let g = configs::gshare(b);
        t.row(vec![
            "gshare".into(),
            b.to_string(),
            format!(
                "{} entries, hist {}",
                configs::GSHARE[budget_row(b)].0,
                g.history_len()
            ),
            g.storage_bytes().to_string(),
        ]);
    }
    for b in Budget::ALL {
        let p = configs::perceptron(b);
        t.row(vec![
            "perceptron".into(),
            b.to_string(),
            format!("{} perceptrons, hist {}", p.table_len(), p.history_len()),
            p.storage_bytes().to_string(),
        ]);
    }
    for b in Budget::ALL {
        let g = configs::bc_gskew(b);
        t.row(vec![
            "2Bc-gskew".into(),
            b.to_string(),
            format!(
                "{} entries/bank, hist {}",
                configs::BC_GSKEW[budget_row(b)].0,
                g.history_len()
            ),
            g.storage_bytes().to_string(),
        ]);
    }
    for b in Budget::ALL {
        let critic = CriticKind::TaggedGshare.build(b);
        let (sets, bor) = configs::TAGGED_GSHARE[budget_row(b)];
        t.row(vec![
            "tagged gshare (critic)".into(),
            b.to_string(),
            format!("{sets}*{}-way, BOR {bor}", configs::TAGGED_GSHARE_WAYS),
            critic.storage_bytes().to_string(),
        ]);
    }
    for b in Budget::ALL {
        let critic = CriticKind::FilteredPerceptron.build(b);
        let (n, hist) = configs::FILTERED_PERCEPTRON[budget_row(b)];
        let (sets, fh, bor) = configs::PERCEPTRON_FILTER[budget_row(b)];
        t.row(vec![
            "filtered perceptron (critic)".into(),
            b.to_string(),
            format!(
                "{n} perceptrons hist {hist}; filter {sets}*{}-way hist {fh}, BOR {bor}",
                configs::PERCEPTRON_FILTER_WAYS
            ),
            critic.storage_bytes().to_string(),
        ]);
    }
    t.note("history lengths and entry counts are Table 3 verbatim; bytes are audited from the structures");
    vec![t]
}

fn budget_row(b: Budget) -> usize {
    Budget::ALL
        .iter()
        .position(|x| *x == b)
        .expect("budget in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_suites() {
        let t = &table1(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 7);
        assert!(t.rows.iter().any(|r| r[0] == "SERV" && r[1] == "2"));
    }

    #[test]
    fn table2_quotes_the_penalty() {
        let t = &table2(&ExpEnv::tiny())[0];
        assert!(t
            .rows
            .iter()
            .any(|r| r[0].contains("Mispredict") && r[1].contains("30")));
    }

    #[test]
    fn table3_has_five_budgets_per_predictor() {
        let t = &table3(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 5 * 5);
        // gshare 2KB is exactly 2048 bytes.
        assert!(t.rows.iter().any(|r| r[0] == "gshare" && r[3] == "2048"));
    }
}
