//! Table 4 — the percentage of prophet predictions filtered by the critic
//! (implicit agreements from filter misses), split by whether the prophet
//! was correct.
//!
//! Prophet: 4 KB perceptron; critic: tagged gshare at {2, 8, 32} KB (the
//! filter scales with the critic); future bits {1, 4, 12}.

use prophet_critic::{Budget, CriticKind, CritiqueKind, HybridSpec, ProphetKind};

use crate::experiments::common::{run_grid, ExpEnv};
use crate::table::Table;

const CRITIC_SIZES: [Budget; 3] = [Budget::K2, Budget::K8, Budget::K32];
const FUTURE_BITS: [usize; 3] = [1, 4, 12];

/// Runs Table 4.
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let programs = env.programs();
    let mut t = Table::new(
        "Table 4 — % of prophet predictions filtered (prophet: 4KB perceptron; critic: tagged gshare)",
        &["critic", "future bits", "% correct none", "% incorrect none", "% none (total)"],
    );
    let grid: Vec<(Budget, usize)> = CRITIC_SIZES
        .iter()
        .flat_map(|cb| FUTURE_BITS.iter().map(move |fb| (*cb, *fb)))
        .collect();
    let specs: Vec<HybridSpec> = grid
        .iter()
        .map(|(cb, fb)| {
            HybridSpec::paired(
                ProphetKind::Perceptron,
                Budget::K4,
                CriticKind::TaggedGshare,
                *cb,
                *fb,
            )
        })
        .collect();
    let pooled = run_grid(&specs, &programs, env);
    for ((cb, fb), r) in grid.iter().zip(&pooled) {
        let total = r.critiques.total().max(1) as f64;
        let c_none = r.critiques.count(CritiqueKind::CorrectNone) as f64 * 100.0 / total;
        let i_none = r.critiques.count(CritiqueKind::IncorrectNone) as f64 * 100.0 / total;
        t.row(vec![
            format!("{cb} t.gshare"),
            fb.to_string(),
            format!("{c_none:.1}"),
            format!("{i_none:.1}"),
            format!("{:.1}", c_none + i_none),
        ]);
    }
    t.note("paper: ~66-78% filtered, rising with future bits; incorrect_none stays ~1%");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_has_nine_rows() {
        let t = &run(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 9);
        // Percentages are within [0, 100].
        for row in &t.rows {
            let total: f64 = row[4].parse().unwrap();
            assert!((0.0..=100.0).contains(&total));
        }
    }
}
