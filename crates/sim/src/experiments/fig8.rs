//! Figure 8 — the distribution of critiques.
//!
//! Prophet: 4 KB perceptron; critic: 8 KB tagged gshare; future bits
//! {1, 4, 8, 12}. Only *engaged* critiques (filter tag hits) are
//! distributed, as in the paper; the implicit agreements from filter misses
//! are Table 4's subject.
//!
//! The table also reports each configuration's *forced-critique* rate
//! from the stage-accurate pipeline engine (§5 measures <0.1 %): more
//! future bits mean the critic waits longer for its input, so the rate
//! is the timing cost of the accuracy the distribution columns show.

use prophet_critic::{Budget, CriticKind, CritiqueKind, HybridSpec, ProphetKind};

use crate::cycle::run_cycles;
use crate::experiments::common::{cycle_cfg, run_grid, ExpEnv};
use crate::runner::par_map;
use crate::table::{pct, Table};

const FUTURE_BITS: [usize; 4] = [1, 4, 8, 12];

const KINDS: [CritiqueKind; 4] = [
    CritiqueKind::CorrectAgree,
    CritiqueKind::IncorrectDisagree,
    CritiqueKind::IncorrectAgree,
    CritiqueKind::CorrectDisagree,
];

/// Runs Figure 8.
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let programs = env.programs();
    let mut t = Table::new(
        "Figure 8 — distribution of critiques (prophet: 4KB perceptron; critic: 8KB tagged gshare)",
        &[
            "future bits",
            "correct_agree",
            "incorrect_disagree",
            "incorrect_agree",
            "correct_disagree",
            "total critiques",
            "i_disagree : c_disagree",
            "forced (pipeline)",
        ],
    );
    let specs: Vec<HybridSpec> = FUTURE_BITS
        .iter()
        .map(|fb| {
            HybridSpec::paired(
                ProphetKind::Perceptron,
                Budget::K4,
                CriticKind::TaggedGshare,
                Budget::K8,
                *fb,
            )
        })
        .collect();
    let pooled = run_grid(&specs, &programs, env);
    // Forced-critique rates from the pipeline engine, one representative
    // benchmark per future-bit configuration (timing is per-machine, not
    // per-suite, so one cell suffices for the rate).
    let rep = workloads::benchmark("gcc").expect("representative exists");
    let rep_program = rep.program();
    let forced: Vec<f64> = par_map(&specs, env.threads, |_, spec| {
        let mut hybrid = spec.build();
        run_cycles(&rep_program, &mut hybrid, &cycle_cfg(env, &rep)).forced_critique_rate()
    });
    for ((fb, r), forced_rate) in FUTURE_BITS.iter().zip(&pooled).zip(&forced) {
        let counts: Vec<u64> = KINDS.iter().map(|k| r.critiques.count(*k)).collect();
        let engaged = r.critiques.engaged().max(1);
        let ratio = counts[1] as f64 / counts[3].max(1) as f64;
        let mut cells = vec![fb.to_string()];
        for c in &counts {
            cells.push(format!("{c} ({})", pct(*c as f64 * 100.0 / engaged as f64)));
        }
        cells.push(engaged.to_string());
        cells.push(format!("{ratio:.1}x"));
        cells.push(format!("{:.3}%", forced_rate * 100.0));
        t.row(cells);
    }
    t.note("paper shape: incorrect_disagree > correct_disagree; with more future bits correct_disagree falls (-40% from 1 to 12) and incorrect_agree falls (-43%)");
    t.note("forced: critiques issued past the consumer's deadline on the pipeline engine (gcc; paper reports <0.1%)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_covers_all_future_bit_points() {
        let t = &run(&ExpEnv::tiny())[0];
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.rows[0][0], "1");
        assert_eq!(t.rows[3][0], "12");
    }
}
