//! Shared experiment plumbing: scaling, benchmark selection, pooled runs.

use prophet_critic::HybridSpec;
use workloads::{all_benchmarks, Benchmark, Program, Suite};

use crate::accuracy::{run_accuracy, SimConfig};
use crate::metrics::AccuracyResult;

/// Default committed-uop budget per benchmark at `SCALE=1`.
pub const BASE_UOPS: u64 = 1_200_000;

/// Which benchmarks an experiment sweeps.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BenchSet {
    /// Two benchmarks per suite — the development/CI scale.
    Fast,
    /// All 110 benchmarks of Table 1.
    All,
}

/// Environment-derived experiment settings.
///
/// * `SCALE` — multiplies the per-benchmark uop budget (default 1.0).
/// * `EXP_BENCH` — `fast` (default) or `all`.
#[derive(Copy, Clone, Debug)]
pub struct ExpEnv {
    /// Budget multiplier.
    pub scale: f64,
    /// Benchmark selection.
    pub bench_set: BenchSet,
}

impl ExpEnv {
    /// Reads `SCALE` and `EXP_BENCH` from the process environment.
    #[must_use]
    pub fn from_env() -> Self {
        let scale = std::env::var("SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .unwrap_or(1.0);
        let bench_set = match std::env::var("EXP_BENCH").as_deref() {
            Ok("all") => BenchSet::All,
            _ => BenchSet::Fast,
        };
        Self { scale, bench_set }
    }

    /// A fixed tiny environment for tests and Criterion benches.
    #[must_use]
    pub fn tiny() -> Self {
        Self { scale: 0.08, bench_set: BenchSet::Fast }
    }

    /// The per-benchmark committed-uop budget.
    #[must_use]
    pub fn uop_budget(&self) -> u64 {
        ((BASE_UOPS as f64 * self.scale) as u64).max(20_000)
    }

    /// The accuracy-simulation config for one benchmark.
    #[must_use]
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        SimConfig::with_budget(self.uop_budget(), seed)
    }

    /// The benchmarks this environment sweeps, with generated programs.
    #[must_use]
    pub fn programs(&self) -> Vec<(Benchmark, Program)> {
        let per_suite = match self.bench_set {
            BenchSet::Fast => 2,
            BenchSet::All => usize::MAX,
        };
        let mut out = Vec::new();
        for suite in Suite::ALL {
            let mut n = 0;
            for b in all_benchmarks().into_iter().filter(|b| b.suite == suite) {
                if n >= per_suite {
                    break;
                }
                let p = b.program();
                out.push((b, p));
                n += 1;
            }
        }
        out
    }

    /// Generates programs for an explicit benchmark-name list.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown (experiment definitions are static).
    #[must_use]
    pub fn named_programs(&self, names: &[&str]) -> Vec<(Benchmark, Program)> {
        names
            .iter()
            .map(|n| {
                let b = workloads::benchmark(n).unwrap_or_else(|| panic!("unknown benchmark {n}"));
                let p = b.program();
                (b, p)
            })
            .collect()
    }
}

/// Runs `spec` over a set of programs and pools the results.
#[must_use]
pub fn pooled_accuracy(
    spec: &HybridSpec,
    programs: &[(Benchmark, Program)],
    env: &ExpEnv,
) -> AccuracyResult {
    let runs: Vec<AccuracyResult> = programs
        .iter()
        .map(|(b, p)| {
            let mut hybrid = spec.build();
            run_accuracy(p, &mut hybrid, &env.sim_config(b.seed))
        })
        .collect();
    AccuracyResult::pooled(&spec.label(), &runs)
}

/// Runs `spec` on a single program.
#[must_use]
pub fn single_accuracy(
    spec: &HybridSpec,
    bench: &Benchmark,
    program: &Program,
    env: &ExpEnv,
) -> AccuracyResult {
    let mut hybrid = spec.build();
    let mut r = run_accuracy(program, &mut hybrid, &env.sim_config(bench.seed));
    r.benchmark = bench.name.clone();
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_critic::{Budget, ProphetKind};

    #[test]
    fn tiny_env_budget_is_bounded() {
        let env = ExpEnv::tiny();
        assert!(env.uop_budget() >= 20_000);
        assert!(env.uop_budget() <= BASE_UOPS);
    }

    #[test]
    fn fast_set_covers_every_suite() {
        let env = ExpEnv::tiny();
        let programs = env.programs();
        assert_eq!(programs.len(), 14);
        for suite in Suite::ALL {
            assert!(programs.iter().any(|(b, _)| b.suite == suite), "{suite} missing");
        }
    }

    #[test]
    fn named_programs_resolve() {
        let env = ExpEnv::tiny();
        let ps = env.named_programs(&["gcc", "tpcc"]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].0.name, "gcc");
    }

    #[test]
    fn pooled_accuracy_runs_end_to_end() {
        let env = ExpEnv::tiny();
        let programs = env.named_programs(&["gzip"]);
        let spec = HybridSpec::alone(ProphetKind::Gshare, Budget::K8);
        let r = pooled_accuracy(&spec, &programs, &env);
        assert!(r.committed_uops > 0);
        assert!(r.misp_per_kuops() > 0.0);
    }
}
