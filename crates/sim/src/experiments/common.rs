//! Shared experiment plumbing: scaling, benchmark selection, and the
//! parallel grid entry points.
//!
//! Every experiment reduces to a grid of independent cells — one
//! `(HybridSpec, Benchmark)` pair per cell — so the module exposes the
//! grid as data:
//!
//! * [`run_matrix`] — simulate every spec × program cell, in parallel,
//!   returning the per-cell results in input order;
//! * [`run_grid`] — the same, pooled per spec (the paper's usual
//!   aggregate);
//! * [`pooled_accuracy`] / [`single_accuracy`] — the one-spec
//!   conveniences the figure modules use.
//!
//! Parallel execution is deterministic: cells are distributed dynamically
//! but results are collected by input index, and each cell's simulation is
//! seeded, so any thread count produces bit-identical `AccuracyResult`s
//! to the sequential path ([`pooled_accuracy_seq`] is kept as the
//! reference and the determinism tests compare against it).
//!
//! Two robustness layers sit underneath (both inert by default):
//!
//! * **Checkpoint/resume.** When [`ExpEnv::store`] holds a
//!   [`CellStore`], every grid cell is looked up by content hash before
//!   simulating and persisted after — so a rerun of a killed grid only
//!   recomputes missing cells (see `sim::store`).
//! * **Panic isolation.** The `*_checked` grid variants route through
//!   [`try_par_map`]: a panicking cell becomes a recorded
//!   [`CellFailure`] while the rest of the grid completes. The plain
//!   variants keep the all-or-nothing contract but now name the cell
//!   that died. [`ExpEnv::fault`] injects scheduled panics for tests.

use std::sync::Arc;

use prophet_critic::HybridSpec;
use replay::FaultPlan;
use workloads::{all_benchmarks, Benchmark, Program, Suite};

use crate::accuracy::{run_accuracy, SimConfig};
use crate::cycle::{run_cycles, CycleConfig, CycleResult};
use crate::metrics::AccuracyResult;
use crate::runner::{default_threads, par_map, try_par_map, CellFailure};
use crate::store::{CellKey, CellPayload, CellStore};

/// Default committed-uop budget per benchmark at `SCALE=1`.
pub const BASE_UOPS: u64 = 1_200_000;

/// Which benchmarks an experiment sweeps.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BenchSet {
    /// Two benchmarks per suite — the development/CI scale.
    Fast,
    /// All 110 benchmarks of Table 1.
    All,
}

/// The benchmarks a [`BenchSet`] selects, in suite order.
///
/// This is the **single** definition of the fast set; the `traces` CLI
/// uses it too, so a corpus recorded with `traces record --bench fast`
/// covers exactly the benchmarks the experiment grid (and `tracecmp`)
/// sweeps.
#[must_use]
pub fn select_benchmarks(set: BenchSet) -> Vec<Benchmark> {
    let per_suite = match set {
        BenchSet::Fast => 2,
        BenchSet::All => usize::MAX,
    };
    let mut selected = Vec::new();
    let pool = all_benchmarks();
    for suite in Suite::ALL {
        selected.extend(
            pool.iter()
                .filter(|b| b.suite == suite)
                .take(per_suite)
                .cloned(),
        );
    }
    selected
}

/// Expands `benches` to `target` entries by synthesizing variants: each
/// variant derives a fresh name (`<base>-v<round>`) and seed from a base
/// benchmark (both feed program generation, so every variant is a
/// distinct deterministic workload). The bounded-memory soak knob —
/// corpus size scales freely while recording, replay and the experiment
/// grids stream every stage.
///
/// Shared by the `traces` CLI (`CORPUS_TRACES` at record time) and
/// [`ExpEnv::programs`] (the same variable at experiment time), so the
/// `tracecmp`/`tune` tournaments sweep exactly the corpus a
/// `CORPUS_TRACES`-expanded recording run wrote.
#[must_use]
pub fn expand_benchmarks(benches: Vec<Benchmark>, target: usize) -> Vec<Benchmark> {
    let base_len = benches.len();
    if target <= base_len || base_len == 0 {
        return benches;
    }
    let mut out = benches;
    for i in base_len..target {
        let base = &out[i % base_len];
        let round = (i / base_len) as u64;
        out.push(Benchmark {
            name: format!("{}-v{:03}", base.name, round),
            suite: base.suite,
            profile: base.profile,
            seed: base
                .seed
                .wrapping_add(round.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        });
    }
    out
}

/// Environment-derived experiment settings.
///
/// * `SCALE` — multiplies the per-benchmark uop budget (default 1.0).
/// * `EXP_BENCH` — `fast` (default) or `all`.
/// * `CORPUS_TRACES` — expand the selected bench set to N synthetic
///   variants ([`expand_benchmarks`]; default: no expansion), pointing
///   the experiment tournaments at the same sharded corpus the `traces`
///   CLI records under this variable.
/// * `THREADS` — worker threads for the grid runner (default: all cores;
///   the `experiments` binary's `--threads` flag overrides it).
/// * `CELL_STORE` — directory of the incremental cell store (default:
///   none; the `experiments` binary's `--store`/`--resume` flags
///   override it).
/// * `FAULT_PLAN` — a fault-injection spec ([`FaultPlan::from_spec`];
///   default: inert).
#[derive(Clone, Debug)]
pub struct ExpEnv {
    /// Budget multiplier.
    pub scale: f64,
    /// Benchmark selection.
    pub bench_set: BenchSet,
    /// Expand the bench set to this many synthetic variants
    /// ([`expand_benchmarks`]); `None` sweeps the plain selection.
    pub corpus_traces: Option<usize>,
    /// Worker threads for grid fan-out (1 = sequential).
    pub threads: usize,
    /// Incremental cell store; `None` recomputes everything.
    pub store: Option<Arc<CellStore>>,
    /// Fault-injection plan; inert by default.
    pub fault: FaultPlan,
}

impl ExpEnv {
    /// Reads `SCALE`, `EXP_BENCH`, `THREADS`, `CELL_STORE` and
    /// `FAULT_PLAN` from the process environment.
    ///
    /// # Panics
    ///
    /// If `CELL_STORE` names a directory that cannot be created or read,
    /// or `FAULT_PLAN` is malformed — both are explicit opt-ins, and
    /// silently dropping them would fake the robustness they test.
    #[must_use]
    pub fn from_env() -> Self {
        let scale = std::env::var("SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .unwrap_or(1.0);
        let bench_set = match std::env::var("EXP_BENCH").as_deref() {
            Ok("all") => BenchSet::All,
            _ => BenchSet::Fast,
        };
        let corpus_traces = std::env::var("CORPUS_TRACES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|n| *n > 0);
        let store = std::env::var("CELL_STORE").ok().map(|dir| {
            let dir = std::path::PathBuf::from(dir);
            Arc::new(
                CellStore::open(&dir)
                    .unwrap_or_else(|e| panic!("CELL_STORE {}: {e}", dir.display())),
            )
        });
        Self {
            scale,
            bench_set,
            corpus_traces,
            threads: default_threads(),
            store,
            fault: FaultPlan::from_env(),
        }
    }

    /// A fixed tiny environment for tests and timing benches. Uses two
    /// workers so the parallel path is exercised (determinism makes the
    /// thread count invisible in the results).
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            scale: 0.08,
            bench_set: BenchSet::Fast,
            corpus_traces: None,
            threads: 2,
            store: None,
            fault: FaultPlan::none(),
        }
    }

    /// This environment pinned to `threads` workers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// This environment backed by an incremental cell store.
    #[must_use]
    pub fn with_store(mut self, store: Arc<CellStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// This environment under a fault-injection plan.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// The per-benchmark committed-uop budget.
    #[must_use]
    pub fn uop_budget(&self) -> u64 {
        ((BASE_UOPS as f64 * self.scale) as u64).max(20_000)
    }

    /// The accuracy-simulation config for one benchmark.
    #[must_use]
    pub fn sim_config(&self, seed: u64) -> SimConfig {
        SimConfig::with_budget(self.uop_budget(), seed)
    }

    /// The benchmarks this environment sweeps, with generated programs.
    /// With [`corpus_traces`](Self::corpus_traces) set, the selection is
    /// expanded to that many synthetic variants first.
    #[must_use]
    pub fn programs(&self) -> Vec<(Benchmark, Program)> {
        let selected = match self.corpus_traces {
            Some(target) => expand_benchmarks(select_benchmarks(self.bench_set), target),
            None => select_benchmarks(self.bench_set),
        };
        // Program synthesis is itself per-benchmark independent work.
        par_map(&selected, self.threads, |_, b| b.program())
            .into_iter()
            .zip(selected)
            .map(|(p, b)| (b, p))
            .collect()
    }

    /// Generates programs for an explicit benchmark-name list.
    ///
    /// # Panics
    ///
    /// Panics if a name is unknown (experiment definitions are static).
    #[must_use]
    pub fn named_programs(&self, names: &[&str]) -> Vec<(Benchmark, Program)> {
        names
            .iter()
            .map(|n| {
                let b = workloads::benchmark(n).unwrap_or_else(|| panic!("unknown benchmark {n}"));
                let p = b.program();
                (b, p)
            })
            .collect()
    }
}

/// Runs `compute` through the environment's cell store, if any: a valid
/// stored record short-circuits the simulation; a fresh result is
/// persisted (atomically) for the next run. Storeless environments just
/// compute.
///
/// A failed store *write* only warns — losing one checkpoint must not
/// kill a healthy grid.
pub fn cached<R: CellPayload>(env: &ExpEnv, key: &CellKey, compute: impl FnOnce() -> R) -> R {
    let Some(store) = &env.store else {
        return compute();
    };
    if let Some(hit) = store.get::<R>(key) {
        return hit;
    }
    let result = compute();
    if let Err(e) = store.put(key, &result) {
        eprintln!(
            "warning: cell store write failed for {}: {e}",
            key.canonical()
        );
    }
    result
}

/// The store key for one execution-driven **accuracy** cell
/// (`spec × benchmark` at a uop budget).
///
/// This is the single definition shared by the figure grids
/// ([`run_matrix_checked`]), the `tracecmp` snapshot-execution stage and
/// the `serve` subsystem — so a store warmed by any of them answers the
/// others without recomputation.
#[must_use]
pub fn accuracy_cell_key(spec: &HybridSpec, bench: &Benchmark, budget: u64) -> CellKey {
    CellKey::new(
        "accuracy",
        &format!("{:?} × {}", spec, bench.name),
        bench.seed,
        budget,
    )
}

/// The store key for one execution-driven **cycle** cell — the shared
/// definition for [`cycle_grid_checked`], `tracecmp`'s hybrid timing
/// stage and `serve` (same contract as [`accuracy_cell_key`]).
#[must_use]
pub fn cycle_cell_key(spec: &HybridSpec, bench: &Benchmark, budget: u64) -> CellKey {
    CellKey::new(
        "cycle",
        &format!("{:?} × {}", spec, bench.name),
        bench.seed,
        budget,
    )
}

/// The store key for one conventional-predictor **trace replay** cell.
///
/// The cell string carries the `.bt` content checksum (the manifest's
/// `bt_fnv1a` for an on-disk corpus; `fnv1a` of the in-memory bytes for
/// `tracecmp`'s recorded corpus — identical values for the same
/// seed/budget), so a corrupted or re-recorded trace can never resolve
/// to a stale result.
#[must_use]
pub fn replay_cell_key(
    predictor: &str,
    trace: &str,
    bt_fnv1a: u64,
    seed: u64,
    budget: u64,
) -> CellKey {
    CellKey::new(
        "replay",
        &format!("{predictor} × {trace} bt={bt_fnv1a:#018x}"),
        seed,
        budget,
    )
}

/// The store key for one conventional-predictor **trace-fed cycle**
/// cell (the tournament's uPC column); checksummed like
/// [`replay_cell_key`].
#[must_use]
pub fn trace_cycle_cell_key(
    predictor: &str,
    trace: &str,
    bt_fnv1a: u64,
    seed: u64,
    budget: u64,
) -> CellKey {
    CellKey::new(
        "cycle-trace",
        &format!("{predictor} × {trace} bt={bt_fnv1a:#018x}"),
        seed,
        budget,
    )
}

/// The store key for one `tune` scoring cell: an accuracy cell measured
/// under a non-standard warm-up fraction. At the workspace-standard 20 %
/// warm-up this **is** [`accuracy_cell_key`], so tune shares cells with
/// the figure grids; other warm-ups get their own keyspace.
#[must_use]
pub fn tune_cell_key(
    spec: &HybridSpec,
    bench: &Benchmark,
    budget: u64,
    warmup_uops: u64,
) -> CellKey {
    if warmup_uops == budget / 5 {
        return accuracy_cell_key(spec, bench, budget);
    }
    CellKey::new(
        "accuracy",
        &format!("{:?} × {} warmup={warmup_uops}", spec, bench.name),
        bench.seed,
        budget,
    )
}

fn abort_on_failures(what: &str, failures: &[CellFailure]) {
    if let Some(first) = failures.first() {
        panic!(
            "{} of the {what} grid's cells failed; first failure: {first}",
            failures.len()
        );
    }
}

fn into_rows<R>(flat: Vec<Option<R>>, rows: usize, cols: usize) -> Vec<Vec<Option<R>>> {
    let mut out: Vec<Vec<Option<R>>> = Vec::with_capacity(rows);
    let mut it = flat.into_iter();
    for _ in 0..rows {
        out.push(it.by_ref().take(cols).collect());
    }
    out
}

/// The fault-isolating form of [`run_matrix`]: simulates every
/// `spec × program` cell in parallel, resolving cells through the
/// environment's store and catching per-cell panics. Returns the grid as
/// `[spec index][program index]` (`None` marks a failed cell) plus the
/// failures, sorted by cell index — both deterministic for any thread
/// count.
#[must_use]
pub fn run_matrix_checked(
    specs: &[HybridSpec],
    programs: &[(Benchmark, Program)],
    env: &ExpEnv,
) -> (Vec<Vec<Option<AccuracyResult>>>, Vec<CellFailure>) {
    let cells: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..programs.len()).map(move |p| (s, p)))
        .collect();
    let label = |_: usize, &(s, p): &(usize, usize)| {
        format!("{} × {}", specs[s].label(), programs[p].0.name)
    };
    let (flat, failures) = try_par_map(&cells, env.threads, label, |i, &(s, p)| {
        let (bench, program) = &programs[p];
        env.fault.panic_if_scheduled(&label(i, &(s, p)));
        let key = accuracy_cell_key(&specs[s], bench, env.uop_budget());
        cached(env, &key, || {
            let mut hybrid = specs[s].build();
            run_accuracy(program, &mut hybrid, &env.sim_config(bench.seed))
        })
    });
    (into_rows(flat, specs.len(), programs.len()), failures)
}

/// Simulates every `spec × program` cell of the grid in parallel and
/// returns the results as `[spec index][program index]`, in input order.
///
/// This is the engine behind every figure module: a whole experiment's
/// spec list goes in at once so the fan-out covers the full grid rather
/// than one row at a time. Cells resolve through the environment's cell
/// store when one is configured.
///
/// # Panics
///
/// If any cell panics, with a message naming the failed cell
/// (spec × benchmark) and its worker. Callers that must survive failed
/// cells use [`run_matrix_checked`].
#[must_use]
pub fn run_matrix(
    specs: &[HybridSpec],
    programs: &[(Benchmark, Program)],
    env: &ExpEnv,
) -> Vec<Vec<AccuracyResult>> {
    let (rows, failures) = run_matrix_checked(specs, programs, env);
    abort_on_failures("accuracy", &failures);
    rows.into_iter()
        .map(|row| row.into_iter().map(Option::unwrap).collect())
        .collect()
}

/// Runs every spec over the program set in parallel and pools each spec's
/// results (the paper's per-configuration aggregate), in input order.
#[must_use]
pub fn run_grid(
    specs: &[HybridSpec],
    programs: &[(Benchmark, Program)],
    env: &ExpEnv,
) -> Vec<AccuracyResult> {
    run_matrix(specs, programs, env)
        .iter()
        .zip(specs)
        .map(|(runs, spec)| AccuracyResult::pooled(&spec.label(), runs))
        .collect()
}

/// Runs `spec` over a set of programs on the parallel engine and pools the
/// results.
#[must_use]
pub fn pooled_accuracy(
    spec: &HybridSpec,
    programs: &[(Benchmark, Program)],
    env: &ExpEnv,
) -> AccuracyResult {
    run_grid(std::slice::from_ref(spec), programs, env)
        .pop()
        .expect("one spec in, one pooled result out")
}

/// [`pooled_accuracy`] with an explicit worker count.
#[must_use]
pub fn pooled_accuracy_par(
    spec: &HybridSpec,
    programs: &[(Benchmark, Program)],
    env: &ExpEnv,
    threads: usize,
) -> AccuracyResult {
    pooled_accuracy(spec, programs, &env.clone().with_threads(threads))
}

/// The strictly sequential reference implementation of
/// [`pooled_accuracy`]: a plain loop, no worker threads, no shared state.
/// The determinism tests assert the parallel engine matches it
/// bit-for-bit.
#[must_use]
pub fn pooled_accuracy_seq(
    spec: &HybridSpec,
    programs: &[(Benchmark, Program)],
    env: &ExpEnv,
) -> AccuracyResult {
    let runs: Vec<AccuracyResult> = programs
        .iter()
        .map(|(b, p)| {
            let mut hybrid = spec.build();
            run_accuracy(p, &mut hybrid, &env.sim_config(b.seed))
        })
        .collect();
    AccuracyResult::pooled(&spec.label(), &runs)
}

/// One representative benchmark per suite for cycle-model experiments
/// (cycle runs are slower than accuracy runs).
#[must_use]
pub fn representatives() -> Vec<Benchmark> {
    ["gcc", "swim", "specjbb", "premiere", "msvc7", "tpcc", "cad"]
        .iter()
        .map(|n| workloads::benchmark(n).expect("representative exists"))
        .collect()
}

/// The cycle-model configuration for one benchmark under this
/// environment (suite-specific data character, shared uop budget).
#[must_use]
pub fn cycle_cfg(env: &ExpEnv, bench: &Benchmark) -> CycleConfig {
    CycleConfig::isca04()
        .budget(env.uop_budget())
        .seed(bench.seed)
        .data(crate::experiments::upc::suite_data_profile(bench.suite))
}

/// The fault-isolating form of [`cycle_grid`]: same grid, cells resolve
/// through the environment's store, per-cell panics become recorded
/// [`CellFailure`]s (`None` in the grid).
#[must_use]
pub fn cycle_grid_checked(
    env: &ExpEnv,
    specs: &[HybridSpec],
    benches: &[Benchmark],
) -> (Vec<Vec<Option<CycleResult>>>, Vec<CellFailure>) {
    let programs: Vec<_> = par_map(benches, env.threads, |_, b| b.program());
    let cells: Vec<(usize, usize)> = (0..specs.len())
        .flat_map(|s| (0..benches.len()).map(move |b| (s, b)))
        .collect();
    let label = |_: usize, &(s, b): &(usize, usize)| {
        format!("cycle {} × {}", specs[s].label(), benches[b].name)
    };
    let (flat, failures) = try_par_map(&cells, env.threads, label, |i, &(s, b)| {
        env.fault.panic_if_scheduled(&label(i, &(s, b)));
        let bench = &benches[b];
        let key = cycle_cell_key(&specs[s], bench, env.uop_budget());
        cached(env, &key, || {
            let mut hybrid = specs[s].build();
            run_cycles(&programs[b], &mut hybrid, &cycle_cfg(env, bench))
        })
    });
    (into_rows(flat, specs.len(), benches.len()), failures)
}

/// Runs every `spec × bench` cycle-model cell on the parallel engine and
/// returns the results as `[spec index][bench index]`, in input order.
/// Programs are synthesized once per benchmark and shared across spec
/// cells. (The `upc` and `headline` experiments share this grid; the
/// determinism tests pin it parallel == sequential.)
///
/// # Panics
///
/// If any cell panics, naming the failed cell; see [`cycle_grid_checked`]
/// for the tolerant form.
#[must_use]
pub fn cycle_grid(
    env: &ExpEnv,
    specs: &[HybridSpec],
    benches: &[Benchmark],
) -> Vec<Vec<CycleResult>> {
    let (rows, failures) = cycle_grid_checked(env, specs, benches);
    abort_on_failures("cycle", &failures);
    rows.into_iter()
        .map(|row| row.into_iter().map(Option::unwrap).collect())
        .collect()
}

/// Runs `spec` on a single program.
#[must_use]
pub fn single_accuracy(
    spec: &HybridSpec,
    bench: &Benchmark,
    program: &Program,
    env: &ExpEnv,
) -> AccuracyResult {
    let mut hybrid = spec.build();
    let mut r = run_accuracy(program, &mut hybrid, &env.sim_config(bench.seed));
    // The walker reports the program's name; experiments label results by
    // benchmark. Overwrite in place rather than cloning a fresh String
    // when the names already agree.
    if r.benchmark != bench.name {
        r.benchmark.clear();
        r.benchmark.push_str(&bench.name);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use prophet_critic::{Budget, CriticKind, ProphetKind};

    #[test]
    fn tiny_env_budget_is_bounded() {
        let env = ExpEnv::tiny();
        assert!(env.uop_budget() >= 20_000);
        assert!(env.uop_budget() <= BASE_UOPS);
    }

    #[test]
    fn corpus_expansion_derives_distinct_deterministic_variants() {
        let base = select_benchmarks(BenchSet::Fast);
        let expanded = expand_benchmarks(base.clone(), 20);
        assert_eq!(expanded.len(), 20);
        // The base set rides along unchanged, in order.
        for (e, b) in expanded.iter().zip(&base) {
            assert_eq!(e.name, b.name);
            assert_eq!(e.seed, b.seed);
        }
        // Variants carry round-stamped names and fresh seeds.
        let v = &expanded[base.len()];
        assert_eq!(v.name, format!("{}-v001", base[0].name));
        assert_ne!(v.seed, base[0].seed);
        // Idempotent: a target at or below the base size is a no-op.
        assert_eq!(expand_benchmarks(base.clone(), 3).len(), base.len());
        // The environment knob routes through programs().
        let env = ExpEnv {
            corpus_traces: Some(16),
            ..ExpEnv::tiny()
        };
        let programs = env.programs();
        assert_eq!(programs.len(), 16);
        assert!(programs.iter().any(|(b, _)| b.name.ends_with("-v001")));
    }

    #[test]
    fn fast_set_covers_every_suite() {
        let env = ExpEnv::tiny();
        let programs = env.programs();
        assert_eq!(programs.len(), 14);
        for suite in Suite::ALL {
            assert!(
                programs.iter().any(|(b, _)| b.suite == suite),
                "{suite} missing"
            );
        }
    }

    #[test]
    fn named_programs_resolve() {
        let env = ExpEnv::tiny();
        let ps = env.named_programs(&["gcc", "tpcc"]);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].0.name, "gcc");
    }

    #[test]
    fn pooled_accuracy_runs_end_to_end() {
        let env = ExpEnv::tiny();
        let programs = env.named_programs(&["gzip"]);
        let spec = HybridSpec::alone(ProphetKind::Gshare, Budget::K8);
        let r = pooled_accuracy(&spec, &programs, &env);
        assert!(r.committed_uops > 0);
        assert!(r.misp_per_kuops() > 0.0);
    }

    #[test]
    fn grid_rows_line_up_with_specs() {
        let env = ExpEnv {
            scale: 0.02,
            ..ExpEnv::tiny()
        };
        let programs = env.named_programs(&["gzip", "art"]);
        let specs = [
            HybridSpec::alone(ProphetKind::Gshare, Budget::K4),
            HybridSpec::paired(
                ProphetKind::Gshare,
                Budget::K4,
                CriticKind::TaggedGshare,
                Budget::K4,
                4,
            ),
        ];
        let pooled = run_grid(&specs, &programs, &env);
        assert_eq!(pooled.len(), 2);
        assert_eq!(pooled[0].benchmark, specs[0].label());
        assert_eq!(pooled[1].benchmark, specs[1].label());
        let matrix = run_matrix(&specs, &programs, &env);
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[0].len(), 2);
        // Pooling the matrix row reproduces the grid row.
        let repooled = AccuracyResult::pooled(&specs[0].label(), &matrix[0]);
        assert_eq!(repooled, pooled[0]);
    }
}
