//! Ablation studies of the §4 design choices.
//!
//! The paper fixes two details of the filtered critic without sweeping
//! them in the evaluation:
//!
//! 1. **Tag width** — “our experiments have shown that only 8–10 bit tags
//!    are needed to clearly identify the different branch contexts.”
//! 2. **Allocation policy** — “new entries are inserted into the table when
//!    a branch has a tag miss and it is mispredicted.”
//!
//! This experiment quantifies both on our substrate: a tag-width sweep
//! (5–12 bits at fixed capacity) and allocate-on-mispredict vs.
//! allocate-on-every-miss.

use predictors::configs::{self, Budget};
use predictors::{DirectionPredictor, TaggedGshare};
use prophet_critic::{AllocationPolicy, ProphetCritic, TaggedGshareCritic};

use workloads::{Benchmark, Program};

use crate::accuracy::run_accuracy;
use crate::experiments::common::ExpEnv;
use crate::metrics::AccuracyResult;
use crate::runner::par_map;
use crate::table::{f2, Table};

const FUTURE_BITS: usize = 4;

fn run_config(
    env: &ExpEnv,
    programs: &[(Benchmark, Program)],
    make_critic: impl Fn() -> TaggedGshareCritic + Sync,
) -> AccuracyResult {
    let runs = par_map(programs, env.threads, |_, (b, p)| {
        let mut hybrid =
            ProphetCritic::new(configs::perceptron(Budget::K8), make_critic(), FUTURE_BITS);
        run_accuracy(p, &mut hybrid, &env.sim_config(b.seed))
    });
    AccuracyResult::pooled("ablation", &runs)
}

/// Runs both ablations.
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    // Synthesize the benchmark set once; every configuration below reuses
    // the same programs.
    let programs = env.programs();

    // --- Tag width sweep at the Table 3 capacity (1024×6 entries).
    let mut tags = Table::new(
        "Ablation A — critic tag width (8KB perceptron prophet + 1024*6 tagged gshare, 4 fb)",
        &["tag bits", "misp/Kuops", "storage bytes"],
    );
    for tag_bits in [5usize, 7, 9, 11] {
        let r = run_config(env, &programs, || {
            TaggedGshareCritic::new(TaggedGshare::new(1024, 6, tag_bits, 18))
        });
        let bytes = TaggedGshare::new(1024, 6, tag_bits, 18).storage_bytes();
        tags.row(vec![
            tag_bits.to_string(),
            f2(r.misp_per_kuops()),
            bytes.to_string(),
        ]);
    }
    tags.note("paper §4: 8-10 bit tags suffice; short tags false-hit, long tags waste storage");

    // --- Allocation policy.
    let mut policy = Table::new(
        "Ablation B — filter allocation policy (same prophet/critic, 4 fb)",
        &[
            "policy",
            "misp/Kuops",
            "engaged critiques",
            "correct_disagree",
        ],
    );
    for (label, p) in [
        (
            "on prophet mispredict (paper)",
            AllocationPolicy::OnProphetMispredict,
        ),
        ("on every filter miss", AllocationPolicy::OnEveryMiss),
    ] {
        let r = run_config(env, &programs, || {
            TaggedGshareCritic::with_policy(configs::tagged_gshare(Budget::K8), p)
        });
        policy.row(vec![
            label.to_string(),
            f2(r.misp_per_kuops()),
            r.critiques.engaged().to_string(),
            r.critiques
                .count(prophet_critic::CritiqueKind::CorrectDisagree)
                .to_string(),
        ]);
    }
    policy.note("allocating on every miss floods the critic with easy branches (§4's motivation for filtering)");

    vec![tags, policy]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_produces_both_tables() {
        let tables = run(&ExpEnv::tiny());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 4);
        assert_eq!(tables[1].rows.len(), 2);
        // The every-miss policy must engage at least as many critiques.
        let paper: u64 = tables[1].rows[0][2].parse().unwrap();
        let naive: u64 = tables[1].rows[1][2].parse().unwrap();
        assert!(
            naive >= paper,
            "naive allocation should engage more: {naive} vs {paper}"
        );
    }
}
