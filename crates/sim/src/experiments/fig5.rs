//! Figure 5 — the effect of the number of future bits on accuracy for the
//! six benchmarks the paper singles out, plus their average.
//!
//! Prophet: 8 KB perceptron. Critic: 8 KB tagged gshare. Future bits swept
//! over {0, 1, 4, 8, 12}; 0 is the conventional-hybrid baseline (no future
//! information).

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};

use crate::experiments::common::{run_matrix, ExpEnv};
use crate::metrics::AccuracyResult;
use crate::table::{f2, Table};

/// The six benchmarks of Figure 5.
pub const FIG5_BENCHMARKS: [&str; 6] = ["unzip", "premiere", "msvc7", "flash", "facerec", "tpcc"];

/// Future-bit sweep points of Figure 5.
pub const FUTURE_BITS: [usize; 5] = [0, 1, 4, 8, 12];

fn spec(fb: usize) -> HybridSpec {
    HybridSpec::paired(
        ProphetKind::Perceptron,
        Budget::K8,
        CriticKind::TaggedGshare,
        Budget::K8,
        fb,
    )
}

/// Runs Figure 5.
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let programs = env.named_programs(&FIG5_BENCHMARKS);
    let mut headers: Vec<&str> = vec!["benchmark"];
    let fb_labels: Vec<String> = FUTURE_BITS.iter().map(|f| format!("{f} fb")).collect();
    headers.extend(fb_labels.iter().map(String::as_str));
    let mut t = Table::new(
        "Figure 5 — misp/Kuops vs. future bits (prophet: 8KB perceptron; critic: 8KB tagged gshare)",
        &headers,
    );

    // One grid call covers the whole benchmark × future-bit matrix; the
    // engine fans the 30 cells out across workers.
    let specs: Vec<HybridSpec> = FUTURE_BITS.iter().map(|fb| spec(*fb)).collect();
    let matrix = run_matrix(&specs, &programs, env);
    for (bi, (bench, _)) in programs.iter().enumerate() {
        let mut cells = vec![bench.name.clone()];
        for per_bench in &matrix {
            cells.push(f2(per_bench[bi].misp_per_kuops()));
        }
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_string()];
    for pool in &matrix {
        avg.push(f2(AccuracyResult::pooled("avg", pool).misp_per_kuops()));
    }
    t.row(avg);
    t.note("paper: +1 future bit cuts the 6-benchmark average ~15%; more bits help some benchmarks (unzip) and hurt others (tpcc)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_produces_full_grid() {
        let tables = run(&ExpEnv::tiny());
        let t = &tables[0];
        assert_eq!(t.rows.len(), 7); // 6 benchmarks + AVG
        assert_eq!(t.headers.len(), 6); // name + 5 future-bit points
        assert_eq!(t.rows[6][0], "AVG");
        // Every cell parses as a number.
        for row in &t.rows {
            for cell in &row[1..] {
                cell.parse::<f64>().expect("numeric cell");
            }
        }
    }
}
