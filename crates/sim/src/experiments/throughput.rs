//! Replay throughput: batched structure-of-arrays kernels vs the scalar
//! reference path, per conventional predictor.
//!
//! The experiment records the environment's benchmark corpus once,
//! decodes every trace once, and then replays each predictor of the
//! tournament lineup over the full record set twice — through
//! [`replay::replay_records_scalar`] (one `predict`/`update` pair per
//! branch) and through [`replay::replay_records`] (64-branch chunks into
//! the fused `predict_block` kernels). Every pass doubles as a
//! differential gate: the two paths must produce identical
//! [`replay::ReplayResult`]s, field for field, or the experiment panics —
//! no throughput number is ever reported for a kernel that drifted.
//!
//! Timing is strictly single-core (the ROADMAP's "fast as the hardware
//! allows" axis is per-core kernel speed; grid scaling is measured
//! elsewhere): each path runs `REPS` times over the whole corpus and the
//! fastest pass wins, which suppresses scheduler noise without averaging
//! away cache effects.
//!
//! A second section measures the **trace decode pipeline**: every
//! benchmark is recorded in both `.bt` formats, and the section reports
//! the deterministic size figures (total bytes, bytes per branch, the
//! v1/v2 compression ratio) plus wall-clock decode and end-to-end
//! replay rates — v1 through the scalar record reader, v2 through the
//! chunked block decoder. Both images are gated record-for-record and
//! replay-result-for-replay-result against each other first.
//!
//! `BENCH_throughput.json` separates **result metrics** from
//! **environment**: `mispredicts`/`misp_per_kuops` are deterministic and
//! participate in `bench_diff` regression gating; the rate fields
//! (`scalar_preds_per_sec`, `batched_preds_per_sec`, `speedup`, and the
//! decode section's `*_branches_per_sec`) are wall-clock-dependent and
//! deliberately named so `bench_diff` never diffs them.

use std::time::Instant;

use bptrace::{BtBlockReader, BtReader, DecodedBlock};
use predictors::configs::{self, Budget};
use predictors::DirectionPredictor;
use prophet_critic::AnyProphet;
use replay::{
    decode_records, record_trace, record_trace_v1, replay_bytes, replay_records,
    replay_records_scalar, ReplayConfig,
};

use crate::experiments::common::ExpEnv;
use crate::experiments::tracecmp::{conventional_lineup, size_label};
use crate::runner::par_map;
use crate::table::{f2, json_escape, Table};

/// Default path of the machine-readable throughput report.
pub const JSON_PATH: &str = "BENCH_throughput.json";

/// Timed passes per (predictor, path); the fastest wins.
const REPS: usize = 3;

/// One predictor's measured row.
struct Row {
    label: String,
    /// Conditional predictions per full-corpus pass (identical for both
    /// paths by construction).
    predictions: u64,
    mispredicts: u64,
    misp_per_kuops: f64,
    scalar_preds_per_sec: f64,
    batched_preds_per_sec: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.scalar_preds_per_sec == 0.0 {
            0.0
        } else {
            self.batched_preds_per_sec / self.scalar_preds_per_sec
        }
    }
}

/// Times one full-corpus pass; returns elapsed seconds.
fn timed_pass<F: FnMut()>(mut pass: F) -> f64 {
    let start = Instant::now();
    pass();
    start.elapsed().as_secs_f64()
}

/// Measures one predictor over the decoded corpus: differential gate
/// first, then `REPS` timed passes per path.
fn measure(
    predictor: &AnyProphet,
    corpus: &[(String, Vec<bptrace::BranchRecord>)],
    cfg: &ReplayConfig,
) -> Row {
    // ---- Differential gate: batched == scalar on every trace, or die.
    let mut predictions = 0u64;
    let mut mispredicts = 0u64;
    let mut uops = 0u64;
    for (name, records) in corpus {
        let mut a = predictor.clone();
        let batched = replay_records(name, records, &mut a, cfg);
        let mut b = predictor.clone();
        let scalar = replay_records_scalar(name, records, &mut b, cfg);
        assert_eq!(
            batched,
            scalar,
            "{}: batched kernels drifted from the scalar reference on {name}",
            predictor.name()
        );
        predictions += batched.measured_conditionals;
        mispredicts += batched.mispredicts;
        uops += batched.measured_uops;
    }

    // ---- Timed passes, fastest-of-REPS per path, single core.
    let mut scalar_best = f64::INFINITY;
    let mut batched_best = f64::INFINITY;
    for _ in 0..REPS {
        let secs = timed_pass(|| {
            for (name, records) in corpus {
                let mut p = predictor.clone();
                let _ = replay_records_scalar(name, records, &mut p, cfg);
            }
        });
        scalar_best = scalar_best.min(secs);
        let secs = timed_pass(|| {
            for (name, records) in corpus {
                let mut p = predictor.clone();
                let _ = replay_records(name, records, &mut p, cfg);
            }
        });
        batched_best = batched_best.min(secs);
    }

    Row {
        label: size_label(predictor),
        predictions,
        mispredicts,
        misp_per_kuops: if uops == 0 {
            0.0
        } else {
            mispredicts as f64 * 1000.0 / uops as f64
        },
        scalar_preds_per_sec: predictions as f64 / scalar_best.max(1e-12),
        batched_preds_per_sec: predictions as f64 / batched_best.max(1e-12),
    }
}

/// The decode-pipeline section's measurements: deterministic size
/// figures plus wall-clock decode and end-to-end replay rates for both
/// `.bt` format versions.
struct DecodeStats {
    /// Total branch records across the corpus (identical in both formats
    /// by the differential gate).
    branches: u64,
    v1_bytes: u64,
    v2_bytes: u64,
    v1_decode_branches_per_sec: f64,
    v2_decode_branches_per_sec: f64,
    v1_replay_branches_per_sec: f64,
    v2_replay_branches_per_sec: f64,
}

impl DecodeStats {
    fn compression_ratio(&self) -> f64 {
        self.v1_bytes as f64 / (self.v2_bytes.max(1)) as f64
    }
    fn end_to_end_speedup(&self) -> f64 {
        if self.v1_replay_branches_per_sec == 0.0 {
            0.0
        } else {
            self.v2_replay_branches_per_sec / self.v1_replay_branches_per_sec
        }
    }
}

/// Measures the decode pipeline over paired `(v1, v2)` trace images:
/// differential gates first (identical record streams, identical replay
/// results), then `REPS` timed passes per format for raw decode and for
/// end-to-end replay through a fixed 16 KB gshare.
fn measure_decode(images: &[(Vec<u8>, Vec<u8>)], cfg: &ReplayConfig) -> DecodeStats {
    // ---- Differential gates: both images must decode to the identical
    // record stream and replay to the identical result, or die.
    let mut branches = 0u64;
    for (v1, v2) in images {
        let a = decode_records(v1).expect("v1 image decodes");
        let b = decode_records(v2).expect("v2 image decodes");
        assert_eq!(a, b, "v1 and v2 images decode to different streams");
        branches += a.1.len() as u64;
        let mut p = configs::gshare(Budget::K16);
        let from_v1 = replay_bytes(v1, &mut p, cfg).expect("v1 replays");
        let mut p = configs::gshare(Budget::K16);
        let from_v2 = replay_bytes(v2, &mut p, cfg).expect("v2 replays");
        assert_eq!(from_v1, from_v2, "format version changed replay results");
    }

    // ---- Timed passes, fastest-of-REPS, single core. Decode counts are
    // folded into a checksum the assert consumes, so the loops cannot be
    // optimized away.
    let (mut v1_decode, mut v2_decode) = (f64::INFINITY, f64::INFINITY);
    let (mut v1_replay, mut v2_replay) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..REPS {
        let mut seen = 0u64;
        let secs = timed_pass(|| {
            for (v1, _) in images {
                let mut r = BtReader::new(v1.as_slice()).unwrap();
                while let Some(rec) = r.next_record().unwrap() {
                    seen += u64::from(rec.taken);
                }
            }
        });
        assert!(seen <= branches);
        v1_decode = v1_decode.min(secs);

        let mut seen = 0u64;
        let secs = timed_pass(|| {
            let mut block = DecodedBlock::new();
            for (_, v2) in images {
                let mut r = BtBlockReader::new(v2.as_slice()).unwrap();
                while r.next_block(&mut block).unwrap() {
                    for w in block.taken_words() {
                        seen += u64::from(w.count_ones());
                    }
                }
            }
        });
        assert!(seen <= branches);
        v2_decode = v2_decode.min(secs);

        let secs = timed_pass(|| {
            for (v1, _) in images {
                let mut p = configs::gshare(Budget::K16);
                let _ = replay_bytes(v1, &mut p, cfg).unwrap();
            }
        });
        v1_replay = v1_replay.min(secs);

        let secs = timed_pass(|| {
            for (_, v2) in images {
                let mut p = configs::gshare(Budget::K16);
                let _ = replay_bytes(v2, &mut p, cfg).unwrap();
            }
        });
        v2_replay = v2_replay.min(secs);
    }

    DecodeStats {
        branches,
        v1_bytes: images.iter().map(|(v1, _)| v1.len() as u64).sum(),
        v2_bytes: images.iter().map(|(_, v2)| v2.len() as u64).sum(),
        v1_decode_branches_per_sec: branches as f64 / v1_decode.max(1e-12),
        v2_decode_branches_per_sec: branches as f64 / v2_decode.max(1e-12),
        v1_replay_branches_per_sec: branches as f64 / v1_replay.max(1e-12),
        v2_replay_branches_per_sec: branches as f64 / v2_replay.max(1e-12),
    }
}

/// Runs the throughput comparison and also returns the machine-readable
/// JSON report.
#[must_use]
pub fn run_with_report(env: &ExpEnv) -> (Vec<Table>, String) {
    let programs = env.programs();
    let budget = env.uop_budget();
    // No warm-up exclusion: a throughput denominator should count every
    // prediction the kernel performs, and the differential gate is
    // stricter when the whole stream is measured.
    let cfg = ReplayConfig {
        max_uops: budget,
        warmup_uops: 0,
    };

    // Record both format versions and decode the corpus once, in
    // parallel; timing below is strictly sequential so rates are
    // single-core.
    type Recorded = (String, Vec<u8>, Vec<u8>, Vec<bptrace::BranchRecord>);
    let recorded: Vec<Recorded> = par_map(&programs, env.threads, |_, (bench, program)| {
        let mut v1 = Vec::new();
        record_trace_v1(program, bench.seed, budget, &mut v1)
            .expect("in-memory recording cannot fail");
        let mut v2 = Vec::new();
        record_trace(program, bench.seed, budget, &mut v2)
            .expect("in-memory recording cannot fail");
        let (name, records) = decode_records(&v2).expect("freshly recorded trace decodes");
        (name, v1, v2, records)
    });
    let mut images = Vec::with_capacity(recorded.len());
    let mut corpus = Vec::with_capacity(recorded.len());
    for (name, v1, v2, records) in recorded {
        images.push((v1, v2));
        corpus.push((name, records));
    }

    let decode = measure_decode(&images, &cfg);

    let lineup = conventional_lineup();
    let rows: Vec<Row> = lineup.iter().map(|p| measure(p, &corpus, &cfg)).collect();

    let mut table = Table::new(
        "Replay throughput — batched SoA kernels vs scalar reference (single core)",
        &[
            "predictor",
            "predictions",
            "misp/Kuops",
            "scalar Mpred/s",
            "batched Mpred/s",
            "speedup",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.label.clone(),
            r.predictions.to_string(),
            f2(r.misp_per_kuops),
            f2(r.scalar_preds_per_sec / 1e6),
            f2(r.batched_preds_per_sec / 1e6),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    table.note(format!(
        "{} traces, {budget} uops each, no warm-up exclusion; fastest of {REPS} passes per path",
        corpus.len()
    ));
    table.note(
        "every pass is gated: batched and scalar ReplayResults must be identical \
         field-for-field before any rate is reported",
    );

    let mut decode_table = Table::new(
        "Trace decode — block-compressed .bt v2 vs v1 record stream (single core)",
        &[
            "format",
            "bytes",
            "bytes/branch",
            "decode Mbranch/s",
            "replay Mbranch/s",
        ],
    );
    let branches = decode.branches.max(1);
    decode_table.row(vec![
        "v1 records".to_string(),
        decode.v1_bytes.to_string(),
        f2(decode.v1_bytes as f64 / branches as f64),
        f2(decode.v1_decode_branches_per_sec / 1e6),
        f2(decode.v1_replay_branches_per_sec / 1e6),
    ]);
    decode_table.row(vec![
        "v2 blocks".to_string(),
        decode.v2_bytes.to_string(),
        f2(decode.v2_bytes as f64 / branches as f64),
        f2(decode.v2_decode_branches_per_sec / 1e6),
        f2(decode.v2_replay_branches_per_sec / 1e6),
    ]);
    decode_table.note(format!(
        "{} branches; v2 is {:.2}x smaller and replays {:.2}x faster end-to-end (16KB gshare)",
        decode.branches,
        decode.compression_ratio(),
        decode.end_to_end_speedup()
    ));
    decode_table.note(
        "gated: both images must decode to the identical record stream and replay to \
         the identical ReplayResult before any rate is reported",
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_throughput_v2\",\n");
    json.push_str(&format!("  \"scale\": {},\n", env.scale));
    json.push_str(&format!("  \"bench_set\": \"{:?}\",\n", env.bench_set));
    json.push_str(&format!("  \"uop_budget\": {budget},\n"));
    json.push_str(&format!("  \"traces\": {},\n", corpus.len()));
    json.push_str("  \"predictors\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"configuration\": \"{}\", \"predictions\": {}, \"mispredicts\": {}, \
             \"misp_per_kuops\": {:.4}, \"scalar_preds_per_sec\": {:.0}, \
             \"batched_preds_per_sec\": {:.0}, \"speedup\": {:.3}}}{comma}\n",
            json_escape(&r.label),
            r.predictions,
            r.mispredicts,
            r.misp_per_kuops,
            r.scalar_preds_per_sec,
            r.batched_preds_per_sec,
            r.speedup(),
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"decode\": {{\"branches\": {}, \"v1_bytes\": {}, \"v2_bytes\": {}, \
         \"compression_ratio\": {:.4}, \"v1_decode_branches_per_sec\": {:.0}, \
         \"v2_decode_branches_per_sec\": {:.0}, \"v1_replay_branches_per_sec\": {:.0}, \
         \"v2_replay_branches_per_sec\": {:.0}, \"end_to_end_speedup\": {:.3}}}\n",
        decode.branches,
        decode.v1_bytes,
        decode.v2_bytes,
        decode.compression_ratio(),
        decode.v1_decode_branches_per_sec,
        decode.v2_decode_branches_per_sec,
        decode.v1_replay_branches_per_sec,
        decode.v2_replay_branches_per_sec,
        decode.end_to_end_speedup(),
    ));
    json.push_str("}\n");

    (vec![table, decode_table], json)
}

/// Runs the throughput comparison and writes [`JSON_PATH`].
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let (tables, json) = run_with_report(env);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => eprintln!("# wrote {JSON_PATH}"),
        Err(err) => eprintln!("# could not write {JSON_PATH}: {err}"),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_report_covers_the_lineup_and_gates_equivalence() {
        let env = ExpEnv {
            scale: 0.02,
            ..ExpEnv::tiny()
        };
        let (tables, json) = run_with_report(&env);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), conventional_lineup().len());
        assert!(json.contains("\"schema\": \"bench_throughput_v2\""));
        // Every row carries predictions and strictly positive rates.
        for row in &tables[0].rows {
            let predictions: u64 = row[1].parse().unwrap();
            assert!(predictions > 0, "{row:?}");
            let scalar: f64 = row[3].parse().unwrap();
            let batched: f64 = row[4].parse().unwrap();
            assert!(scalar > 0.0 && batched > 0.0, "{row:?}");
        }
        // The decode section: one row per format, v2 strictly smaller,
        // and the JSON carries the section.
        assert_eq!(tables[1].rows.len(), 2);
        assert!(json.contains("\"decode\": {"));
        assert!(json.contains("\"compression_ratio\""));
        let v1_bytes: u64 = tables[1].rows[0][1].parse().unwrap();
        let v2_bytes: u64 = tables[1].rows[1][1].parse().unwrap();
        assert!(
            v2_bytes < v1_bytes,
            "v2 must shrink the corpus: {v2_bytes} vs {v1_bytes}"
        );
    }
}
