//! Replay throughput: batched structure-of-arrays kernels vs the scalar
//! reference path, per conventional predictor.
//!
//! The experiment records the environment's benchmark corpus once,
//! decodes every trace once, and then replays each predictor of the
//! tournament lineup over the full record set twice — through
//! [`replay::replay_records_scalar`] (one `predict`/`update` pair per
//! branch) and through [`replay::replay_records`] (64-branch chunks into
//! the fused `predict_block` kernels). Every pass doubles as a
//! differential gate: the two paths must produce identical
//! [`replay::ReplayResult`]s, field for field, or the experiment panics —
//! no throughput number is ever reported for a kernel that drifted.
//!
//! Timing is strictly single-core (the ROADMAP's "fast as the hardware
//! allows" axis is per-core kernel speed; grid scaling is measured
//! elsewhere): each path runs `REPS` times over the whole corpus and the
//! fastest pass wins, which suppresses scheduler noise without averaging
//! away cache effects.
//!
//! `BENCH_throughput.json` separates **result metrics** from
//! **environment**: `mispredicts`/`misp_per_kuops` are deterministic and
//! participate in `bench_diff` regression gating; the rate fields
//! (`scalar_preds_per_sec`, `batched_preds_per_sec`, `speedup`) are
//! wall-clock-dependent and deliberately named so `bench_diff` never
//! diffs them.

use std::time::Instant;

use predictors::DirectionPredictor;
use prophet_critic::AnyProphet;
use replay::{decode_records, record_trace, replay_records, replay_records_scalar, ReplayConfig};

use crate::experiments::common::ExpEnv;
use crate::experiments::tracecmp::{conventional_lineup, size_label};
use crate::runner::par_map;
use crate::table::{f2, json_escape, Table};

/// Default path of the machine-readable throughput report.
pub const JSON_PATH: &str = "BENCH_throughput.json";

/// Timed passes per (predictor, path); the fastest wins.
const REPS: usize = 3;

/// One predictor's measured row.
struct Row {
    label: String,
    /// Conditional predictions per full-corpus pass (identical for both
    /// paths by construction).
    predictions: u64,
    mispredicts: u64,
    misp_per_kuops: f64,
    scalar_preds_per_sec: f64,
    batched_preds_per_sec: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.scalar_preds_per_sec == 0.0 {
            0.0
        } else {
            self.batched_preds_per_sec / self.scalar_preds_per_sec
        }
    }
}

/// Times one full-corpus pass; returns elapsed seconds.
fn timed_pass<F: FnMut()>(mut pass: F) -> f64 {
    let start = Instant::now();
    pass();
    start.elapsed().as_secs_f64()
}

/// Measures one predictor over the decoded corpus: differential gate
/// first, then `REPS` timed passes per path.
fn measure(
    predictor: &AnyProphet,
    corpus: &[(String, Vec<bptrace::BranchRecord>)],
    cfg: &ReplayConfig,
) -> Row {
    // ---- Differential gate: batched == scalar on every trace, or die.
    let mut predictions = 0u64;
    let mut mispredicts = 0u64;
    let mut uops = 0u64;
    for (name, records) in corpus {
        let mut a = predictor.clone();
        let batched = replay_records(name, records, &mut a, cfg);
        let mut b = predictor.clone();
        let scalar = replay_records_scalar(name, records, &mut b, cfg);
        assert_eq!(
            batched,
            scalar,
            "{}: batched kernels drifted from the scalar reference on {name}",
            predictor.name()
        );
        predictions += batched.measured_conditionals;
        mispredicts += batched.mispredicts;
        uops += batched.measured_uops;
    }

    // ---- Timed passes, fastest-of-REPS per path, single core.
    let mut scalar_best = f64::INFINITY;
    let mut batched_best = f64::INFINITY;
    for _ in 0..REPS {
        let secs = timed_pass(|| {
            for (name, records) in corpus {
                let mut p = predictor.clone();
                let _ = replay_records_scalar(name, records, &mut p, cfg);
            }
        });
        scalar_best = scalar_best.min(secs);
        let secs = timed_pass(|| {
            for (name, records) in corpus {
                let mut p = predictor.clone();
                let _ = replay_records(name, records, &mut p, cfg);
            }
        });
        batched_best = batched_best.min(secs);
    }

    Row {
        label: size_label(predictor),
        predictions,
        mispredicts,
        misp_per_kuops: if uops == 0 {
            0.0
        } else {
            mispredicts as f64 * 1000.0 / uops as f64
        },
        scalar_preds_per_sec: predictions as f64 / scalar_best.max(1e-12),
        batched_preds_per_sec: predictions as f64 / batched_best.max(1e-12),
    }
}

/// Runs the throughput comparison and also returns the machine-readable
/// JSON report.
#[must_use]
pub fn run_with_report(env: &ExpEnv) -> (Vec<Table>, String) {
    let programs = env.programs();
    let budget = env.uop_budget();
    // No warm-up exclusion: a throughput denominator should count every
    // prediction the kernel performs, and the differential gate is
    // stricter when the whole stream is measured.
    let cfg = ReplayConfig {
        max_uops: budget,
        warmup_uops: 0,
    };

    // Record and decode the corpus once, in parallel; timing below is
    // strictly sequential so rates are single-core.
    let corpus: Vec<(String, Vec<bptrace::BranchRecord>)> =
        par_map(&programs, env.threads, |_, (bench, program)| {
            let mut bt = Vec::new();
            record_trace(program, bench.seed, budget, &mut bt)
                .expect("in-memory recording cannot fail");
            decode_records(&bt).expect("freshly recorded trace decodes")
        });

    let lineup = conventional_lineup();
    let rows: Vec<Row> = lineup.iter().map(|p| measure(p, &corpus, &cfg)).collect();

    let mut table = Table::new(
        "Replay throughput — batched SoA kernels vs scalar reference (single core)",
        &[
            "predictor",
            "predictions",
            "misp/Kuops",
            "scalar Mpred/s",
            "batched Mpred/s",
            "speedup",
        ],
    );
    for r in &rows {
        table.row(vec![
            r.label.clone(),
            r.predictions.to_string(),
            f2(r.misp_per_kuops),
            f2(r.scalar_preds_per_sec / 1e6),
            f2(r.batched_preds_per_sec / 1e6),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    table.note(format!(
        "{} traces, {budget} uops each, no warm-up exclusion; fastest of {REPS} passes per path",
        corpus.len()
    ));
    table.note(
        "every pass is gated: batched and scalar ReplayResults must be identical \
         field-for-field before any rate is reported",
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"bench_throughput_v1\",\n");
    json.push_str(&format!("  \"scale\": {},\n", env.scale));
    json.push_str(&format!("  \"bench_set\": \"{:?}\",\n", env.bench_set));
    json.push_str(&format!("  \"uop_budget\": {budget},\n"));
    json.push_str(&format!("  \"traces\": {},\n", corpus.len()));
    json.push_str("  \"predictors\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"configuration\": \"{}\", \"predictions\": {}, \"mispredicts\": {}, \
             \"misp_per_kuops\": {:.4}, \"scalar_preds_per_sec\": {:.0}, \
             \"batched_preds_per_sec\": {:.0}, \"speedup\": {:.3}}}{comma}\n",
            json_escape(&r.label),
            r.predictions,
            r.mispredicts,
            r.misp_per_kuops,
            r.scalar_preds_per_sec,
            r.batched_preds_per_sec,
            r.speedup(),
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");

    (vec![table], json)
}

/// Runs the throughput comparison and writes [`JSON_PATH`].
#[must_use]
pub fn run(env: &ExpEnv) -> Vec<Table> {
    let (tables, json) = run_with_report(env);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => eprintln!("# wrote {JSON_PATH}"),
        Err(err) => eprintln!("# could not write {JSON_PATH}: {err}"),
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_report_covers_the_lineup_and_gates_equivalence() {
        let env = ExpEnv {
            scale: 0.02,
            ..ExpEnv::tiny()
        };
        let (tables, json) = run_with_report(&env);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), conventional_lineup().len());
        assert!(json.contains("\"schema\": \"bench_throughput_v1\""));
        // Every row carries predictions and strictly positive rates.
        for row in &tables[0].rows {
            let predictions: u64 = row[1].parse().unwrap();
            assert!(predictions > 0, "{row:?}");
            let scalar: f64 = row[3].parse().unwrap();
            let batched: f64 = row[4].parse().unwrap();
            assert!(scalar > 0.0 && batched > 0.0, "{row:?}");
        }
    }
}
