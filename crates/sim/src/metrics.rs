//! Result records and the paper's metrics.
//!
//! The paper measures mispredict rate in **misp/Kuops** (mispredicts per
//! thousand committed micro-ops) and performance in **uPC** (uops per
//! cycle); the abstract also quotes the *distance between pipeline flushes*
//! in uops.

use prophet_critic::CritiqueStats;

/// The outcome of one accuracy-simulation run (measured region only).
///
/// `PartialEq` compares every counter bit-for-bit; the engine's
/// determinism tests rely on it to pin the parallel grid runner to the
/// sequential reference.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct AccuracyResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Committed micro-ops in the measured region.
    pub committed_uops: u64,
    /// Committed conditional branches.
    pub committed_branches: u64,
    /// Final-prediction mispredicts (pipeline flushes).
    pub final_mispredicts: u64,
    /// Prophet mispredicts (before any critic repair).
    pub prophet_mispredicts: u64,
    /// Micro-ops fetched along correct *and* incorrect paths.
    pub fetched_uops: u64,
    /// Front-end redirects due to BTB misses on taken branches.
    pub btb_redirects: u64,
    /// Critic overrides (disagreements acted upon).
    pub critic_overrides: u64,
    /// FTQ entries flushed by overrides.
    pub ftq_entries_flushed: u64,
    /// BTB miss rate over the whole run.
    pub btb_miss_rate: f64,
    /// Critique-kind distribution over committed, critiqued branches.
    pub critiques: CritiqueStats,
}

impl AccuracyResult {
    /// A blank result for `benchmark`.
    #[must_use]
    pub fn new(benchmark: &str) -> Self {
        Self {
            benchmark: benchmark.to_string(),
            ..Self::default()
        }
    }

    /// Mispredicts per thousand committed uops — the paper's headline
    /// accuracy metric.
    #[must_use]
    pub fn misp_per_kuops(&self) -> f64 {
        if self.committed_uops == 0 {
            return 0.0;
        }
        self.final_mispredicts as f64 * 1000.0 / self.committed_uops as f64
    }

    /// Percentage of committed conditional branches mispredicted (the
    /// abstract quotes gcc at 3.11 % → 1.23 %).
    #[must_use]
    pub fn mispredict_percent(&self) -> f64 {
        if self.committed_branches == 0 {
            return 0.0;
        }
        self.final_mispredicts as f64 * 100.0 / self.committed_branches as f64
    }

    /// Committed uops between pipeline flushes (the abstract's
    /// “one flush per 418 uops” metric).
    #[must_use]
    pub fn uops_per_flush(&self) -> f64 {
        if self.final_mispredicts == 0 {
            return self.committed_uops as f64;
        }
        self.committed_uops as f64 / self.final_mispredicts as f64
    }

    /// Wrong-path fetch overhead: fetched / committed uops.
    #[must_use]
    pub fn fetch_overhead(&self) -> f64 {
        if self.committed_uops == 0 {
            return 0.0;
        }
        self.fetched_uops as f64 / self.committed_uops as f64
    }

    /// Merges another run (e.g. another benchmark of the same suite) into
    /// this aggregate.
    pub fn merge(&mut self, other: &AccuracyResult) {
        self.committed_uops += other.committed_uops;
        self.committed_branches += other.committed_branches;
        self.final_mispredicts += other.final_mispredicts;
        self.prophet_mispredicts += other.prophet_mispredicts;
        self.fetched_uops += other.fetched_uops;
        self.btb_redirects += other.btb_redirects;
        self.critic_overrides += other.critic_overrides;
        self.ftq_entries_flushed += other.ftq_entries_flushed;
        // Miss rates don't add; keep the max as a conservative summary.
        self.btb_miss_rate = self.btb_miss_rate.max(other.btb_miss_rate);
        self.critiques.merge(&other.critiques);
    }

    /// Aggregates many runs into one (for suite and all-benchmark
    /// averages; the paper averages rates over benchmarks by pooling).
    #[must_use]
    pub fn pooled(name: &str, runs: &[AccuracyResult]) -> Self {
        let mut out = Self::new(name);
        for r in runs {
            out.merge(r);
        }
        out
    }
}

/// Percentage reduction of `new` relative to `base` (positive = improvement).
#[must_use]
pub fn percent_reduction(base: f64, new: f64) -> f64 {
    if base == 0.0 {
        return 0.0;
    }
    (base - new) / base * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccuracyResult {
        AccuracyResult {
            benchmark: "x".into(),
            committed_uops: 100_000,
            committed_branches: 10_000,
            final_mispredicts: 250,
            prophet_mispredicts: 400,
            fetched_uops: 115_000,
            ..AccuracyResult::default()
        }
    }

    #[test]
    fn misp_per_kuops_definition() {
        assert!((sample().misp_per_kuops() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mispredict_percent_definition() {
        assert!((sample().mispredict_percent() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn uops_per_flush_definition() {
        assert!((sample().uops_per_flush() - 400.0).abs() < 1e-12);
        let clean = AccuracyResult {
            committed_uops: 500,
            ..AccuracyResult::default()
        };
        assert_eq!(clean.uops_per_flush(), 500.0);
    }

    #[test]
    fn fetch_overhead_definition() {
        assert!((sample().fetch_overhead() - 1.15).abs() < 1e-12);
    }

    #[test]
    fn empty_result_rates_are_zero() {
        let r = AccuracyResult::default();
        assert_eq!(r.misp_per_kuops(), 0.0);
        assert_eq!(r.mispredict_percent(), 0.0);
        assert_eq!(r.fetch_overhead(), 0.0);
    }

    #[test]
    fn pooling_adds_counters() {
        let pooled = AccuracyResult::pooled("pool", &[sample(), sample()]);
        assert_eq!(pooled.committed_uops, 200_000);
        assert_eq!(pooled.final_mispredicts, 500);
        assert!((pooled.misp_per_kuops() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percent_reduction_sign() {
        assert!((percent_reduction(2.0, 1.0) - 50.0).abs() < 1e-12);
        assert!(percent_reduction(1.0, 2.0) < 0.0);
        assert_eq!(percent_reduction(0.0, 1.0), 0.0);
    }
}
