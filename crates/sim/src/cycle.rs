//! The cycle-level performance model (uPC results, §7.4).
//!
//! This drives the same execution-driven core as the accuracy simulator —
//! wrong-path fetch, in-order critique, checkpoint recovery — while moving
//! three time cursors over the Table 2 machine:
//!
//! * **fetch cursor** — the decoupled front end: the prophet produces up to
//!   2 predictions/cycle (§5), fetch moves 6 uops/cycle, I-cache misses
//!   stall it;
//! * **critic cursor** — 1 critique/cycle, each issued once its future bits
//!   exist in the FTQ; critiques that would not be ready when the consumer
//!   needs them are counted as *forced* (the paper measures <0.1 %);
//! * **commit cursor** — in-order retirement at 6 uops/cycle, bounded below
//!   by each branch's resolve time: `fetch time + mispredict penalty` (the
//!   30-cycle pipe) plus amortized data-stall cycles from the cache
//!   hierarchy (L1/L2/memory with the stream prefetcher, overlapped by a
//!   memory-level-parallelism factor).
//!
//! A final mispredict restarts the fetch cursor at the branch's resolve
//! time — the paper's 30-cycle penalty plus whatever memory stalls delayed
//! resolution. A critic override redirects only the fetch cursor; the
//! criticized FTQ prefix keeps the consumer fed, so, as §5 observes, the
//! flush itself costs no consumer cycles.

use std::collections::VecDeque;

use frontend::Btb;
use predictors::{DirectionPredictor, Pc};
use prophet_critic::{BranchId, Critic, ProphetCritic};
use uarch::{DataProfile, DataStream, Hierarchy, MachineParams};
use workloads::{Checkpoint, Program, Walker};

/// Configuration of one cycle-simulation run.
#[derive(Copy, Clone, Debug)]
pub struct CycleConfig {
    /// Stop after this many committed uops.
    pub max_uops: u64,
    /// Committed uops before measurement starts.
    pub warmup_uops: u64,
    /// Program seed.
    pub seed: u64,
    /// The machine (defaults to Table 2).
    pub machine: MachineParams,
    /// The synthetic data-side character.
    pub data: DataProfile,
    /// Memory-level parallelism: how many outstanding misses overlap.
    pub mlp: u64,
}

impl CycleConfig {
    /// The standard configuration at a given uop budget.
    #[must_use]
    pub fn with_budget(max_uops: u64, seed: u64) -> Self {
        Self {
            max_uops,
            warmup_uops: max_uops / 5,
            seed,
            machine: MachineParams::isca04(),
            data: DataProfile::resident(),
            mlp: 4,
        }
    }
}

impl Default for CycleConfig {
    fn default() -> Self {
        Self::with_budget(1_200_000, 0x15CA_2004)
    }
}

/// The outcome of one cycle-simulation run (measured region).
#[derive(Clone, Debug, Default)]
pub struct CycleResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Cycles elapsed in the measured region.
    pub cycles: f64,
    /// Committed uops in the measured region.
    pub committed_uops: u64,
    /// Final mispredicts (pipeline flushes).
    pub final_mispredicts: u64,
    /// Estimated uops fetched along correct and wrong paths.
    pub fetched_uops: u64,
    /// Critiques issued before their full future bits were available.
    pub forced_critiques: u64,
    /// Total critiques issued.
    pub critiques: u64,
    /// `(l1_hits, l2_hits, memory_accesses)` on the data side.
    pub data_counts: (u64, u64, u64),
}

impl CycleResult {
    /// Uops per cycle — the paper's performance metric.
    #[must_use]
    pub fn upc(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.committed_uops as f64 / self.cycles
        }
    }

    /// Committed uops between pipeline flushes.
    #[must_use]
    pub fn uops_per_flush(&self) -> f64 {
        if self.final_mispredicts == 0 {
            self.committed_uops as f64
        } else {
            self.committed_uops as f64 / self.final_mispredicts as f64
        }
    }

    /// Fraction of critiques that had to be forced early.
    #[must_use]
    pub fn forced_critique_rate(&self) -> f64 {
        if self.critiques == 0 {
            0.0
        } else {
            self.forced_critiques as f64 / self.critiques as f64
        }
    }
}

#[derive(Copy, Clone, Debug)]
struct TimedInflight {
    id: Option<BranchId>, // None: BTB miss, unpredicted
    pc: u64,
    outcome: bool,
    taken_target: u64,
    uops: u64,
    checkpoint: Checkpoint,
    fetch_time: f64,
    critiqued: bool,
    data_stall: f64,
}

/// Runs the cycle-level model for one program and hybrid.
#[allow(clippy::too_many_lines)]
pub fn run_cycles<P, C>(
    program: &Program,
    hybrid: &mut ProphetCritic<P, C>,
    config: &CycleConfig,
) -> CycleResult
where
    P: DirectionPredictor,
    C: Critic,
{
    let m = &config.machine;
    let mut walker = Walker::with_seed(program, config.seed);
    let mut btb = Btb::new(m.btb_entries, m.btb_ways);
    let mut icache = uarch::Cache::new(&m.icache);
    let mut data = Hierarchy::new(m);
    let mut stream = DataStream::new(config.data, config.seed);
    // Occupancy is bounded at 2 × the FTQ depth by the forced-critique
    // backpressure below; pre-size so the hot loop never reallocates.
    let mut inflight: VecDeque<TimedInflight> = VecDeque::with_capacity(2 * m.ftq_entries + 1);

    let width = m.width as f64;
    let exec_depth = m.mispredict_penalty as f64;

    // Time cursors.
    let mut t_fetch = 0.0f64;
    let mut t_critic = 0.0f64;
    let mut t_commit = 0.0f64;

    let mut committed: u64 = 0;
    let mut result = CycleResult {
        benchmark: program.name().to_string(),
        ..CycleResult::default()
    };
    let mut mark_cycles = 0.0f64;
    let mut marked = false;

    while committed < config.max_uops {
        let measuring = committed >= config.warmup_uops;
        if measuring && !marked {
            marked = true;
            mark_cycles = t_commit;
        }

        // ---- Fetch the next chunk (front-end time).
        let ev = walker.next_branch();
        let cp = walker.checkpoint();
        // I-cache: lines of the chunk (approximate span ending at the
        // branch).
        let first_line = ev.pc.saturating_sub(ev.uops * 4) >> 6;
        let last_line = ev.pc >> 6;
        let mut ic_stall = 0.0;
        for line in first_line..=last_line {
            if !icache.access(line << 6) {
                ic_stall += m.l2.hit_cycles as f64;
            }
        }
        // Front end is bound by fetch bandwidth and prophet throughput.
        t_fetch += (ev.uops as f64 / width).max(1.0 / m.prophet_per_cycle as f64) + ic_stall;
        if measuring {
            result.fetched_uops += ev.uops;
        }

        // Data-side stalls attributable to this chunk, overlapped by MLP.
        let mut stall = 0.0;
        for addr in stream.accesses(ev.pc, ev.uops) {
            let (lat, _) = data.access(addr);
            let beyond_l1 = lat.saturating_sub(m.l1d.hit_cycles) as f64;
            stall += beyond_l1 / config.mlp as f64;
        }

        let identified = btb.lookup(Pc::new(ev.pc)).is_some();
        if identified {
            let pe = hybrid.predict(Pc::new(ev.pc));
            inflight.push_back(TimedInflight {
                id: Some(pe.id),
                pc: ev.pc,
                outcome: ev.outcome,
                taken_target: ev.taken_target,
                uops: ev.uops,
                checkpoint: cp,
                fetch_time: t_fetch,
                critiqued: false,
                data_stall: stall,
            });
            walker.follow(pe.taken);
        } else {
            inflight.push_back(TimedInflight {
                id: None,
                pc: ev.pc,
                outcome: ev.outcome,
                taken_target: ev.taken_target,
                uops: ev.uops,
                checkpoint: cp,
                fetch_time: t_fetch,
                critiqued: true,
                data_stall: stall,
            });
            if ev.outcome {
                // BTB-miss taken branch: front-end redirect at decode-ish
                // depth.
                t_fetch += 8.0;
            }
            // Decode-time BTB allocation (see the accuracy model).
            btb.allocate(Pc::new(ev.pc), ev.taken_target, true);
            hybrid.note_external_outcome(ev.outcome);
            walker.follow(ev.outcome);
        }

        // ---- Critic: drain ready critiques (1 per cycle).
        while let Some(cr) = hybrid.critique_next() {
            let idx = inflight
                .iter()
                .position(|r| r.id == Some(cr.id))
                .expect("critiqued branch in flight");
            inflight[idx].critiqued = true;
            result.critiques += 1;
            let issue = t_fetch.max(t_critic + 1.0 / m.critic_per_cycle as f64);
            t_critic = issue;
            // The consumer will need this prediction around the time the
            // commit cursor reaches it; if the critique lands later, it
            // would have been forced with fewer future bits.
            if issue > inflight[idx].fetch_time + m.ftq_entries as f64 {
                result.forced_critiques += 1;
            }
            if cr.overridden {
                // FTQ-tail flush + front-end redirect: fetch restarts at the
                // critique time; the consumer keeps draining the criticized
                // prefix, so no commit-side bubble (§5).
                inflight.truncate(idx + 1);
                walker.restore(&inflight[idx].checkpoint);
                walker.follow(cr.final_taken);
                t_fetch = t_fetch.max(issue);
            }
        }

        // ---- Resolve & commit in order.
        while let Some(head) = inflight.front().copied() {
            if !head.critiqued {
                // Finite buffering: when fetch runs a full FTQ ahead of the
                // oldest uncritiqued prediction, the critique is forced with
                // the future bits available (§5).
                if inflight.len() >= 2 * m.ftq_entries {
                    if let Some(cr) = hybrid.force_critique_next() {
                        let idx = inflight
                            .iter()
                            .position(|r| r.id == Some(cr.id))
                            .expect("forced critique target in flight");
                        inflight[idx].critiqued = true;
                        result.critiques += 1;
                        result.forced_critiques += 1;
                        if cr.overridden {
                            inflight.truncate(idx + 1);
                            walker.restore(&inflight[idx].checkpoint);
                            walker.follow(cr.final_taken);
                            t_fetch = t_fetch.max(t_critic);
                        }
                        continue;
                    }
                }
                break;
            }
            let resolve_time = head.fetch_time + exec_depth + head.data_stall;
            match head.id {
                None => {
                    btb.allocate(Pc::new(head.pc), head.taken_target, true);
                }
                Some(_) => {
                    let res = hybrid
                        .resolve_oldest(head.outcome)
                        .expect("critiqued head resolves");
                    if res.mispredict {
                        if measuring {
                            result.final_mispredicts += 1;
                            // Wrong-path fetch between this branch and its
                            // resolution, bounded by the window.
                            let wasted = (resolve_time - head.fetch_time) * width;
                            result.fetched_uops += (wasted as u64).min(m.window_uops);
                        }
                        inflight.clear();
                        walker.restore(&head.checkpoint);
                        walker.follow(head.outcome);
                        // Redirect: fetch restarts once the branch resolves.
                        t_fetch = t_fetch.max(resolve_time);
                    }
                    btb.allocate(Pc::new(head.pc), head.taken_target, true);
                }
            }
            if !inflight.is_empty() {
                inflight.pop_front();
            }
            walker.release(&head.checkpoint);
            // In-order retirement: bandwidth-bound and resolution-bound.
            t_commit = (t_commit + head.uops as f64 / width).max(resolve_time);
            committed += head.uops;
            if measuring {
                result.committed_uops += head.uops;
            }
        }
    }

    result.cycles = (t_commit - mark_cycles).max(1.0);
    result.data_counts = data.counts();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use predictors::configs::{self, Budget};
    use prophet_critic::{NullCritic, ProphetCritic, TaggedGshareCritic};

    fn cfg(uops: u64) -> CycleConfig {
        CycleConfig::with_budget(uops, 11)
    }

    #[test]
    fn upc_is_in_a_plausible_band() {
        let program = workloads::benchmark("gzip").unwrap().program();
        let mut h = ProphetCritic::new(configs::bc_gskew(Budget::K16), NullCritic::new(), 0);
        let r = run_cycles(&program, &mut h, &cfg(120_000));
        let upc = r.upc();
        assert!(upc > 0.3 && upc < 6.0, "uPC {upc} out of band");
    }

    #[test]
    fn better_predictor_gives_higher_upc() {
        let program = workloads::benchmark("gcc").unwrap().program();
        let c = cfg(200_000);

        let mut weak = ProphetCritic::new(configs::gshare(Budget::K2), NullCritic::new(), 0);
        let weak_r = run_cycles(&program, &mut weak, &c);

        let mut strong = ProphetCritic::new(
            configs::bc_gskew(Budget::K8),
            TaggedGshareCritic::new(configs::tagged_gshare(Budget::K8)),
            8,
        );
        let strong_r = run_cycles(&program, &mut strong, &c);

        assert!(
            strong_r.final_mispredicts < weak_r.final_mispredicts,
            "hybrid should mispredict less"
        );
        assert!(
            strong_r.upc() > weak_r.upc(),
            "fewer mispredicts should mean higher uPC: {} vs {}",
            strong_r.upc(),
            weak_r.upc()
        );
    }

    #[test]
    fn forced_critiques_are_rare() {
        let program = workloads::benchmark("vpr").unwrap().program();
        let mut h = ProphetCritic::new(
            configs::perceptron(Budget::K8),
            TaggedGshareCritic::new(configs::tagged_gshare(Budget::K8)),
            8,
        );
        let r = run_cycles(&program, &mut h, &cfg(120_000));
        // The paper reports <0.1%; allow generous slack for the simplified
        // consumer model and the synthetic workloads.
        assert!(
            r.forced_critique_rate() < 0.08,
            "forced critiques too common: {}",
            r.forced_critique_rate()
        );
    }

    #[test]
    fn cycle_model_is_deterministic() {
        let program = workloads::benchmark("mcf").unwrap().program();
        let run = || {
            let mut h = ProphetCritic::new(configs::gshare(Budget::K8), NullCritic::new(), 0);
            run_cycles(&program, &mut h, &cfg(80_000))
        };
        let (a, b) = (run(), run());
        assert_eq!(a.committed_uops, b.committed_uops);
        assert!((a.cycles - b.cycles).abs() < 1e-9);
        assert_eq!(a.final_mispredicts, b.final_mispredicts);
    }
}
