//! Integration pin for the H2P-slice experiment: the report must be
//! byte-identical for any worker-thread count.

use sim::experiments::h2p::run_with_report;
use sim::experiments::ExpEnv;

fn tiny() -> ExpEnv {
    ExpEnv {
        scale: 0.04,
        ..ExpEnv::tiny()
    }
}

#[test]
fn h2p_report_is_bit_identical_for_any_thread_count() {
    let reference = run_with_report(&tiny().with_threads(1));
    for threads in [2, 3, 8] {
        let (tables, json) = run_with_report(&tiny().with_threads(threads));
        assert_eq!(
            json, reference.1,
            "{threads}-thread JSON report diverged from sequential"
        );
        for (t, r) in tables.iter().zip(&reference.0) {
            assert_eq!(t.render(), r.render(), "threads={threads}");
        }
    }
}

#[test]
fn h2p_sides_follow_the_paper_split() {
    // Baseline label names the conventional 16KB 2Bc-gskew; hybrid label
    // names the tuned preset — the §6 replay/re-execution split.
    let (tables, json) = run_with_report(&tiny());
    assert!(tables[0].title.contains("replay"));
    assert!(tables[0].title.contains("re-execution"));
    assert!(json.contains("\"baseline\": \"16KB 2Bc-gskew alone\""));
    assert!(json.contains("\"hybrid\":"));
}
