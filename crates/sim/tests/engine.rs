//! Integration tests of the parallel experiment engine: the rayon-style
//! grid fan-out must be bit-identical to the sequential path, the
//! monomorphized (enum-dispatch) hybrids must match the boxed trait-object
//! hybrids result-for-result, and the batched structure-of-arrays kernels
//! (live in every replay and in the hybrids' deferred commit training)
//! must leave the headline figures and stored cell bytes unchanged for
//! any thread count.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};
use sim::experiments::common::{
    pooled_accuracy_par, pooled_accuracy_seq, run_grid, run_matrix, ExpEnv,
};
use sim::experiments::headline;
use sim::{run_accuracy, AccuracyResult, CellStore};

fn tiny() -> ExpEnv {
    ExpEnv {
        scale: 0.03,
        ..ExpEnv::tiny()
    }
}

fn specs() -> Vec<HybridSpec> {
    vec![
        HybridSpec::alone(ProphetKind::Gshare, Budget::K8),
        HybridSpec::paired(
            ProphetKind::Gshare,
            Budget::K4,
            CriticKind::TaggedGshare,
            Budget::K4,
            4,
        ),
        HybridSpec::paired(
            ProphetKind::Perceptron,
            Budget::K4,
            CriticKind::FilteredPerceptron,
            Budget::K4,
            8,
        ),
        HybridSpec::paired(
            ProphetKind::BcGskew,
            Budget::K4,
            CriticKind::UnfilteredPerceptron,
            Budget::K2,
            1,
        ),
    ]
}

#[test]
fn parallel_grid_is_bit_identical_to_sequential() {
    let env = tiny();
    let programs = env.named_programs(&["gzip", "gcc", "tpcc", "swim"]);
    for spec in specs() {
        let sequential = pooled_accuracy_seq(&spec, &programs, &env);
        for threads in [1, 2, 3, 8] {
            let parallel = pooled_accuracy_par(&spec, &programs, &env, threads);
            assert_eq!(
                parallel,
                sequential,
                "{}: {threads}-thread grid diverged from sequential",
                spec.label()
            );
        }
    }
}

#[test]
fn grid_runner_matches_per_spec_sequential_runs() {
    let env = tiny();
    let programs = env.named_programs(&["vpr", "art"]);
    let specs = specs();
    let pooled = run_grid(&specs, &programs, &env.clone().with_threads(4));
    assert_eq!(pooled.len(), specs.len());
    for (spec, got) in specs.iter().zip(&pooled) {
        let want = pooled_accuracy_seq(spec, &programs, &env);
        assert_eq!(got, &want, "{} diverged", spec.label());
    }
}

#[test]
fn matrix_cells_are_thread_count_invariant() {
    let env = tiny();
    let programs = env.named_programs(&["mcf", "crafty"]);
    let specs = specs();
    let reference = run_matrix(&specs, &programs, &env.clone().with_threads(1));
    let wide = run_matrix(&specs, &programs, &env.with_threads(8));
    assert_eq!(reference, wide);
}

/// Every cell file in a store directory, keyed by file name.
fn store_cells(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).unwrap(),
            )
        })
        .collect()
}

#[test]
fn batched_kernels_leave_headline_and_store_cells_thread_invariant() {
    // End-to-end pin for the SoA kernel layer: with the batched kernels
    // live (chunked replay, fused predict+train, deferred hybrid commit
    // training), the headline figures and every persisted `sim::store`
    // cell must come out byte-identical for any `--threads` value.
    let env = ExpEnv {
        scale: 0.02,
        ..ExpEnv::tiny()
    };
    let run = |threads: usize, tag: &str| -> (PathBuf, headline::HeadlineMetrics) {
        let dir = std::env::temp_dir().join(format!("sim-engine-pin-{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(CellStore::open(&dir).unwrap());
        let env = env.clone().with_threads(threads).with_store(store);
        let (_, metrics) = headline::run_with_metrics(&env);
        (dir, metrics)
    };
    let (dir_seq, seq) = run(1, "seq");
    let (dir_par, par) = run(8, "par");

    // The BENCH_headline figures, bit-for-bit (f64 equality is exact
    // here: both runs must take the identical arithmetic path).
    assert_eq!(seq.baseline_misp_per_kuops, par.baseline_misp_per_kuops);
    assert_eq!(seq.hybrid_misp_per_kuops, par.hybrid_misp_per_kuops);
    assert_eq!(seq.misp_reduction_percent, par.misp_reduction_percent);
    assert_eq!(seq.baseline_uops_per_flush, par.baseline_uops_per_flush);
    assert_eq!(seq.hybrid_uops_per_flush, par.hybrid_uops_per_flush);
    assert_eq!(seq.baseline_upc, par.baseline_upc);
    assert_eq!(seq.hybrid_upc, par.hybrid_upc);

    // The persisted cell bytes: same file set, same bytes.
    let cells_seq = store_cells(&dir_seq);
    let cells_par = store_cells(&dir_par);
    assert!(!cells_seq.is_empty(), "headline run must persist cells");
    assert_eq!(
        cells_seq, cells_par,
        "store cell bytes diverged by thread count"
    );

    let _ = std::fs::remove_dir_all(&dir_seq);
    let _ = std::fs::remove_dir_all(&dir_par);
}

#[test]
fn batched_replay_matches_scalar_reference_through_sim_lineup() {
    // The same batched-vs-scalar differential the throughput experiment
    // gates on, pinned here at integration scope over a tournament
    // predictor: chunked replay must equal the per-branch reference.
    let bench = workloads::benchmark("gcc").unwrap();
    let mut bt = Vec::new();
    replay::record_trace(&bench.program(), bench.seed, 60_000, &mut bt).unwrap();
    let (name, records) = replay::decode_records(&bt).unwrap();
    let cfg = replay::ReplayConfig::with_budget(60_000);
    for predictor in sim::experiments::tracecmp::conventional_lineup() {
        let mut a = predictor.clone();
        let batched = replay::replay_records(&name, &records, &mut a, &cfg);
        let mut b = predictor.clone();
        let scalar = replay::replay_records_scalar(&name, &records, &mut b, &cfg);
        assert_eq!(batched, scalar);
    }
}

#[test]
fn monomorphized_hybrid_matches_boxed_hybrid_run_for_run() {
    let env = tiny();
    let programs = env.named_programs(&["gcc", "tpcc"]);
    for spec in specs() {
        for (bench, program) in &programs {
            let cfg = env.sim_config(bench.seed);
            let mut fast = spec.build();
            let enum_result: AccuracyResult = run_accuracy(program, &mut fast, &cfg);
            let mut boxed = spec.build_boxed();
            let boxed_result = run_accuracy(program, &mut boxed, &cfg);
            assert_eq!(
                enum_result,
                boxed_result,
                "{} on {}: enum vs boxed dispatch diverged",
                spec.label(),
                bench.name
            );
        }
    }
}
