//! Integration tests of the parallel experiment engine: the rayon-style
//! grid fan-out must be bit-identical to the sequential path, and the
//! monomorphized (enum-dispatch) hybrids must match the boxed trait-object
//! hybrids result-for-result.

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};
use sim::experiments::common::{
    pooled_accuracy_par, pooled_accuracy_seq, run_grid, run_matrix, ExpEnv,
};
use sim::{run_accuracy, AccuracyResult};

fn tiny() -> ExpEnv {
    ExpEnv {
        scale: 0.03,
        ..ExpEnv::tiny()
    }
}

fn specs() -> Vec<HybridSpec> {
    vec![
        HybridSpec::alone(ProphetKind::Gshare, Budget::K8),
        HybridSpec::paired(
            ProphetKind::Gshare,
            Budget::K4,
            CriticKind::TaggedGshare,
            Budget::K4,
            4,
        ),
        HybridSpec::paired(
            ProphetKind::Perceptron,
            Budget::K4,
            CriticKind::FilteredPerceptron,
            Budget::K4,
            8,
        ),
        HybridSpec::paired(
            ProphetKind::BcGskew,
            Budget::K4,
            CriticKind::UnfilteredPerceptron,
            Budget::K2,
            1,
        ),
    ]
}

#[test]
fn parallel_grid_is_bit_identical_to_sequential() {
    let env = tiny();
    let programs = env.named_programs(&["gzip", "gcc", "tpcc", "swim"]);
    for spec in specs() {
        let sequential = pooled_accuracy_seq(&spec, &programs, &env);
        for threads in [1, 2, 3, 8] {
            let parallel = pooled_accuracy_par(&spec, &programs, &env, threads);
            assert_eq!(
                parallel,
                sequential,
                "{}: {threads}-thread grid diverged from sequential",
                spec.label()
            );
        }
    }
}

#[test]
fn grid_runner_matches_per_spec_sequential_runs() {
    let env = tiny();
    let programs = env.named_programs(&["vpr", "art"]);
    let specs = specs();
    let pooled = run_grid(&specs, &programs, &env.clone().with_threads(4));
    assert_eq!(pooled.len(), specs.len());
    for (spec, got) in specs.iter().zip(&pooled) {
        let want = pooled_accuracy_seq(spec, &programs, &env);
        assert_eq!(got, &want, "{} diverged", spec.label());
    }
}

#[test]
fn matrix_cells_are_thread_count_invariant() {
    let env = tiny();
    let programs = env.named_programs(&["mcf", "crafty"]);
    let specs = specs();
    let reference = run_matrix(&specs, &programs, &env.clone().with_threads(1));
    let wide = run_matrix(&specs, &programs, &env.with_threads(8));
    assert_eq!(reference, wide);
}

#[test]
fn monomorphized_hybrid_matches_boxed_hybrid_run_for_run() {
    let env = tiny();
    let programs = env.named_programs(&["gcc", "tpcc"]);
    for spec in specs() {
        for (bench, program) in &programs {
            let cfg = env.sim_config(bench.seed);
            let mut fast = spec.build();
            let enum_result: AccuracyResult = run_accuracy(program, &mut fast, &cfg);
            let mut boxed = spec.build_boxed();
            let boxed_result = run_accuracy(program, &mut boxed, &cfg);
            assert_eq!(
                enum_result,
                boxed_result,
                "{} on {}: enum vs boxed dispatch diverged",
                spec.label(),
                bench.name
            );
        }
    }
}
