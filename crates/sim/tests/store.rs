//! Crash-safety tests for the incremental cell store.
//!
//! Two claims are pinned here, both from the failure model in
//! `ARCHITECTURE.md`:
//!
//! * **Corruption degrades to a miss.** A cell record torn at *any* byte
//!   offset, or with *any* single bit flipped, must read back as a cache
//!   miss — never as wrong data, never as a panic. The sweeps below try
//!   every offset and every byte.
//! * **Kill-and-resume heals byte-identically.** A grid interrupted
//!   mid-run (here: a scheduled cell panic) leaves a partial store; a
//!   clean rerun over the same store recomputes *only* the missing cells
//!   and emits a report byte-identical to an uninterrupted run.

use std::path::PathBuf;
use std::sync::Arc;

use prophet_critic::CritiqueStats;
use replay::fault::torn_write;
use replay::FaultPlan;
use sim::experiments::{h2p, ExpEnv};
use sim::{AccuracyResult, CellKey, CellStore};

fn temp_store(tag: &str) -> (PathBuf, Arc<CellStore>) {
    let dir = std::env::temp_dir().join(format!("sim-store-it-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(CellStore::open(&dir).unwrap());
    (dir, store)
}

fn sample() -> AccuracyResult {
    AccuracyResult {
        benchmark: "gzip".into(),
        committed_uops: 987_654,
        committed_branches: 54_321,
        final_mispredicts: 1_234,
        prophet_mispredicts: 1_500,
        fetched_uops: 1_200_000,
        btb_redirects: 42,
        critic_overrides: 99,
        ftq_entries_flushed: 101,
        btb_miss_rate: 0.042_424_242,
        critiques: CritiqueStats::from_counts([6, 5, 4, 3, 2, 1]),
    }
}

#[test]
fn torn_write_at_every_offset_is_a_miss_and_restore_heals() {
    let (dir, store) = temp_store("torn-sweep");
    let key = CellKey::new("sweep", "spec × gzip", 0xbeef, 20_000);
    store.put(&key, &sample()).unwrap();
    let path = dir.join(key.file_name());
    let record = std::fs::read(&path).unwrap();

    for keep in 0..record.len() {
        torn_write(&path, &record, keep).unwrap();
        assert!(
            store.get::<AccuracyResult>(&key).is_none(),
            "record torn at byte {keep} of {} must be a miss",
            record.len()
        );
    }
    std::fs::write(&path, &record).unwrap();
    assert_eq!(store.get::<AccuracyResult>(&key), Some(sample()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn single_bit_flip_at_every_byte_is_a_miss() {
    let (dir, store) = temp_store("flip-sweep");
    let key = CellKey::new("sweep", "spec × gzip", 0xf11b, 20_000);
    store.put(&key, &sample()).unwrap();
    let path = dir.join(key.file_name());
    let record = std::fs::read(&path).unwrap();

    // The invariant is "never WRONG data": every flip must read back as
    // either a miss or the exact original (a case flip inside the hex
    // checksum digits parses to the same value — harmless by design).
    for pos in 0..record.len() {
        let mut bad = record.clone();
        bad[pos] ^= 1 << (pos % 8);
        std::fs::write(&path, &bad).unwrap();
        match store.get::<AccuracyResult>(&key) {
            None => {}
            Some(got) => assert_eq!(
                got,
                sample(),
                "bit flip in byte {pos} of {} surfaced as wrong data",
                record.len()
            ),
        }
    }
    std::fs::write(&path, &record).unwrap();
    assert_eq!(store.get::<AccuracyResult>(&key), Some(sample()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_and_resume_recomputes_only_missing_cells_byte_identically() {
    let env = ExpEnv {
        scale: 0.03,
        ..ExpEnv::tiny()
    };

    // Reference: a storeless, uninterrupted run.
    let (_, reference) = h2p::run_with_report(&env);

    // A store-backed run must be bit-for-bit the same artifact, and a
    // second pass over the same store must resolve every cell from disk.
    let (dir_a, store_a) = temp_store("full-run");
    let env_a = env.clone().with_store(Arc::clone(&store_a));
    let (_, json_a) = h2p::run_with_report(&env_a);
    assert_eq!(
        json_a, reference,
        "store-backed run diverged from storeless"
    );
    let total_cells = store_a.misses();
    assert!(total_cells > 0);
    let (_, json_a2) = h2p::run_with_report(&env_a);
    assert_eq!(json_a2, reference);
    assert_eq!(
        store_a.misses(),
        total_cells,
        "second pass recomputed cells"
    );
    assert_eq!(store_a.hits(), total_cells, "second pass missed the store");

    // Bounded store: repeated passes add no new cells — the on-disk
    // entry count stays pinned at the cell population, so a long-lived
    // corpus store cannot grow without bound under re-runs.
    let entries_after_two = store_a.entries().unwrap().len() as u64;
    assert_eq!(
        entries_after_two, total_cells,
        "store grew past the cell population"
    );
    let (_, json_a3) = h2p::run_with_report(&env_a);
    assert_eq!(json_a3, reference);
    assert_eq!(
        store_a.entries().unwrap().len() as u64,
        entries_after_two,
        "third pass leaked new store entries"
    );

    // "Kill" a run: schedule a panic in one cell. The grid completes,
    // reports the failed cell, and the store holds every *other* cell.
    let (dir_b, store_b) = temp_store("interrupted");
    let fault = FaultPlan::from_spec("panic=h2p × swim").unwrap();
    let env_b = env
        .clone()
        .with_store(Arc::clone(&store_b))
        .with_fault(fault);
    let (_, json_b) = h2p::run_with_report(&env_b);
    assert!(json_b.contains("\"failed_cells\""));
    assert!(json_b.contains("h2p × swim"));
    assert_ne!(json_b, reference);

    // Resume: same store, clean plan. Exactly one cell (the killed one)
    // recomputes; the artifact heals to byte-identical.
    let resumed = Arc::new(CellStore::open(&dir_b).unwrap());
    let env_resume = env.clone().with_store(Arc::clone(&resumed));
    let (_, json_resumed) = h2p::run_with_report(&env_resume);
    assert_eq!(
        json_resumed, reference,
        "resume did not heal to the uninterrupted artifact"
    );
    assert_eq!(
        resumed.misses(),
        1,
        "resume recomputed more than the killed cell"
    );
    assert_eq!(resumed.hits(), total_cells - 1);

    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}
