//! Determinism pins for the stage-accurate pipeline engine: the cycle
//! grid must be bit-identical for any worker-thread count, and a
//! small-budget reference run is pinned byte-for-byte so that *any*
//! unintended change to the timing model (a reordered float add, a new
//! stall term, a different recovery path) fails loudly instead of
//! silently shifting every uPC figure.

use prophet_critic::{Budget, CriticKind, HybridSpec, ProphetKind};
use sim::experiments::common::{cycle_grid, representatives, ExpEnv};
use sim::{run_cycles, run_cycles_trace, CycleConfig};

fn tiny() -> ExpEnv {
    ExpEnv {
        scale: 0.03,
        ..ExpEnv::tiny()
    }
}

fn grid_specs() -> Vec<HybridSpec> {
    vec![
        HybridSpec::alone(ProphetKind::BcGskew, Budget::K16),
        HybridSpec::paired(
            ProphetKind::BcGskew,
            Budget::K8,
            CriticKind::TaggedGshare,
            Budget::K8,
            8,
        ),
        HybridSpec::tuned_headline(),
    ]
}

#[test]
fn cycle_grid_is_bit_identical_for_any_thread_count() {
    let benches = representatives();
    let specs = grid_specs();
    let reference = cycle_grid(&tiny().with_threads(1), &specs, &benches);
    for threads in [2, 3, 8] {
        let wide = cycle_grid(&tiny().with_threads(threads), &specs, &benches);
        assert_eq!(
            wide, reference,
            "{threads}-thread cycle grid diverged from sequential"
        );
    }
}

#[test]
fn trace_feed_prediction_stream_equals_the_replay_engine() {
    // The trace-driven cycle feed predicts and trains on every record in
    // order, exactly like `replay::replay_reader` — so over a fully
    // consumed trace (cycle budget beyond the trace content, no warm-up
    // gating differences) the two paths must count identical mispredicts.
    // This also pins the post-stream drain: a flush near the end of the
    // trace must refetch (and commit) its squashed correct-path tail
    // rather than dropping it.
    for bench_name in ["gzip", "tpcc"] {
        let bench = workloads::benchmark(bench_name).unwrap();
        let mut bt = Vec::new();
        replay::record_trace(&bench.program(), bench.seed, 50_000, &mut bt).unwrap();

        let mut replay_pred = predictors::configs::gshare(predictors::configs::Budget::K8);
        let replayed = replay::replay_bytes(
            &bt,
            &mut replay_pred,
            &replay::ReplayConfig {
                max_uops: 200_000,
                warmup_uops: 0,
            },
        )
        .unwrap();

        let mut reader = bptrace::BtReader::new(bt.as_slice()).unwrap();
        let mut cycle_pred = predictors::configs::gshare(predictors::configs::Budget::K8);
        let timed = run_cycles_trace(
            &mut reader,
            &mut cycle_pred,
            &CycleConfig::isca04()
                .budget(200_000)
                .seed(bench.seed)
                .warmup(0),
        );

        assert_eq!(
            timed.final_mispredicts, replayed.mispredicts,
            "{bench_name}: trace-feed mispredicts diverged from replay_reader"
        );
        assert_eq!(
            timed.committed_uops, replayed.measured_uops,
            "{bench_name}: trace-feed committed uops diverged (dropped refetch tail?)"
        );
    }
}

#[test]
fn trace_feed_is_deterministic_and_matches_itself_across_reads() {
    // The trace-driven model re-reads the same bytes; two passes must
    // agree bit-for-bit (no hidden state outside the reader).
    let bench = workloads::benchmark("tpcc").unwrap();
    let mut bt = Vec::new();
    replay::record_trace(&bench.program(), bench.seed, 60_000, &mut bt).unwrap();
    let cfg = CycleConfig::isca04().budget(60_000).seed(bench.seed);
    let run = || {
        let mut reader = bptrace::BtReader::new(bt.as_slice()).unwrap();
        let mut p = predictors::configs::bc_gskew(predictors::configs::Budget::K16);
        run_cycles_trace(&mut reader, &mut p, &cfg)
    };
    assert_eq!(run(), run());
}

/// The byte pin: a small reference run, formatted with full `Debug`
/// precision. If this fails after an *intentional* model change, rerun
/// the test, inspect the printed actual value, and update the literal —
/// the pin exists to make silent drift impossible, not to forbid
/// calibration.
#[test]
fn small_budget_cycle_result_is_byte_pinned() {
    let program = workloads::benchmark("gzip").unwrap().program();
    let mut hybrid = HybridSpec::paired(
        ProphetKind::Gshare,
        Budget::K4,
        CriticKind::TaggedGshare,
        Budget::K4,
        4,
    )
    .build();
    let r = run_cycles(
        &program,
        &mut hybrid,
        &CycleConfig::isca04().budget(30_000).seed(0x5EED),
    );
    let got = format!("{r:?}");
    let want = "CycleResult { benchmark: \"gzip\", cycles: 88824.08333333186, \
                committed_uops: 24020, final_mispredicts: 655, overrides: 157, \
                fetched_uops: 220158, forced_critiques: 124, critiques: 35209, \
                data_counts: (34602, 24633, 14580), bubbles: BubbleProfile { \
                icache: 2624.0, ftq_full: 15631.83333333317, \
                ftq_empty: 5165.166666673981, window_full: 18887.83333333335, \
                redirect: 1368.0, flush_restart: 6048.0 } }";
    assert_eq!(got, want, "\nactual:\n{got}\n");
}
